---------------------------- MODULE admin_policy ----------------------------
(***************************************************************************)
(* Declarative safety invariants for the administrative-policy transition  *)
(* system of Dekker & Etalle, "Refinement for Administrative Policies".    *)
(*                                                                         *)
(* A policy is a finite digraph over users, roles and privilege terms:     *)
(*   UA  \subseteq Users x Roles          (user-role assignment)           *)
(*   RH  \subseteq Roles x Roles          (role hierarchy, r1 inherits r2) *)
(*   PA  \subseteq Roles x Privs          (privilege assignment)           *)
(* Privilege terms are perms (a, o), grants  ¤e  and revokes  ♦e  over    *)
(* edges e, nested arbitrarily (Definition 2).  A command  cmd(u, +, e)    *)
(* or cmd(u, -, e) executes iff its actor reaches a justifying privilege   *)
(* vertex in the current policy (Definition 5); executed commands add or   *)
(* remove exactly their edge, refused commands are no-ops.                 *)
(*                                                                         *)
(* This module is the mathematical statement of the invariants the         *)
(* executable oracle (crates/core/src/verify/specs.rs) replays against     *)
(* recorded monitor traces.  The Rust combinators are the mechanised       *)
(* counterparts of the definitions below, checked per step / per state /   *)
(* on the final sessions respectively.                                     *)
(***************************************************************************)

EXTENDS Naturals, Sequences

CONSTANTS Users, Roles, Privs,      \* finite vocabularies
          Conflicts                 \* \subseteq Roles x Roles, SoD pairs

VARIABLES policy,                   \* the current edge set
          trace,                    \* sequence of <<cmd, decision>> records
          sessions                  \* set of [user |-> u, active |-> S]

(***************************************************************************)
(* Reachability in the policy digraph: Reach(p, x, y) holds iff there is   *)
(* a directed path from vertex x to vertex y through UA \cup RH \cup PA    *)
(* edges of p.  Authorized(p, u, q) holds iff u reaches a privilege        *)
(* vertex h with h \sqsupseteq q — under explicit authorization h = q;     *)
(* under ordered authorization h may be any \sqsubseteq-stronger term      *)
(* (the paper's  \sqsubseteq  of section 4.1).                             *)
(***************************************************************************)

Reach(p, x, y)      == TRUE \* graph reachability, elided
Authorized(p, u, q) == \E h \in Privs : Reach(p, u, h) /\ Weaker(q, h)
Weaker(q, h)        == TRUE \* the privilege ordering \sqsubseteq, elided
Apply(p, cmd)       == p   \* edge addition/removal, elided

(***************************************************************************)
(* The step relation: a recorded step either executed (and was authorized  *)
(* in its pre-state, with the recorded `changed` flag telling the truth    *)
(* about whether the edge was new/present) or was refused (and the policy  *)
(* is unchanged).                                                          *)
(***************************************************************************)

Step(rec) ==
  \/ /\ rec.decision.executed
     /\ Authorized(policy, rec.cmd.actor, rec.cmd.required)
     /\ policy' = Apply(policy, rec.cmd)
     /\ rec.decision.changed = (policy' /= policy)
  \/ /\ ~rec.decision.executed
     /\ policy' = policy

(***************************************************************************)
(* Invariants.  These are the properties `InvariantSuite::standard` (and   *)
(* `separation_of_duty`) check over a recorded trace:                      *)
(***************************************************************************)

\* Every executed step was authorized in its pre-state, justified by a
\* vertex its actor actually reached.
NoUnauthorizedAccess ==
  \A i \in 1..Len(trace) :
    trace[i].decision.executed =>
      Authorized(PolicyBefore(i), trace[i].cmd.actor, trace[i].cmd.required)

\* The audit trail neither omits nor invents mutations: each recorded
\* `changed` flag equals what replaying the command yields.
AuditTrailComplete ==
  \A i \in 1..Len(trace) :
    trace[i].decision.executed =>
      trace[i].decision.changed =
        (Apply(PolicyBefore(i), trace[i].cmd) /= PolicyBefore(i))

\* Least privilege for sessions: every activated role is still held by
\* the session's user (directly or via inheritance) in the final policy.
SessionRolesAssigned ==
  \A s \in sessions : \A r \in s.active : Reach(policy, s.user, r)

\* Static separation of duty: no user reaches both roles of a declared
\* conflicting pair, in any state along the trace.
SeparationOfDuty ==
  \A u \in Users : \A c \in Conflicts :
    ~(Reach(policy, u, c[1]) /\ Reach(policy, u, c[2]))

\* PolicyBefore(i): the policy reconstructed by applying the executed
\* prefix trace[1..i-1] to the root — exactly what the oracle's replay
\* driver computes.
PolicyBefore(i) == policy \* fold of Apply over the executed prefix, elided

Safety == NoUnauthorizedAccess /\ AuditTrailComplete
          /\ SessionRolesAssigned /\ SeparationOfDuty

=============================================================================
