//! A synthetic enterprise at “thousands of roles” scale (§1): durable
//! monitor, mixed command workload, crash recovery, and an audit/refine
//! review — the workflow a security officer would actually run.
//!
//! ```sh
//! cargo run -p adminref-suite --example enterprise_audit
//! ```

use adminref_core::analysis::{diff, stats};
use adminref_core::ids::RoleId;
use adminref_core::prelude::*;
use adminref_monitor::{MonitorConfig, ReferenceMonitor};
use adminref_store::{PolicyStore, TempDir};
use adminref_workloads::{
    generate_queue, inject_admin_privs, layered, populate_perms, populate_users, AdminSpec,
    LayeredSpec, QueueSpec,
};
use std::time::Instant;

fn main() {
    // ----- build the enterprise ----------------------------------------
    let t0 = Instant::now();
    let mut h = layered(LayeredSpec {
        layers: 6,
        width: 256,
        edge_prob: 0.02,
        seed: 2024,
    });
    let users = populate_users(&mut h, 300, 2, 2024);
    populate_perms(&mut h, 2, 2000, 2024);
    let roles: Vec<RoleId> = h.layers.iter().flatten().copied().collect();
    inject_admin_privs(
        &mut h.universe,
        &mut h.policy,
        &users,
        &roles,
        AdminSpec {
            count: 200,
            max_depth: 3,
            grant_ratio: 0.75,
            seed: 2024,
        },
    );
    let s = stats(&h.universe, &h.policy);
    println!(
        "enterprise built in {:?}: {} roles, {} users, {} edges, \
         {} admin privileges (max depth {}), longest chain {}",
        t0.elapsed(),
        s.roles,
        s.users,
        s.ua_edges + s.rh_edges + s.pa_edges,
        s.admin_vertices,
        s.max_priv_depth,
        s.longest_chain
    );

    // ----- durable monitor under a mixed workload ----------------------
    let dir = TempDir::new("enterprise").unwrap();
    let queue = generate_queue(
        &h.universe,
        &h.policy,
        &users,
        &roles,
        QueueSpec {
            len: 2000,
            valid_ratio: 0.6,
            seed: 2024,
        },
    );
    let baseline = h.policy.clone();
    let store = PolicyStore::create(
        dir.path(),
        h.universe.clone(),
        h.policy.clone(),
        AuthMode::Explicit,
    )
    .unwrap();
    let monitor = ReferenceMonitor::with_store(
        store,
        MonitorConfig {
            auth_mode: AuthMode::Explicit,
            audit_capacity: 4096,
            ..MonitorConfig::default()
        },
    );
    let t0 = Instant::now();
    let outcomes = monitor.submit_queue(&queue).unwrap();
    let executed = outcomes.iter().filter(|o| o.executed()).count();
    println!(
        "\nprocessed {} commands in {:?} — {} executed, {} refused",
        queue.len(),
        t0.elapsed(),
        executed,
        queue.len() - executed
    );

    // ----- crash + recovery --------------------------------------------
    let live = monitor.snapshot().1;
    drop(monitor); // simulated crash: no compaction, no clean shutdown
    let t0 = Instant::now();
    let (store, report) = PolicyStore::open(dir.path(), AuthMode::Explicit).unwrap();
    println!(
        "recovered in {:?}: replayed {} entries, divergent {}, torn tail {}",
        t0.elapsed(),
        report.replayed,
        report.divergent,
        report.truncated_tail
    );
    assert_eq!(store.policy(), &live, "recovery reproduces the live state");

    // ----- the security officer's review -------------------------------
    let d = diff(&baseline, store.policy());
    println!(
        "\npolicy drift since baseline: +{} edges, -{} edges",
        d.added.len(),
        d.removed.len()
    );
    // Did the workload make anyone *more* powerful than the baseline
    // allowed? (Definition 6 check, the paper's safety yardstick.)
    let t0 = Instant::now();
    let drift_is_refinement = refines(&h.universe, store.policy(), &baseline);
    println!(
        "baseline refines current (nobody LOST access): {} ({:?})",
        drift_is_refinement,
        t0.elapsed()
    );
    let gained = refinement_violations(&h.universe, &baseline, store.policy());
    println!(
        "entities that GAINED user privileges vs baseline: {}",
        gained.len()
    );
    if let Some(v) = gained.first() {
        let who = match v.entity {
            Entity::User(u) => h.universe.user_name(u).to_string(),
            Entity::Role(r) => h.universe.role_name(r).to_string(),
        };
        println!(
            "  e.g. {} gained ({}, {})",
            who,
            h.universe.action_name(v.perm.action),
            h.universe.object_name(v.perm.object)
        );
    }
    println!("\ndone — store dir was {:?}", dir.path());
}
