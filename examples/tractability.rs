//! §4.2 — tractability, Example 6 and Remark 2, demonstrated.
//!
//! Shows: (1) the weaker set of `¤(r1, r2)` is infinite — the per-depth
//! frontier never empties; (2) the Lemma 1 decision procedure still
//! answers every individual query instantly; (3) the Remark 2 depth bound
//! captures all *useful* weaker privileges on a realistic hierarchy.
//!
//! ```sh
//! cargo run -p adminref-suite --example tractability
//! ```

use adminref_core::prelude::*;
use adminref_workloads::{example6, hospital_fig2};
use std::time::Instant;

fn main() {
    // ----- Example 6: infinitely many weaker privileges ----------------
    let (mut uni, policy, g) = example6();
    println!("policy: (r2, ¤(r1,r2)) ∈ PA — Example 6\n");
    println!("enumerating privileges weaker than ¤(r1, r2):");
    println!("{:>6} {:>10} {:>12}", "depth", "total", "new-at-depth");
    for depth in 1..=8u32 {
        let set = enumerate_weaker(
            &mut uni,
            &policy,
            g,
            EnumerationConfig {
                max_depth: depth,
                max_results: 1_000_000,
                mode: OrderingMode::Extended,
            },
        );
        println!(
            "{:>6} {:>10} {:>12}",
            depth,
            set.privileges.len(),
            set.frontier_by_depth[depth as usize]
        );
    }
    println!("the frontier never dries up: a naive forward search diverges.\n");

    // A few chain elements, rendered:
    let r1 = uni.find_role("r1").unwrap();
    let q1 = uni.grant_role_priv(r1, g);
    let q2 = uni.grant_role_priv(r1, q1);
    let order = PrivilegeOrder::new(&uni, &policy, OrderingMode::Extended);
    for q in [g, q1, q2] {
        let t0 = Instant::now();
        let weaker = order.is_weaker(g, q);
        println!(
            "  ¤(r1,r2) ⊑ {:45} = {:5}  ({:?})",
            priv_to_string(&uni, q, Notation::Paper),
            weaker,
            t0.elapsed()
        );
    }
    drop(order);

    // Strict mode (the literal Definition 8 reading) cannot derive the
    // chain — the ablation the DESIGN.md D1 decision is about.
    let strict = PrivilegeOrder::new(&uni, &policy, OrderingMode::Strict);
    println!(
        "\nstrict mode derives the first chain element: {}",
        strict.is_weaker(g, q1)
    );
    drop(strict);

    // ----- Remark 2 on the hospital ------------------------------------
    let (mut uni, policy) = hospital_fig2();
    let n = remark2_depth(&uni, &policy);
    println!("\nhospital longest RH chain (Remark 2 bound): {n} roles");
    let bob = uni.find_user("bob").unwrap();
    let staff = uni.find_role("staff").unwrap();
    let held = uni.grant_user_role(bob, staff);
    for bound in [n, n + 2, n + 4] {
        let t0 = Instant::now();
        let set = enumerate_weaker(
            &mut uni,
            &policy,
            held,
            EnumerationConfig {
                max_depth: bound,
                max_results: 200_000,
                mode: OrderingMode::Extended,
            },
        );
        println!(
            "  bound {:>2}: {:>6} weaker privileges in {:?} (truncated: {})",
            bound,
            set.privileges.len(),
            t0.elapsed(),
            set.truncated
        );
    }
    println!("\ndeeper bounds only add administrative indirection (Remark 2).");
}
