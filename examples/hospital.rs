//! The paper's hospital, end to end: Figure 1 (Example 1 sessions),
//! Figure 2 (Example 2 delegation), rendered in the policy language.
//!
//! ```sh
//! cargo run -p adminref-suite --example hospital
//! ```

use adminref_core::prelude::*;
use adminref_lang::print_policy;
use adminref_workloads::{hospital_fig1, hospital_fig2};

fn main() {
    // ----- Figure 1 / Example 1 ---------------------------------------
    let (mut uni, policy) = hospital_fig1();
    println!("=== Figure 1 (non-administrative) ===");
    println!("{}", print_policy(&uni, &policy, "hospital_fig1"));

    let diana = uni.find_user("diana").unwrap();
    let nurse = uni.find_role("nurse").unwrap();
    let staff = uni.find_role("staff").unwrap();
    let read_t1 = uni.perm("read", "t1");
    let write_t3 = uni.perm("write", "t3");

    let mut session = Session::new(diana);
    session.activate(&policy, nurse).unwrap();
    println!(
        "diana as nurse:  read t1 = {:5}  write t3 = {}",
        session.check_access(&mut uni, &policy, read_t1),
        session.check_access(&mut uni, &policy, write_t3),
    );
    let mut session = Session::new(diana);
    session.activate(&policy, staff).unwrap();
    println!(
        "diana as staff:  read t1 = {:5}  write t3 = {}",
        session.check_access(&mut uni, &policy, read_t1),
        session.check_access(&mut uni, &policy, write_t3),
    );

    // ----- Figure 2 / Example 2 ---------------------------------------
    let (mut uni, mut policy) = hospital_fig2();
    println!("\n=== Figure 2 (Alice's administrative policy) ===");
    println!("{}", print_policy(&uni, &policy, "hospital_fig2"));

    let jane = uni.find_user("jane").unwrap();
    let bob = uni.find_user("bob").unwrap();
    let joe = uni.find_user("joe").unwrap();
    let staff = uni.find_role("staff").unwrap();
    let nurse = uni.find_role("nurse").unwrap();

    println!("Jane (HR) appoints new staff and nurses without recurring to Alice:");
    let queue: CommandQueue = [
        Command::grant(jane, Edge::UserRole(bob, staff)),
        Command::grant(jane, Edge::UserRole(joe, nurse)),
        Command::revoke(jane, Edge::UserRole(joe, nurse)),
        // Not delegated: revoking bob.
        Command::revoke(jane, Edge::UserRole(bob, staff)),
    ]
    .into_iter()
    .collect();
    let trace = run(&mut uni, &mut policy, &queue, AuthMode::Explicit);
    for step in &trace.steps {
        println!(
            "  {:55} -> {}",
            command_to_string(&uni, &step.command, Notation::Ascii),
            if step.outcome.executed() {
                "executed"
            } else {
                "REFUSED (Definition 5, third case)"
            }
        );
    }
    println!(
        "\nfinal UA contains bob->staff: {}",
        policy.contains_edge(Edge::UserRole(bob, staff))
    );
    let stats = adminref_core::analysis::stats(&uni, &policy);
    println!(
        "policy stats: {} users, {} roles, {} edges, longest RH chain {}",
        stats.users,
        stats.roles,
        stats.ua_edges + stats.rh_edges + stats.pa_edges,
        stats.longest_chain
    );
}
