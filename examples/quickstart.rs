//! Quickstart: build an administrative policy, decide a privilege
//! ordering, and check a refinement — the paper's contribution in ~60
//! lines.
//!
//! ```sh
//! cargo run -p adminref-suite --example quickstart
//! ```

use adminref_core::prelude::*;

fn main() {
    // A tiny hospital: jane (HR) may put bob into `staff`; staff reaches
    // dbusr2 which can write table t3.
    let mut builder = PolicyBuilder::new()
        .assign("jane", "hr")
        .declare_user("bob")
        .inherit("staff", "dbusr2")
        .permit("dbusr2", "write", "t3")
        .permit("staff", "prnt", "color");
    let (bob, staff, dbusr2) = {
        let u = builder.universe_mut();
        (
            u.find_user("bob").unwrap(),
            u.find_role("staff").unwrap(),
            u.find_role("dbusr2").unwrap(),
        )
    };
    let held = builder.universe_mut().grant_user_role(bob, staff);
    let (mut uni, policy) = builder.assign_priv("hr", held).finish();

    println!(
        "policy:\n{}",
        policy_to_string(&uni, &policy, Notation::Ascii)
    );

    // The privilege ordering (Definition 8): ¤(bob, staff) ⊑ ¤(bob, dbusr2)
    // because staff →φ dbusr2.
    let weaker = uni.grant_user_role(bob, dbusr2);
    let order = PrivilegeOrder::new(&uni, &policy, OrderingMode::Extended);
    println!(
        "{}  ⊑  {}  ?  {}",
        priv_to_string(&uni, held, Notation::Paper),
        priv_to_string(&uni, weaker, Notation::Paper),
        order.is_weaker(held, weaker)
    );
    println!(
        "derivation: {}",
        order.derive(held, weaker).unwrap().render(&uni)
    );
    drop(order);

    // Theorem 1: replacing the held privilege by the weaker one is an
    // administrative refinement — checked here by bounded simulation.
    let hr = uni.find_role("hr").unwrap();
    let psi = weaken_assignment(&policy, (hr, held), weaker);
    let outcome = check_admin_refinement(&uni, &policy, &psi, SimulationConfig::default());
    println!(
        "weakened policy refines the original (bounded check): {:?}",
        outcome.holds()
    );

    // Executing the weaker command directly, under ordered authorization:
    let jane = uni.find_user("jane").unwrap();
    let cmd = Command::grant(jane, Edge::UserRole(bob, dbusr2));
    let mut live = policy.clone();
    let out = step(
        &mut uni,
        &mut live,
        &cmd,
        AuthMode::Ordered(OrderingMode::Extended),
    );
    println!(
        "ordered-mode execution of {}: executed={}",
        command_to_string(&uni, &cmd, Notation::Ascii),
        out.executed()
    );
    assert!(live.contains_edge(Edge::UserRole(bob, dbusr2)));
    println!("bob is now in dbusr2 — and only dbusr2.");
}
