//! Example 4 — the flexworker Bob. Jane can only hope Bob applies least
//! privilege… unless the monitor runs the paper's privilege ordering, in
//! which case she applies it *for* him.
//!
//! ```sh
//! cargo run -p adminref-suite --example flexworker
//! ```

use adminref_core::prelude::*;
use adminref_monitor::{Decision, MonitorConfig, ReferenceMonitor};
use adminref_workloads::hospital_fig2;

fn main() {
    let (uni, policy) = hospital_fig2();
    let jane = uni.find_user("jane").unwrap();
    let bob = uni.find_user("bob").unwrap();
    let staff = uni.find_role("staff").unwrap();
    let dbusr2 = uni.find_role("dbusr2").unwrap();

    println!("Bob arrives to put order in the health-record database.");
    println!("He needs dbusr2 privileges. Jane (HR) holds ¤(bob, staff).\n");

    // --- Prior-work monitor: explicit privileges only -----------------
    let explicit = ReferenceMonitor::new(
        uni.clone(),
        policy.clone(),
        MonitorConfig {
            auth_mode: AuthMode::Explicit,
            ..MonitorConfig::default()
        },
    );
    let direct = Command::grant(jane, Edge::UserRole(bob, dbusr2));
    let out = explicit.submit(&direct).unwrap();
    println!(
        "explicit monitor, {}: {}",
        command_to_string(&uni, &direct, Notation::Ascii),
        if out.executed() {
            "executed"
        } else {
            "REFUSED"
        }
    );
    println!("Jane's only option is the dashed edge of Figure 3:");
    let dashed = Command::grant(jane, Edge::UserRole(bob, staff));
    explicit.submit(&dashed).unwrap();
    let (mut uni_e, policy_e) = explicit.snapshot();
    let mut bob_session = Session::new(bob);
    bob_session.activate(&policy_e, staff).unwrap();
    let read_t1 = uni_e.perm("read", "t1");
    println!(
        "  bob activates staff and can read medical table t1: {} — excessive!\n",
        bob_session.check_access(&mut uni_e, &policy_e, read_t1)
    );

    // --- This paper's monitor: ordered authorization ------------------
    let ordered = ReferenceMonitor::new(
        uni.clone(),
        policy.clone(),
        MonitorConfig {
            auth_mode: AuthMode::Ordered(OrderingMode::Extended),
            ..MonitorConfig::default()
        },
    );
    let out = ordered.submit(&direct).unwrap();
    println!(
        "ordered monitor, {}: {}",
        command_to_string(&uni, &direct, Notation::Ascii),
        if out.executed() {
            "executed (dotted edge)"
        } else {
            "refused"
        }
    );
    // The monitor interned the target term in its own universe; render
    // audit events against its snapshot.
    let (mut uni_o, policy_o) = ordered.snapshot();
    for event in ordered.audit_events() {
        if let Decision::Executed { held, target } = event.decision {
            println!(
                "  audit: justified by held {} for target {}",
                priv_to_string(&uni_o, held, Notation::Paper),
                priv_to_string(&uni_o, target, Notation::Paper)
            );
        }
    }
    let mut bob_session = Session::new(bob);
    bob_session.activate(&policy_o, dbusr2).unwrap();
    let write_t3 = uni_o.perm("write", "t3");
    let read_t1 = uni_o.perm("read", "t1");
    println!(
        "  bob activates dbusr2: write t3 = {}, read t1 = {}",
        bob_session.check_access(&mut uni_o, &policy_o, write_t3),
        bob_session.check_access(&mut uni_o, &policy_o, read_t1),
    );
    let nurse = uni_o.find_role("nurse").unwrap();
    println!(
        "  bob tries to activate nurse: {:?}",
        Session::new(bob).activate(&policy_o, nurse).err().unwrap()
    );

    // The ordered result refines the explicit result (Theorem 1).
    println!(
        "\nordered-result is a refinement of explicit-result: {}",
        refines(&uni, &policy_e, &policy_o)
    );
    println!(
        "explicit-result is NOT a refinement of ordered-result: {}",
        !refines(&uni, &policy_o, &policy_e)
    );
}
