//! Durability and concurrency integration: monitors over stores, crash
//! recovery mid-workload, compaction under load, and concurrent access.

use adminref_core::ids::RoleId;
use adminref_core::prelude::*;
use adminref_monitor::{MonitorConfig, ReferenceMonitor};
use adminref_store::{PolicyStore, TempDir};
use adminref_workloads::{
    generate_queue, hospital_fig2, inject_admin_privs, layered, populate_perms, populate_users,
    AdminSpec, LayeredSpec, QueueSpec,
};

fn workload(seed: u64) -> (Universe, Policy, Vec<UserId>, Vec<RoleId>) {
    let mut h = layered(LayeredSpec {
        layers: 3,
        width: 4,
        edge_prob: 0.4,
        seed,
    });
    let users = populate_users(&mut h, 6, 2, seed);
    populate_perms(&mut h, 2, 8, seed);
    let roles: Vec<RoleId> = h.layers.iter().flatten().copied().collect();
    inject_admin_privs(
        &mut h.universe,
        &mut h.policy,
        &users,
        &roles,
        AdminSpec {
            count: 10,
            max_depth: 2,
            grant_ratio: 0.6,
            seed,
        },
    );
    (h.universe, h.policy, users, roles)
}

#[test]
fn replayed_store_matches_live_state() {
    let (uni, policy, users, roles) = workload(1);
    let queue = generate_queue(
        &uni,
        &policy,
        &users,
        &roles,
        QueueSpec {
            len: 200,
            valid_ratio: 0.6,
            seed: 1,
        },
    );
    let dir = TempDir::new("replay").unwrap();
    let live_policy;
    {
        let store = PolicyStore::create(dir.path(), uni, policy, AuthMode::Explicit).unwrap();
        let monitor = ReferenceMonitor::with_store(store, MonitorConfig::default());
        monitor.submit_queue(&queue).unwrap();
        live_policy = monitor.snapshot().1;
    }
    let (store, report) = PolicyStore::open(dir.path(), AuthMode::Explicit).unwrap();
    assert_eq!(report.replayed, 200);
    assert_eq!(report.divergent, 0);
    assert_eq!(store.policy(), &live_policy, "replay reproduces the state");
}

#[test]
fn compaction_mid_workload_preserves_state() {
    let (uni, policy, users, roles) = workload(2);
    let queue = generate_queue(
        &uni,
        &policy,
        &users,
        &roles,
        QueueSpec {
            len: 100,
            valid_ratio: 0.7,
            seed: 2,
        },
    );
    let dir = TempDir::new("compact-mid").unwrap();
    let mut store = PolicyStore::create(dir.path(), uni, policy, AuthMode::Explicit).unwrap();
    let cmds: Vec<Command> = queue.iter().copied().collect();
    for (i, cmd) in cmds.iter().enumerate() {
        store.execute(cmd).unwrap();
        if i % 25 == 24 {
            store.compact().unwrap();
        }
    }
    let live = store.policy().clone();
    drop(store);
    let (store, report) = PolicyStore::open(dir.path(), AuthMode::Explicit).unwrap();
    assert!(report.replayed < 100, "compaction folded most of the log");
    assert_eq!(store.policy(), &live);
}

#[test]
fn recovery_after_partial_write_is_a_prefix_state() {
    let (uni, policy, users, roles) = workload(3);
    let queue = generate_queue(
        &uni,
        &policy,
        &users,
        &roles,
        QueueSpec {
            len: 50,
            valid_ratio: 0.8,
            seed: 3,
        },
    );
    let dir = TempDir::new("crash-mid").unwrap();
    let mut states: Vec<Policy> = Vec::new();
    {
        let mut store =
            PolicyStore::create(dir.path(), uni, policy.clone(), AuthMode::Explicit).unwrap();
        states.push(store.policy().clone());
        for cmd in queue.iter() {
            store.execute(cmd).unwrap();
            states.push(store.policy().clone());
        }
        store.sync().unwrap();
    }
    // Chop random amounts off the log tail and verify the recovered state
    // is always one of the prefix states.
    let log_path = dir.path().join("commands.log");
    let full = std::fs::read(&log_path).unwrap();
    for cut in [1usize, 3, 7, 15, full.len() / 2] {
        if cut >= full.len() {
            continue;
        }
        std::fs::write(&log_path, &full[..full.len() - cut]).unwrap();
        let (store, report) = PolicyStore::open(dir.path(), AuthMode::Explicit).unwrap();
        assert!(
            states.iter().any(|s| s == store.policy()),
            "cut {cut}: recovered state must be a prefix state \
             (replayed {})",
            report.replayed
        );
    }
}

#[test]
fn concurrent_monitor_sessions_and_admin() {
    let (uni, policy) = hospital_fig2();
    let jane = uni.find_user("jane").unwrap();
    let bob = uni.find_user("bob").unwrap();
    let diana = uni.find_user("diana").unwrap();
    let staff = uni.find_role("staff").unwrap();
    let nurse = uni.find_role("nurse").unwrap();
    let mut uni_probe = uni.clone();
    let read_t1 = uni_probe.perm("read", "t1");
    let monitor = ReferenceMonitor::new(
        uni,
        policy,
        MonitorConfig {
            auth_mode: AuthMode::Ordered(OrderingMode::Extended),
            audit_capacity: 100_000,
            ..MonitorConfig::default()
        },
    );
    let sid = monitor.create_session(diana);
    monitor.activate_role(sid, nurse).unwrap();
    crossbeam::scope(|scope| {
        // Admin thread: churn bob's membership.
        scope.spawn(|_| {
            for _ in 0..100 {
                monitor
                    .submit(&Command::grant(jane, Edge::UserRole(bob, staff)))
                    .unwrap();
                monitor
                    .submit(&Command::revoke(jane, Edge::UserRole(bob, staff)))
                    .unwrap();
            }
        });
        // Session threads: diana keeps reading.
        for _ in 0..3 {
            scope.spawn(|_| {
                for _ in 0..300 {
                    assert!(monitor.check_access(sid, read_t1).unwrap());
                }
            });
        }
        // Analyst thread: snapshots stay internally consistent.
        scope.spawn(|_| {
            for _ in 0..50 {
                let (u, p) = monitor.snapshot();
                assert!(adminref_core::analysis::validate(&u, &p).is_ok());
            }
        });
    })
    .unwrap();
    // All 200 admin commands were processed and audited.
    assert_eq!(monitor.audit_events().len(), 200);
}

#[test]
fn ordered_and_explicit_stores_diverge_observably() {
    // The same queue produces a *refinement* under ordered mode relative
    // to granting held privileges verbatim — persisted and recovered.
    let (uni, policy) = hospital_fig2();
    let jane = uni.find_user("jane").unwrap();
    let bob = uni.find_user("bob").unwrap();
    let dbusr2 = uni.find_role("dbusr2").unwrap();
    let staff = uni.find_role("staff").unwrap();
    let weaker_cmd = Command::grant(jane, Edge::UserRole(bob, dbusr2));
    let held_cmd = Command::grant(jane, Edge::UserRole(bob, staff));

    let dir_ord = TempDir::new("ord").unwrap();
    let mode = AuthMode::Ordered(OrderingMode::Extended);
    let mut store_ord =
        PolicyStore::create(dir_ord.path(), uni.clone(), policy.clone(), mode).unwrap();
    assert!(store_ord.execute(&weaker_cmd).unwrap().executed());

    let dir_exp = TempDir::new("exp").unwrap();
    let mut store_exp = PolicyStore::create(
        dir_exp.path(),
        uni.clone(),
        policy.clone(),
        AuthMode::Explicit,
    )
    .unwrap();
    assert!(store_exp.execute(&held_cmd).unwrap().executed());

    // ordered-result ⊑ explicit-result (Theorem 1 in action, durably).
    assert!(refines(&uni, store_exp.policy(), store_ord.policy()));
    assert!(!refines(&uni, store_ord.policy(), store_exp.policy()));
}
