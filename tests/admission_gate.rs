//! Differential and end-to-end coverage for publish-time admission
//! control (`adminref_core::admission`).
//!
//! * The **interval invariant**: `Φ⁻ ⊆ edges(φ) ⊆ Φ⁺` for every policy
//!   `φ` an explicit-state BFS over authorized commands can reach, in
//!   both authorization modes. The BFS is the executable ground truth
//!   the closed-form interval is pinned to.
//! * **Gate ⇔ refusal**: the monitor refuses a batch exactly when
//!   statically evaluating the declared constraints against the
//!   simulated candidate state yields findings — and a refusal leaves
//!   epoch, audit log, WAL, and published policy untouched.
//! * The **socket story**: over a real Unix socket, a SoD-violating
//!   batch is refused with the typed `ServiceError::Admission` before
//!   publication while clean batches keep applying.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use adminref_core::prelude::*;
use adminref_monitor::{MonitorConfig, MonitorError, ReferenceMonitor};
use adminref_service::{
    Daemon, MonitorService, PolicyService, ServiceError, WireClient, WireListener,
};
use adminref_store::{PolicyStore, TempDir};
use proptest::prelude::*;

const USERS: usize = 3;
const ROLES: usize = 4;

/// Blueprint for one random policy (index lists shrink well); the same
/// shape the lint differentials use, kept small enough for the BFS.
#[derive(Clone, Debug)]
struct PolicySpec {
    ua: Vec<(u8, u8)>,
    rh: Vec<(u8, u8)>,
    /// (role, privilege blueprint)
    pa: Vec<(u8, PrivSpec)>,
}

#[derive(Clone, Debug)]
enum PrivSpec {
    Perm(u8),
    GrantUserRole(u8, u8),
    GrantRoleRole(u8, u8),
    RevokeUserRole(u8, u8),
    RevokeRoleRole(u8, u8),
}

fn priv_spec() -> BoxedStrategy<PrivSpec> {
    prop_oneof![
        (0u8..3).prop_map(PrivSpec::Perm),
        ((0u8..USERS as u8), (0u8..ROLES as u8)).prop_map(|(u, r)| PrivSpec::GrantUserRole(u, r)),
        ((0u8..ROLES as u8), (0u8..ROLES as u8)).prop_map(|(a, b)| PrivSpec::GrantRoleRole(a, b)),
        ((0u8..USERS as u8), (0u8..ROLES as u8)).prop_map(|(u, r)| PrivSpec::RevokeUserRole(u, r)),
        ((0u8..ROLES as u8), (0u8..ROLES as u8)).prop_map(|(a, b)| PrivSpec::RevokeRoleRole(a, b)),
    ]
    .boxed()
}

fn policy_spec() -> impl Strategy<Value = PolicySpec> {
    (
        prop::collection::vec(((0u8..USERS as u8), (0u8..ROLES as u8)), 0..4),
        prop::collection::vec(((0u8..ROLES as u8), (0u8..ROLES as u8)), 0..4),
        prop::collection::vec(((0u8..ROLES as u8), priv_spec()), 0..6),
    )
        .prop_map(|(ua, rh, pa)| PolicySpec { ua, rh, pa })
}

fn build(spec: &PolicySpec) -> (Universe, Policy, Vec<UserId>, Vec<RoleId>) {
    let mut uni = Universe::new();
    let users: Vec<UserId> = (0..USERS).map(|i| uni.user(&format!("u{i}"))).collect();
    let roles: Vec<RoleId> = (0..ROLES).map(|i| uni.role(&format!("r{i}"))).collect();
    let mut policy = Policy::new(&uni);
    for &(u, r) in &spec.ua {
        policy.add_edge(Edge::UserRole(users[u as usize], roles[r as usize]));
    }
    for &(a, b) in &spec.rh {
        policy.add_edge(Edge::RoleRole(roles[a as usize], roles[b as usize]));
    }
    for (r, ps) in &spec.pa {
        let p = match ps {
            PrivSpec::Perm(i) => {
                let perm = uni.perm(["read", "write", "prnt"][*i as usize % 3], "obj");
                uni.priv_perm(perm)
            }
            PrivSpec::GrantUserRole(u, r) => {
                uni.grant_user_role(users[*u as usize], roles[*r as usize])
            }
            PrivSpec::GrantRoleRole(a, b) => {
                uni.grant_role_role(roles[*a as usize], roles[*b as usize])
            }
            PrivSpec::RevokeUserRole(u, r) => {
                uni.revoke_user_role(users[*u as usize], roles[*r as usize])
            }
            PrivSpec::RevokeRoleRole(a, b) => {
                let e = Edge::RoleRole(roles[*a as usize], roles[*b as usize]);
                uni.priv_revoke(e)
            }
        };
        policy.add_edge(Edge::RolePriv(roles[*r as usize], p));
    }
    (uni, policy, users, roles)
}

/// Every edge some interned grant or revoke term mentions: exactly the
/// edges any authorized command can add or remove.
fn actionable_edges(uni: &Universe) -> Vec<Edge> {
    let mut set = BTreeSet::new();
    for i in 0..uni.term_count() {
        match uni.term(PrivId::from_index(i)) {
            PrivTerm::Grant(e) | PrivTerm::Revoke(e) => {
                set.insert(e);
            }
            _ => {}
        }
    }
    set.into_iter().collect()
}

/// Explicit-state BFS over authorized commands: the distinct edge sets
/// of every policy reachable from `root` within `max_depth` steps.
/// Ground truth for the interval — no abstraction, just `step`.
fn reachable_edge_sets(
    uni: &mut Universe,
    root: &Policy,
    mode: AuthMode,
    max_depth: usize,
    max_states: usize,
) -> Vec<BTreeSet<Edge>> {
    let actors: Vec<UserId> = (0..uni.user_count()).map(UserId::from_index).collect();
    let targets = actionable_edges(uni);
    let mut commands = Vec::with_capacity(actors.len() * targets.len() * 2);
    for &u in &actors {
        for &e in &targets {
            commands.push(Command::grant(u, e));
            commands.push(Command::revoke(u, e));
        }
    }
    let fingerprint = |p: &Policy| p.edges().collect::<BTreeSet<Edge>>();
    let mut seen: BTreeSet<BTreeSet<Edge>> = BTreeSet::new();
    seen.insert(fingerprint(root));
    let mut frontier = vec![root.clone()];
    for _ in 0..max_depth {
        let mut next = Vec::new();
        for policy in &frontier {
            for cmd in &commands {
                let mut cand = policy.clone();
                if !step(uni, &mut cand, cmd, mode).executed() {
                    continue;
                }
                if seen.insert(fingerprint(&cand)) {
                    next.push(cand);
                }
                if seen.len() >= max_states {
                    return seen.into_iter().collect();
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    seen.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The interval invariant, differentially against the BFS in both
    /// authorization modes: every frozen edge is in every reachable
    /// policy, and every reachable policy stays inside `Φ⁺`.
    #[test]
    fn interval_bounds_every_reachable_policy(spec in policy_spec()) {
        for mode in [AuthMode::Explicit, AuthMode::Ordered(OrderingMode::Extended)] {
            let (uni, policy, _, _) = build(&spec);
            let interval = Interval::from_policy(&uni, &policy, mode);
            let mut bfs_uni = uni.clone();
            let sets = reachable_edge_sets(&mut bfs_uni, &policy, mode, 3, 400);
            for set in &sets {
                for &e in &interval.frozen {
                    prop_assert!(
                        set.contains(&e),
                        "frozen edge {e:?} missing from a reachable policy ({mode:?})"
                    );
                }
                for &e in set {
                    prop_assert!(
                        interval.potential.policy.contains_edge(e),
                        "reachable edge {e:?} outside the may-closure ({mode:?})"
                    );
                }
            }
        }
    }

    /// Gate ⇔ refusal: the monitor refuses exactly when the static
    /// evaluation of the constraints against the simulated candidate
    /// state has findings, and a refusal mutates nothing — same epoch,
    /// same audit length, same published policy.
    #[test]
    fn monitor_gate_matches_static_evaluation(
        spec in policy_spec(),
        pair in ((0u8..ROLES as u8), (0u8..ROLES as u8)),
        batch in prop::collection::vec(
            ((0u8..USERS as u8), 0u8..2, 0u8..32), 1..5),
    ) {
        let (uni, policy, users, roles) = build(&spec);
        let targets = actionable_edges(&uni);
        if targets.is_empty() {
            // Nothing any command can touch; the gate is trivially
            // clean and there is no batch to build.
            return;
        }
        let commands: Vec<Command> = batch
            .iter()
            .map(|&(u, grant, t)| {
                let edge = targets[t as usize % targets.len()];
                let actor = users[u as usize];
                if grant == 1 {
                    Command::grant(actor, edge)
                } else {
                    Command::revoke(actor, edge)
                }
            })
            .collect();
        let monitor = ReferenceMonitor::new(uni.clone(), policy.clone(), MonitorConfig::default());
        monitor
            .set_constraints(ConstraintSet {
                sod_pairs: vec![(roles[pair.0 as usize], roles[pair.1 as usize])],
                deny_level: None,
                frozen_edges: Vec::new(),
            })
            .expect("in-memory set_constraints");
        let constraints = (*monitor.constraints()).clone();
        let (cand_uni, cand_policy, _) =
            simulate_batch(&uni, &policy, &commands, AuthMode::Explicit);
        let expected =
            evaluate_constraints(&cand_uni, &cand_policy, &constraints, AuthMode::Explicit);
        let epoch_before = monitor.version();
        let audit_before = monitor.audit_len();
        match monitor.submit_batch(&commands) {
            Ok(_) => prop_assert!(
                expected.is_empty(),
                "monitor published a batch the static gate finds dirty: {expected:?}"
            ),
            Err(MonitorError::Admission(report)) => {
                prop_assert_eq!(&report.findings, &expected);
                prop_assert_eq!(monitor.version(), epoch_before, "epoch moved on refusal");
                prop_assert_eq!(monitor.audit_len(), audit_before, "audit grew on refusal");
                let (_, live) = monitor.snapshot();
                prop_assert_eq!(&live, &policy, "published policy changed on refusal");
            }
            Err(other) => prop_assert!(false, "unexpected monitor error: {other}"),
        }
    }
}

/// A deliberately tiny arena: `admin` can put `alice`/`bob` into `pay`
/// or `audit`; declaring `(pay, audit)` as a SoD pair makes "one user
/// in both" statically refusable.
fn sod_arena() -> (Universe, Policy, UserId) {
    let mut uni = Universe::new();
    let admin = uni.user("admin");
    let admins = uni.role("admins");
    let pay = uni.role("pay");
    let audit = uni.role("audit");
    let mut policy = Policy::new(&uni);
    policy.add_edge(Edge::UserRole(admin, admins));
    for user in ["alice", "bob"] {
        let u = uni.user(user);
        for role in [pay, audit] {
            let g = uni.grant_user_role(u, role);
            let v = uni.revoke_user_role(u, role);
            policy.add_edge(Edge::RolePriv(admins, g));
            policy.add_edge(Edge::RolePriv(admins, v));
        }
    }
    (uni, policy, admin)
}

/// On a durable store, a refused batch leaves the WAL byte-for-byte
/// unchanged and the constraint set (plus the clean state) survives
/// reopen — the replayed store never sees a constraint-dirty epoch.
#[test]
fn refusal_leaves_wal_untouched_and_constraints_survive_reopen() {
    let dir = TempDir::new("admission-wal").unwrap();
    let (uni, policy, admin) = sod_arena();
    let alice = uni.find_user("alice").unwrap();
    let bob = uni.find_user("bob").unwrap();
    let pay = uni.find_role("pay").unwrap();
    let audit = uni.find_role("audit").unwrap();
    let constraints = ConstraintSet {
        sod_pairs: vec![(pay, audit)],
        deny_level: None,
        frozen_edges: Vec::new(),
    };
    let wal_path = dir.path().join("commands.log");
    {
        let store =
            PolicyStore::create(dir.path(), uni.clone(), policy.clone(), AuthMode::Explicit)
                .unwrap();
        let monitor = ReferenceMonitor::with_store(store, MonitorConfig::default());
        monitor.set_constraints(constraints.clone()).unwrap();
        let clean = vec![Command::grant(admin, Edge::UserRole(alice, pay))];
        monitor.submit_batch(&clean).expect("clean batch publishes");
        let wal_after_clean = std::fs::metadata(&wal_path).unwrap().len();
        let epoch = monitor.version();

        let violating = vec![Command::grant(admin, Edge::UserRole(alice, audit))];
        match monitor.submit_batch(&violating) {
            Err(MonitorError::Admission(report)) => {
                assert!(report.refused());
                assert_eq!(report.constraints_checked, 1);
            }
            other => panic!("expected admission refusal, got {other:?}"),
        }
        assert_eq!(monitor.version(), epoch, "epoch moved on refusal");
        assert_eq!(
            std::fs::metadata(&wal_path).unwrap().len(),
            wal_after_clean,
            "WAL grew on refusal"
        );
        assert_eq!(monitor.admission_counts(), (2, 1));
        monitor.sync().unwrap();
    }
    let (store, _) = PolicyStore::open(dir.path(), AuthMode::Explicit).unwrap();
    assert_eq!(store.constraints(), &constraints, "constraints replay");
    assert!(store.policy().contains_edge(Edge::UserRole(alice, pay)));
    assert!(!store.policy().contains_edge(Edge::UserRole(alice, audit)));
    // The reopened store keeps enforcing: the same violating command is
    // as refusable as before (evaluated statically, no monitor needed).
    let (cand_uni, cand_policy, _) = simulate_batch(
        store.universe(),
        store.policy(),
        &[Command::grant(admin, Edge::UserRole(alice, audit))],
        AuthMode::Explicit,
    );
    assert!(!evaluate_constraints(
        &cand_uni,
        &cand_policy,
        store.constraints(),
        AuthMode::Explicit
    )
    .is_empty());
    let _ = bob;
}

/// The acceptance scenario over a real Unix socket: declare a SoD pair
/// through the wire protocol, watch a violating batch bounce with the
/// typed error and an unchanged epoch, and see clean batches (including
/// ones racing the refused client) keep publishing.
#[test]
fn socket_refuses_sod_violating_batch_before_publication() {
    let dir = TempDir::new("admission-e2e").unwrap();
    let (uni, policy, admin) = sod_arena();
    let alice = uni.find_user("alice").unwrap();
    let bob = uni.find_user("bob").unwrap();
    let pay = uni.find_role("pay").unwrap();
    let audit = uni.find_role("audit").unwrap();
    let service: Arc<dyn PolicyService> = Arc::new(
        MonitorService::in_memory(uni.clone(), policy, MonitorConfig::default())
            .with_write_gather(Duration::from_micros(50)),
    );
    let path = dir.path().join("adminrefd.sock");
    let listener = WireListener::unix(&path).expect("bind unix socket");
    let daemon = Daemon::spawn(service, uni.clone(), listener).expect("spawn daemon");
    let client = WireClient::connect_unix(&path).expect("connect");

    let echoed = client
        .set_constraints(ConstraintSet {
            sod_pairs: vec![(audit, pay)],
            deny_level: None,
            frozen_edges: Vec::new(),
        })
        .expect("declare constraints");
    // The server normalizes: the pair comes back oriented low-id first.
    assert_eq!(echoed.sod_pairs, vec![(pay.min(audit), pay.max(audit))]);
    assert_eq!(client.get_constraints().expect("read back"), echoed);

    let epoch0 = client.version().expect("version");
    let violating = vec![
        Command::grant(admin, Edge::UserRole(alice, pay)),
        Command::grant(admin, Edge::UserRole(alice, audit)),
    ];
    // Pre-flight: the analyze verb sees the refusal without publishing.
    let impact = client.analyze_batch(violating.clone()).expect("analyze");
    assert!(impact.refused(), "analysis must flag the violating batch");
    assert_eq!(client.version().expect("version"), epoch0);

    // A clean batch racing the violating one: the refusal must not
    // poison the coalesced commit group.
    let racer = WireClient::connect_unix(&path).expect("connect racer");
    let clean = vec![Command::grant(admin, Edge::UserRole(bob, pay))];
    let handle = std::thread::spawn(move || racer.submit(clean));
    match client.submit(violating) {
        Err(ServiceError::Admission(report)) => {
            assert!(report.refused());
            assert!(
                report
                    .findings
                    .iter()
                    .any(|f| f.kind == FindingKind::SodConflict),
                "refusal must name the SoD conflict: {:?}",
                report.findings
            );
        }
        other => panic!("expected typed admission refusal, got {other:?}"),
    }
    let raced = handle.join().unwrap().expect("clean batch applies");
    assert!(raced.iter().all(|o| o.executed()));

    // The violating batch published nothing; the clean one did.
    let epoch1 = client.version().expect("version");
    assert_eq!(epoch1, epoch0 + 1, "exactly the clean batch published");
    assert!(
        client
            .submit(vec![Command::grant(admin, Edge::UserRole(bob, audit))])
            .is_err(),
        "bob in both roles must now be refusable too"
    );
    assert_eq!(client.version().expect("version"), epoch1);
    drop(client);
    daemon.shutdown();
}
