//! End-to-end reproduction of every figure and worked example in the
//! paper (EXPERIMENTS.md entries E1–E7).

use adminref_core::prelude::*;
use adminref_monitor::{Decision, MonitorConfig, ReferenceMonitor};
use adminref_workloads::{example6, hospital_fig1, hospital_fig2, hospital_with_nested_delegation};

/// E1/E2 — Figure 1 + Example 1: Diana's two sessions.
#[test]
fn example1_sessions_on_figure1() {
    let (mut uni, policy) = hospital_fig1();
    let diana = uni.find_user("diana").unwrap();
    let nurse = uni.find_role("nurse").unwrap();
    let staff = uni.find_role("staff").unwrap();
    let read_t1 = uni.perm("read", "t1");
    let read_t2 = uni.perm("read", "t2");
    let write_t3 = uni.perm("write", "t3");

    // “The employee Diana can activate the role nurse or the role staff.”
    let mut session = Session::new(diana);
    session.activate(&policy, nurse).unwrap();
    // “In the former case she can read the tables t1 and t2 …”
    assert!(session.check_access(&mut uni, &policy, read_t1));
    assert!(session.check_access(&mut uni, &policy, read_t2));
    assert!(!session.check_access(&mut uni, &policy, write_t3));

    // “… while in the latter case she can also write the table t3.”
    let mut session = Session::new(diana);
    session.activate(&policy, staff).unwrap();
    assert!(session.check_access(&mut uni, &policy, read_t1));
    assert!(session.check_access(&mut uni, &policy, write_t3));
}

/// E3 — Figure 2 + Example 2: HR appoints staff and nurses without
/// recurring to Alice; dbusr3 holds the protective revocation privilege.
#[test]
fn example2_hr_delegation_on_figure2() {
    let (mut uni, mut policy) = hospital_fig2();
    let jane = uni.find_user("jane").unwrap();
    let bob = uni.find_user("bob").unwrap();
    let joe = uni.find_user("joe").unwrap();
    let staff = uni.find_role("staff").unwrap();
    let nurse = uni.find_role("nurse").unwrap();

    // Jane (HR) appoints Bob to staff and Joe to nurse.
    let queue: CommandQueue = [
        Command::grant(jane, Edge::UserRole(bob, staff)),
        Command::grant(jane, Edge::UserRole(joe, nurse)),
    ]
    .into_iter()
    .collect();
    let trace = run(&mut uni, &mut policy, &queue, AuthMode::Explicit);
    assert_eq!(trace.executed_count(), 2);
    assert!(policy.contains_edge(Edge::UserRole(bob, staff)));
    assert!(policy.contains_edge(Edge::UserRole(joe, nurse)));

    // Jane may also revoke Joe again (HR holds ♦(joe, nurse)) …
    let out = step(
        &mut uni,
        &mut policy,
        &Command::revoke(jane, Edge::UserRole(joe, nurse)),
        AuthMode::Explicit,
    );
    assert!(out.executed());
    // … but not Bob (no ♦(bob, staff) was delegated).
    let out = step(
        &mut uni,
        &mut policy,
        &Command::revoke(jane, Edge::UserRole(bob, staff)),
        AuthMode::Explicit,
    );
    assert!(!out.executed());

    // Alice reaches everything HR can do, via so → hr.
    let alice = uni.find_user("alice").unwrap();
    let out = step(
        &mut uni,
        &mut policy,
        &Command::grant(alice, Edge::UserRole(joe, nurse)),
        AuthMode::Explicit,
    );
    assert!(out.executed());

    // dbusr3 holds ♦(dbusr2, dbusr1): any member could sever dbusr2's
    // access to the record tables. Nobody is assigned to dbusr3, so the
    // command is refused for, say, diana.
    let diana = uni.find_user("diana").unwrap();
    let dbusr2 = uni.find_role("dbusr2").unwrap();
    let dbusr1 = uni.find_role("dbusr1").unwrap();
    let out = step(
        &mut uni,
        &mut policy,
        &Command::revoke(diana, Edge::RoleRole(dbusr2, dbusr1)),
        AuthMode::Explicit,
    );
    assert!(!out.executed());
}

/// E4 — Example 3: the three non-administrative refinement cases.
#[test]
fn example3_nonadministrative_refinement() {
    let (uni, policy) = hospital_fig1();
    let diana = uni.find_user("diana").unwrap();
    let staff = uni.find_role("staff").unwrap();
    let nurse = uni.find_role("nurse").unwrap();
    let dbusr1 = uni.find_role("dbusr1").unwrap();
    let dbusr2 = uni.find_role("dbusr2").unwrap();

    // (a) Removing any edge refines, e.g. removing Diana from staff.
    let mut psi = policy.clone();
    psi.remove_edge(Edge::UserRole(diana, staff));
    assert!(refines(&uni, &policy, &psi));

    // (b) Rearranging Diana from staff to nurse refines.
    let mut psi = policy.clone();
    psi.remove_edge(Edge::UserRole(diana, staff));
    psi.add_edge(Edge::UserRole(diana, nurse));
    assert!(refines(&uni, &policy, &psi));

    // (c) Rearranging nurse→dbusr1 into nurse→dbusr2 does NOT refine:
    // “nurses get more privileges”.
    let mut psi = policy.clone();
    psi.remove_edge(Edge::RoleRole(nurse, dbusr1));
    psi.add_edge(Edge::RoleRole(nurse, dbusr2));
    assert!(!refines(&uni, &policy, &psi));
    let violations = refinement_violations(&uni, &policy, &psi);
    assert!(violations.iter().any(|v| v.entity == Entity::Role(nurse)));
}

/// E5 — Figure 3 + Example 4: the flexworker. Jane holds ¤(bob, staff);
/// under ordered authorization she assigns Bob directly to dbusr2,
/// applying least privilege *for* him.
#[test]
fn example4_flexworker_through_the_monitor() {
    let (uni, policy) = hospital_fig2();
    let jane = uni.find_user("jane").unwrap();
    let bob = uni.find_user("bob").unwrap();
    let staff = uni.find_role("staff").unwrap();
    let dbusr2 = uni.find_role("dbusr2").unwrap();
    let cmd = Command::grant(jane, Edge::UserRole(bob, dbusr2));

    // Explicit mode (prior work): refused — Jane would have to give Bob
    // all of staff (the dashed edge) and hope he activates only dbusr2.
    let explicit = ReferenceMonitor::new(
        uni.clone(),
        policy.clone(),
        MonitorConfig {
            auth_mode: AuthMode::Explicit,
            ..MonitorConfig::default()
        },
    );
    assert!(!explicit.submit(&cmd).unwrap().executed());

    // Ordered mode (this paper): authorized via ¤(bob, staff) ⊑-above
    // ¤(bob, dbusr2) — the dotted edge of Figure 3.
    let ordered = ReferenceMonitor::new(
        uni.clone(),
        policy.clone(),
        MonitorConfig {
            auth_mode: AuthMode::Ordered(OrderingMode::Extended),
            ..MonitorConfig::default()
        },
    );
    assert!(ordered.submit(&cmd).unwrap().executed());
    let (uni2, policy2) = ordered.snapshot();
    assert!(policy2.contains_edge(Edge::UserRole(bob, dbusr2)));
    assert!(!policy2.contains_edge(Edge::UserRole(bob, staff)));

    // Bob's session can write t3 but has no nurse/medical privileges.
    let mut uni2 = uni2;
    let mut session = Session::new(bob);
    session.activate(&policy2, dbusr2).unwrap();
    let write_t3 = uni2.perm("write", "t3");
    let read_t1 = uni2.perm("read", "t1");
    assert!(session.check_access(&mut uni2, &policy2, write_t3));
    assert!(session.check_access(&mut uni2, &policy2, read_t1));
    let nurse = uni2.find_role("nurse").unwrap();
    assert!(
        session.activate(&policy2, nurse).is_err(),
        "bob cannot activate nurse — no excessive medical privileges"
    );

    // The audit trail records the implicit authorization.
    let events = ordered.audit_events();
    assert!(matches!(
        events[0].decision,
        Decision::Executed { held, target } if held != target
    ));
}

/// E6 — Example 5: the decision-procedure walkthrough, including the
/// nested case and the negative case after removing staff → dbusr2.
#[test]
fn example5_decision_procedure_walkthrough() {
    let (mut uni, policy) = hospital_with_nested_delegation();
    let bob = uni.find_user("bob").unwrap();
    let staff = uni.find_role("staff").unwrap();
    let dbusr2 = uni.find_role("dbusr2").unwrap();

    // Part 1: ¤(bob, staff) ⊑ ¤(bob, dbusr2).
    let p = uni.grant_user_role(bob, staff);
    let q = uni.grant_user_role(bob, dbusr2);
    let order = PrivilegeOrder::new(&uni, &policy, OrderingMode::Extended);
    assert!(order.is_weaker(p, q));
    let d = order.derive(p, q).unwrap();
    assert_eq!(d.size(), 1, "one rule-(2) application");
    drop(order);

    // Part 2: ¤(staff, ¤(bob,staff)) ⊑ ¤(staff, ¤(bob,dbusr2)):
    // “by using rule (3) first, and then rule (2)”.
    let nested_p = uni.grant_role_priv(staff, p);
    let nested_q = uni.grant_role_priv(staff, q);
    let order = PrivilegeOrder::new(&uni, &policy, OrderingMode::Extended);
    assert!(order.is_weaker(nested_p, nested_q));
    let d = order.derive(nested_p, nested_q).unwrap();
    assert!(matches!(
        d,
        Derivation::Rule3 { ref premise, .. } if matches!(**premise, Derivation::Rule2 { .. })
    ));
    drop(order);

    // Part 3: remove staff → dbusr2; both relations stop holding.
    let mut cut = policy.clone();
    cut.remove_edge(Edge::RoleRole(staff, dbusr2));
    let order = PrivilegeOrder::new(&uni, &cut, OrderingMode::Extended);
    assert!(!order.is_weaker(p, q));
    assert!(!order.is_weaker(nested_p, nested_q));
}

/// E7 — Example 6: infinitely many weaker privileges; the naive frontier
/// never dries up, and every chain element is validated by the decision
/// procedure.
#[test]
fn example6_infinite_weaker_set() {
    let (mut uni, policy, g) = example6();
    let r1 = uni.find_role("r1").unwrap();

    let set = enumerate_weaker(
        &mut uni,
        &policy,
        g,
        EnumerationConfig {
            max_depth: 6,
            max_results: 10_000,
            mode: OrderingMode::Extended,
        },
    );
    // The paper's chain: ¤(r1,¤(r1,r2)), ¤(r1,¤(r1,¤(r1,r2))), …
    let q1 = uni.grant_role_priv(r1, g);
    let q2 = uni.grant_role_priv(r1, q1);
    let q3 = uni.grant_role_priv(r1, q2);
    for q in [q1, q2, q3] {
        assert!(set.privileges.contains(&q));
    }
    // The frontier stays non-empty at every depth — the observable form
    // of non-termination for a naive forward search.
    for depth in 1..=6 {
        assert!(set.frontier_by_depth[depth] > 0, "depth {depth}");
    }
    // Each element is individually confirmed weaker (the Lemma 1
    // procedure terminates on every single query).
    let order = PrivilegeOrder::new(&uni, &policy, OrderingMode::Extended);
    for q in [q1, q2, q3] {
        assert!(order.is_weaker(g, q));
    }
    drop(order);
    // Remark 2 bound for this hierarchy (no RH edges): one role.
    assert_eq!(remark2_depth(&uni, &policy), 1);
}
