//! The incremental-publication correctness anchor: a chain of
//! delta-derived snapshots is **index-identical** to from-scratch
//! builds, epoch by epoch, over random command sequences — including
//! revocations and cycle-forming role edges, the cases that exercise
//! the targeted-recompute and full-rebuild fallbacks.
//!
//! Two layers:
//!
//! 1. **Core chain** — drive `PolicySnapshot::next` directly over a
//!    random applied-edge sequence and compare every child against
//!    `PolicySnapshot::build` of the same state.
//! 2. **Monitor chain** — drive two `ReferenceMonitor`s (one pinned to
//!    `PublishMode::Incremental`, one to `PublishMode::FullRebuild`)
//!    through identical batches and compare the published snapshots
//!    after every batch. This is exactly the differential CI runs
//!    process-wide via `ADMINREF_PUBLISH_MODE=full`.

use adminref_core::prelude::*;
use adminref_monitor::{MonitorConfig, ReferenceMonitor};
use adminref_workloads::{wide_universe_trickle, TrickleSpec};
use proptest::prelude::*;

const USERS: usize = 4;
const ROLES: usize = 6;

/// An omnipotent-admin arena: `root` holds grant *and* revoke authority
/// over every `UA` and `RH` edge of the vocabulary, so random command
/// sequences execute (and therefore produce deltas) instead of being
/// refused — including sequences that build and tear down RH cycles.
fn arena() -> (Universe, Policy, UserId) {
    let mut universe = Universe::new();
    let root = universe.user("root");
    let admins = universe.role("admins");
    let users: Vec<UserId> = (0..USERS)
        .map(|i| universe.user(&format!("u{i}")))
        .collect();
    let roles: Vec<RoleId> = (0..ROLES)
        .map(|i| universe.role(&format!("r{i}")))
        .collect();
    let mut policy = Policy::new(&universe);
    policy.add_edge(Edge::UserRole(root, admins));
    let mut edges: Vec<Edge> = Vec::new();
    for &u in &users {
        for &r in &roles {
            edges.push(Edge::UserRole(u, r));
        }
    }
    for &a in &roles {
        for &b in &roles {
            if a != b {
                edges.push(Edge::RoleRole(a, b));
            }
        }
    }
    for edge in edges {
        let g = universe.priv_grant(edge);
        let v = universe.priv_revoke(edge);
        policy.add_edge(Edge::RolePriv(admins, g));
        policy.add_edge(Edge::RolePriv(admins, v));
    }
    // A perm per role so PA-sensitive queries have something to reach.
    for (i, &r) in roles.iter().enumerate() {
        let perm = universe.perm("use", &format!("obj{i}"));
        let p = universe.priv_perm(perm);
        policy.add_edge(Edge::RolePriv(r, p));
    }
    (universe, policy, root)
}

/// Blueprint for one command over the arena vocabulary.
#[derive(Clone, Copy, Debug)]
struct CmdSpec {
    grant: bool,
    /// `true`: UserRole(user, role_a); `false`: RoleRole(role_a, role_b).
    user_edge: bool,
    user: u8,
    role_a: u8,
    role_b: u8,
}

fn cmd_spec() -> impl Strategy<Value = CmdSpec> {
    (
        any::<bool>(),
        any::<bool>(),
        0u8..USERS as u8,
        0u8..ROLES as u8,
        0u8..ROLES as u8,
    )
        .prop_map(|(grant, user_edge, user, role_a, role_b)| CmdSpec {
            grant,
            user_edge,
            user,
            role_a,
            role_b,
        })
}

fn build_command(uni: &Universe, root: UserId, spec: CmdSpec) -> Option<Command> {
    let user = uni.find_user(&format!("u{}", spec.user)).unwrap();
    let role_a = uni.find_role(&format!("r{}", spec.role_a)).unwrap();
    let role_b = uni.find_role(&format!("r{}", spec.role_b)).unwrap();
    let edge = if spec.user_edge {
        Edge::UserRole(user, role_a)
    } else if spec.role_a != spec.role_b {
        Edge::RoleRole(role_a, role_b)
    } else {
        return None;
    };
    Some(if spec.grant {
        Command::grant(root, edge)
    } else {
        Command::revoke(root, edge)
    })
}

/// Full observable-equality check between two reach indexes over the
/// same universe/policy: closure rows for every entity, privilege
/// reachability for every PA vertex, and the closure's aggregate
/// observables (SCC count, longest chain). Internal SCC numbering is
/// allowed to differ.
fn assert_index_identical(uni: &Universe, policy: &Policy, a: &ReachIndex, b: &ReachIndex) {
    let entities: Vec<Entity> = uni
        .users()
        .map(Entity::User)
        .chain(uni.roles().map(Entity::Role))
        .collect();
    for &e in &entities {
        assert_eq!(
            a.roles_reachable(e),
            b.roles_reachable(e),
            "closure row diverged for {e:?}"
        );
        for p in policy.priv_vertices() {
            assert_eq!(
                a.reach_priv(e, p),
                b.reach_priv(e, p),
                "priv reachability diverged for {e:?} -> {p:?}"
            );
        }
    }
    assert_eq!(a.role_closure().scc_count(), b.role_closure().scc_count());
    assert_eq!(
        a.role_closure().longest_chain_roles(),
        b.role_closure().longest_chain_roles()
    );
}

/// Layer 1: the core chain. Applies each command directly with `step`,
/// derives the child snapshot with `PolicySnapshot::next`, and compares
/// it against a from-scratch build after every batch.
fn check_core_chain(specs: &[CmdSpec], batch_len: usize) {
    let (mut uni, mut policy, root) = arena();
    let mut snapshot = PolicySnapshot::build(uni.clone(), policy.clone(), 0);
    let mut epoch = 0;
    for chunk in specs.chunks(batch_len.max(1)) {
        let mut outcomes = Vec::new();
        let mut commands = Vec::new();
        for &spec in chunk {
            let Some(cmd) = build_command(&uni, root, spec) else {
                continue;
            };
            outcomes.push(step(&mut uni, &mut policy, &cmd, AuthMode::Explicit));
            commands.push(cmd);
        }
        let deltas = batch_deltas(&commands, &outcomes);
        epoch += 1;
        let (child, _path) = PolicySnapshot::next(
            &snapshot,
            &uni,
            &policy,
            &deltas,
            epoch,
            PublishMode::Incremental,
        );
        let rebuilt = PolicySnapshot::build(uni.clone(), policy.clone(), epoch);
        assert_eq!(child.policy(), rebuilt.policy());
        assert_index_identical(&uni, &policy, child.reach(), rebuilt.reach());
        snapshot = child;
    }
}

/// Layer 2: the monitor chain. Two monitors, one per publish mode,
/// batch-for-batch; published snapshots must agree at every epoch.
fn check_monitor_chain(specs: &[CmdSpec], batch_len: usize) {
    let (uni, policy, root) = arena();
    let incremental = ReferenceMonitor::new(
        uni.clone(),
        policy.clone(),
        MonitorConfig {
            publish_mode: PublishMode::Incremental,
            ..MonitorConfig::default()
        },
    );
    let full = ReferenceMonitor::new(
        uni.clone(),
        policy,
        MonitorConfig {
            publish_mode: PublishMode::FullRebuild,
            ..MonitorConfig::default()
        },
    );
    for chunk in specs.chunks(batch_len.max(1)) {
        let commands: Vec<Command> = chunk
            .iter()
            .filter_map(|&s| build_command(&uni, root, s))
            .collect();
        let a = incremental.submit_batch(&commands).unwrap();
        let b = full.submit_batch(&commands).unwrap();
        assert_eq!(a, b, "outcomes are mode-independent");
        let snap_a = incremental.read_snapshot();
        let snap_b = full.read_snapshot();
        assert_eq!(snap_a.epoch, snap_b.epoch);
        assert_eq!(snap_a.policy(), snap_b.policy());
        assert_index_identical(
            snap_a.universe(),
            snap_a.policy(),
            snap_a.reach(),
            snap_b.reach(),
        );
    }
    let (_, full_rebuilds) = full.publish_counts();
    let (incr, _) = incremental.publish_counts();
    assert_eq!(
        full.publish_counts().0,
        0,
        "the pinned-full monitor never takes the delta path"
    );
    let _ = (full_rebuilds, incr);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Incremental chains equal from-scratch builds — single-command
    /// batches (the trickle shape: every delta stands alone).
    #[test]
    fn core_chain_matches_rebuild_single_edge(
        specs in prop::collection::vec(cmd_spec(), 1..32),
    ) {
        check_core_chain(&specs, 1);
    }

    /// The same with multi-command batches (deltas compose in order,
    /// including grant/revoke toggles of one edge inside a batch).
    #[test]
    fn core_chain_matches_rebuild_batched(
        specs in prop::collection::vec(cmd_spec(), 1..48),
        batch_len in 1usize..6,
    ) {
        check_core_chain(&specs, batch_len);
    }

    /// The monitor-level differential: PublishMode::Incremental vs
    /// PublishMode::FullRebuild over identical batches.
    #[test]
    fn monitor_chain_is_mode_independent(
        specs in prop::collection::vec(cmd_spec(), 1..32),
        batch_len in 1usize..5,
    ) {
        check_monitor_chain(&specs, batch_len);
    }
}

/// Deterministic wide-universe sweep: a few dozen trickle batches on a
/// small-but-real layered hierarchy, checking the published snapshot
/// against a rebuild after every single-edge batch — and that the
/// incremental path (not the fallback) is what actually served them.
#[test]
fn trickle_chain_stays_incremental_and_identical() {
    let w = wide_universe_trickle(TrickleSpec {
        roles: 96,
        users: 24,
        toggles: 16,
        ..TrickleSpec::default()
    });
    let m = ReferenceMonitor::new(
        w.universe.clone(),
        w.policy.clone(),
        MonitorConfig {
            publish_mode: PublishMode::Incremental,
            ..MonitorConfig::default()
        },
    );
    for batch in w.batches.iter().cycle().take(w.batches.len() * 2) {
        m.submit_batch(batch).unwrap();
        let snap = m.read_snapshot();
        let rebuilt = ReachIndex::build(snap.universe(), snap.policy());
        assert_index_identical(snap.universe(), snap.policy(), snap.reach(), &rebuilt);
    }
    let (incremental, full) = m.publish_counts();
    assert_eq!(incremental + full, 2 * w.batches.len() as u64);
    // Toggles are acyclic by construction, so the only rebuilds are the
    // removal cost heuristic tripping — on a hierarchy this small the
    // fan-out cap is tight, but the incremental path must still carry
    // the bulk of the publishes (at production widths it carries all of
    // them; the perf-smoke bench asserts 0 fallbacks indirectly via the
    // speedup floor).
    assert!(
        full * 4 <= incremental,
        "fallbacks must be a small minority: {incremental} incremental vs {full} full"
    );
}

/// Cycle-forming batches take the rebuild fallback and still agree.
#[test]
fn cycle_forming_batches_fall_back_and_agree() {
    let (uni, policy, root) = arena();
    let r0 = uni.find_role("r0").unwrap();
    let r1 = uni.find_role("r1").unwrap();
    let r2 = uni.find_role("r2").unwrap();
    let m = ReferenceMonitor::new(
        uni.clone(),
        policy,
        MonitorConfig {
            publish_mode: PublishMode::Incremental,
            ..MonitorConfig::default()
        },
    );
    // Build a 3-cycle edge by edge, then cut it mid-cycle.
    let script = [
        Command::grant(root, Edge::RoleRole(r0, r1)),
        Command::grant(root, Edge::RoleRole(r1, r2)),
        Command::grant(root, Edge::RoleRole(r2, r0)), // closes the cycle → fallback
        Command::revoke(root, Edge::RoleRole(r1, r2)), // intra-SCC removal → fallback
    ];
    for cmd in &script {
        m.submit(cmd).unwrap();
        let snap = m.read_snapshot();
        let rebuilt = ReachIndex::build(snap.universe(), snap.policy());
        assert_index_identical(snap.universe(), snap.policy(), snap.reach(), &rebuilt);
    }
    let (incremental, full) = m.publish_counts();
    assert_eq!(incremental, 2, "the acyclic prefix stayed incremental");
    assert_eq!(full, 2, "cycle formation and intra-SCC removal rebuilt");
    // After the cut, r2 →φ r0 must still hold (via nothing) — check the
    // final shape is what a from-scratch monitor would publish.
    let snap = m.read_snapshot();
    assert!(snap.reaches(Node::Role(r0), Node::Role(r1)));
    assert!(!snap.reaches(Node::Role(r1), Node::Role(r2)));
    assert!(snap.reaches(Node::Role(r2), Node::Role(r0)));
}
