//! E8 — Theorem 1, validated empirically against the bounded
//! administrative-refinement checker, case by case and end-to-end on
//! generated policies. Also exercises the D2 design decision (the two
//! quantifier readings of Definition 7).

use adminref_core::prelude::*;
use adminref_core::simulation::{SimulationConfig, SimulationDirection};
use adminref_workloads::{hospital_fig2, inject_admin_privs, AdminSpec};

fn check(uni: &Universe, phi: &Policy, psi: &Policy, len: usize) -> bool {
    check_admin_refinement(
        uni,
        phi,
        psi,
        SimulationConfig {
            max_queue_len: len,
            ..SimulationConfig::default()
        },
    )
    .holds()
}

/// Theorem 1, rule (2) case: ¤(v2,v3) replaced by ¤(v1,v4) with
/// v1 →φ v2 and v3 →φ v4.
#[test]
fn rule2_case_user_role() {
    let (mut uni, phi) = hospital_fig2();
    let bob = uni.find_user("bob").unwrap();
    let staff = uni.find_role("staff").unwrap();
    let dbusr2 = uni.find_role("dbusr2").unwrap();
    let hr = uni.find_role("hr").unwrap();
    let p = uni.grant_user_role(bob, staff);
    let q = uni.grant_user_role(bob, dbusr2);
    let order = PrivilegeOrder::new(&uni, &phi, OrderingMode::Extended);
    assert!(order.is_weaker(p, q));
    drop(order);
    let psi = weaken_assignment(&phi, (hr, p), q);
    assert!(check(&uni, &phi, &psi, 2));
}

/// Theorem 1, rule (2) with a role-role source: ¤(r2,r3) ⊑ ¤(r1,r4).
#[test]
fn rule2_case_role_role() {
    let (mut uni, mut phi) = hospital_fig2();
    let staff = uni.find_role("staff").unwrap();
    let nurse = uni.find_role("nurse").unwrap();
    let prntusr = uni.find_role("prntusr").unwrap();
    let hr = uni.find_role("hr").unwrap();
    // φ: hr may add the RH edge staff → nurse.
    let p = uni.grant_role_role(staff, nurse);
    phi.add_edge(Edge::RolePriv(hr, p));
    // ψ: the weaker ¤(staff, prntusr) instead (nurse →φ prntusr).
    let q = uni.grant_role_role(staff, prntusr);
    let order = PrivilegeOrder::new(&uni, &phi, OrderingMode::Extended);
    assert!(order.is_weaker(p, q));
    drop(order);
    let psi = weaken_assignment(&phi, (hr, p), q);
    assert!(check(&uni, &phi, &psi, 2));
}

/// Theorem 1, rule (3) case: nested privileges.
#[test]
fn rule3_case_nested() {
    let (mut uni, mut phi) = hospital_fig2();
    let bob = uni.find_user("bob").unwrap();
    let staff = uni.find_role("staff").unwrap();
    let dbusr2 = uni.find_role("dbusr2").unwrap();
    let so = uni.find_role("so").unwrap();
    let inner_p = uni.grant_user_role(bob, staff);
    let inner_q = uni.grant_user_role(bob, dbusr2);
    let p = uni.grant_role_priv(staff, inner_p);
    let q = uni.grant_role_priv(staff, inner_q);
    phi.add_edge(Edge::RolePriv(so, p));
    let order = PrivilegeOrder::new(&uni, &phi, OrderingMode::Extended);
    assert!(order.is_weaker(p, q));
    drop(order);
    let psi = weaken_assignment(&phi, (so, p), q);
    // Depth-2 privileges need queue length 2 to expose two-step attacks;
    // keep the policy small enough by bounding at 2.
    assert!(check(&uni, &phi, &psi, 2));
}

/// The converse direction must fail: strengthening is refutable.
#[test]
fn strengthening_fails_with_witness() {
    let (mut uni, mut phi) = hospital_fig2();
    let bob = uni.find_user("bob").unwrap();
    let staff = uni.find_role("staff").unwrap();
    let dbusr2 = uni.find_role("dbusr2").unwrap();
    let hr = uni.find_role("hr").unwrap();
    // φ holds the weak privilege; ψ the strong one.
    let weak = uni.grant_user_role(bob, dbusr2);
    let strong = uni.grant_user_role(bob, staff);
    phi.remove_edge(Edge::RolePriv(
        hr,
        uni.find_term(PrivTerm::Grant(Edge::UserRole(bob, staff)))
            .unwrap(),
    ));
    phi.add_edge(Edge::RolePriv(hr, weak));
    let psi = weaken_assignment(&phi, (hr, weak), strong);
    let out = check_admin_refinement(
        &uni,
        &phi,
        &psi,
        SimulationConfig {
            max_queue_len: 1,
            ..SimulationConfig::default()
        },
    );
    match out {
        SimulationOutcome::Fails(ce) => {
            assert_eq!(ce.queue.len(), 1);
            let cmd = ce.queue.commands()[0];
            assert_eq!(cmd.edge, Edge::UserRole(bob, staff));
        }
        SimulationOutcome::HoldsUpTo(_) => panic!("strengthening must be refuted"),
    }
}

/// Theorem 1 on a batch of generated policies: every ⊑-weakening of every
/// assigned grant passes the bounded check.
#[test]
fn random_weakenings_hold() {
    use adminref_workloads::{chain, populate_users};
    for seed in 0..4u64 {
        let mut h = chain(4);
        let users = populate_users(&mut h, 2, 1, seed);
        let roles: Vec<RoleId> = h.layers.iter().flatten().copied().collect();
        let assigned = inject_admin_privs(
            &mut h.universe,
            &mut h.policy,
            &users,
            &roles,
            AdminSpec {
                count: 3,
                max_depth: 1,
                grant_ratio: 1.0,
                seed,
            },
        );
        let mut uni = h.universe;
        let phi = h.policy;
        // Candidate weaker terms: one per assigned grant, shifting the
        // target one role down the chain when possible.
        for (holder, p) in assigned {
            let PrivTerm::Grant(edge) = uni.term(p) else {
                continue;
            };
            let weaker_edge = match edge {
                Edge::UserRole(u, r) if (r.0 as usize) + 1 < roles.len() => {
                    Edge::UserRole(u, RoleId(r.0 + 1))
                }
                Edge::RoleRole(a, b) if (b.0 as usize) + 1 < roles.len() => {
                    Edge::RoleRole(a, RoleId(b.0 + 1))
                }
                _ => continue,
            };
            let q = uni.priv_grant(weaker_edge);
            let order = PrivilegeOrder::new(&uni, &phi, OrderingMode::Extended);
            let is_weaker = order.is_weaker(p, q);
            drop(order);
            if !is_weaker {
                continue;
            }
            let psi = weaken_assignment(&phi, (holder, p), q);
            assert!(
                check(&uni, &phi, &psi, 2),
                "Theorem 1 refuted at seed {seed} for {p:?} → {q:?}"
            );
        }
    }
}

/// D2 — the two quantifier readings differ observably: dropping all of
/// ψ's authority holds under both; the literal reading additionally
/// accepts some ψ that the simulation reading rejects… and vice versa, a
/// strengthened ψ is rejected by the simulation reading even when the
/// literal reading accepts it.
#[test]
fn definition7_direction_comparison() {
    let (mut uni, phi) = hospital_fig2();
    let bob = uni.find_user("bob").unwrap();
    let staff = uni.find_role("staff").unwrap();
    let hr = uni.find_role("hr").unwrap();
    let held = uni
        .find_term(PrivTerm::Grant(Edge::UserRole(bob, staff)))
        .unwrap();
    // ψ instead lets HR hand the (write, t3) permission to *nurse* — a
    // policy change no φ-queue can mimic (nurses never reach write-t3 in
    // any φ-reachable policy).
    let nurse = uni.find_role("nurse").unwrap();
    let write_t3 = uni.perm("write", "t3");
    let perm_priv = uni.priv_perm(write_t3);
    let strong = uni.grant_role_priv(nurse, perm_priv);
    let psi = weaken_assignment(&phi, (hr, held), strong);
    let simulation = check_admin_refinement(
        &uni,
        &phi,
        &psi,
        SimulationConfig {
            max_queue_len: 1,
            direction: SimulationDirection::Simulation,
            allow_noop: true,
        },
    );
    assert!(!simulation.holds(), "simulation reading rejects");
    let literal = check_admin_refinement(
        &uni,
        &phi,
        &psi,
        SimulationConfig {
            max_queue_len: 1,
            direction: SimulationDirection::LiteralText,
            allow_noop: true,
        },
    );
    // Under the literal text, ψ only needs *some* queue staying below
    // whatever φ does — it can always answer with a no-op, so the
    // strengthened ψ is (vacuously) accepted. This is exactly why we read
    // Definition 7 the other way (see DESIGN.md D2).
    assert!(literal.holds(), "literal reading is too weak");
}
