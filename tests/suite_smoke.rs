//! Smoke test for the `adminref-suite` facade: every re-export resolves,
//! and a trivial policy round-trips through parse → check → print.

use adminref_suite::{baselines, core, lang, monitor, store, workloads};

#[test]
fn facade_reexports_resolve() {
    // Touch one item per re-exported crate so a missing re-export is a
    // compile error, not a silent drop.
    let uni = core::universe::Universe::new();
    assert_eq!(uni.role_count(), 0);

    let _mode: core::transition::AuthMode = core::transition::AuthMode::Explicit;
    let _cfg = monitor::MonitorConfig::default();
    let _scope_ty = std::any::type_name::<baselines::AdminScope>();
    let _store_ty = std::any::type_name::<store::PolicyStore>();
    let _spec = workloads::LayeredSpec::default();
    let _err_ty = std::any::type_name::<lang::LangError>();
}

#[test]
fn trivial_policy_parse_check_print_round_trip() {
    let text = "policy tiny {\n    users ada;\n    roles admin, staff;\n    assign ada -> admin;\n    inherit admin -> staff;\n    perm staff -> (read, wiki);\n}\n";
    let (uni, policy) = lang::load_policy(text).expect("parses");

    // Check: well-formed, and ada reaches staff's permission.
    core::analysis::validate(&uni, &policy).expect("well-formed");
    let idx = core::reach::ReachIndex::build(&uni, &policy);
    let ada = uni.find_user("ada").unwrap();
    let staff = uni.find_role("staff").unwrap();
    assert!(idx.reach_entity(core::ids::Entity::User(ada), core::ids::Entity::Role(staff)));

    // Print: output reparses to the same shape, and printing is a fixpoint.
    let printed = lang::print_policy(&uni, &policy, "tiny");
    let (uni2, policy2) = lang::load_policy(&printed).expect("printed form parses");
    assert_eq!(policy.ua_len(), policy2.ua_len());
    assert_eq!(policy.rh_len(), policy2.rh_len());
    assert_eq!(policy.pa_len(), policy2.pa_len());
    assert_eq!(printed, lang::print_policy(&uni2, &policy2, "tiny"));
}
