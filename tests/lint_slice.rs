//! Differential tests for the static analyzer (`adminref_core::lint`).
//!
//! Slicing claims to be *sound*: a `perm_reachable` search over the
//! sliced alphabet gives the same answer as the full search wherever
//! either is definite. These properties pin that claim to the
//! executable ground truth in both authorization modes, and pin the
//! lint pass itself to its fixtures: the seeded-defect workload must
//! flag every defect class, the clean scenarios must stay finding-free,
//! and the checked-in `fixtures/lint_demo.expected.json` must match
//! what the analyzer produces today (so the CI byte-diff lane and the
//! repo can never drift apart silently).

use adminref_core::prelude::*;
use adminref_workloads::{
    cone, deep_delegation, grow_only, seeded_defects, ConeSpec, DelegationSpec, GrowOnlySpec,
};
use proptest::prelude::*;

const USERS: usize = 4;
const ROLES: usize = 5;

/// Blueprint for one random policy (index lists shrink well).
#[derive(Clone, Debug)]
struct PolicySpec {
    ua: Vec<(u8, u8)>,
    rh: Vec<(u8, u8)>,
    /// (role, privilege blueprint)
    pa: Vec<(u8, PrivSpec)>,
}

#[derive(Clone, Debug)]
enum PrivSpec {
    Perm(u8),
    GrantUserRole(u8, u8),
    GrantRoleRole(u8, u8),
    RevokeUserRole(u8, u8),
}

fn priv_spec() -> BoxedStrategy<PrivSpec> {
    prop_oneof![
        (0u8..3).prop_map(PrivSpec::Perm),
        ((0u8..USERS as u8), (0u8..ROLES as u8)).prop_map(|(u, r)| PrivSpec::GrantUserRole(u, r)),
        ((0u8..ROLES as u8), (0u8..ROLES as u8)).prop_map(|(a, b)| PrivSpec::GrantRoleRole(a, b)),
        ((0u8..USERS as u8), (0u8..ROLES as u8)).prop_map(|(u, r)| PrivSpec::RevokeUserRole(u, r)),
    ]
    .boxed()
}

fn policy_spec() -> impl Strategy<Value = PolicySpec> {
    (
        prop::collection::vec(((0u8..USERS as u8), (0u8..ROLES as u8)), 0..4),
        prop::collection::vec(((0u8..ROLES as u8), (0u8..ROLES as u8)), 0..5),
        prop::collection::vec(((0u8..ROLES as u8), priv_spec()), 0..6),
    )
        .prop_map(|(ua, rh, pa)| PolicySpec { ua, rh, pa })
}

fn build(spec: &PolicySpec) -> (Universe, Policy, Vec<UserId>) {
    let mut uni = Universe::new();
    let users: Vec<UserId> = (0..USERS).map(|i| uni.user(&format!("u{i}"))).collect();
    let roles: Vec<RoleId> = (0..ROLES).map(|i| uni.role(&format!("r{i}"))).collect();
    let mut policy = Policy::new(&uni);
    for &(u, r) in &spec.ua {
        policy.add_edge(Edge::UserRole(users[u as usize], roles[r as usize]));
    }
    for &(a, b) in &spec.rh {
        policy.add_edge(Edge::RoleRole(roles[a as usize], roles[b as usize]));
    }
    for (r, ps) in &spec.pa {
        let p = match ps {
            PrivSpec::Perm(i) => {
                let perm = uni.perm(["read", "write", "prnt"][*i as usize % 3], "obj");
                uni.priv_perm(perm)
            }
            PrivSpec::GrantUserRole(u, r) => {
                uni.grant_user_role(users[*u as usize], roles[*r as usize])
            }
            PrivSpec::GrantRoleRole(a, b) => {
                uni.grant_role_role(roles[*a as usize], roles[*b as usize])
            }
            PrivSpec::RevokeUserRole(u, r) => {
                uni.revoke_user_role(users[*u as usize], roles[*r as usize])
            }
        };
        policy.add_edge(Edge::RolePriv(roles[*r as usize], p));
    }
    (uni, policy, users)
}

fn answer_tag(a: &ReachabilityAnswer) -> &'static str {
    match a {
        ReachabilityAnswer::Reachable { .. } => "reachable",
        ReachabilityAnswer::Unreachable => "unreachable",
        ReachabilityAnswer::Unknown { .. } => "unknown",
    }
}

/// Replays `witness` from `root` and checks the target is reached in
/// the final policy.
fn witness_is_valid(
    uni: &mut Universe,
    root: &Policy,
    witness: &CommandQueue,
    entity: Entity,
    target: PrivId,
    mode: AuthMode,
) -> bool {
    let final_policy = run_pure(uni, root, witness, mode);
    ReachIndex::build(uni, &final_policy).reach_priv(entity, target)
}

/// Bounds generous enough that both searches are definite on most
/// generated instances, without ever being *required* to be. Escalation
/// stays off so the comparison is purely bounded-search vs
/// bounded-search over the two alphabets.
fn generous(slice: bool) -> SafetyConfig {
    SafetyConfig {
        max_steps: 3,
        max_states: 4_000,
        jobs: 1,
        escalate: false,
        slice,
        ..SafetyConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Explicit mode: wherever the sliced and the full bounded search
    /// are both definite they agree, and a sliced witness replays to a
    /// goal-reaching policy over the *original* semantics. A sliced
    /// definite answer against a full `Unknown` is fine (that is the
    /// point of slicing); a disagreement between two definite answers
    /// would be a soundness bug.
    #[test]
    fn sliced_search_agrees_with_unsliced(
        spec in policy_spec(),
        ui in 0u8..USERS as u8,
        pi in 0u8..3,
    ) {
        let (mut uni, policy, users) = build(&spec);
        let entity = Entity::User(users[ui as usize]);
        let perm = uni.perm(["read", "write", "prnt"][pi as usize], "obj");
        let target = uni.priv_perm(perm);
        let full = perm_reachable(&mut uni, &policy, entity, perm, generous(false));
        let sliced = perm_reachable(&mut uni, &policy, entity, perm, generous(true));
        if answer_tag(&full) != "unknown" && answer_tag(&sliced) != "unknown" {
            prop_assert_eq!(answer_tag(&full), answer_tag(&sliced));
        }
        if let ReachabilityAnswer::Reachable { witness } = &sliced {
            prop_assert!(witness_is_valid(
                &mut uni, &policy, witness, entity, target, AuthMode::Explicit,
            ));
        }
    }

    /// The same agreement under ordered (⊑-implicit) authorization,
    /// where the slice keeps every addable grant and only drops revokes
    /// and never-addable commands.
    #[test]
    fn sliced_search_agrees_with_unsliced_under_ordered_mode(
        spec in policy_spec(),
        ui in 0u8..USERS as u8,
    ) {
        let (mut uni, policy, users) = build(&spec);
        let entity = Entity::User(users[ui as usize]);
        let perm = uni.perm("write", "obj");
        let target = uni.priv_perm(perm);
        let ordered = |slice| SafetyConfig {
            auth_mode: AuthMode::Ordered(OrderingMode::Extended),
            weaker_depth: Some(1),
            max_states: 1_500,
            ..generous(slice)
        };
        let full = perm_reachable(&mut uni, &policy, entity, perm, ordered(false));
        let sliced = perm_reachable(&mut uni, &policy, entity, perm, ordered(true));
        if answer_tag(&full) != "unknown" && answer_tag(&sliced) != "unknown" {
            prop_assert_eq!(answer_tag(&full), answer_tag(&sliced));
        }
        if let ReachabilityAnswer::Reachable { witness } = &sliced {
            prop_assert!(witness_is_valid(
                &mut uni, &policy, witness, entity, target,
                AuthMode::Ordered(OrderingMode::Extended),
            ));
        }
    }
}

/// The named clean scenarios produce zero findings: the analyzer's
/// false-positive floor, CI-gated. (A finding here means a check fired
/// on a policy with no seeded defect.)
#[test]
fn clean_scenarios_produce_zero_findings() {
    let g = grow_only(GrowOnlySpec::default());
    let d = deep_delegation(DelegationSpec::default());
    let c = cone(ConeSpec::default());
    for (name, uni, policy) in [
        ("grow_only", &g.universe, &g.policy),
        ("deep_delegation", &d.universe, &d.policy),
        ("cone", &c.universe, &c.policy),
    ] {
        let report = lint_policy(uni, policy, &LintConfig::default());
        assert!(report.findings.is_empty(), "{name}: {:?}", report.findings);
    }
}

/// The seeded-defect workload trips every finding kind (with its SoD
/// pair declared), and nothing else.
#[test]
fn seeded_defects_trip_every_finding_kind() {
    let w = seeded_defects();
    let config = LintConfig {
        sod_pairs: vec![w.sod_pair],
        ..LintConfig::default()
    };
    let report = lint_policy(&w.universe, &w.policy, &config);
    for kind in [
        FindingKind::DeadCommand,
        FindingKind::Unauthorizable,
        FindingKind::RedundantGrant,
        FindingKind::ShadowedGrant,
        FindingKind::NonMonotoneIsland,
        FindingKind::SodConflict,
    ] {
        assert!(
            report.findings.iter().any(|f| f.kind == kind),
            "missing {kind:?}: {:?}",
            report.findings
        );
    }
    assert_eq!(report.max_severity(), Some(Severity::Error));
}

/// The checked-in expectation for `fixtures/lint_demo.rbac` matches
/// what the analyzer produces today, byte for byte — the same diff the
/// CI lint-smoke lane performs through the CLI. On an intentional
/// analyzer change, regenerate with
/// `adminref lint fixtures/lint_demo.rbac --sod pay,audit --json`.
#[test]
fn pinned_lint_demo_json_is_current() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let text = std::fs::read_to_string(format!("{root}/fixtures/lint_demo.rbac")).unwrap();
    let (uni, policy) = adminref_lang::load_policy(&text).unwrap();
    let pay = uni.find_role("pay").unwrap();
    let audit = uni.find_role("audit").unwrap();
    let config = LintConfig {
        sod_pairs: vec![(pay, audit)],
        ..LintConfig::default()
    };
    let report = lint_policy(&uni, &policy, &config);
    let expected =
        std::fs::read_to_string(format!("{root}/fixtures/lint_demo.expected.json")).unwrap();
    let rendered = format!("{}\n", report.to_json(&uni, "fixtures/lint_demo.rbac"));
    assert_eq!(
        rendered, expected,
        "fixtures/lint_demo.expected.json is stale; regenerate it (see the fixture header)"
    );
}

/// The canonical hospital fixture is lint-clean — the analyzer does not
/// cry wolf on the paper's own policy.
#[test]
fn hospital_fixture_is_lint_clean() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let text = std::fs::read_to_string(format!("{root}/fixtures/hospital.rbac")).unwrap();
    let (uni, policy) = adminref_lang::load_policy(&text).unwrap();
    let report = lint_policy(&uni, &policy, &LintConfig::default());
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}
