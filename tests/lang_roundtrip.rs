//! Property-based round-trip tests for the policy language: any generated
//! policy prints to text that reparses and re-resolves to a semantically
//! identical policy.

use adminref_core::analysis::{authorization_matrix, stats};
use adminref_core::ids::RoleId;
use adminref_core::prelude::*;
use adminref_lang::{load_policy, print_policy, print_queue};
use adminref_workloads::{
    generate_queue, inject_admin_privs, layered, populate_perms, populate_users, AdminSpec,
    LayeredSpec, QueueSpec,
};
use proptest::prelude::*;

fn build_workload(seed: u64, layers: usize, width: usize) -> (Universe, Policy) {
    let mut h = layered(LayeredSpec {
        layers,
        width,
        edge_prob: 0.35,
        seed,
    });
    let users = populate_users(&mut h, 4, 2, seed);
    populate_perms(&mut h, 2, 6, seed);
    let roles: Vec<RoleId> = h.layers.iter().flatten().copied().collect();
    inject_admin_privs(
        &mut h.universe,
        &mut h.policy,
        &users,
        &roles,
        AdminSpec {
            count: 8,
            max_depth: 3,
            grant_ratio: 0.7,
            seed,
        },
    );
    (h.universe, h.policy)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn policy_text_round_trip(seed in 0u64..500, layers in 2usize..4, width in 2usize..5) {
        let (uni, policy) = build_workload(seed, layers, width);
        let text = print_policy(&uni, &policy, "generated");
        let (uni2, policy2) = load_policy(&text).expect("printer output parses");

        // Same statistics…
        prop_assert_eq!(stats(&uni, &policy), stats(&uni2, &policy2));
        // …and the same authorization semantics: compare matrices by name.
        let m1: Vec<(String, String, String)> = authorization_matrix(&uni, &policy)
            .into_iter()
            .map(|(e, p)| name_triple(&uni, e, p))
            .collect();
        let mut m2: Vec<(String, String, String)> = authorization_matrix(&uni2, &policy2)
            .into_iter()
            .map(|(e, p)| name_triple(&uni2, e, p))
            .collect();
        let mut m1 = m1;
        m1.sort();
        m2.sort();
        prop_assert_eq!(m1, m2);

        // Printing the reloaded policy is a fixpoint.
        let text2 = print_policy(&uni2, &policy2, "generated");
        prop_assert_eq!(text, text2);
    }

    #[test]
    fn queue_text_round_trip(seed in 0u64..200) {
        let (mut uni, policy) = build_workload(seed, 3, 3);
        let users: Vec<UserId> = uni.users().collect();
        let roles: Vec<RoleId> = uni.roles().collect();
        let queue = generate_queue(&uni, &policy, &users, &roles, QueueSpec {
            len: 16,
            valid_ratio: 0.5,
            seed,
        });
        let text = print_queue(&uni, &queue);
        let queue2 = adminref_lang::load_queue(&text, &mut uni).expect("queue reparses");
        prop_assert_eq!(queue, queue2);
    }
}

fn name_triple(uni: &Universe, e: Entity, p: Perm) -> (String, String, String) {
    let who = match e {
        Entity::User(u) => format!("u:{}", uni.user_name(u)),
        Entity::Role(r) => format!("r:{}", uni.role_name(r)),
    };
    (
        who,
        uni.action_name(p.action).to_string(),
        uni.object_name(p.object).to_string(),
    )
}
