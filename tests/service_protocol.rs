//! The `PolicyService` protocol's load-bearing guarantees:
//!
//! 1. **Group-commit linearizability** — N concurrent submitters'
//!    per-request outcomes match *some* serial interleaving of their
//!    requests. The audit log records the order the (serial, batched)
//!    writer actually executed; replaying exactly that command order
//!    through the single-lock `LockedMonitor` must reproduce every
//!    decision, every changed-flag, and the final policy. Requests stay
//!    atomic: each request's commands occupy contiguous audit sequence
//!    numbers, in submission order per submitter, and the outcomes each
//!    submitter received match its own commands' audit records.
//! 2. **Applied-prefix semantics** — a mid-batch durable-store failure
//!    surfaces `ServiceError::Backend` carrying the outcomes of the
//!    request's own applied prefix, the monitor publishes/audits
//!    exactly that prefix, and recovery reopens to it (PR 3's
//!    log-before-apply discipline, now observable through the typed
//!    protocol).
//! 3. **Protocol totality** — every `Request` variant is served and the
//!    typed wrappers round-trip, including multi-tenant routing.

use std::collections::HashMap;
use std::sync::Mutex;

use adminref_core::prelude::*;
use adminref_monitor::{Decision, LockedMonitor, MonitorConfig};
use adminref_service::{
    MonitorService, PolicyService, RefinementDirection, Request, Response, RouterConfig,
    ServiceError, ServiceRouter,
};
use adminref_store::{PolicyStore, TempDir};
use proptest::prelude::*;

const ACTORS: usize = 3;
const SUBJECTS: usize = 4;
const ROLES: usize = 4;

/// `ACTORS` administrators who all hold grant *and* revoke authority
/// over every `(subject, role)` edge — maximal interference: whether a
/// grant/revoke changes the policy depends entirely on how the
/// submitters' requests interleave.
fn arena() -> (Universe, Policy) {
    let mut universe = Universe::new();
    let actors: Vec<UserId> = (0..ACTORS)
        .map(|i| universe.user(&format!("actor{i}")))
        .collect();
    let subjects: Vec<UserId> = (0..SUBJECTS)
        .map(|i| universe.user(&format!("subj{i}")))
        .collect();
    let roles: Vec<RoleId> = (0..ROLES)
        .map(|i| universe.role(&format!("r{i}")))
        .collect();
    let admins = universe.role("admins");
    let mut policy = Policy::new(&universe);
    for &a in &actors {
        policy.add_edge(Edge::UserRole(a, admins));
    }
    for &s in &subjects {
        for &r in &roles {
            let g = universe.grant_user_role(s, r);
            let v = universe.revoke_user_role(s, r);
            policy.add_edge(Edge::RolePriv(admins, g));
            policy.add_edge(Edge::RolePriv(admins, v));
        }
    }
    // Each role carries one user privilege, so membership churn is
    // visible to Definition-6 refinement and `check_access`.
    for (i, &r) in roles.iter().enumerate() {
        let perm = universe.perm("use", &format!("obj{i}"));
        let p = universe.priv_perm(perm);
        policy.add_edge(Edge::RolePriv(r, p));
    }
    (universe, policy)
}

/// Blueprint for one command (the actor is the submitting thread's).
#[derive(Clone, Copy, Debug)]
struct CmdSpec {
    grant: bool,
    subject: u8,
    role: u8,
}

fn cmd_spec() -> impl Strategy<Value = CmdSpec> {
    (any::<bool>(), 0u8..SUBJECTS as u8, 0u8..ROLES as u8).prop_map(|(grant, subject, role)| {
        CmdSpec {
            grant,
            subject,
            role,
        }
    })
}

/// Per-submitter request lists: 2–3 submitters × 1–5 requests × 1–3
/// commands.
fn submitters() -> impl Strategy<Value = Vec<Vec<Vec<CmdSpec>>>> {
    prop::collection::vec(
        prop::collection::vec(prop::collection::vec(cmd_spec(), 1..4), 1..6),
        2..4,
    )
}

fn build(uni: &Universe, actor: UserId, spec: CmdSpec) -> Command {
    let subject = uni.find_user(&format!("subj{}", spec.subject)).unwrap();
    let role = uni.find_role(&format!("r{}", spec.role)).unwrap();
    let edge = Edge::UserRole(subject, role);
    if spec.grant {
        Command::grant(actor, edge)
    } else {
        Command::revoke(actor, edge)
    }
}

/// Runs the concurrent case and checks guarantee 1 end to end.
fn check_group_commit_matches_serial(threads: &[Vec<Vec<CmdSpec>>]) {
    let (uni, policy) = arena();
    let config = MonitorConfig {
        audit_capacity: 8192,
        ..MonitorConfig::default()
    };
    let service = MonitorService::in_memory(uni.clone(), policy.clone(), config);
    // Collected per submitter: each request's commands and outcomes.
    type Submitted = Vec<(Vec<Command>, Vec<StepOutcome>)>;
    let collected: Vec<Mutex<Submitted>> = threads.iter().map(|_| Mutex::new(Vec::new())).collect();
    crossbeam::scope(|scope| {
        for (t, requests) in threads.iter().enumerate() {
            let (service, uni, collected) = (&service, &uni, &collected);
            scope.spawn(move |_| {
                let actor = uni.find_user(&format!("actor{t}")).unwrap();
                let mut mine = Vec::new();
                for request in requests {
                    let commands: Vec<Command> =
                        request.iter().map(|&s| build(uni, actor, s)).collect();
                    let outcomes = service.submit(commands.clone()).expect("in-memory submit");
                    assert_eq!(outcomes.len(), commands.len());
                    mine.push((commands, outcomes));
                }
                *collected[t].lock().unwrap() = mine;
            });
        }
    })
    .unwrap();

    let audit = service.monitor().audit_events();
    let total: usize = threads
        .iter()
        .flat_map(|reqs| reqs.iter().map(|r| r.len()))
        .sum();
    assert_eq!(audit.len(), total, "every command audited exactly once");

    // (1a) The audit order IS a serial interleaving: replaying it on the
    // single-lock monitor reproduces decisions, changed-flags, and the
    // final policy.
    let locked = LockedMonitor::new(uni.clone(), policy, config);
    for event in &audit {
        let outcome = locked.submit(&event.command).unwrap();
        match (outcome.authorization, event.decision) {
            (Some(auth), Decision::Executed { held, target }) => {
                assert_eq!((auth.held, auth.target), (held, target));
            }
            (None, Decision::Refused) => {}
            other => panic!("decision mismatch at seq {}: {other:?}", event.seq),
        }
        assert_eq!(outcome.changed, event.changed, "seq {}", event.seq);
    }
    let (_, serial_policy) = locked.snapshot();
    let (_, service_policy) = service.monitor().snapshot();
    assert_eq!(serial_policy, service_policy);

    // (1b) Atomicity + FIFO per submitter: each submitter's audit events
    // are exactly its submitted commands in order, each request's events
    // on contiguous sequence numbers, with outcomes matching.
    let mut by_actor: HashMap<UserId, Vec<&adminref_monitor::AuditEvent>> = HashMap::new();
    for event in &audit {
        by_actor.entry(event.command.actor).or_default().push(event);
    }
    for (t, slot) in collected.iter().enumerate() {
        let actor = uni.find_user(&format!("actor{t}")).unwrap();
        let events = by_actor.remove(&actor).unwrap_or_default();
        let mine = slot.lock().unwrap();
        let mut cursor = 0usize;
        for (commands, outcomes) in mine.iter() {
            let window = &events[cursor..cursor + commands.len()];
            for (i, ((cmd, outcome), event)) in
                commands.iter().zip(outcomes).zip(window).enumerate()
            {
                assert_eq!(*cmd, event.command, "submitter {t}, command {i}");
                assert_eq!(
                    outcome.executed(),
                    matches!(event.decision, Decision::Executed { .. })
                );
                assert_eq!(outcome.changed, event.changed);
                if i > 0 {
                    assert_eq!(
                        event.seq,
                        window[i - 1].seq + 1,
                        "submitter {t}: request torn across the batch"
                    );
                }
            }
            cursor += commands.len();
        }
        assert_eq!(cursor, events.len(), "stray events for submitter {t}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Guarantee 1 under randomized request shapes and thread counts.
    #[test]
    fn concurrent_submitters_match_a_serial_interleaving(threads in submitters()) {
        check_group_commit_matches_serial(&threads);
    }
}

/// Guarantee 2 through the public protocol: a durable backend that
/// fails mid-request surfaces the applied prefix, and recovery agrees.
#[test]
fn mid_batch_store_failure_surfaces_applied_prefix() {
    let (uni, policy) = arena();
    let actor = uni.find_user("actor0").unwrap();
    let subj = uni.find_user("subj0").unwrap();
    let (r0, r1, r2) = (
        uni.find_role("r0").unwrap(),
        uni.find_role("r1").unwrap(),
        uni.find_role("r2").unwrap(),
    );
    let dir = TempDir::new("service-prefix").unwrap();
    let mut store =
        PolicyStore::create(dir.path(), uni.clone(), policy, AuthMode::Explicit).unwrap();
    store.inject_append_failure_after(2);
    let service = MonitorService::new(adminref_monitor::ReferenceMonitor::with_store(
        store,
        MonitorConfig::default(),
    ));
    let commands = vec![
        Command::grant(actor, Edge::UserRole(subj, r0)),
        Command::grant(actor, Edge::UserRole(subj, r1)),
        Command::grant(actor, Edge::UserRole(subj, r2)), // injected failure
    ];
    match service.submit(commands) {
        Err(ServiceError::Backend { applied, error }) => {
            assert_eq!(applied.len(), 2, "two commands applied before the fault");
            assert!(applied.iter().all(|o| o.executed() && o.changed));
            assert!(error.to_string().contains("injected"), "{error}");
        }
        other => panic!("expected Backend error, got {other:?}"),
    }
    // The published snapshot and the audit log hold exactly the prefix…
    let snapshot = service.monitor().read_snapshot();
    assert!(snapshot.policy().contains_edge(Edge::UserRole(subj, r0)));
    assert!(snapshot.policy().contains_edge(Edge::UserRole(subj, r1)));
    assert!(!snapshot.policy().contains_edge(Edge::UserRole(subj, r2)));
    assert_eq!(service.monitor().audit_len(), 2);
    // …and the service keeps serving: the store recovered its handle
    // (the injected fault was transient), so a retry applies cleanly.
    let retry = service
        .submit(vec![Command::grant(actor, Edge::UserRole(subj, r2))])
        .expect("fault was transient");
    assert!(retry[0].executed());
    // Recovery from disk agrees with what the service reported durable.
    drop(service);
    let (store, _report) = PolicyStore::open(dir.path(), AuthMode::Explicit).unwrap();
    assert!(store.policy().contains_edge(Edge::UserRole(subj, r0)));
    assert!(store.policy().contains_edge(Edge::UserRole(subj, r1)));
    assert!(store.policy().contains_edge(Edge::UserRole(subj, r2)));
}

/// Guarantee 3: every request variant answers with its paired response
/// through the typed wrappers, against one live service.
#[test]
fn protocol_round_trips_every_variant() {
    let (uni, policy) = arena();
    let service = MonitorService::in_memory(uni.clone(), policy.clone(), MonitorConfig::default());
    let actor = uni.find_user("actor0").unwrap();
    let subj = uni.find_user("subj0").unwrap();
    let r0 = uni.find_role("r0").unwrap();

    // Sessions + access checks (session creation routes through the
    // protocol — SessionId has no public constructor for live handles).
    let sid = service.create_session(subj).unwrap();
    assert!(matches!(
        service.activate_role(sid, r0),
        Err(ServiceError::Session(_))
    ));
    service
        .submit(vec![Command::grant(actor, Edge::UserRole(subj, r0))])
        .unwrap();
    service.activate_role(sid, r0).unwrap();
    let mut probe = uni.clone();
    let granted = probe.perm("use", "obj0");
    let missing = probe.perm("read", "nothing");
    assert!(service.check_access(sid, granted).unwrap());
    assert!(!service.check_access(sid, missing).unwrap());
    assert!(service.deactivate_role(sid, r0).unwrap());
    assert!(service.drop_session(sid).unwrap());
    let ghost = adminref_monitor::SessionId::from_raw(sid.raw());
    assert!(matches!(
        service.check_access(ghost, missing),
        Err(ServiceError::UnknownSession(_))
    ));

    // Analyses.
    let answer = service
        .analyze_reach(
            Entity::User(subj),
            missing,
            SafetyConfig {
                max_steps: 1,
                ..SafetyConfig::default()
            },
        )
        .unwrap();
    assert!(!answer.is_reachable());
    // The live policy (with the extra grant) does not refine the
    // original, but the original refines it.
    let reply = service
        .check_refinement(policy.clone(), RefinementDirection::CandidateRefinesLive, 5)
        .unwrap();
    assert!(reply.holds, "removing authority is a refinement");
    let reply = service
        .check_refinement(policy.clone(), RefinementDirection::LiveRefinesCandidate, 5)
        .unwrap();
    assert!(!reply.holds);
    assert!(reply.total_violations > 0);
    assert!(reply.witnesses.len() <= 5);
    let foreign = Policy::new(&Universe::new());
    assert!(matches!(
        service.check_refinement(foreign, RefinementDirection::CandidateRefinesLive, 1),
        Err(ServiceError::ForeignPolicy)
    ));
    // A candidate built on a client-*extended* clone carries the right
    // tag but out-of-range ids; the bounds check must refuse it rather
    // than let index-building panic the server.
    let mut extended = uni.clone();
    let new_user = extended.user("interloper");
    let new_role = extended.role("shadow");
    let mut oversized = policy.clone();
    oversized.add_edge(Edge::UserRole(new_user, new_role));
    assert!(matches!(
        service.check_refinement(oversized, RefinementDirection::CandidateRefinesLive, 1),
        Err(ServiceError::ForeignPolicy)
    ));

    // Audit + version + stats. A second command distinguishes the
    // exclusive `audit_since` cursor from the bounded tail.
    assert_eq!(service.version().unwrap(), 1);
    service
        .submit(vec![Command::revoke(actor, Edge::UserRole(subj, r0))])
        .unwrap();
    let tail = service.audit_tail(10).unwrap();
    assert_eq!(tail.len(), 2);
    let since = service.audit_since(tail[0].seq, 10).unwrap();
    assert_eq!(since.len(), 1, "only events after the cursor");
    assert_eq!(since[0].seq, tail[1].seq);
    let stats = service.stats().unwrap();
    assert_eq!(stats.epoch, 2);
    assert_eq!(stats.sessions, 0, "the session was dropped");
    assert_eq!(stats.audit_retained, 2);
    assert!(stats.users >= ACTORS + SUBJECTS);
    assert!(stats.roles > ROLES);
    assert!(stats.edges > 0);
    assert_eq!(
        stats.forced_deactivations, 0,
        "the session was dropped before the revoke"
    );
    assert!(stats.recovery.is_none(), "in-memory: nothing recovered");

    // Compact is total: a no-op acknowledgment on in-memory monitors.
    service.compact().unwrap();

    // A forced deactivation is visible through Stats: activate, then
    // revoke the justifying membership out from under the session.
    let sid = service.create_session(subj).unwrap();
    service
        .submit(vec![Command::grant(actor, Edge::UserRole(subj, r0))])
        .unwrap();
    service.activate_role(sid, r0).unwrap();
    service
        .submit(vec![Command::revoke(actor, Edge::UserRole(subj, r0))])
        .unwrap();
    assert!(!service.check_access(sid, granted).unwrap());
    assert_eq!(service.stats().unwrap().forced_deactivations, 1);
}

/// Multi-tenant routing through the protocol: per-tenant isolation of
/// epochs, sessions, and audit.
#[test]
fn router_serves_isolated_tenants_through_the_protocol() {
    let router = ServiceRouter::new(RouterConfig::default(), Box::new(|_tenant| arena()));
    for tenant in ["acme", "globex"] {
        let Response::Version(v) = router.call(tenant, Request::Version).unwrap() else {
            panic!("version answers version");
        };
        assert_eq!(v.epoch, 0);
    }
    // A write to acme moves acme's epoch only.
    let acme = router.tenant("acme").unwrap();
    let snap = acme.monitor().read_snapshot();
    let actor = snap.universe().find_user("actor0").unwrap();
    let subj = snap.universe().find_user("subj0").unwrap();
    let r0 = snap.universe().find_role("r0").unwrap();
    acme.submit(vec![Command::grant(actor, Edge::UserRole(subj, r0))])
        .unwrap();
    assert_eq!(acme.version().unwrap(), 1);
    assert_eq!(router.tenant("globex").unwrap().version().unwrap(), 0);
    assert_eq!(
        router
            .tenant("globex")
            .unwrap()
            .audit_tail(10)
            .unwrap()
            .len(),
        0
    );
    assert_eq!(acme.audit_tail(10).unwrap().len(), 1);
}
