//! The epoch-published monitor's two load-bearing guarantees:
//!
//! 1. **Determinism** — batching is a pure performance transform. For any
//!    command sequence and any split into batches, the batched
//!    `ReferenceMonitor` produces the same `StepOutcome` sequence, the
//!    same audit trail, and the same final policy as the single-lock
//!    `LockedMonitor` executing serially (in both authorization modes).
//! 2. **Epoch isolation** — concurrent `check_access` readers observe
//!    only published epochs: a batch's effects become visible all at
//!    once, so every read agrees with either the pre- or the post-batch
//!    snapshot, never a torn intermediate state, and epochs observed by
//!    one thread are monotone.

use std::sync::atomic::{AtomicBool, Ordering};

use adminref_core::prelude::*;
use adminref_monitor::{LockedMonitor, MonitorConfig, ReferenceMonitor};
use adminref_workloads::hospital_fig2;
use proptest::prelude::*;

const USERS: &[&str] = &["diana", "bob", "joe", "jane", "alice"];
const ROLES: &[&str] = &[
    "nurse", "staff", "prntusr", "dbusr1", "dbusr2", "dbusr3", "hr", "so",
];

/// Blueprint for one command over the Figure-2 vocabulary.
#[derive(Clone, Copy, Debug)]
struct CmdSpec {
    actor: u8,
    grant: bool,
    /// `true`: UserRole(user, role_a); `false`: RoleRole(role_a, role_b).
    user_edge: bool,
    user: u8,
    role_a: u8,
    role_b: u8,
}

fn cmd_spec() -> impl Strategy<Value = CmdSpec> {
    (
        0u8..USERS.len() as u8,
        any::<bool>(),
        any::<bool>(),
        0u8..USERS.len() as u8,
        0u8..ROLES.len() as u8,
        0u8..ROLES.len() as u8,
    )
        .prop_map(|(actor, grant, user_edge, user, role_a, role_b)| CmdSpec {
            actor,
            grant,
            user_edge,
            user,
            role_a,
            role_b,
        })
}

fn build_commands(uni: &Universe, specs: &[CmdSpec]) -> Vec<Command> {
    let users: Vec<UserId> = USERS.iter().map(|n| uni.find_user(n).unwrap()).collect();
    let roles: Vec<RoleId> = ROLES.iter().map(|n| uni.find_role(n).unwrap()).collect();
    specs
        .iter()
        .map(|s| {
            let edge = if s.user_edge {
                Edge::UserRole(users[s.user as usize], roles[s.role_a as usize])
            } else {
                Edge::RoleRole(roles[s.role_a as usize], roles[s.role_b as usize])
            };
            if s.grant {
                Command::grant(users[s.actor as usize], edge)
            } else {
                Command::revoke(users[s.actor as usize], edge)
            }
        })
        .collect()
}

/// Splits `commands` into batches at positions derived from `cuts`.
fn batches<'a>(commands: &'a [Command], cuts: &[u8]) -> Vec<&'a [Command]> {
    let mut points: Vec<usize> = cuts
        .iter()
        .map(|&c| c as usize % (commands.len() + 1))
        .collect();
    points.push(0);
    points.push(commands.len());
    points.sort_unstable();
    points.dedup();
    points.windows(2).map(|w| &commands[w[0]..w[1]]).collect()
}

fn check_equivalence(mode: AuthMode, specs: &[CmdSpec], cuts: &[u8]) {
    let (uni, policy) = hospital_fig2();
    let commands = build_commands(&uni, specs);
    let config = MonitorConfig {
        auth_mode: mode,
        audit_capacity: 1024,
        ..MonitorConfig::default()
    };
    let epoch = ReferenceMonitor::new(uni.clone(), policy.clone(), config);
    let locked = LockedMonitor::new(uni, policy, config);

    let splits = batches(&commands, cuts);
    let split_count = splits.len();
    let mut batched_outcomes = Vec::new();
    for batch in splits {
        batched_outcomes.extend(epoch.submit_batch(batch).unwrap());
    }
    let serial_outcomes: Vec<StepOutcome> =
        commands.iter().map(|c| locked.submit(c).unwrap()).collect();
    prop_assert_eq!(&batched_outcomes, &serial_outcomes);

    let epoch_audit = epoch.audit_events();
    let locked_audit = locked.audit_events();
    prop_assert_eq!(epoch_audit.len(), locked_audit.len());
    for (a, b) in epoch_audit.iter().zip(&locked_audit) {
        prop_assert_eq!(a.seq, b.seq);
        prop_assert_eq!(a.command, b.command);
        prop_assert_eq!(a.decision, b.decision);
        prop_assert_eq!(a.changed, b.changed);
    }

    let (_, epoch_policy) = epoch.snapshot();
    let (_, locked_policy) = locked.snapshot();
    prop_assert_eq!(epoch_policy, locked_policy);
    // At most one publication per batch.
    prop_assert!(epoch.version() <= split_count as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batched execution ≡ serial execution, explicit mode.
    #[test]
    fn batched_equals_serial_explicit(
        specs in prop::collection::vec(cmd_spec(), 1..24),
        cuts in prop::collection::vec(0u8..32, 0..6),
    ) {
        check_equivalence(AuthMode::Explicit, &specs, &cuts);
    }

    /// Batched execution ≡ serial execution, ordered mode (the paper's
    /// §4.1 implicit authorization, where refused commands may still
    /// intern privilege terms).
    #[test]
    fn batched_equals_serial_ordered(
        specs in prop::collection::vec(cmd_spec(), 1..16),
        cuts in prop::collection::vec(0u8..32, 0..6),
    ) {
        check_equivalence(AuthMode::Ordered(OrderingMode::Extended), &specs, &cuts);
    }
}

/// A fixture where jane holds grant *and* revoke authority over both
/// (bob, staff) and (joe, nurse) — every toggle batch below is fully
/// authorized, so any half-applied state a reader could observe must
/// come from the publication mechanism, not from a refused command.
fn toggle_fixture() -> (Universe, Policy) {
    let mut b = PolicyBuilder::new()
        .assign("jane", "hr")
        .assign("diana", "nurse")
        .declare_user("bob")
        .declare_user("joe")
        .inherit("staff", "nurse")
        .permit("nurse", "read", "t1");
    let (bob, joe, staff, nurse) = {
        let u = b.universe_mut();
        (
            u.find_user("bob").unwrap(),
            u.find_user("joe").unwrap(),
            u.find_role("staff").unwrap(),
            u.find_role("nurse").unwrap(),
        )
    };
    let g1 = b.universe_mut().grant_user_role(bob, staff);
    let r1 = b.universe_mut().revoke_user_role(bob, staff);
    let g2 = b.universe_mut().grant_user_role(joe, nurse);
    let r2 = b.universe_mut().revoke_user_role(joe, nurse);
    b = b
        .assign_priv("hr", g1)
        .assign_priv("hr", r1)
        .assign_priv("hr", g2)
        .assign_priv("hr", r2);
    b.finish()
}

/// The concurrent epoch-isolation property. The writer toggles a *pair*
/// of edges per batch — (bob, staff) and (joe, nurse) granted together,
/// then revoked together — so the invariant "both present or both
/// absent" holds in every published epoch. Concurrent readers assert it
/// on every load; observing a half-applied batch (the old per-command
/// visibility) fails the test.
fn run_epoch_isolation(rounds: usize, readers: usize) {
    let (uni, policy) = toggle_fixture();
    let jane = uni.find_user("jane").unwrap();
    let bob = uni.find_user("bob").unwrap();
    let joe = uni.find_user("joe").unwrap();
    let staff = uni.find_role("staff").unwrap();
    let nurse = uni.find_role("nurse").unwrap();
    let e1 = Edge::UserRole(bob, staff);
    let e2 = Edge::UserRole(joe, nurse);
    let m = ReferenceMonitor::new(uni, policy, MonitorConfig::default());
    let grant_both = [Command::grant(jane, e1), Command::grant(jane, e2)];
    let revoke_both = [Command::revoke(jane, e1), Command::revoke(jane, e2)];
    let done = AtomicBool::new(false);
    crossbeam::scope(|scope| {
        for _ in 0..readers {
            let (m, done) = (&m, &done);
            scope.spawn(move |_| {
                let mut last_epoch = 0u64;
                let mut observed = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let snap = m.read_snapshot();
                    assert_eq!(
                        snap.policy().contains_edge(e1),
                        snap.policy().contains_edge(e2),
                        "torn read at epoch {}",
                        snap.epoch
                    );
                    assert!(
                        snap.epoch >= last_epoch,
                        "epoch went backwards: {} after {}",
                        snap.epoch,
                        last_epoch
                    );
                    last_epoch = snap.epoch;
                    observed += 1;
                }
                observed
            });
        }
        for _ in 0..rounds {
            m.submit_batch(&grant_both).unwrap();
            m.submit_batch(&revoke_both).unwrap();
        }
        done.store(true, Ordering::Relaxed);
    })
    .unwrap();
    // Every batch changed the policy: exactly 2 publications per round.
    assert_eq!(m.version(), 2 * rounds as u64);
    let snap = m.read_snapshot();
    assert!(!snap.policy().contains_edge(e1));
    assert!(!snap.policy().contains_edge(e2));
}

#[test]
fn concurrent_readers_observe_only_published_epochs() {
    run_epoch_isolation(300, 4);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized interleaving: vary writer rounds and reader counts so
    /// the reader/writer phase alignment differs per case.
    #[test]
    fn epoch_isolation_under_randomized_interleavings(
        rounds in 10usize..80,
        readers in 1usize..5,
    ) {
        run_epoch_isolation(rounds, readers);
    }
}

/// Session revocation under interleaving: while readers hammer
/// `check_access`, a writer revokes the session's justifying membership.
/// Once the revoke's epoch publishes, the monitor force-deactivates the
/// role — and later re-grants must NOT resurrect the session's access
/// (activation is an explicit session step, not a side effect of
/// membership).
#[test]
fn forced_deactivation_interleaves_with_concurrent_readers() {
    let (uni, policy) = toggle_fixture();
    let jane = uni.find_user("jane").unwrap();
    let bob = uni.find_user("bob").unwrap();
    let staff = uni.find_role("staff").unwrap();
    let mut probe = uni.clone();
    let read_t1 = probe.perm("read", "t1");
    let m = ReferenceMonitor::new(uni, policy, MonitorConfig::default());
    let grant = [Command::grant(jane, Edge::UserRole(bob, staff))];
    let revoke = [Command::revoke(jane, Edge::UserRole(bob, staff))];
    m.submit_batch(&grant).unwrap();
    let sid = m.create_session(bob);
    m.activate_role(sid, staff).unwrap();
    assert!(m.check_access(sid, read_t1).unwrap());
    let done = AtomicBool::new(false);
    crossbeam::scope(|scope| {
        for _ in 0..3 {
            let (m, done) = (&m, &done);
            scope.spawn(move |_| {
                // Readers must never error, whatever the interleaving;
                // results flip from granted to denied at the revoke.
                while !done.load(Ordering::Relaxed) {
                    let _ = m.check_access(sid, read_t1).unwrap();
                }
            });
        }
        // Toggle the membership; every round ends revoked.
        for _ in 0..50 {
            m.submit_batch(&grant).unwrap();
            m.submit_batch(&revoke).unwrap();
        }
        done.store(true, Ordering::Relaxed);
    })
    .unwrap();
    assert!(
        !m.check_access(sid, read_t1).unwrap(),
        "after the final revoke the session must be denied"
    );
    // Exactly one forced deactivation: the first published revoke found
    // the role active; bob never re-activated, so later revokes had
    // nothing to sever.
    assert_eq!(m.session_revocations_total(), 1);
    let events = m.session_revocations_tail(10);
    assert_eq!((events[0].user, events[0].role), (bob, staff));
    // Re-granting restores *activatability*, not access: the session
    // must explicitly re-activate.
    m.submit_batch(&grant).unwrap();
    assert!(!m.check_access(sid, read_t1).unwrap());
    m.activate_role(sid, staff).unwrap();
    assert!(m.check_access(sid, read_t1).unwrap());
}

/// A transitive severing: revoking an `RH` edge (not the user's own
/// membership) also invalidates sessions that activated the
/// now-unreachable junior role.
#[test]
fn rh_revocation_deactivates_transitively_activated_roles() {
    let mut b = PolicyBuilder::new()
        .assign("jane", "hr")
        .assign("diana", "staff")
        .inherit("staff", "nurse")
        .permit("nurse", "read", "t1");
    let (staff, nurse) = {
        let u = b.universe_mut();
        (u.find_role("staff").unwrap(), u.find_role("nurse").unwrap())
    };
    let r = b.universe_mut().priv_revoke(Edge::RoleRole(staff, nurse));
    b = b.assign_priv("hr", r);
    let (mut uni, policy) = b.finish();
    let jane = uni.find_user("jane").unwrap();
    let diana = uni.find_user("diana").unwrap();
    let read_t1 = uni.perm("read", "t1");
    let m = ReferenceMonitor::new(uni, policy, MonitorConfig::default());
    let sid = m.create_session(diana);
    // Diana activates nurse *via* staff → nurse inheritance.
    m.activate_role(sid, nurse).unwrap();
    assert!(m.check_access(sid, read_t1).unwrap());
    m.submit(&Command::revoke(jane, Edge::RoleRole(staff, nurse)))
        .unwrap();
    assert!(
        !m.check_access(sid, read_t1).unwrap(),
        "severed inheritance invalidates the transitive activation"
    );
    assert_eq!(m.session_revocations_total(), 1);
}

/// `check_access` itself (one snapshot per call) stays consistent under
/// churn: diana's nurse-session access to t1 does not depend on bob's
/// membership churn, in any interleaving.
#[test]
fn check_access_is_stable_under_concurrent_churn() {
    let (uni, policy) = toggle_fixture();
    let jane = uni.find_user("jane").unwrap();
    let bob = uni.find_user("bob").unwrap();
    let diana = uni.find_user("diana").unwrap();
    let staff = uni.find_role("staff").unwrap();
    let nurse = uni.find_role("nurse").unwrap();
    let mut probe = uni.clone();
    let read_t1 = probe.perm("read", "t1");
    let m = ReferenceMonitor::new(uni, policy, MonitorConfig::default());
    let sid = m.create_session(diana);
    m.activate_role(sid, nurse).unwrap();
    let batch_grant = [Command::grant(jane, Edge::UserRole(bob, staff))];
    let batch_revoke = [Command::revoke(jane, Edge::UserRole(bob, staff))];
    crossbeam::scope(|scope| {
        for _ in 0..3 {
            let m = &m;
            scope.spawn(move |_| {
                for _ in 0..500 {
                    assert!(m.check_access(sid, read_t1).unwrap());
                }
            });
        }
        scope.spawn(|_| {
            for _ in 0..100 {
                m.submit_batch(&batch_grant).unwrap();
                m.submit_batch(&batch_revoke).unwrap();
            }
        });
    })
    .unwrap();
    assert_eq!(m.version(), 200);
    assert_eq!(m.audit_events_since(197, 10).len(), 2);
}
