//! Replication end-to-end over real sockets: a primary daemon streams
//! epoch deltas to replica daemons, which serve the read alphabet
//! lock-free, refuse writes with a typed error, converge to
//! byte-identical state checksums, survive kill/restart via
//! snapshot-at-epoch catch-up, self-heal from divergence by
//! re-bootstrapping, and fence stale primaries after a promotion.

use std::io::Write;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use adminref_core::prelude::*;
use adminref_monitor::{MonitorConfig, ReferenceMonitor};
use adminref_service::replication::fetch_bootstrap;
use adminref_service::wire::{self, FrameKind};
use adminref_service::{
    Daemon, DaemonConfig, FollowTarget, PolicyService, ReplicatedService, ReplicationRole,
    ServiceError, WireClient, WireListener,
};
use adminref_store::TempDir;

const SUBJECTS: usize = 6;
const ROLES: usize = 4;
const RETRY: Duration = Duration::from_millis(25);
const DEADLINE: Duration = Duration::from_secs(20);

/// An arena where `admin` holds grant and revoke authority over every
/// `(subject, role)` edge.
fn arena() -> (Universe, Policy, UserId) {
    let mut universe = Universe::new();
    let admin = universe.user("admin");
    let subjects: Vec<UserId> = (0..SUBJECTS)
        .map(|i| universe.user(&format!("subj{i}")))
        .collect();
    let roles: Vec<RoleId> = (0..ROLES)
        .map(|i| universe.role(&format!("r{i}")))
        .collect();
    let admins = universe.role("admins");
    let mut policy = Policy::new(&universe);
    policy.add_edge(Edge::UserRole(admin, admins));
    for &s in &subjects {
        for &r in &roles {
            let g = universe.grant_user_role(s, r);
            let v = universe.revoke_user_role(s, r);
            policy.add_edge(Edge::RolePriv(admins, g));
            policy.add_edge(Edge::RolePriv(admins, v));
        }
    }
    (universe, policy, admin)
}

/// A deterministic splitmix64 stream — the tests need varied batches,
/// not entropy, and the suite stays reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A randomized admin batch: each command toggles some `(subject,
/// role)` edge, grant or revoke, all authorized by `admin`.
fn random_batch(rng: &mut Rng, universe: &Universe, admin: UserId) -> Vec<Command> {
    let len = 1 + (rng.next() as usize) % 5;
    (0..len)
        .map(|_| {
            let subj = universe
                .find_user(&format!("subj{}", rng.next() as usize % SUBJECTS))
                .unwrap();
            let role = universe
                .find_role(&format!("r{}", rng.next() as usize % ROLES))
                .unwrap();
            let kind = if rng.next() % 2 == 0 {
                CommandKind::Grant
            } else {
                CommandKind::Revoke
            };
            Command {
                actor: admin,
                kind,
                edge: Edge::UserRole(subj, role),
            }
        })
        .collect()
}

fn spawn_primary(dir: &TempDir) -> (Daemon, Arc<ReplicatedService>, std::path::PathBuf) {
    let (universe, policy, _) = arena();
    let monitor = Arc::new(ReferenceMonitor::new(
        universe.clone(),
        policy,
        MonitorConfig::default(),
    ));
    let service = Arc::new(ReplicatedService::primary(monitor));
    let hub = Arc::clone(service.hub());
    let path = dir.path().join("primary.sock");
    let listener = WireListener::unix(&path).expect("bind primary");
    let daemon = Daemon::spawn_replicated(
        Arc::clone(&service) as Arc<dyn PolicyService>,
        universe,
        listener,
        DaemonConfig::default(),
        Some(hub),
    )
    .expect("spawn primary");
    (daemon, service, path)
}

/// Bootstraps a replica from the primary and serves it on its own unix
/// socket — the same construction `adminref serve --follow-unix` uses.
fn spawn_replica(
    primary: &Path,
    sock: &Path,
) -> (Daemon, Arc<ReplicatedService>, Arc<ReferenceMonitor>) {
    let target = FollowTarget::Unix(primary.to_path_buf());
    let (universe, policy, constraints, epoch, term) =
        fetch_bootstrap(&target, Duration::from_secs(5)).expect("bootstrap");
    let monitor = Arc::new(ReferenceMonitor::new(
        universe.clone(),
        policy.clone(),
        MonitorConfig::default(),
    ));
    monitor
        .install_replica_state(universe.clone(), policy, epoch, constraints)
        .expect("install bootstrap state");
    let service = Arc::new(ReplicatedService::replica(
        Arc::clone(&monitor),
        target,
        RETRY,
        Some(term),
    ));
    let hub = Arc::clone(service.hub());
    let listener = WireListener::unix(sock).expect("bind replica");
    let daemon = Daemon::spawn_replicated(
        Arc::clone(&service) as Arc<dyn PolicyService>,
        universe,
        listener,
        DaemonConfig::default(),
        Some(hub),
    )
    .expect("spawn replica");
    (daemon, service, monitor)
}

/// Polls until the replica's `(epoch, checksum)` equals the primary's.
fn await_convergence(primary: &WireClient, replica: &WireClient, what: &str) {
    let deadline = Instant::now() + DEADLINE;
    loop {
        let want = primary.version_info().expect("primary version");
        let got = replica.version_info().expect("replica version");
        if got.epoch == want.epoch && got.checksum == want.checksum {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{what}: replica stuck at epoch {} checksum {:#018x}, \
             primary at epoch {} checksum {:#018x}",
            got.epoch,
            got.checksum,
            want.epoch,
            want.checksum
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn replicas_converge_serve_reads_and_refuse_writes() {
    let dir = TempDir::new("repl-e2e").unwrap();
    let (primary_daemon, _primary_service, primary_sock) = spawn_primary(&dir);
    let (replica_a, _svc_a, _) = spawn_replica(&primary_sock, &dir.path().join("a.sock"));
    let (replica_b, _svc_b, _) = spawn_replica(&primary_sock, &dir.path().join("b.sock"));

    let client = WireClient::connect_unix(&primary_sock).expect("connect primary");
    let client_a = WireClient::connect_unix(dir.path().join("a.sock")).expect("connect a");
    let client_b = WireClient::connect_unix(dir.path().join("b.sock")).expect("connect b");
    let (universe, _, admin) = arena();

    // Randomized batches through the primary; every epoch must arrive
    // at both replicas with a byte-identical checksum.
    let mut rng = Rng(7);
    for _ in 0..20 {
        client
            .submit(random_batch(&mut rng, &universe, admin))
            .expect("primary accepts writes");
    }
    await_convergence(&client, &client_a, "replica a");
    await_convergence(&client, &client_b, "replica b");

    // Replicas serve the read alphabet from their own snapshots…
    let stats = client_a.stats().expect("replica stats");
    let primary_stats = client.stats().expect("primary stats");
    assert_eq!(stats.edges, primary_stats.edges);
    assert_eq!(stats.checksum, primary_stats.checksum);
    let repl = stats.replication.expect("replica reports its role");
    assert_eq!(repl.role, ReplicationRole::Replica);
    assert_eq!(repl.last_applied_epoch, primary_stats.epoch);
    assert_eq!(repl.lag, 0, "converged replica reports zero lag");
    let primary_repl = primary_stats.replication.expect("primary reports too");
    assert_eq!(primary_repl.role, ReplicationRole::Primary);

    // …including analyses, sessions, and audit-free reads.
    let subj = universe.find_user("subj0").unwrap();
    let session = client_b.create_session(subj).expect("replica session");
    assert!(client_b.drop_session(session).unwrap());

    // Writes are refused with the typed error, not a transport failure.
    match client_a.submit(random_batch(&mut rng, &universe, admin)) {
        Err(ServiceError::ReadOnly) => {}
        other => panic!("expected ReadOnly from a replica, got {other:?}"),
    }
    match client_a.compact() {
        Err(ServiceError::ReadOnly) => {}
        other => panic!("expected ReadOnly for compact, got {other:?}"),
    }

    replica_a.shutdown();
    replica_b.shutdown();
    primary_daemon.shutdown();
}

#[test]
fn killed_replica_catches_up_after_restart() {
    let dir = TempDir::new("repl-restart").unwrap();
    let (primary_daemon, _svc, primary_sock) = spawn_primary(&dir);
    let client = WireClient::connect_unix(&primary_sock).expect("connect primary");
    let (universe, _, admin) = arena();
    let mut rng = Rng(11);

    // History exists before the replica is born: its bootstrap is a
    // snapshot-at-epoch, and the stream resumes exactly there.
    for _ in 0..8 {
        client
            .submit(random_batch(&mut rng, &universe, admin))
            .expect("submit");
    }
    let sock = dir.path().join("replica.sock");
    let (daemon, service, _) = spawn_replica(&primary_sock, &sock);
    {
        let client_r = WireClient::connect_unix(&sock).expect("connect replica");
        await_convergence(&client, &client_r, "initial catch-up");
    }

    // Kill the replica mid-stream…
    daemon.shutdown();
    drop(service);
    // …advance the primary while it is down…
    for _ in 0..8 {
        client
            .submit(random_batch(&mut rng, &universe, admin))
            .expect("submit while replica down");
    }
    // …and a restarted replica converges again from a fresh bootstrap.
    let sock2 = dir.path().join("replica2.sock");
    let (daemon2, _svc2, _) = spawn_replica(&primary_sock, &sock2);
    let client_r = WireClient::connect_unix(&sock2).expect("reconnect replica");
    await_convergence(&client, &client_r, "post-restart catch-up");

    daemon2.shutdown();
    primary_daemon.shutdown();
}

#[test]
fn diverged_replica_refuses_and_rebootstraps() {
    let dir = TempDir::new("repl-diverge").unwrap();
    let (primary_daemon, _svc, primary_sock) = spawn_primary(&dir);
    let client = WireClient::connect_unix(&primary_sock).expect("connect primary");
    let (universe, _, admin) = arena();
    let mut rng = Rng(13);

    for _ in 0..4 {
        client
            .submit(random_batch(&mut rng, &universe, admin))
            .expect("submit");
    }
    let sock = dir.path().join("replica.sock");
    let (daemon, _service, monitor) = spawn_replica(&primary_sock, &sock);
    let client_r = WireClient::connect_unix(&sock).expect("connect replica");
    await_convergence(&client, &client_r, "pre-divergence sync");

    // Sabotage: silently install a tampered policy at the same epoch.
    // The next delta applies cleanly but the post-apply checksum
    // disagrees with the primary's — the replica must refuse the frame
    // and re-bootstrap rather than serve corrupt state.
    {
        let snapshot = monitor.read_snapshot();
        let epoch = snapshot.epoch;
        // The replica's own universe: its tag must match the policy's.
        let replica_universe = snapshot.universe().clone();
        let mut tampered = snapshot.policy().clone();
        let subj = replica_universe.find_user("subj0").unwrap();
        let rogue = replica_universe
            .find_role(&format!("r{}", ROLES - 1))
            .unwrap();
        let edge = Edge::UserRole(subj, rogue);
        if !tampered.remove_edge(edge) {
            tampered.add_edge(edge);
        }
        monitor
            .install_replica_state(
                replica_universe,
                tampered,
                epoch,
                (*monitor.constraints()).clone(),
            )
            .expect("tamper install");
    }

    client
        .submit(random_batch(&mut rng, &universe, admin))
        .expect("submit post-tamper");
    // Convergence implies the divergence was detected: without the
    // re-bootstrap the checksums could never rejoin.
    await_convergence(&client, &client_r, "post-divergence recovery");

    daemon.shutdown();
    primary_daemon.shutdown();
}

#[test]
fn promotion_fences_the_stale_primary() {
    let dir = TempDir::new("repl-promote").unwrap();
    let (primary_daemon, _svc, primary_sock) = spawn_primary(&dir);
    let client = WireClient::connect_unix(&primary_sock).expect("connect primary");
    let (universe, _, admin) = arena();
    let mut rng = Rng(17);
    for _ in 0..4 {
        client
            .submit(random_batch(&mut rng, &universe, admin))
            .expect("submit");
    }

    let sock = dir.path().join("replica.sock");
    let (replica_daemon, _service, _) = spawn_replica(&primary_sock, &sock);
    let client_r = WireClient::connect_unix(&sock).expect("connect replica");
    await_convergence(&client, &client_r, "pre-promotion sync");

    // Failover: promote the replica. It stops following, bumps its
    // term, and starts accepting writes.
    let epoch_at_promotion = client_r.version_info().unwrap().epoch;
    let (term, epoch) = client_r.promote().expect("promote");
    assert_eq!(term, 1, "first promotion bumps the replica to term 1");
    assert_eq!(epoch, epoch_at_promotion);
    client_r
        .submit(random_batch(&mut rng, &universe, admin))
        .expect("promoted node accepts writes");
    let stats = client_r.stats().expect("stats");
    assert_eq!(
        stats.replication.expect("still reports").role,
        ReplicationRole::Primary
    );

    // The fence: the demoted primary (still term 0) must refuse a
    // subscriber announcing the new term, so it can never feed a
    // follower that has seen the newer history.
    let mut raw = std::os::unix::net::UnixStream::connect(&primary_sock).expect("connect raw");
    wire::write_frame(
        &mut raw,
        FrameKind::ReplSubscribe,
        1,
        &wire::encode_repl_subscribe(term, None),
    )
    .expect("subscribe");
    raw.flush().unwrap();
    let frame = wire::read_frame(&mut raw)
        .expect("stale primary answers")
        .expect("a frame, not EOF");
    assert_eq!(frame.kind, FrameKind::Error);
    match wire::decode_error(&frame.payload).expect("decodes") {
        ServiceError::Transport { message } => {
            assert!(
                message.contains("stale primary"),
                "fence names the refusal, got: {message}"
            );
        }
        other => panic!("expected Transport(stale primary), got {other:?}"),
    }

    // An idempotent re-promotion does not bump the term again.
    let (term_again, _) = client_r.promote().expect("re-promote");
    assert_eq!(term_again, 1);

    replica_daemon.shutdown();
    primary_daemon.shutdown();
}
