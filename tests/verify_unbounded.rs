//! Differential tests for the unbounded verification engines.
//!
//! The bounded breadth-first search is the executable ground truth
//! wherever it is definite (a `Reachable` witness, or `Unreachable`
//! after exhausting the whole reachable space). These properties pin
//! the unbounded engines to it:
//!
//! * monotone saturation agrees with bounded BFS on grow-only instances
//!   and is *always* definitive there, independent of the bounds;
//! * the DPLL-grounded bounded model checker never contradicts a
//!   definite BFS answer on general (revocation-capable) instances, and
//!   matches it whenever the BFS finds a witness within the BMC bound;
//! * the `perm_reachable` escalation path gives the same answers as the
//!   engines invoked directly;
//! * grow-only workloads are never `Unknown`, no matter how starved the
//!   bounded search is (`max_states = 0` included).

use adminref_core::prelude::*;
use adminref_core::safety::prepare_alphabet;
use adminref_core::verify::{bmc, is_monotone, saturation::saturate};
use adminref_workloads::{grow_only, GrowOnlySpec};
use proptest::prelude::*;

const USERS: usize = 4;
const ROLES: usize = 5;

/// Blueprint for one random policy (index lists shrink well).
#[derive(Clone, Debug)]
struct PolicySpec {
    ua: Vec<(u8, u8)>,
    rh: Vec<(u8, u8)>,
    /// (role, privilege blueprint)
    pa: Vec<(u8, PrivSpec)>,
}

#[derive(Clone, Debug)]
enum PrivSpec {
    Perm(u8),
    GrantUserRole(u8, u8),
    GrantRoleRole(u8, u8),
    RevokeUserRole(u8, u8),
}

/// `with_revokes: false` generates only grow-only instances (no `♦`
/// privilege anywhere in the edge universe).
fn priv_spec(with_revokes: bool) -> BoxedStrategy<PrivSpec> {
    let grants = prop_oneof![
        (0u8..3).prop_map(PrivSpec::Perm),
        ((0u8..USERS as u8), (0u8..ROLES as u8)).prop_map(|(u, r)| PrivSpec::GrantUserRole(u, r)),
        ((0u8..ROLES as u8), (0u8..ROLES as u8)).prop_map(|(a, b)| PrivSpec::GrantRoleRole(a, b)),
    ];
    if with_revokes {
        prop_oneof![
            3 => grants,
            1 => ((0u8..USERS as u8), (0u8..ROLES as u8))
                .prop_map(|(u, r)| PrivSpec::RevokeUserRole(u, r)),
        ]
        .boxed()
    } else {
        grants.boxed()
    }
}

fn policy_spec(with_revokes: bool) -> impl Strategy<Value = PolicySpec> {
    (
        prop::collection::vec(((0u8..USERS as u8), (0u8..ROLES as u8)), 0..4),
        prop::collection::vec(((0u8..ROLES as u8), (0u8..ROLES as u8)), 0..5),
        prop::collection::vec(((0u8..ROLES as u8), priv_spec(with_revokes)), 0..5),
    )
        .prop_map(|(ua, rh, pa)| PolicySpec { ua, rh, pa })
}

fn build(spec: &PolicySpec) -> (Universe, Policy, Vec<UserId>) {
    let mut uni = Universe::new();
    let users: Vec<UserId> = (0..USERS).map(|i| uni.user(&format!("u{i}"))).collect();
    let roles: Vec<RoleId> = (0..ROLES).map(|i| uni.role(&format!("r{i}"))).collect();
    let mut policy = Policy::new(&uni);
    for &(u, r) in &spec.ua {
        policy.add_edge(Edge::UserRole(users[u as usize], roles[r as usize]));
    }
    for &(a, b) in &spec.rh {
        policy.add_edge(Edge::RoleRole(roles[a as usize], roles[b as usize]));
    }
    for (r, ps) in &spec.pa {
        let p = match ps {
            PrivSpec::Perm(i) => {
                let perm = uni.perm(["read", "write", "prnt"][*i as usize % 3], "obj");
                uni.priv_perm(perm)
            }
            PrivSpec::GrantUserRole(u, r) => {
                uni.grant_user_role(users[*u as usize], roles[*r as usize])
            }
            PrivSpec::GrantRoleRole(a, b) => {
                uni.grant_role_role(roles[*a as usize], roles[*b as usize])
            }
            PrivSpec::RevokeUserRole(u, r) => {
                uni.revoke_user_role(users[*u as usize], roles[*r as usize])
            }
        };
        policy.add_edge(Edge::RolePriv(roles[*r as usize], p));
    }
    (uni, policy, users)
}

fn answer_tag(a: &ReachabilityAnswer) -> &'static str {
    match a {
        ReachabilityAnswer::Reachable { .. } => "reachable",
        ReachabilityAnswer::Unreachable => "unreachable",
        ReachabilityAnswer::Unknown { .. } => "unknown",
    }
}

/// Replays `witness` from `root` and checks the target is reached in
/// the final policy.
fn witness_is_valid(
    uni: &mut Universe,
    root: &Policy,
    witness: &CommandQueue,
    entity: Entity,
    target: PrivId,
    mode: AuthMode,
) -> bool {
    let final_policy = run_pure(uni, root, witness, mode);
    ReachIndex::build(uni, &final_policy).reach_priv(entity, target)
}

/// Bounds generous enough that the bounded search is definite on most
/// generated instances, without ever being *required* to be.
fn generous() -> SafetyConfig {
    SafetyConfig {
        max_steps: 3,
        max_states: 4_000,
        jobs: 1,
        escalate: false,
        ..SafetyConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On grow-only instances saturation is always definitive and,
    /// wherever the bounded BFS is definite too, the two agree. Every
    /// saturation witness replays to a policy reaching the target.
    #[test]
    fn saturation_agrees_with_bfs_on_monotone_instances(
        spec in policy_spec(false),
        ui in 0u8..USERS as u8,
        pi in 0u8..3,
    ) {
        let (mut uni, policy, users) = build(&spec);
        let entity = Entity::User(users[ui as usize]);
        let perm = uni.perm(["read", "write", "prnt"][pi as usize], "obj");
        let target = uni.priv_perm(perm);
        let config = generous();
        let alphabet = prepare_alphabet(&mut uni, &policy, config);
        prop_assert!(is_monotone(&uni, &policy, &alphabet), "generator must be grow-only");
        let outcome = saturate(&uni, &policy, &alphabet, config.auth_mode, entity, target);
        prop_assert_ne!(answer_tag(&outcome.answer), "unknown", "saturation is definitive");
        let bfs = perm_reachable(&mut uni, &policy, entity, perm, config);
        if answer_tag(&bfs) != "unknown" {
            prop_assert_eq!(answer_tag(&bfs), answer_tag(&outcome.answer));
        }
        if let ReachabilityAnswer::Reachable { witness } = &outcome.answer {
            prop_assert!(witness_is_valid(
                &mut uni, &policy, witness, entity, target, config.auth_mode,
            ));
        }
    }

    /// Same agreement under ordered authorization, where the alphabet
    /// is expanded with ⊑-weaker commands: the monotonicity check and
    /// the saturation fixpoint are sound in every mode.
    #[test]
    fn saturation_agrees_with_bfs_under_ordered_mode(
        spec in policy_spec(false),
        ui in 0u8..USERS as u8,
    ) {
        let (mut uni, policy, users) = build(&spec);
        let entity = Entity::User(users[ui as usize]);
        let perm = uni.perm("write", "obj");
        let target = uni.priv_perm(perm);
        let config = SafetyConfig {
            auth_mode: AuthMode::Ordered(OrderingMode::Extended),
            weaker_depth: Some(1),
            max_states: 1_500,
            ..generous()
        };
        let alphabet = prepare_alphabet(&mut uni, &policy, config);
        prop_assert!(is_monotone(&uni, &policy, &alphabet));
        let outcome = saturate(&uni, &policy, &alphabet, config.auth_mode, entity, target);
        prop_assert_ne!(answer_tag(&outcome.answer), "unknown");
        let bfs = perm_reachable(&mut uni, &policy, entity, perm, config);
        if answer_tag(&bfs) != "unknown" {
            prop_assert_eq!(answer_tag(&bfs), answer_tag(&outcome.answer));
        }
        if let ReachabilityAnswer::Reachable { witness } = &outcome.answer {
            prop_assert!(witness_is_valid(
                &mut uni, &policy, witness, entity, target, config.auth_mode,
            ));
        }
    }

    /// On general (revocation-capable) explicit-mode instances the
    /// model checker never contradicts a definite BFS answer: a BFS
    /// witness within the bound forces SAT (with a valid witness), and
    /// a BFS exhaustion refutation forbids SAT at any bound.
    #[test]
    fn bmc_never_contradicts_a_definite_bfs_answer(
        spec in policy_spec(true),
        ui in 0u8..USERS as u8,
        pi in 0u8..3,
    ) {
        let (mut uni, policy, users) = build(&spec);
        let entity = Entity::User(users[ui as usize]);
        let perm = uni.perm(["read", "write", "prnt"][pi as usize], "obj");
        let target = uni.priv_perm(perm);
        let config = generous();
        if ReachIndex::build(&uni, &policy).reach_priv(entity, target) {
            // Root-reachable: nothing to check, both engines short-circuit.
            return;
        }
        let alphabet = prepare_alphabet(&mut uni, &policy, config);
        let bfs = perm_reachable(&mut uni, &policy, entity, perm, config);
        let report = bmc::check(&uni, &policy, &alphabet, entity, target, BmcConfig::default());
        match (&bfs, &report.outcome) {
            // max_steps = 3 ≤ the default BMC bound, so the model
            // checker must find this (or a shorter) witness.
            (ReachabilityAnswer::Reachable { witness }, BmcOutcome::Reachable { witness: w }) => {
                prop_assert!(w.len() <= witness.len(), "BMC deepens iteratively");
                prop_assert!(witness_is_valid(
                    &mut uni, &policy, w, entity, target, config.auth_mode,
                ));
            }
            (ReachabilityAnswer::Reachable { witness }, outcome) => {
                prop_assert!(
                    false,
                    "BFS witness of {} step(s) but BMC said {:?}",
                    witness.len(),
                    outcome
                );
            }
            (ReachabilityAnswer::Unreachable, BmcOutcome::Reachable { witness }) => {
                prop_assert!(false, "BFS exhausted the space but BMC found {:?}", witness);
            }
            // BMC `Unreachable` comes from the recurrence-diameter
            // closure and so is definitive; it must not contradict a
            // BFS witness (covered above). `Inconclusive` is always
            // allowed against a definite refutation.
            _ => {}
        }
    }

    /// The `perm_reachable` escalation path (bounded search starved to
    /// `max_states = 2`, then the unbounded engines) agrees with a
    /// generously-bounded definite BFS, and `verify_perm_reachable`
    /// reports the same answer as the escalating search.
    #[test]
    fn escalation_agrees_with_generous_bfs(
        spec in policy_spec(true),
        ui in 0u8..USERS as u8,
        pi in 0u8..3,
    ) {
        let (mut uni, policy, users) = build(&spec);
        let entity = Entity::User(users[ui as usize]);
        let perm = uni.perm(["read", "write", "prnt"][pi as usize], "obj");
        let target = uni.priv_perm(perm);
        let reference = perm_reachable(&mut uni, &policy, entity, perm, generous());
        let starved = SafetyConfig {
            max_states: 2,
            escalate: true,
            ..generous()
        };
        let escalated = perm_reachable(&mut uni, &policy, entity, perm, starved);
        let report = verify_perm_reachable(&mut uni, &policy, entity, perm, starved);
        if answer_tag(&reference) != "unknown" && answer_tag(&escalated) != "unknown" {
            prop_assert_eq!(answer_tag(&reference), answer_tag(&escalated));
        }
        if answer_tag(&escalated) != "unknown" && answer_tag(&report.answer) != "unknown" {
            prop_assert_eq!(answer_tag(&escalated), answer_tag(&report.answer));
        }
        for answer in [&escalated, &report.answer] {
            if let ReachabilityAnswer::Reachable { witness } = answer {
                prop_assert!(witness_is_valid(
                    &mut uni, &policy, witness, entity, target, starved.auth_mode,
                ));
            }
        }
    }
}

/// Regression: a wide grow-only workload is never `Unknown`, no matter
/// how starved the bounded search is — `max_states = 0` starves BFS
/// immediately and the saturation engine still closes both polarities.
#[test]
fn wide_grow_only_workloads_are_never_unknown() {
    let mut w = grow_only(GrowOnlySpec {
        width: 64,
        users: 3,
    });
    let admin = w.admin;
    let member = w.members[0];
    for max_states in [0usize, 1, 4] {
        let config = SafetyConfig {
            max_steps: 1,
            max_states,
            ..SafetyConfig::default()
        };
        let hit = perm_reachable(
            &mut w.universe,
            &w.policy,
            Entity::User(member),
            w.goal_perm,
            config,
        );
        assert!(
            matches!(hit, ReachabilityAnswer::Reachable { .. }),
            "max_states={max_states}: {hit:?}"
        );
        let miss = perm_reachable(
            &mut w.universe,
            &w.policy,
            Entity::User(member),
            w.absent_perm,
            config,
        );
        assert!(
            matches!(miss, ReachabilityAnswer::Unreachable),
            "max_states={max_states}: {miss:?}"
        );
        // The admin's own grant privileges are not the goal permission.
        let admin_miss = perm_reachable(
            &mut w.universe,
            &w.policy,
            Entity::User(admin),
            w.absent_perm,
            config,
        );
        assert!(matches!(admin_miss, ReachabilityAnswer::Unreachable));
    }
}
