//! Wire-codec conformance: golden bytes pinning codec == fixture ==
//! spec, re-encode round-trips over every `Request`/`Response`/
//! `ServiceError` variant, and adversarial frames (truncated,
//! oversized, bad magic, future version, mutated payloads) decoding to
//! typed errors — never panics.

use adminref_core::admission::{
    AdmissionReport, ConstraintSet, EdgeStatus, ImpactReport, PermFlip, StatusChange,
};
use adminref_core::command::{Command, CommandKind};
use adminref_core::ids::{ActionId, Entity, ObjectId, Perm, PrivId, RoleId, UserId};
use adminref_core::lint::{Confirmation, Finding, FindingKind, LintReport, Severity};
use adminref_core::ordering::OrderingMode;
use adminref_core::reach::EdgeDelta;
use adminref_core::safety::SafetyConfig;
use adminref_core::session::SessionError;
use adminref_core::transition::AuthMode;
use adminref_core::universe::{Edge, Universe};
use adminref_monitor::{AuditEvent, Decision, SessionId};
use adminref_service::protocol::{
    RefinementDirection, ReplicationRole, ReplicationStatus, Request, Response, ServiceError,
    ServiceStats, VersionInfo,
};
use adminref_service::wire::{
    self, FrameHeader, FrameKind, WireError, HEADER_LEN, MAX_PAYLOAD, WIRE_VERSION,
};
use adminref_store::RecoveryReport;
use adminref_workloads::{layered, populate_perms, populate_users, LayeredSpec};
use proptest::prelude::*;

/// A small fixed workload: the universe resolves decoded requests, the
/// policy feeds `CheckRefinement` candidates.
fn test_world() -> (Universe, adminref_core::policy::Policy) {
    let mut h = layered(LayeredSpec {
        layers: 3,
        width: 3,
        edge_prob: 0.4,
        seed: 0xC0DEC,
    });
    populate_users(&mut h, 4, 2, 0xC0DEC);
    populate_perms(&mut h, 2, 4, 0xC0DEC);
    (h.universe, h.policy)
}

fn cmd(actor: u32, kind: CommandKind, edge: Edge) -> Command {
    Command {
        actor: UserId::from_index(actor as usize),
        kind,
        edge,
    }
}

fn perm(action: usize, object: usize) -> Perm {
    Perm {
        action: ActionId::from_index(action),
        object: ObjectId::from_index(object),
    }
}

/// One instance of every request variant, with assorted field shapes.
fn all_requests(policy: &adminref_core::policy::Policy) -> Vec<Request> {
    vec![
        Request::CheckAccess {
            session: SessionId::from_raw(1),
            perm: perm(2, 0),
        },
        Request::CreateSession {
            user: UserId::from_index(3),
        },
        Request::ActivateRole {
            session: SessionId::from_raw(300),
            role: RoleId::from_index(5),
        },
        Request::DeactivateRole {
            session: SessionId::from_raw(0),
            role: RoleId::from_index(0),
        },
        Request::DropSession {
            session: SessionId::from_raw(u64::MAX),
        },
        Request::Submit {
            commands: Vec::new(),
        },
        Request::Submit {
            commands: vec![
                cmd(
                    0,
                    CommandKind::Grant,
                    Edge::UserRole(UserId::from_index(1), RoleId::from_index(3)),
                ),
                cmd(
                    2,
                    CommandKind::Revoke,
                    Edge::RoleRole(RoleId::from_index(4), RoleId::from_index(6)),
                ),
                cmd(
                    1,
                    CommandKind::Grant,
                    Edge::RolePriv(RoleId::from_index(2), PrivId::from_index(7)),
                ),
            ],
        },
        Request::AnalyzeReach {
            entity: Entity::User(UserId::from_index(2)),
            perm: perm(0, 1),
            config: SafetyConfig {
                max_steps: 5,
                max_states: 10_000,
                auth_mode: AuthMode::Ordered(OrderingMode::ExtendedWithRevocation),
                weaker_depth: Some(3),
                jobs: 2,
                escalate: true,
                slice: false,
            },
        },
        Request::AnalyzeReach {
            entity: Entity::Role(RoleId::from_index(1)),
            perm: perm(1, 0),
            config: SafetyConfig::default(),
        },
        Request::CheckRefinement {
            candidate: policy.clone(),
            direction: RefinementDirection::LiveRefinesCandidate,
            max_witnesses: 8,
        },
        Request::AuditTail { max: 128 },
        Request::AuditSince { after: 77, max: 0 },
        Request::Version,
        Request::Stats,
        Request::Compact,
        Request::Lint {
            sod_pairs: vec![(RoleId::from_index(0), RoleId::from_index(4))],
        },
        Request::Analyze {
            commands: vec![cmd(
                0,
                CommandKind::Grant,
                Edge::UserRole(UserId::from_index(1), RoleId::from_index(3)),
            )],
        },
        Request::SetConstraints {
            constraints: ConstraintSet {
                sod_pairs: vec![(RoleId::from_index(1), RoleId::from_index(5))],
                deny_level: Some(Severity::Error),
                frozen_edges: vec![Edge::RolePriv(RoleId::from_index(2), PrivId::from_index(0))],
            },
        },
        Request::SetConstraints {
            constraints: ConstraintSet::default(),
        },
        Request::GetConstraints,
        Request::Promote,
    ]
}

/// One instance of every response variant.
fn all_responses() -> Vec<Response> {
    let outcome_auth = adminref_core::transition::StepOutcome {
        authorization: Some(adminref_core::transition::Authorization {
            held: PrivId::from_index(4),
            target: PrivId::from_index(2),
        }),
        changed: true,
    };
    let outcome_refused = adminref_core::transition::StepOutcome {
        authorization: None,
        changed: false,
    };
    vec![
        Response::Access(true),
        Response::Access(false),
        Response::SessionCreated(SessionId::from_raw(9000)),
        Response::RoleActivated,
        Response::RoleDeactivated(false),
        Response::SessionDropped(true),
        Response::Outcomes(vec![outcome_auth, outcome_refused]),
        Response::Reach(adminref_core::safety::ReachabilityAnswer::Reachable {
            witness: adminref_core::command::CommandQueue::from_commands(vec![cmd(
                0,
                CommandKind::Grant,
                Edge::UserRole(UserId::from_index(1), RoleId::from_index(2)),
            )]),
        }),
        Response::Reach(adminref_core::safety::ReachabilityAnswer::Unreachable),
        Response::Reach(adminref_core::safety::ReachabilityAnswer::Unknown {
            truncation: adminref_core::safety::Truncation {
                states: 5000,
                depth: 4,
                cap_hit: true,
            },
        }),
        Response::Refinement(adminref_service::protocol::RefinementReply {
            holds: false,
            total_violations: 12,
            witnesses: vec![adminref_core::refinement::RefinementViolation {
                entity: Entity::Role(RoleId::from_index(3)),
                perm: perm(1, 1),
            }],
        }),
        Response::Audit(vec![
            AuditEvent {
                seq: 41,
                command: cmd(
                    1,
                    CommandKind::Revoke,
                    Edge::RoleRole(RoleId::from_index(0), RoleId::from_index(1)),
                ),
                decision: Decision::Refused,
                changed: false,
            },
            AuditEvent {
                seq: 42,
                command: cmd(
                    0,
                    CommandKind::Grant,
                    Edge::UserRole(UserId::from_index(2), RoleId::from_index(2)),
                ),
                decision: Decision::Executed {
                    held: PrivId::from_index(1),
                    target: PrivId::from_index(0),
                },
                changed: true,
            },
        ]),
        Response::Version(VersionInfo {
            epoch: 123456789,
            checksum: 0x0123_4567_89AB_CDEF,
        }),
        Response::Stats(ServiceStats {
            epoch: 17,
            checksum: 0xDEAD_BEEF_CAFE_F00D,
            users: 4,
            roles: 9,
            edges: 30,
            sessions: 2,
            audit_retained: 100,
            forced_deactivations: 1,
            analyses_run: 5,
            analyses_indefinite: 1,
            lints_run: 2,
            lint_findings: 7,
            recovery: Some(RecoveryReport {
                replayed: 12,
                truncated_tail: true,
                divergent: 0,
            }),
            replication: Some(ReplicationStatus {
                role: ReplicationRole::Replica,
                term: 3,
                last_applied_epoch: 17,
                lag: 2,
            }),
        }),
        Response::Stats(ServiceStats {
            epoch: 0,
            checksum: 0,
            users: 0,
            roles: 0,
            edges: 0,
            sessions: 0,
            audit_retained: 0,
            forced_deactivations: 0,
            analyses_run: 0,
            analyses_indefinite: 0,
            lints_run: 0,
            lint_findings: 0,
            recovery: None,
            replication: None,
        }),
        Response::Promoted { term: 2, epoch: 40 },
        Response::Compacted,
        Response::Lint(LintReport {
            rules_checked: 6,
            closure_edges: 14,
            findings: vec![Finding {
                kind: FindingKind::ShadowedGrant,
                severity: Severity::Warning,
                role: RoleId::from_index(2),
                term: Some(PrivId::from_index(5)),
                edge: Some(Edge::RolePriv(RoleId::from_index(2), PrivId::from_index(5))),
                confirmation: Some(Confirmation::Potential),
                message: "grant shadowed by inherited privilege".to_string(),
            }],
        }),
        Response::Impact(ImpactReport {
            outcomes: vec![outcome_auth, outcome_refused],
            deltas: vec![adminref_core::reach::EdgeDelta {
                edge: Edge::UserRole(UserId::from_index(1), RoleId::from_index(3)),
                added: true,
            }],
            flipped: vec![PermFlip {
                user: UserId::from_index(2),
                term: PrivId::from_index(4),
                now_granted: false,
            }],
            grow_only_before: true,
            grow_only_after: false,
            status_changes: vec![StatusChange {
                edge: Edge::RoleRole(RoleId::from_index(0), RoleId::from_index(1)),
                before: EdgeStatus::Frozen,
                after: EdgeStatus::Volatile,
            }],
            findings: vec![Finding {
                kind: FindingKind::SodConflict,
                severity: Severity::Error,
                role: RoleId::from_index(1),
                term: None,
                edge: None,
                confirmation: Some(Confirmation::Confirmed),
                message: "user reaches both roles of a declared pair".to_string(),
            }],
            severed_sessions: vec![3, 909],
        }),
        Response::Impact(ImpactReport::default()),
        Response::Constraints(ConstraintSet {
            sod_pairs: vec![(RoleId::from_index(0), RoleId::from_index(2))],
            deny_level: Some(Severity::Warning),
            frozen_edges: vec![Edge::UserRole(UserId::from_index(0), RoleId::from_index(1))],
        }),
        Response::Constraints(ConstraintSet::default()),
    ]
}

/// One instance of every error variant (Backend handled separately:
/// its encoding is deliberately lossy).
fn all_errors() -> Vec<ServiceError> {
    vec![
        ServiceError::UnknownSession(SessionId::from_raw(5)),
        ServiceError::Session(SessionError::ActivationDenied {
            user: UserId::from_index(1),
            role: RoleId::from_index(2),
        }),
        ServiceError::Aborted,
        ServiceError::ForeignPolicy,
        ServiceError::InvalidTenant("bad/name".to_string()),
        ServiceError::UnknownTenant("ghost".to_string()),
        ServiceError::Recovery {
            tenant: "hospital".to_string(),
            divergent: 3,
        },
        ServiceError::Protocol {
            expected: "Outcomes(len 1)",
        },
        ServiceError::Transport {
            message: "connection reset".to_string(),
        },
        ServiceError::ReadOnly,
        ServiceError::Admission(AdmissionReport {
            findings: vec![
                Finding {
                    kind: FindingKind::SodConflict,
                    severity: Severity::Error,
                    role: RoleId::from_index(3),
                    term: None,
                    edge: None,
                    confirmation: Some(Confirmation::Confirmed),
                    message: "separation-of-duty pair reachable by one user".to_string(),
                },
                Finding {
                    kind: FindingKind::FrozenEdgeViolation,
                    severity: Severity::Error,
                    role: RoleId::from_index(0),
                    term: None,
                    edge: Some(Edge::UserRole(UserId::from_index(1), RoleId::from_index(0))),
                    confirmation: None,
                    message: "asserted-permanent edge becomes revocable".to_string(),
                },
            ],
            constraints_checked: 2,
        }),
        ServiceError::Admission(AdmissionReport::default()),
    ]
}

// ----- golden bytes ----------------------------------------------------

fn repo_path(rel: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn frame_bytes(kind: FrameKind, id: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    wire::write_frame(&mut out, kind, id, payload).expect("vec write");
    out
}

/// The fixture's frames, re-encoded from live code. Names must match
/// `fixtures/wire_golden.hex`; the hex must also appear (whitespace
/// insignificant) in `specs/wire_protocol.md`.
fn golden_frames() -> Vec<(&'static str, Vec<u8>)> {
    vec![
        (
            "version-request",
            frame_bytes(
                FrameKind::Request,
                1,
                &wire::encode_request(&Request::Version),
            ),
        ),
        (
            "check-access-request",
            frame_bytes(
                FrameKind::Request,
                7,
                &wire::encode_request(&Request::CheckAccess {
                    session: SessionId::from_raw(1),
                    perm: perm(2, 0),
                }),
            ),
        ),
        (
            "submit-request",
            frame_bytes(
                FrameKind::Request,
                8,
                &wire::encode_request(&Request::Submit {
                    commands: vec![cmd(
                        0,
                        CommandKind::Grant,
                        Edge::UserRole(UserId::from_index(1), RoleId::from_index(3)),
                    )],
                }),
            ),
        ),
        (
            "access-response",
            frame_bytes(
                FrameKind::Response,
                7,
                &wire::encode_response(&Response::Access(true)),
            ),
        ),
        (
            "outcomes-response",
            frame_bytes(
                FrameKind::Response,
                8,
                &wire::encode_response(&Response::Outcomes(vec![
                    adminref_core::transition::StepOutcome {
                        authorization: Some(adminref_core::transition::Authorization {
                            held: PrivId::from_index(4),
                            target: PrivId::from_index(2),
                        }),
                        changed: true,
                    },
                ])),
            ),
        ),
        (
            "aborted-error",
            frame_bytes(
                FrameKind::Error,
                9,
                &wire::encode_error(&ServiceError::Aborted),
            ),
        ),
        (
            "set-constraints-request",
            frame_bytes(
                FrameKind::Request,
                11,
                &wire::encode_request(&Request::SetConstraints {
                    constraints: ConstraintSet {
                        sod_pairs: vec![(RoleId::from_index(1), RoleId::from_index(5))],
                        deny_level: Some(Severity::Error),
                        frozen_edges: vec![Edge::UserRole(
                            UserId::from_index(0),
                            RoleId::from_index(3),
                        )],
                    },
                }),
            ),
        ),
        (
            "constraints-response",
            frame_bytes(
                FrameKind::Response,
                11,
                &wire::encode_response(&Response::Constraints(ConstraintSet {
                    sod_pairs: vec![(RoleId::from_index(1), RoleId::from_index(5))],
                    deny_level: Some(Severity::Error),
                    frozen_edges: vec![Edge::UserRole(
                        UserId::from_index(0),
                        RoleId::from_index(3),
                    )],
                })),
            ),
        ),
        (
            "admission-error",
            frame_bytes(
                FrameKind::Error,
                12,
                &wire::encode_error(&ServiceError::Admission(AdmissionReport {
                    findings: vec![Finding {
                        kind: FindingKind::SodConflict,
                        severity: Severity::Error,
                        role: RoleId::from_index(1),
                        term: None,
                        edge: None,
                        confirmation: Some(Confirmation::Confirmed),
                        message: "sod".to_string(),
                    }],
                    constraints_checked: 1,
                })),
            ),
        ),
        (
            "repl-subscribe",
            frame_bytes(
                FrameKind::ReplSubscribe,
                1,
                &wire::encode_repl_subscribe(1, Some(41)),
            ),
        ),
        (
            "repl-delta",
            frame_bytes(
                FrameKind::ReplDelta,
                0,
                &wire::encode_repl_delta(
                    1,
                    42,
                    &[EdgeDelta {
                        edge: Edge::UserRole(UserId::from_index(1), RoleId::from_index(3)),
                        added: true,
                    }],
                    0x0123_4567_89AB_CDEF,
                ),
            ),
        ),
    ]
}

/// Regeneration helper, not a check: prints the live frames in fixture
/// format. When the protocol legitimately changes, run
/// `cargo test -p adminref-suite --test wire_codec -- --ignored --nocapture`
/// and paste the output into `fixtures/wire_golden.hex` and the spec's
/// worked examples (and bump `WIRE_VERSION` if the change is breaking).
#[test]
#[ignore = "regeneration helper for fixtures/wire_golden.hex"]
fn print_golden_fixture() {
    for (name, bytes) in golden_frames() {
        println!("{name} {}", hex(&bytes));
    }
}

#[test]
fn golden_bytes_pin_codec_fixture_and_spec() {
    let fixture = std::fs::read_to_string(repo_path("fixtures/wire_golden.hex"))
        .expect("fixtures/wire_golden.hex");
    let spec = std::fs::read_to_string(repo_path("specs/wire_protocol.md"))
        .expect("specs/wire_protocol.md");
    let spec_stripped: String = spec.chars().filter(|c| !c.is_whitespace()).collect();

    let mut pinned: Vec<(&str, &str)> = Vec::new();
    for line in fixture.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, hex) = line.split_once(' ').expect("fixture line: `name hex`");
        pinned.push((name, hex.trim()));
    }

    let live = golden_frames();
    assert_eq!(
        live.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
        pinned.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
        "fixture frame names disagree with golden_frames()"
    );
    for ((name, bytes), (_, fixture_hex)) in live.iter().zip(&pinned) {
        let live_hex = hex(bytes);
        assert_eq!(
            &live_hex, fixture_hex,
            "frame `{name}`: live encoding disagrees with fixtures/wire_golden.hex \
             (protocol change without a fixture + spec + WIRE_VERSION update?)"
        );
        assert!(
            spec_stripped.contains(&live_hex),
            "frame `{name}` ({live_hex}) not found in specs/wire_protocol.md \
             — the spec's worked examples have drifted from the codec"
        );
    }
}

#[test]
fn spec_names_the_current_wire_version() {
    let spec = std::fs::read_to_string(repo_path("specs/wire_protocol.md"))
        .expect("specs/wire_protocol.md");
    assert!(
        spec.contains(&format!("`WIRE_VERSION = {WIRE_VERSION}`")),
        "specs/wire_protocol.md must state `WIRE_VERSION = {WIRE_VERSION}`"
    );
}

// ----- round-trips -----------------------------------------------------

#[test]
fn every_request_variant_round_trips() {
    let (uni, policy) = test_world();
    for req in all_requests(&policy) {
        let bytes = wire::encode_request(&req);
        let back = wire::decode_request(&bytes, &uni)
            .unwrap_or_else(|e| panic!("decode of {req:?} failed: {e}"));
        assert_eq!(
            wire::encode_request(&back),
            bytes,
            "re-encode mismatch for {req:?}"
        );
    }
}

#[test]
fn every_response_variant_round_trips() {
    for resp in all_responses() {
        let bytes = wire::encode_response(&resp);
        let back = wire::decode_response(&bytes)
            .unwrap_or_else(|e| panic!("decode of {resp:?} failed: {e}"));
        assert_eq!(
            wire::encode_response(&back),
            bytes,
            "re-encode mismatch for {resp:?}"
        );
    }
}

#[test]
fn every_error_variant_round_trips() {
    for err in all_errors() {
        let bytes = wire::encode_error(&err);
        let back =
            wire::decode_error(&bytes).unwrap_or_else(|e| panic!("decode of {err:?} failed: {e}"));
        assert_eq!(
            wire::encode_error(&back),
            bytes,
            "re-encode mismatch for {err:?}"
        );
    }
}

#[test]
fn replication_payloads_round_trip() {
    let (uni, policy) = test_world();

    for last_applied in [None, Some(0), Some(41)] {
        let bytes = wire::encode_repl_subscribe(7, last_applied);
        assert_eq!(
            wire::decode_repl_subscribe(&bytes).expect("subscribe decodes"),
            (7, last_applied)
        );
    }

    let state = adminref_store::encode_state(&uni, &policy, &ConstraintSet::default());
    let bytes = wire::encode_repl_snapshot(3, 42, &state);
    let (term, epoch, blob) = wire::decode_repl_snapshot(&bytes).expect("snapshot decodes");
    assert_eq!((term, epoch), (3, 42));
    assert_eq!(blob, state);

    let deltas = vec![
        EdgeDelta {
            edge: Edge::UserRole(UserId::from_index(1), RoleId::from_index(3)),
            added: true,
        },
        EdgeDelta {
            edge: Edge::RolePriv(RoleId::from_index(0), PrivId::from_index(2)),
            added: false,
        },
    ];
    let bytes = wire::encode_repl_delta(3, 43, &deltas, 0xFEED_FACE_0000_1111);
    let frame = wire::decode_repl_delta(&bytes).expect("delta decodes");
    assert_eq!(frame.term, 3);
    assert_eq!(frame.epoch, 43);
    assert_eq!(frame.deltas, deltas);
    assert_eq!(frame.checksum, 0xFEED_FACE_0000_1111);
}

#[test]
fn backend_error_crosses_as_display_string() {
    let err = ServiceError::Backend {
        applied: vec![adminref_core::transition::StepOutcome {
            authorization: None,
            changed: false,
        }],
        error: adminref_store::StoreError::Io(std::io::Error::other("disk full")),
    };
    let back = wire::decode_error(&wire::encode_error(&err)).expect("decodes");
    match back {
        ServiceError::Backend { applied, error } => {
            assert_eq!(applied.len(), 1);
            assert!(error.to_string().contains("disk full"));
        }
        other => panic!("expected Backend, got {other:?}"),
    }
}

// ----- adversarial frames ----------------------------------------------

#[test]
fn adversarial_headers_yield_typed_errors() {
    let good = FrameHeader {
        kind: FrameKind::Request,
        payload_len: 4,
        request_id: 9,
    }
    .encode();

    let mut bad_magic = good;
    bad_magic[0] = b'X';
    assert!(matches!(
        FrameHeader::parse(&bad_magic),
        Err(WireError::BadMagic(_))
    ));

    let mut future_version = good;
    future_version[4] = WIRE_VERSION + 1;
    assert!(matches!(
        FrameHeader::parse(&future_version),
        Err(WireError::UnsupportedVersion { got, supported })
            if got == WIRE_VERSION + 1 && supported == WIRE_VERSION
    ));

    let mut bad_kind = good;
    bad_kind[5] = 77;
    assert!(matches!(
        FrameHeader::parse(&bad_kind),
        Err(WireError::BadFrameKind(77))
    ));

    let mut oversized = good;
    oversized[8..12].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
    assert!(matches!(
        FrameHeader::parse(&oversized),
        Err(WireError::Oversized { .. })
    ));

    // Reserved bytes are ignored on receipt.
    let mut reserved_set = good;
    reserved_set[6] = 0xAA;
    reserved_set[7] = 0xBB;
    assert!(FrameHeader::parse(&reserved_set).is_ok());
}

#[test]
fn truncated_streams_yield_truncated_not_panics() {
    let frame = frame_bytes(
        FrameKind::Request,
        3,
        &wire::encode_request(&Request::Stats),
    );
    // Clean EOF at a frame boundary is Ok(None)…
    assert!(matches!(wire::read_frame(&mut &[][..]), Ok(None)));
    // …but EOF at every interior cut is a typed truncation.
    for cut in 1..frame.len() {
        let mut short = &frame[..cut];
        match wire::read_frame(&mut short) {
            Err(wire::FrameError::Wire(WireError::Truncated)) => {}
            other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
        }
    }
}

#[test]
fn trailing_bytes_and_bad_tags_are_rejected() {
    let (uni, _) = test_world();
    let mut padded = wire::encode_request(&Request::Version);
    padded.push(0);
    assert!(matches!(
        wire::decode_request(&padded, &uni),
        Err(WireError::TrailingBytes { extra: 1 })
    ));

    // Tag 200 names no request.
    assert!(matches!(
        wire::decode_request(&[200, 1], &uni),
        Err(WireError::BadTag {
            what: "request",
            ..
        })
    ));
    assert!(matches!(
        wire::decode_response(&[200, 1]),
        Err(WireError::BadTag {
            what: "response",
            ..
        })
    ));
    assert!(matches!(
        wire::decode_error(&[200, 1]),
        Err(WireError::BadTag { what: "error", .. })
    ));
}

#[test]
fn out_of_range_ids_are_refused_at_the_boundary() {
    let (uni, _) = test_world();
    let req = Request::CreateSession {
        user: UserId::from_index(uni.user_count() + 10),
    };
    assert!(matches!(
        wire::validate_request(&req, &uni),
        Err(WireError::IdOutOfRange { what: "user", .. })
    ));
    let req = Request::Submit {
        commands: vec![cmd(
            0,
            CommandKind::Grant,
            Edge::UserRole(UserId::from_index(0), RoleId::from_index(uni.role_count())),
        )],
    };
    assert!(matches!(
        wire::validate_request(&req, &uni),
        Err(WireError::IdOutOfRange { what: "role", .. })
    ));
}

// ----- mutation fuzzing ------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single-byte corruption of any valid request payload decodes
    /// to Ok or a typed error — never a panic, and trailing bytes never
    /// survive silently.
    #[test]
    fn mutated_request_payloads_never_panic(which in 0usize..16, pos in 0usize..64, byte in 0usize..256) {
        let (uni, policy) = test_world();
        let reqs = all_requests(&policy);
        let mut bytes = wire::encode_request(&reqs[which % reqs.len()]);
        if !bytes.is_empty() {
            let at = pos % bytes.len();
            bytes[at] = byte as u8;
        }
        // Either outcome is fine; reaching this line without a panic
        // (and without unbounded allocation) is the property.
        let _ = wire::decode_request(&bytes, &uni);
    }

    /// Same for response payloads, including truncation at every depth.
    #[test]
    fn mutated_response_payloads_never_panic(which in 0usize..16, cut in 0usize..64, byte in 0usize..256) {
        let resps = all_responses();
        let mut bytes = wire::encode_response(&resps[which % resps.len()]);
        let keep = cut % (bytes.len() + 1);
        bytes.truncate(keep);
        if let Some(last) = bytes.last_mut() {
            *last = byte as u8;
        }
        let _ = wire::decode_response(&bytes);
    }

    /// Random 20-byte headers parse to a typed result, never a panic.
    #[test]
    fn random_headers_never_panic(seed in 0u64..10_000) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut header = [0u8; HEADER_LEN];
        for b in &mut header {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *b = state as u8;
        }
        let _ = FrameHeader::parse(&header);
    }
}
