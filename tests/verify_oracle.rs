//! The declarative invariant oracle against live monitor traces.
//!
//! `InvariantSuite::replay` re-derives every intermediate policy from a
//! recorded trace and checks TLA-style invariants over it. These
//! properties pin the executable monitor to the declarative spec:
//!
//! * every audit trace a `ReferenceMonitor` produces over random
//!   command streams conforms — in explicit and in ordered mode, with
//!   live sessions included in the final-state check;
//! * the oracle is not vacuous: forging an execution decision onto a
//!   genuinely refused step is flagged.

use adminref_core::prelude::*;
use adminref_core::simulation::command_alphabet;
use adminref_core::transition::required_privilege;
use adminref_monitor::{MonitorConfig, ReferenceMonitor};
use proptest::prelude::*;

const USERS: usize = 4;
const ROLES: usize = 5;

/// Random policy blueprint: UA/RH edges plus grant/revoke/perm
/// assignments (index lists shrink well).
#[derive(Clone, Debug)]
struct PolicySpec {
    ua: Vec<(u8, u8)>,
    rh: Vec<(u8, u8)>,
    pa: Vec<(u8, u8, u8, u8)>,
}

fn policy_spec() -> impl Strategy<Value = PolicySpec> {
    (
        prop::collection::vec(((0u8..USERS as u8), (0u8..ROLES as u8)), 1..4),
        prop::collection::vec(((0u8..ROLES as u8), (0u8..ROLES as u8)), 0..5),
        prop::collection::vec(
            (0u8..ROLES as u8, 0u8..3, 0u8..USERS as u8, 0u8..ROLES as u8),
            0..6,
        ),
    )
        .prop_map(|(ua, rh, pa)| PolicySpec { ua, rh, pa })
}

fn build(spec: &PolicySpec) -> (Universe, Policy) {
    let mut uni = Universe::new();
    let users: Vec<UserId> = (0..USERS).map(|i| uni.user(&format!("u{i}"))).collect();
    let roles: Vec<RoleId> = (0..ROLES).map(|i| uni.role(&format!("r{i}"))).collect();
    let mut policy = Policy::new(&uni);
    for &(u, r) in &spec.ua {
        policy.add_edge(Edge::UserRole(users[u as usize], roles[r as usize]));
    }
    for &(a, b) in &spec.rh {
        policy.add_edge(Edge::RoleRole(roles[a as usize], roles[b as usize]));
    }
    for &(holder, kind, u, r) in &spec.pa {
        let p = match kind {
            0 => {
                let perm = uni.perm("read", "obj");
                uni.priv_perm(perm)
            }
            1 => uni.grant_user_role(users[u as usize], roles[r as usize]),
            _ => uni.revoke_user_role(users[u as usize], roles[r as usize]),
        };
        policy.add_edge(Edge::RolePriv(roles[holder as usize], p));
    }
    (uni, policy)
}

/// Drives `picks`-selected commands from the alphabet through a live
/// monitor (opening one session per UA edge) and returns everything the
/// oracle needs.
fn drive_monitor(
    uni: &Universe,
    policy: &Policy,
    picks: &[u16],
    mode: AuthMode,
) -> Option<ReferenceMonitor> {
    let alphabet = command_alphabet(uni, &[policy]);
    if alphabet.is_empty() {
        return None;
    }
    let commands: Vec<Command> = picks
        .iter()
        .map(|&i| alphabet[i as usize % alphabet.len()])
        .collect();
    let monitor = ReferenceMonitor::new(
        uni.clone(),
        policy.clone(),
        MonitorConfig {
            auth_mode: mode,
            audit_capacity: commands.len().max(1),
            ..MonitorConfig::default()
        },
    );
    for (user, role) in policy.ua() {
        let sid = monitor.create_session(user);
        monitor
            .activate_role(sid, role)
            .expect("UA edge implies activation is allowed");
    }
    monitor
        .submit_batch(&commands)
        .expect("batch submission cannot fail");
    Some(monitor)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Explicit-mode monitor traces always conform to the standard
    /// suite. Sessions opened before the batch may legitimately go
    /// stale (a revocation can strip an activated role), so the
    /// session invariant is asserted only when every session user still
    /// holds every activated role — and any reported violation must be
    /// a session violation, never a trace one.
    #[test]
    fn monitor_traces_conform_to_the_oracle(
        spec in policy_spec(),
        picks in prop::collection::vec(any::<u16>(), 1..24),
    ) {
        let (uni, policy) = build(&spec);
        let Some(monitor) = drive_monitor(&uni, &policy, &picks, AuthMode::Explicit) else {
            return;
        };
        let trace = monitor.audit_trace();
        prop_assert_eq!(trace.len(), picks.len());
        let suite = InvariantSuite::standard(AuthMode::Explicit);
        let violations = suite.replay(&uni, &policy, &trace, &monitor.session_views());
        for v in &violations {
            prop_assert_eq!(
                v.invariant, "SessionRolesAssigned",
                "non-session violation on an honest trace: {:?}", v
            );
        }
        // With no sessions at all the trace must conform outright.
        let violations = suite.replay(&uni, &policy, &trace, &[]);
        prop_assert!(violations.is_empty(), "{violations:?}");
    }

    /// Ordered-mode traces conform to the ordered-mode suite: implicit
    /// (⊑-weaker) authorizations recorded by the monitor are accepted
    /// by the oracle's `NoUnauthorizedAccess`.
    #[test]
    fn ordered_monitor_traces_conform_to_the_oracle(
        spec in policy_spec(),
        picks in prop::collection::vec(any::<u16>(), 1..16),
    ) {
        let mode = AuthMode::Ordered(OrderingMode::Extended);
        let (uni, policy) = build(&spec);
        let Some(monitor) = drive_monitor(&uni, &policy, &picks, mode) else {
            return;
        };
        let trace = monitor.audit_trace();
        let suite = InvariantSuite::standard(mode);
        let violations = suite.replay(&uni, &policy, &trace, &[]);
        prop_assert!(violations.is_empty(), "{violations:?}");
    }

    /// The oracle is not vacuous: forging an `Executed` decision onto a
    /// step the monitor refused is always flagged.
    #[test]
    fn forged_decisions_are_flagged(
        spec in policy_spec(),
        picks in prop::collection::vec(any::<u16>(), 1..24),
    ) {
        let (mut uni, policy) = build(&spec);
        let Some(monitor) = drive_monitor(&uni, &policy, &picks, AuthMode::Explicit) else {
            return;
        };
        let mut trace = monitor.audit_trace();
        let Some(i) = trace
            .iter()
            .position(|s| matches!(s.decision, TraceDecision::Refused))
        else {
            // Every pick authorized: nothing to forge.
            return;
        };
        // Claim the refused command executed, "justified" by its own
        // required privilege (which the actor does not reach — that is
        // why it was refused).
        let required = required_privilege(&mut uni, &trace[i].command);
        trace[i].decision = TraceDecision::Executed {
            held: required,
            target: required,
            changed: true,
        };
        let suite = InvariantSuite::standard(AuthMode::Explicit);
        let violations = suite.replay(&uni, &policy, &trace, &[]);
        prop_assert!(
            violations
                .iter()
                .any(|v| v.invariant == "NoUnauthorizedAccess"),
            "forged step {} drew no violation: {:?}", i, violations
        );
    }
}
