//! End-to-end daemon coverage over real sockets: the full protocol on a
//! Unix socket, a pipelined admin batch from concurrent callers sharing
//! one connection, analysis requests, wire-level error semantics
//! against a raw socket, and clean shutdown.

use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

use adminref_core::prelude::*;
use adminref_monitor::MonitorConfig;
use adminref_service::protocol::RefinementDirection;
use adminref_service::wire::{self, FrameKind};
use adminref_service::{
    Daemon, DaemonConfig, MonitorService, PolicyService, Request, ServiceError, WireClient,
    WireListener,
};
use adminref_store::TempDir;

const SUBJECTS: usize = 4;
const ROLES: usize = 3;

/// An arena where `admin` holds grant and revoke authority over every
/// `(subject, role)` edge, and every role carries one user permission.
fn arena() -> (Universe, Policy, UserId) {
    let mut universe = Universe::new();
    let admin = universe.user("admin");
    let subjects: Vec<UserId> = (0..SUBJECTS)
        .map(|i| universe.user(&format!("subj{i}")))
        .collect();
    let roles: Vec<RoleId> = (0..ROLES)
        .map(|i| universe.role(&format!("r{i}")))
        .collect();
    let admins = universe.role("admins");
    let mut policy = Policy::new(&universe);
    policy.add_edge(Edge::UserRole(admin, admins));
    for &s in &subjects {
        for &r in &roles {
            let g = universe.grant_user_role(s, r);
            let v = universe.revoke_user_role(s, r);
            policy.add_edge(Edge::RolePriv(admins, g));
            policy.add_edge(Edge::RolePriv(admins, v));
        }
    }
    for (i, &r) in roles.iter().enumerate() {
        let perm = universe.perm("use", &format!("obj{i}"));
        let p = universe.priv_perm(perm);
        policy.add_edge(Edge::RolePriv(r, p));
    }
    (universe, policy, admin)
}

fn serve_unix(dir: &TempDir) -> (Daemon, std::path::PathBuf) {
    let (universe, policy, _) = arena();
    // The same service construction `adminref serve` uses: a write
    // gather window so one pipelined round-trip's submissions coalesce.
    let service: Arc<dyn PolicyService> = Arc::new(
        MonitorService::in_memory(universe.clone(), policy, MonitorConfig::default())
            .with_write_gather(Duration::from_micros(50)),
    );
    let path = dir.path().join("adminrefd.sock");
    let listener = WireListener::unix(&path).expect("bind unix socket");
    let daemon = Daemon::spawn(service, universe, listener).expect("spawn daemon");
    (daemon, path)
}

#[test]
fn unix_socket_serves_the_full_protocol() {
    let dir = TempDir::new("daemon-e2e").unwrap();
    let (daemon, path) = serve_unix(&dir);
    let client = WireClient::connect_unix(&path).expect("connect");
    let (mut universe, _, admin) = arena();

    let subj = universe.find_user("subj0").unwrap();
    let r0 = universe.find_role("r0").unwrap();
    // Interning is deterministic, so re-interning on this copy of the
    // universe yields the id the server uses.
    let perm0 = universe.perm("use", "obj0");

    // Access checks: subj0 reaches obj0 only once granted r0 and the
    // session activates it.
    let admin_session = client.create_session(admin).expect("admin session");
    let outcomes = client
        .submit(vec![Command {
            actor: admin,
            kind: CommandKind::Grant,
            edge: Edge::UserRole(subj, r0),
        }])
        .expect("grant");
    assert!(outcomes[0].executed() && outcomes[0].changed);

    let subj_session = client.create_session(subj).expect("subject session");
    assert!(!client.check_access(subj_session, perm0).unwrap());
    client.activate_role(subj_session, r0).expect("activate");
    assert!(client.check_access(subj_session, perm0).unwrap());

    // Analysis over the wire: the granted subject reaches the
    // permission; refinement of the live policy against itself holds.
    let answer = client
        .analyze_reach(
            Entity::User(subj),
            perm0,
            SafetyConfig {
                max_steps: 0,
                ..SafetyConfig::default()
            },
        )
        .expect("reach");
    assert!(answer.is_reachable());

    let live = client.audit_tail(16).expect("audit");
    assert_eq!(live.len(), 1, "one audited command");

    let reply = client
        .check_refinement(
            {
                let (u2, p2, _) = arena();
                assert_eq!(u2.user_count(), universe.user_count());
                p2
            },
            RefinementDirection::CandidateRefinesLive,
            4,
        )
        .expect("refinement");
    assert!(reply.holds, "the pristine arena grants no more than live");

    let report = client
        .lint(vec![(r0, universe.find_role("r1").unwrap())])
        .expect("lint");
    assert!(report.rules_checked > 0);

    let epoch = client.version().expect("version");
    assert!(epoch >= 1, "the grant published an epoch");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.sessions, 2);
    client.compact().expect("compact is a no-op in memory");

    // Session lifecycle: deactivate, drop, and a dropped session is
    // answered with the same typed error a local caller would get.
    assert!(client.deactivate_role(subj_session, r0).unwrap());
    assert!(client.drop_session(subj_session).unwrap());
    match client.check_access(subj_session, perm0) {
        Err(ServiceError::UnknownSession(_)) => {}
        other => panic!("expected UnknownSession, got {other:?}"),
    }
    assert!(client.drop_session(admin_session).unwrap());

    daemon.shutdown();
    assert!(!path.exists(), "socket file removed on shutdown");
    // The connection is dead: calls surface Transport, never hang.
    match client.version() {
        Err(ServiceError::Transport { .. }) => {}
        other => panic!("expected Transport after shutdown, got {other:?}"),
    }
}

#[test]
fn pipelined_admin_batch_is_atomic_and_complete() {
    let dir = TempDir::new("daemon-pipe").unwrap();
    let (daemon, path) = serve_unix(&dir);
    let client = Arc::new(WireClient::connect_unix(&path).expect("connect"));
    let (universe, _, admin) = arena();

    // Each worker toggles its own disjoint `(subject, role)` edge, so
    // every command is authorized and policy-changing regardless of how
    // the daemon's group commit interleaves the requests.
    let workers: Vec<_> = (0..SUBJECTS)
        .map(|i| {
            let client = Arc::clone(&client);
            let subj = universe.find_user(&format!("subj{i}")).unwrap();
            let role = universe.find_role(&format!("r{}", i % ROLES)).unwrap();
            std::thread::spawn(move || {
                let edge = Edge::UserRole(subj, role);
                for _ in 0..8 {
                    for kind in [CommandKind::Grant, CommandKind::Revoke] {
                        let outcomes = client
                            .submit(vec![Command {
                                actor: admin,
                                kind,
                                edge,
                            }])
                            .expect("submit");
                        assert_eq!(outcomes.len(), 1);
                        assert!(outcomes[0].executed(), "admin holds the authority");
                        assert!(outcomes[0].changed, "disjoint toggles always change");
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker");
    }

    // Every command audited exactly once, and group commit coalesced at
    // least some of the concurrent submissions (fewer epochs than
    // requests — each epoch publishes one drained group).
    let stats = client.stats().expect("stats");
    let total = (SUBJECTS * 8 * 2) as u64;
    assert_eq!(stats.audit_retained as u64, total);
    assert!(
        stats.epoch <= total,
        "epochs ({}) cannot exceed requests ({total})",
        stats.epoch
    );
    daemon.shutdown();
}

#[test]
fn tcp_transport_speaks_the_same_protocol() {
    let (universe, policy, admin) = arena();
    let service: Arc<dyn PolicyService> = Arc::new(MonitorService::in_memory(
        universe.clone(),
        policy,
        MonitorConfig::default(),
    ));
    let listener = WireListener::tcp("127.0.0.1:0").expect("bind tcp");
    let daemon = Daemon::spawn(service, universe, listener).expect("spawn");
    let addr = daemon.local_addr().expect("tcp daemon has an address");

    let client = WireClient::connect_tcp(addr).expect("connect");
    assert_eq!(client.version().unwrap(), 0, "no writes yet");
    let session = client.create_session(admin).unwrap();
    assert!(client.drop_session(session).unwrap());
    daemon.shutdown();
}

#[cfg(unix)]
#[test]
fn framing_violations_close_with_an_id_zero_error() {
    let dir = TempDir::new("daemon-garbage").unwrap();
    let (daemon, path) = serve_unix(&dir);

    // Garbage bytes — at least a full header's worth, so the server's
    // framed read completes and rejects it: one Transport error frame
    // with request id 0, then the server closes the connection.
    let mut raw = std::os::unix::net::UnixStream::connect(&path).expect("connect");
    raw.write_all(b"GET /adminref HTTP/1.1\r\nHost: x\r\n\r\n")
        .expect("write");
    raw.flush().unwrap();
    let frame = wire::read_frame(&mut raw)
        .expect("server answers before closing")
        .expect("an error frame, not EOF");
    assert_eq!(frame.kind, FrameKind::Error);
    assert_eq!(frame.request_id, 0, "stream position untrustworthy");
    match wire::decode_error(&frame.payload).expect("decodes") {
        ServiceError::Transport { .. } => {}
        other => panic!("expected Transport, got {other:?}"),
    }
    assert!(
        wire::read_frame(&mut raw).expect("clean close").is_none(),
        "connection closed after a framing violation"
    );

    // A well-framed but undecodable request: the error echoes the id
    // and the connection survives.
    let mut raw = std::os::unix::net::UnixStream::connect(&path).expect("connect");
    wire::write_frame(&mut raw, FrameKind::Request, 42, &[0xFF, 0xFF, 0x01]).unwrap();
    raw.flush().unwrap();
    let frame = wire::read_frame(&mut raw).expect("read").expect("frame");
    assert_eq!(frame.kind, FrameKind::Error);
    assert_eq!(frame.request_id, 42, "request-level failures echo the id");

    // …and the same connection still serves real requests.
    wire::write_frame(
        &mut raw,
        FrameKind::Request,
        43,
        &wire::encode_request(&Request::Version),
    )
    .unwrap();
    raw.flush().unwrap();
    let frame = wire::read_frame(&mut raw).expect("read").expect("frame");
    assert_eq!(frame.kind, FrameKind::Response);
    assert_eq!(frame.request_id, 43);
    daemon.shutdown();
}

#[test]
fn daemon_drains_connections_on_shutdown() {
    let dir = TempDir::new("daemon-drain").unwrap();
    let (daemon, path) = serve_unix(&dir);
    let (_, _, admin) = arena();
    let client = WireClient::connect_unix(&path).expect("connect");

    // An in-flight request either completes or surfaces Transport —
    // shutdown must not wedge behind the open connection.
    let session = client.create_session(admin).expect("session");
    let worker = std::thread::spawn(move || daemon.shutdown());
    // The daemon drains: this call races shutdown, so both a served
    // reply and a transport error are acceptable — a hang is not
    // (the test harness would time out).
    match client.drop_session(session) {
        Ok(_) | Err(ServiceError::Transport { .. }) => {}
        Err(other) => panic!("unexpected error during shutdown: {other:?}"),
    }
    worker.join().expect("shutdown completes");
    assert!(!path.exists());
}

#[test]
fn daemon_config_is_tunable() {
    // Tiny worker pool + short polls still serve correctly.
    let (universe, policy, admin) = arena();
    let service: Arc<dyn PolicyService> = Arc::new(MonitorService::in_memory(
        universe.clone(),
        policy,
        MonitorConfig::default(),
    ));
    let listener = WireListener::tcp("127.0.0.1:0").expect("bind");
    let daemon = Daemon::spawn_with(
        service,
        universe,
        listener,
        DaemonConfig {
            workers_per_connection: 1,
            read_poll: Duration::from_millis(5),
            ..DaemonConfig::default()
        },
    )
    .expect("spawn");
    let client = WireClient::connect_tcp(daemon.local_addr().unwrap()).expect("connect");
    let session = client.create_session(admin).unwrap();
    assert!(client.drop_session(session).unwrap());
    daemon.shutdown();
}
