//! Full-pipeline integration: policy text → parser/resolver → monitor →
//! durable store → recovery → analysis → printer.

use adminref_core::prelude::*;
use adminref_lang::{load_policy, load_queue, print_policy};
use adminref_monitor::{MonitorConfig, ReferenceMonitor};
use adminref_store::{PolicyStore, TempDir};

const HOSPITAL: &str = r#"
    # Figure 2 of the paper, in the policy language.
    policy hospital {
        users diana, bob, joe, jane, alice;
        roles nurse, staff, prntusr, dbusr1, dbusr2, dbusr3, hr, so;
        assign diana -> nurse;
        assign diana -> staff;
        assign jane -> hr;
        assign alice -> so;
        inherit staff -> nurse;
        inherit nurse -> prntusr;
        inherit nurse -> dbusr1;
        inherit staff -> dbusr2;
        inherit dbusr2 -> dbusr1;
        inherit so -> hr;
        perm prntusr -> (prnt, black);
        perm staff -> (prnt, color);
        perm dbusr1 -> (read, t1);
        perm dbusr1 -> (read, t2);
        perm dbusr2 -> (write, t3);
        perm hr -> grant(bob, staff);
        perm hr -> grant(joe, nurse);
        perm hr -> revoke(joe, nurse);
        perm dbusr3 -> revoke(dbusr2, dbusr1);
    }
"#;

#[test]
fn text_to_monitor_to_store_and_back() {
    // 1. Load from text.
    let (mut uni, policy) = load_policy(HOSPITAL).expect("fixture parses");
    assert_eq!(policy.pa_len(), 9);

    // 2. The textual fixture matches the programmatic one semantically.
    let (uni2, policy2) = adminref_workloads::hospital_fig2();
    let s1 = adminref_core::analysis::stats(&uni, &policy);
    let s2 = adminref_core::analysis::stats(&uni2, &policy2);
    assert_eq!(s1, s2, "lang fixture ≡ programmatic fixture");

    // 3. Run a textual command queue through a durable monitor.
    let queue = load_queue(
        r#"queue {
            cmd(jane, grant, bob -> staff);
            cmd(jane, grant, joe -> nurse);
            cmd(bob, grant, joe -> staff);     # refused: bob holds nothing
            cmd(jane, revoke, joe -> nurse);
        }"#,
        &mut uni,
    )
    .expect("queue parses");

    let dir = TempDir::new("pipeline").unwrap();
    let store = PolicyStore::create(dir.path(), uni, policy, AuthMode::Explicit).unwrap();
    let monitor = ReferenceMonitor::with_store(store, MonitorConfig::default());
    let outcomes = monitor.submit_queue(&queue).unwrap();
    assert_eq!(
        outcomes.iter().filter(|o| o.executed()).count(),
        3,
        "three of four commands are authorized"
    );

    // 4. State survives re-opening the store.
    drop(monitor);
    let (store, report) = PolicyStore::open(dir.path(), AuthMode::Explicit).unwrap();
    assert_eq!(report.replayed, 4);
    assert_eq!(report.divergent, 0);
    let uni = store.universe().clone();
    let recovered = store.policy().clone();
    let bob = uni.find_user("bob").unwrap();
    let joe = uni.find_user("joe").unwrap();
    let staff = uni.find_role("staff").unwrap();
    let nurse = uni.find_role("nurse").unwrap();
    assert!(recovered.contains_edge(Edge::UserRole(bob, staff)));
    assert!(
        !recovered.contains_edge(Edge::UserRole(joe, nurse)),
        "joe was revoked in the same queue"
    );
    assert!(!recovered.contains_edge(Edge::UserRole(joe, staff)));

    // 5. Print the recovered policy and reload it: identical semantics.
    let text = print_policy(&uni, &recovered, "recovered");
    let (uni3, policy3) = load_policy(&text).unwrap();
    let s3 = adminref_core::analysis::stats(&uni3, &policy3);
    let s_rec = adminref_core::analysis::stats(&uni, &recovered);
    assert_eq!(s3, s_rec);
}

#[test]
fn ordered_monitor_pipeline_least_privilege() {
    let (mut uni, policy) = load_policy(HOSPITAL).unwrap();
    let queue = load_queue(r#"queue { cmd(jane, grant, bob -> dbusr2); }"#, &mut uni).unwrap();
    let monitor = ReferenceMonitor::new(
        uni,
        policy,
        MonitorConfig {
            auth_mode: AuthMode::Ordered(OrderingMode::Extended),
            ..MonitorConfig::default()
        },
    );
    let outcomes = monitor.submit_queue(&queue).unwrap();
    assert!(
        outcomes[0].executed(),
        "Example 4 through the full pipeline"
    );
    // The resulting policy is a refinement of what explicit-mode granting
    // of the held privilege would have produced.
    let (uni_after, after) = monitor.snapshot();
    let bob = uni_after.find_user("bob").unwrap();
    let staff = uni_after.find_role("staff").unwrap();
    let mut with_staff = after.clone();
    let dbusr2 = uni_after.find_role("dbusr2").unwrap();
    with_staff.remove_edge(Edge::UserRole(bob, dbusr2));
    with_staff.add_edge(Edge::UserRole(bob, staff));
    assert!(refines(&uni_after, &with_staff, &after));
    assert!(!refines(&uni_after, &after, &with_staff));
}

#[test]
fn nested_delegation_through_text_and_simulation() {
    // Alice delegates delegation: ¤(staff, ¤(bob, staff)) in text form.
    let (mut uni, policy) = load_policy(
        r#"policy nested {
            users alice, bob, diana;
            roles staff, dbusr2, so;
            assign alice -> so;
            assign diana -> staff;
            inherit staff -> dbusr2;
            perm dbusr2 -> (write, t3);
            perm so -> grant(staff, grant(bob, staff));
        }"#,
    )
    .unwrap();
    let alice = uni.find_user("alice").unwrap();
    let diana = uni.find_user("diana").unwrap();
    let bob = uni.find_user("bob").unwrap();
    let staff = uni.find_role("staff").unwrap();
    let inner = uni
        .find_term(PrivTerm::Grant(Edge::UserRole(bob, staff)))
        .unwrap();

    // Two-step run: alice gives staff the inner privilege; diana (staff)
    // exercises it.
    let mut live = policy.clone();
    let queue: CommandQueue = [
        Command::grant(alice, Edge::RolePriv(staff, inner)),
        Command::grant(diana, Edge::UserRole(bob, staff)),
    ]
    .into_iter()
    .collect();
    let trace = run(&mut uni, &mut live, &queue, AuthMode::Explicit);
    assert_eq!(trace.executed_count(), 2);
    assert!(live.contains_edge(Edge::UserRole(bob, staff)));
}
