//! Cross-model integration: the paper's ordering-based administration
//! compared behaviourally against the baselines (ARBAC97, administrative
//! scope, role-graph domains) on the same hospital hierarchy, plus an
//! HRU encoding of the flexworker scenario.

use adminref_baselines::{AdminDomains, AdminScope, Arbac97, CanAssign, Prereq, RoleRange};
use adminref_core::prelude::*;
use adminref_core::reach::ReachIndex;
use adminref_workloads::hospital_fig2;

/// ARBAC97 can express Jane's authority as a range rule — and with the
/// range [dbusr2, staff] it also allows the direct dbusr2 assignment the
/// paper's ordering derives. The difference: ARBAC needs the range
/// *spelled out*, the ordering derives it from ¤(bob, staff) alone.
#[test]
fn arbac97_expresses_flexworker_with_explicit_ranges() {
    let (uni, policy) = hospital_fig2();
    let closure = ReachIndex::build(&uni, &policy).role_closure().clone();
    let jane = uni.find_user("jane").unwrap();
    let bob = uni.find_user("bob").unwrap();
    let staff = uni.find_role("staff").unwrap();
    let dbusr2 = uni.find_role("dbusr2").unwrap();
    let dbusr1 = uni.find_role("dbusr1").unwrap();
    let hr = uni.find_role("hr").unwrap();

    // Narrow rule: only [staff, staff], the literal reading of
    // ¤(bob, staff).
    let mut narrow = Arbac97::new();
    narrow.add_can_assign(CanAssign {
        admin_role: hr,
        prereq: Prereq::True,
        range: RoleRange::closed(staff, staff),
    });
    assert!(narrow
        .check_assign(&policy, &closure, jane, bob, staff)
        .is_some());
    assert!(
        narrow
            .check_assign(&policy, &closure, jane, bob, dbusr2)
            .is_none(),
        "narrow ARBAC range refuses the least-privilege assignment"
    );

    // Wide rule: the security officer must anticipate and write the whole
    // range down.
    let mut wide = Arbac97::new();
    wide.add_can_assign(CanAssign {
        admin_role: hr,
        prereq: Prereq::True,
        range: RoleRange::closed(dbusr1, staff),
    });
    assert!(wide
        .check_assign(&policy, &closure, jane, bob, dbusr2)
        .is_some());

    // The paper's ordering derives the same set from one privilege.
    let mut uni2 = uni.clone();
    let held = uni2.grant_user_role(bob, staff);
    let order = PrivilegeOrder::new(&uni2, &policy, OrderingMode::Extended);
    for role in [staff, dbusr2, dbusr1] {
        let target = {
            // interning already done for staff; look up or build
            match uni2.find_term(PrivTerm::Grant(Edge::UserRole(bob, role))) {
                Some(p) => p,
                None => continue,
            }
        };
        assert!(order.is_weaker(held, target) || role == staff);
    }
    // The wide ARBAC range is *contained in* the ordering's derived set
    // (the full down-set of staff), but not equal to it: prntusr is below
    // staff yet outside [dbusr1, staff] because it is not above dbusr1.
    // One ¤(bob, staff) privilege covers the whole down-set; URA97 needs
    // additional range rules to express the same authority.
    let reach = ReachIndex::build(&uni2, &policy);
    for role in uni2.roles() {
        let in_range = wide.can_assign[0].range.contains(&closure, role);
        let weaker = reach.role_closure().reaches(staff.0, role.0);
        if in_range {
            assert!(weaker, "range ⊆ down-set violated at {role:?}");
        }
    }
    let prntusr = uni2.find_role("prntusr").unwrap();
    assert!(
        !wide.can_assign[0].range.contains(&closure, prntusr),
        "prntusr is outside the interval…"
    );
    assert!(
        reach.role_closure().reaches(staff.0, prntusr.0),
        "…but inside the ordering's down-set"
    );
}

/// Administrative scope on the hospital hierarchy: `staff` administrates
/// its whole subtree (every ancestor of those roles passes through
/// staff), while `nurse` does not administrate dbusr1 (dbusr2 is an
/// incomparable ancestor of dbusr1).
#[test]
fn administrative_scope_on_hospital() {
    let (uni, policy) = hospital_fig2();
    let scope = AdminScope::build(&uni, &policy);
    let staff = uni.find_role("staff").unwrap();
    let nurse = uni.find_role("nurse").unwrap();
    let dbusr1 = uni.find_role("dbusr1").unwrap();
    let dbusr2 = uni.find_role("dbusr2").unwrap();
    let prntusr = uni.find_role("prntusr").unwrap();

    assert!(scope.in_strict_scope(staff, nurse));
    assert!(scope.in_strict_scope(staff, dbusr2));
    assert!(scope.in_strict_scope(staff, dbusr1));
    assert!(scope.in_strict_scope(staff, prntusr));
    assert!(scope.in_strict_scope(nurse, prntusr));
    assert!(
        !scope.in_scope(nurse, dbusr1),
        "dbusr1 has the incomparable ancestor dbusr2"
    );
    // The ordering-based model has no such structural restriction: it
    // authorizes whatever ⊑ derives from assigned privileges, e.g. a
    // nurse-held ¤(joe, dbusr1) would be usable regardless of scope.
}

/// Role-graph domains: medical vs infrastructure administration.
#[test]
fn role_graph_domains_on_hospital() {
    let (uni, _) = hospital_fig2();
    let r = |n: &str| uni.find_role(n).unwrap();
    let domains = AdminDomains::build(
        uni.role_count(),
        &[
            (r("staff"), vec![r("staff"), r("nurse"), r("prntusr")]),
            (r("dbusr2"), vec![r("dbusr2"), r("dbusr1"), r("dbusr3")]),
        ],
    )
    .unwrap();
    // staff may rewire medical roles…
    assert!(domains.can_modify(r("staff"), Edge::RoleRole(r("nurse"), r("prntusr"))));
    // …but not database roles, and nobody may cross domains.
    assert!(!domains.can_modify(r("staff"), Edge::RoleRole(r("dbusr2"), r("dbusr1"))));
    assert!(!domains.can_modify(r("staff"), Edge::RoleRole(r("nurse"), r("dbusr1"))));
    assert!(!domains.can_modify(r("dbusr2"), Edge::RoleRole(r("nurse"), r("dbusr1"))));
}

/// HRU encoding of the flexworker delegation: `own`-style delegation of a
/// table-write right. The mono-operational decision and the bounded
/// search agree with the RBAC outcome: the right leaks exactly when the
/// delegation command exists.
#[test]
fn hru_encoding_of_delegation() {
    use adminref_baselines::hru::{Command as HruCommand, Condition, Matrix, PrimOp, System};

    let mut sys = System::new();
    let admin = sys.right("admin"); // jane's administrative authority
    let write = sys.right("write"); // write access to t3

    // delegate(s1, s2, o): if admin ∈ (s1, o) then enter write into (s2, o).
    sys.add_command(HruCommand {
        name: "delegate_write".into(),
        params: 3,
        conditions: vec![Condition {
            right: admin,
            subject: 0,
            object: 2,
        }],
        ops: vec![PrimOp::Enter(write, 1, 2)],
    });

    let mut m = Matrix::new();
    let jane = m.create_subject();
    let _bob = m.create_subject();
    let t3 = m.create_object();
    m.enter(admin, jane, t3);

    assert!(sys.leaks_mono_operational(&m, write), "bob can get write");
    assert!(
        !sys.leaks_mono_operational(&m, admin),
        "authority itself never leaks"
    );

    // Footnote 5's point: HRU cannot distinguish *which* user acts in
    // what order — any subject with admin could act. The paper's
    // Definition 7 matches actor sequences; the bounded simulation
    // checker is sensitive to that (exercised in theorem1.rs).
}
