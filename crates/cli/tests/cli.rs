//! End-to-end tests of the `adminref` binary against the repository
//! fixtures.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_adminref"))
}

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../fixtures")
        .join(name)
}

fn hospital() -> String {
    fixture("hospital.rbac").to_string_lossy().into_owned()
}

#[test]
fn stats_reports_shape() {
    let out = bin().args(["stats", &hospital()]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("roles            8"), "{text}");
    assert!(text.contains("admin vertices   4"), "{text}");
    assert!(text.contains("longest RH chain 3"), "{text}");
}

#[test]
fn validate_accepts_fixture() {
    let out = bin().args(["validate", &hospital()]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("well-formed"));
}

#[test]
fn lint_is_clean_on_hospital_and_flags_the_demo() {
    // The paper's own policy is lint-clean even at the strictest floor.
    let out = bin()
        .args(["lint", &hospital(), "--deny", "note"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("0 note(s), 0 warning(s), 0 error(s)"),
        "{text}"
    );
    // The seeded-defect fixture trips every class; the SoD error makes
    // the default --deny error floor exit nonzero.
    let demo = fixture("lint_demo.rbac").to_string_lossy().into_owned();
    let out = bin()
        .args(["lint", &demo, "--sod", "pay,audit"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for kind in [
        "dead-command",
        "unauthorizable",
        "redundant-grant",
        "shadowed-grant",
        "non-monotone-island",
        "sod-conflict",
    ] {
        assert!(text.contains(kind), "missing {kind}: {text}");
    }
    // Without the SoD pair the worst finding is a warning, so the
    // default error floor passes while --deny warning still trips.
    let out = bin().args(["lint", &demo]).output().unwrap();
    assert!(out.status.success());
    let out = bin()
        .args(["lint", &demo, "--deny", "warning"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    // --json matches the pinned expectation byte for byte, modulo the
    // policy label (the CLI embeds the path it was given).
    let out = bin()
        .args(["lint", &demo, "--sod", "pay,audit", "--json"])
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    let expected = std::fs::read_to_string(fixture("lint_demo.expected.json")).unwrap();
    let relabeled = expected.replace("fixtures/lint_demo.rbac", &demo.replace('\\', "\\\\"));
    assert_eq!(text, relabeled);
}

#[test]
fn order_decides_flexworker_pair() {
    let out = bin()
        .args([
            "order",
            &hospital(),
            "grant(bob, staff)",
            "grant(bob, dbusr2)",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("true"), "{text}");
    assert!(text.contains("rule2"), "{text}");
    // The converse is not weaker: nonzero exit.
    let out = bin()
        .args([
            "order",
            &hospital(),
            "grant(bob, dbusr2)",
            "grant(bob, staff)",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn strict_flag_changes_semantics() {
    // Example-6-style vertex-target weakening needs Extended mode; build
    // an inline fixture.
    let dir = std::env::temp_dir().join(format!("adminref-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ex6.rbac");
    std::fs::write(
        &path,
        "policy ex6 { roles r1, r2; perm r2 -> grant(r1, r2); }",
    )
    .unwrap();
    let p = path.to_string_lossy().into_owned();
    let ext = bin()
        .args(["order", &p, "grant(r1, r2)", "grant(r1, grant(r1, r2))"])
        .output()
        .unwrap();
    assert!(ext.status.success(), "extended mode derives Example 6");
    let strict = bin()
        .args([
            "order",
            &p,
            "grant(r1, r2)",
            "grant(r1, grant(r1, r2))",
            "--strict",
        ])
        .output()
        .unwrap();
    assert!(!strict.status.success(), "strict mode does not");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_executes_queue() {
    let out = bin()
        .args([
            "run",
            &hospital(),
            &fixture("appointments.rbacq").to_string_lossy(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("# 3 executed, 1 refused"), "{text}");
    assert!(text.contains("assign bob -> staff;"), "{text}");
}

#[test]
fn reach_finds_witness() {
    let out = bin()
        .args(["reach", &hospital(), "bob", "write", "t3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("REACHABLE in 1 step(s)"), "{text}");
    assert!(text.contains("cmd(jane, grant, bob -> staff);"), "{text}");
}

#[test]
fn reach_parallel_jobs_and_bounds() {
    // --jobs fans frontier expansion out over worker threads without
    // changing the answer or the witness.
    let out = bin()
        .args(["reach", &hospital(), "bob", "write", "t3", "--jobs", "4"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("REACHABLE in 1 step(s)"), "{text}");
    assert!(text.contains("cmd(jane, grant, bob -> staff);"), "{text}");
    // A tiny state cap forces an inconclusive answer from the raw
    // bounded search, and the diagnostics name the binding knob.
    // --no-slice keeps the full alphabet: no command can ever grant
    // (launch, missiles), so slicing alone would refute the goal.
    let out = bin()
        .args([
            "reach",
            &hospital(),
            "bob",
            "launch",
            "missiles",
            "--max-states",
            "1",
            "--no-escalate",
            "--no-slice",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("UNKNOWN"), "{text}");
    assert!(text.contains("--max-states"), "{text}");
    // With slicing (the default) the same starved bounds don't matter:
    // the goal's cone of influence is empty, the sliced alphabet is
    // empty, and the search refutes immediately.
    let out = bin()
        .args([
            "reach",
            &hospital(),
            "bob",
            "launch",
            "missiles",
            "--max-states",
            "1",
            "--no-escalate",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("slice: alphabet"), "{text}");
    assert!(text.contains("-> 0 command(s)"), "{text}");
    assert!(text.contains("UNREACHABLE"), "{text}");
    // Without --no-escalate the starved unsliced bounds escalate: the
    // hospital policy grants revoke privileges, so the refutation comes
    // from the bounded model checker's diameter closure, not saturation.
    let out = bin()
        .args([
            "reach",
            &hospital(),
            "bob",
            "launch",
            "missiles",
            "--max-states",
            "1",
            "--no-slice",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("UNREACHABLE"), "{text}");
}

#[test]
fn verify_reports_engine_and_witness() {
    let out = bin()
        .args(["verify", &hospital(), "bob", "write", "t3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("engine: bfs"), "{text}");
    assert!(text.contains("REACHABLE in 1 step(s)"), "{text}");
    assert!(text.contains("cmd(jane, grant, bob -> staff);"), "{text}");
    // Starving the unsliced bounded search hands the instance to the
    // bounded model checker, which still refutes it definitively — and
    // the output accounts for the grounding it solved. (With slicing
    // left on, the empty cone refutes before any engine is needed.)
    let out = bin()
        .args([
            "verify",
            &hospital(),
            "bob",
            "launch",
            "missiles",
            "--max-states",
            "1",
            "--no-slice",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("engine: bmc"), "{text}");
    assert!(text.contains("UNREACHABLE"), "{text}");
    assert!(text.contains("bmc: bound"), "{text}");
}

#[test]
fn verify_oracle_checks_a_monitor_trace() {
    let out = bin()
        .args([
            "verify",
            &hospital(),
            "--oracle",
            &fixture("appointments.rbacq").to_string_lossy(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("4 step(s) replayed"), "{text}");
    assert!(text.contains("invariant(s) hold"), "{text}");
}

#[test]
fn verify_oracle_churn_holds_on_a_generated_workload() {
    let out = bin().args(["verify", "--oracle-churn"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("invariant(s) hold"), "{text}");
}

#[test]
fn weaker_lists_downset() {
    let out = bin()
        .args(["weaker", &hospital(), "grant(bob, staff)", "--depth", "1"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("grant(bob, dbusr2)"), "{text}");
    assert!(text.contains("grant(bob, prntusr)"), "{text}");
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn bench_monitor_emits_json_and_gates_against_baseline() {
    // Tiny run: one reader, 50ms cells, small policy — exercises the
    // full measure/emit/gate path without a real measurement window.
    let dir = std::env::temp_dir().join(format!("adminref-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = dir.join("baseline.json");
    std::fs::write(
        &baseline,
        r#"{"schema": 1, "floors_read_ops_per_sec": {"1": 1}}"#,
    )
    .unwrap();
    let out = bin()
        .args([
            "bench-monitor",
            "--readers",
            "1",
            "--secs",
            "0.05",
            "--roles",
            "32",
            "--trickle-roles",
            "64",
            "--json",
            "--baseline",
            &baseline.to_string_lossy(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"schema\": 1"), "{json}");
    assert!(json.contains("\"impl\": \"locked\""), "{json}");
    assert!(json.contains("\"impl\": \"epoch\""), "{json}");
    assert!(json.contains("\"epoch_read_speedup\""), "{json}");
    assert!(json.contains("\"publish\""), "{json}");
    assert!(json.contains("\"wide_universe_trickle\""), "{json}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("perf-smoke gate passed"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // An unreachable floor trips the gate.
    std::fs::write(
        &baseline,
        r#"{"schema": 1, "floors_read_ops_per_sec": {"1": 99000000000}}"#,
    )
    .unwrap();
    let out = bin()
        .args([
            "bench-monitor",
            "--readers",
            "1",
            "--secs",
            "0.05",
            "--roles",
            "32",
            "--trickle-roles",
            "0",
            "--baseline",
            &baseline.to_string_lossy(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("perf-smoke regression"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn refines_is_scriptable() {
    // A policy refines itself: exit 0, zero violations.
    let out = bin()
        .args(["refines", &hospital(), &hospital()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("violations: 0"), "{text}");
    // A candidate that grants more: nonzero exit, a violation count and
    // witnesses on stdout, and NO usage spam on stderr (the answer is
    // the exit code, not a usage error).
    let dir = std::env::temp_dir().join(format!("adminref-refines-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let wider = dir.join("wider.rbac");
    std::fs::write(
        &wider,
        "policy wider { users diana; roles nurse; assign diana -> nurse; \
         perm nurse -> (read, t1); perm nurse -> (read, t9); }",
    )
    .unwrap();
    let narrow = dir.join("narrow.rbac");
    std::fs::write(
        &narrow,
        "policy narrow { users diana; roles nurse; assign diana -> nurse; \
         perm nurse -> (read, t1); }",
    )
    .unwrap();
    let out = bin()
        .args([
            "refines",
            &narrow.to_string_lossy(),
            &wider.to_string_lossy(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("violations: 2"), "{text}");
    assert!(text.contains("gains (read, t9)"), "{text}");
    assert!(
        !String::from_utf8_lossy(&out.stderr).contains("usage:"),
        "scriptable failure must not print usage"
    );
    // --witnesses caps the listing but not the count.
    let out = bin()
        .args([
            "refines",
            &narrow.to_string_lossy(),
            &wider.to_string_lossy(),
            "--witnesses",
            "1",
        ])
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("violations: 2"), "{text}");
    assert!(text.contains("… and 1 more"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_service_emits_json_and_gates_against_baseline() {
    // Tiny run: one writer, 50ms cells, small policy, no router cell —
    // exercises the full measure/emit/gate path quickly.
    let dir = std::env::temp_dir().join(format!("adminref-bench-svc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = dir.join("baseline.json");
    std::fs::write(
        &baseline,
        r#"{"schema": 1,
            "floors_service_group_speedup": {"4": 2.0},
            "floors_wire_group_speedup": {"4": 2.0},
            "floors_service_write_cmds_per_sec": {"1": 1},
            "floors_replica_read_ops_per_sec": {"1": 1}}"#,
    )
    .unwrap();
    let out = bin()
        .args([
            "bench-service",
            "--writers",
            "1",
            "--secs",
            "0.05",
            "--roles",
            "32",
            "--tenants",
            "0",
            "--json",
            "--baseline",
            &baseline.to_string_lossy(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"schema\": 1"), "{json}");
    assert!(json.contains("\"path\": \"percall\""), "{json}");
    assert!(json.contains("\"path\": \"group\""), "{json}");
    assert!(json.contains("\"path\": \"wire-group\""), "{json}");
    assert!(json.contains("\"path\": \"replica-read\""), "{json}");
    assert!(json.contains("\"read_ops_per_sec\""), "{json}");
    assert!(json.contains("\"group_write_speedup\""), "{json}");
    assert!(json.contains("\"wire_group_speedup\""), "{json}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("perf-smoke gate passed"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // An unreachable absolute floor trips the gate.
    std::fs::write(
        &baseline,
        r#"{"schema": 1,
            "floors_service_group_speedup": {"4": 2.0},
            "floors_wire_group_speedup": {"4": 2.0},
            "floors_service_write_cmds_per_sec": {"1": 99000000000},
            "floors_replica_read_ops_per_sec": {"1": 1}}"#,
    )
    .unwrap();
    let out = bin()
        .args([
            "serve-bench",
            "--writers",
            "1",
            "--secs",
            "0.05",
            "--roles",
            "32",
            "--tenants",
            "0",
            "--baseline",
            &baseline.to_string_lossy(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("perf-smoke regression"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compact_folds_a_store_created_by_run() {
    let dir = std::env::temp_dir().join(format!("adminref-compact-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let store_dir = dir.join("store");
    // `run --store` creates a durable store and logs the queue.
    let out = bin()
        .args([
            "run",
            &hospital(),
            &fixture("appointments.rbacq").to_string_lossy(),
            "--store",
            &store_dir.to_string_lossy(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Compact reports what it replayed, then folds the log away…
    let out = bin()
        .args(["compact", &store_dir.to_string_lossy()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("replayed 4 entries"), "{text}");
    assert!(text.contains("reopen replays 0 entries"), "{text}");
    // …so a second compact replays nothing.
    let out = bin()
        .args(["compact", &store_dir.to_string_lossy()])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("replayed 0 entries"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    // A missing store is a completed-run failure, not a usage error.
    let out = bin()
        .args(["compact", &dir.join("nope").to_string_lossy()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let _ = std::fs::remove_dir_all(&dir);
}
