//! `adminref bench-monitor` — reference-monitor read-throughput
//! measurement and the CI perf-smoke gate.
//!
//! Runs the `churn` workload (concurrent `check_access` readers + one
//! admin writer cycling command batches) against both monitor
//! implementations — the epoch-published [`ReferenceMonitor`] and the
//! single-lock [`LockedMonitor`] baseline — at several reader counts,
//! and emits the throughput numbers as JSON (stable schema, consumed by
//! CI as a workflow artifact).
//!
//! The matrix also measures the **publish path**: the
//! `wide_universe_trickle` workload (thousands of roles, single-edge
//! batches) is driven through a single writer twice — once with
//! `PublishMode::FullRebuild` (re-derive the read index per batch, the
//! pre-incremental behavior) and once with `PublishMode::Incremental`
//! (delta-maintained index + structurally shared snapshots) — and the
//! publishes/s ratio is reported as the publish speedup.
//!
//! The same trickle workload measures the **admission gate** overhead:
//! one run with no constraints declared (the gate short-circuits) and
//! one with a declared constraint set (SoD pairs + a frozen-edge
//! assertion, chosen so no batch is ever refused), and the
//! ungated/gated publishes-per-second ratio is reported as the
//! admission overhead factor. `floors_admission_publish_overhead` is a
//! *ceiling*: the gate fails if statically checking every publish costs
//! more than the checked-in factor.
//!
//! With `--baseline FILE` the measured epoch-path read throughput is
//! gated against checked-in floors: the run fails if any reader count
//! regresses more than 2x below its floor. Floors are intentionally
//! conservative (set far below healthy-machine numbers) so the gate
//! catches architecture regressions — a read path that re-acquires the
//! write lock, an index rebuild per query — not CI-runner noise. The
//! publish speedup is gated directly against
//! `floors_publish_speedup` (the ≥3x acceptance bar itself): a ratio is
//! already noise-normalized, so no slack factor is applied.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use adminref_core::admission::ConstraintSet;
use adminref_core::command::Command;
use adminref_core::ids::Entity;
use adminref_core::safety::{perm_reachable, SafetyConfig};
use adminref_core::snapshot::PublishMode;
use adminref_core::universe::Edge;
use adminref_monitor::{LockedMonitor, MonitorConfig, ReferenceMonitor, SessionId};
use adminref_workloads::{
    churn, cone, wide_universe_trickle, ChurnSpec, ChurnWorkload, ConeSpec, TrickleSpec,
    TrickleWorkload,
};

/// Parsed `bench-monitor` options.
pub struct BenchOptions {
    /// Reader thread counts to measure.
    pub readers: Vec<usize>,
    /// Seconds per (implementation × readers) cell.
    pub secs: f64,
    /// Approximate role count of the generated policy.
    pub roles: usize,
    /// Role count of the wide-universe trickle policy driven through
    /// the publish-latency cells (0 skips them).
    pub trickle_roles: usize,
    /// Emit JSON on stdout (otherwise a human table).
    pub json: bool,
    /// Baseline file with throughput floors to gate against.
    pub baseline: Option<String>,
}

impl BenchOptions {
    /// The `--quick` shape used by the CI perf-smoke job.
    pub fn quick() -> Self {
        BenchOptions {
            readers: vec![1, 4],
            secs: 0.25,
            roles: 128,
            trickle_roles: 2048,
            json: false,
            baseline: None,
        }
    }

    /// The full default shape.
    pub fn full() -> Self {
        BenchOptions {
            readers: vec![1, 4, 16],
            secs: 1.0,
            roles: 256,
            trickle_roles: 2048,
            json: false,
            baseline: None,
        }
    }
}

/// Measured publish-path cells: single-edge batches over the trickle
/// workload, publishes/s per mode.
#[derive(Clone)]
struct PublishCells {
    roles: usize,
    full_per_sec: f64,
    incremental_per_sec: f64,
    /// Publications the incremental monitor still rebuilt from scratch
    /// (structural fallbacks; should be a small minority).
    incremental_fallbacks: u64,
}

impl PublishCells {
    fn speedup(&self) -> Option<f64> {
        (self.full_per_sec > 0.0).then(|| self.incremental_per_sec / self.full_per_sec)
    }
}

/// One publish cell: a single writer cycling the trickle workload's
/// single-edge batches for `secs` wall seconds under `mode`. Every
/// batch changes the policy, so publishes/s == batches/s.
fn measure_publish(w: &TrickleWorkload, mode: PublishMode, secs: f64) -> (f64, u64) {
    let m = ReferenceMonitor::new(
        w.universe.clone(),
        w.policy.clone(),
        MonitorConfig {
            publish_mode: mode,
            ..MonitorConfig::default()
        },
    );
    let start = Instant::now();
    let deadline = Duration::from_secs_f64(secs);
    let mut published = 0u64;
    'outer: loop {
        for batch in &w.batches {
            if start.elapsed() >= deadline {
                break 'outer;
            }
            m.submit_batch(batch).expect("in-memory submit");
            published += 1;
        }
    }
    let rate = published as f64 / start.elapsed().as_secs_f64();
    let (_, full_rebuilds) = m.publish_counts();
    (rate, full_rebuilds)
}

fn measure_publish_cells(opts: &BenchOptions) -> PublishCells {
    let w = wide_universe_trickle(TrickleSpec {
        roles: opts.trickle_roles,
        ..TrickleSpec::default()
    });
    let warmup = opts.secs.min(0.05);
    measure_publish(&w, PublishMode::FullRebuild, warmup);
    let (full_per_sec, _) = measure_publish(&w, PublishMode::FullRebuild, opts.secs);
    measure_publish(&w, PublishMode::Incremental, warmup);
    let (incremental_per_sec, incremental_fallbacks) =
        measure_publish(&w, PublishMode::Incremental, opts.secs);
    PublishCells {
        roles: opts.trickle_roles,
        full_per_sec,
        incremental_per_sec,
        incremental_fallbacks,
    }
}

/// Measured admission-gate cells: the same trickle workload driven with
/// and without a declared constraint set, publishes/s each way.
#[derive(Clone)]
struct AdmissionCells {
    roles: usize,
    ungated_per_sec: f64,
    gated_per_sec: f64,
    /// Batches the gate checked in the gated run (sanity: must equal
    /// the publishes; refusals would corrupt the measurement).
    checked: u64,
}

impl AdmissionCells {
    /// Ungated/gated throughput ratio — how much slower a publish is
    /// with the static admission check on its path (1.0 = free).
    fn overhead(&self) -> Option<f64> {
        (self.gated_per_sec > 0.0).then(|| self.ungated_per_sec / self.gated_per_sec)
    }
}

/// One admission cell: a single writer cycling the trickle batches with
/// the given constraint set declared. The constraints are chosen to
/// never fire (see [`measure_admission_cells`]), so every batch still
/// publishes and the delta vs the ungated run is pure gate cost.
fn measure_admission(
    w: &TrickleWorkload,
    constraints: Option<&ConstraintSet>,
    secs: f64,
) -> (f64, u64) {
    let m = ReferenceMonitor::new(
        w.universe.clone(),
        w.policy.clone(),
        MonitorConfig::default(),
    );
    if let Some(c) = constraints {
        m.set_constraints(c.clone()).expect("in-memory constraints");
    }
    let start = Instant::now();
    let deadline = Duration::from_secs_f64(secs);
    let mut published = 0u64;
    'outer: loop {
        for batch in &w.batches {
            if start.elapsed() >= deadline {
                break 'outer;
            }
            m.submit_batch(batch).expect("gated batch must stay clean");
            published += 1;
        }
    }
    let rate = published as f64 / start.elapsed().as_secs_f64();
    let (checked, refused) = m.admission_counts();
    assert_eq!(refused, 0, "bench constraints must never refuse a batch");
    (rate, checked)
}

fn measure_admission_cells(opts: &BenchOptions) -> AdmissionCells {
    let mut w = wide_universe_trickle(TrickleSpec {
        roles: opts.trickle_roles,
        ..TrickleSpec::default()
    });
    // A constraint set that exercises the full static check without
    // ever refusing: SoD pairs over roles nothing grants, and a frozen
    // assertion on the admin's own seat — no toggle rule can revoke it,
    // so it sits in the must-closure of every candidate snapshot.
    let ops = w.universe.role("trickle_ops");
    let constraints = ConstraintSet {
        sod_pairs: vec![
            (
                w.universe.role("bench_sod_a"),
                w.universe.role("bench_sod_b"),
            ),
            (
                w.universe.role("bench_sod_c"),
                w.universe.role("bench_sod_d"),
            ),
        ],
        deny_level: None,
        frozen_edges: vec![Edge::UserRole(w.admin, ops)],
    };
    let warmup = opts.secs.min(0.05);
    measure_admission(&w, None, warmup);
    let (ungated_per_sec, _) = measure_admission(&w, None, opts.secs);
    measure_admission(&w, Some(&constraints), warmup);
    let (gated_per_sec, checked) = measure_admission(&w, Some(&constraints), opts.secs);
    AdmissionCells {
        roles: opts.trickle_roles,
        ungated_per_sec,
        gated_per_sec,
        checked,
    }
}

/// Measured analysis-path cells: the goal-directed bounded search over
/// the [`cone`] workload, with and without cone-of-influence slicing
/// (`SafetyConfig::slice`). Both runs return the same `Reachable`
/// answer; the time ratio is the slicing speedup the gate checks.
#[derive(Clone)]
struct SliceCells {
    departments: usize,
    full_ms: f64,
    sliced_ms: f64,
}

impl SliceCells {
    fn speedup(&self) -> Option<f64> {
        (self.sliced_ms > 0.0).then(|| self.full_ms / self.sliced_ms)
    }
}

/// One slice cell: `perm_reachable` on a fresh cone workload. The
/// search is deterministic, so the minimum of two runs filters
/// scheduler noise without averaging in warmup effects.
fn measure_slice_cells() -> SliceCells {
    let spec = ConeSpec::default();
    let config = |slice| SafetyConfig {
        max_steps: 3,
        max_states: 200_000,
        jobs: 1,
        escalate: false,
        slice,
        ..SafetyConfig::default()
    };
    let time = |slice: bool| -> f64 {
        (0..2)
            .map(|_| {
                let mut w = cone(spec);
                let worker = w.workers[0];
                let start = Instant::now();
                let answer = perm_reachable(
                    &mut w.universe,
                    &w.policy,
                    Entity::User(worker),
                    w.goal_perm,
                    config(slice),
                );
                assert!(answer.is_reachable(), "cone goal must be reachable");
                start.elapsed().as_secs_f64() * 1e3
            })
            .fold(f64::INFINITY, f64::min)
    };
    SliceCells {
        departments: spec.departments,
        full_ms: time(false),
        sliced_ms: time(true),
    }
}

/// One measured cell.
struct Cell {
    implementation: &'static str,
    readers: usize,
    read_ops_per_sec: f64,
    write_cmds_per_sec: f64,
}

/// Which monitor implementation a measurement drives.
enum Subject {
    Epoch(Box<ReferenceMonitor>),
    Locked(Box<LockedMonitor>),
}

impl Subject {
    fn create_session(&self, user: adminref_core::ids::UserId) -> SessionId {
        match self {
            Subject::Epoch(m) => m.create_session(user),
            Subject::Locked(m) => m.create_session(user),
        }
    }

    fn activate_role(&self, sid: SessionId, role: adminref_core::ids::RoleId) {
        match self {
            Subject::Epoch(m) => m.activate_role(sid, role).expect("reader role activates"),
            Subject::Locked(m) => m.activate_role(sid, role).expect("reader role activates"),
        }
    }

    fn check_access(&self, sid: SessionId, perm: adminref_core::ids::Perm) -> bool {
        match self {
            Subject::Epoch(m) => m.check_access(sid, perm).expect("session stays live"),
            Subject::Locked(m) => m.check_access(sid, perm).expect("session stays live"),
        }
    }

    fn submit_batch(&self, batch: &[Command]) -> usize {
        match self {
            // The batched write path: one lock, one index rebuild, one
            // published epoch per batch.
            Subject::Epoch(m) => m.submit_batch(batch).expect("in-memory submit").len(),
            // The baseline's write path: one write-lock acquisition per
            // command (the design being replaced).
            Subject::Locked(m) => {
                for cmd in batch {
                    m.submit(cmd).expect("in-memory submit");
                }
                batch.len()
            }
        }
    }
}

/// Measures one cell: `readers` check_access threads + one admin writer
/// cycling the workload's batches, for `secs` wall seconds.
fn measure(w: &ChurnWorkload, subject: &Subject, readers: usize, secs: f64) -> (f64, f64) {
    type Probe = (
        SessionId,
        adminref_core::ids::Perm,
        adminref_core::ids::Perm,
    );
    let sessions: Vec<Probe> = (0..readers)
        .map(|i| {
            let profile = w.readers[i % w.readers.len()];
            let sid = subject.create_session(profile.user);
            subject.activate_role(sid, profile.role);
            (sid, profile.perm_hit, profile.perm_miss)
        })
        .collect();
    let stop = AtomicBool::new(false);
    let reads = AtomicU64::new(0);
    let writes = AtomicU64::new(0);
    let start = Instant::now();
    crossbeam::scope(|scope| {
        for &(sid, hit, miss) in &sessions {
            let (stop, reads) = (&stop, &reads);
            scope.spawn(move |_| {
                let mut local = 0u64;
                // Alternate a granted and a denied probe: denials are
                // the expensive case for closure-walking checkers.
                while !stop.load(Ordering::Relaxed) {
                    std::hint::black_box(subject.check_access(sid, hit));
                    std::hint::black_box(subject.check_access(sid, miss));
                    local += 2;
                }
                reads.fetch_add(local, Ordering::Relaxed);
            });
        }
        scope.spawn(|_| {
            let mut local = 0u64;
            for batch in w.batches.iter().cycle() {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                local += subject.submit_batch(batch) as u64;
            }
            writes.fetch_add(local, Ordering::Relaxed);
        });
        std::thread::sleep(Duration::from_secs_f64(secs));
        stop.store(true, Ordering::Relaxed);
    })
    .expect("bench threads join");
    let elapsed = start.elapsed().as_secs_f64();
    (
        reads.load(Ordering::Relaxed) as f64 / elapsed,
        writes.load(Ordering::Relaxed) as f64 / elapsed,
    )
}

/// Runs the full measurement matrix and handles output + gating.
pub fn run(opts: &BenchOptions) -> Result<(), String> {
    let w = churn(ChurnSpec {
        roles: opts.roles,
        readers: opts.readers.iter().copied().max().unwrap_or(1).max(1),
        batch_len: 32,
        batches: 8,
        valid_ratio: 0.7,
        seed: 0xBE7C,
    });
    let mut cells: Vec<Cell> = Vec::new();
    for implementation in ["locked", "epoch"] {
        for &readers in &opts.readers {
            let subject = match implementation {
                "locked" => Subject::Locked(Box::new(LockedMonitor::new(
                    w.universe.clone(),
                    w.policy.clone(),
                    MonitorConfig::default(),
                ))),
                _ => Subject::Epoch(Box::new(ReferenceMonitor::new(
                    w.universe.clone(),
                    w.policy.clone(),
                    MonitorConfig::default(),
                ))),
            };
            // Short warmup so first-touch costs don't skew short runs.
            measure(&w, &subject, readers, opts.secs.min(0.05));
            let (read_ops, write_cmds) = measure(&w, &subject, readers, opts.secs);
            eprintln!(
                "bench-monitor: {implementation:>6} readers={readers:<2} \
                 {read_ops:>12.0} reads/s  {write_cmds:>9.0} write-cmds/s"
            );
            cells.push(Cell {
                implementation,
                readers,
                read_ops_per_sec: read_ops,
                write_cmds_per_sec: write_cmds,
            });
        }
    }
    let publish = (opts.trickle_roles > 0).then(|| {
        let p = measure_publish_cells(opts);
        eprintln!(
            "bench-monitor: publish(wide_universe_trickle roles={}) \
             full {:>8.0}/s  incremental {:>8.0}/s  speedup {:.1}x  ({} fallbacks)",
            p.roles,
            p.full_per_sec,
            p.incremental_per_sec,
            p.speedup().unwrap_or(0.0),
            p.incremental_fallbacks,
        );
        p
    });
    let admission = (opts.trickle_roles > 0).then(|| {
        let a = measure_admission_cells(opts);
        eprintln!(
            "bench-monitor: admission(wide_universe_trickle roles={}) \
             ungated {:>8.0}/s  gated {:>8.0}/s  overhead {:.2}x  ({} checked)",
            a.roles,
            a.ungated_per_sec,
            a.gated_per_sec,
            a.overhead().unwrap_or(0.0),
            a.checked,
        );
        a
    });
    let slice = measure_slice_cells();
    eprintln!(
        "bench-monitor: slice(cone departments={}) \
         full {:>8.1}ms  sliced {:>8.1}ms  speedup {:.1}x",
        slice.departments,
        slice.full_ms,
        slice.sliced_ms,
        slice.speedup().unwrap_or(0.0),
    );
    if opts.json {
        println!(
            "{}",
            render_json(opts, &cells, publish.as_ref(), admission.as_ref(), &slice)
        );
    } else {
        render_table(&cells, publish.as_ref(), admission.as_ref(), &slice);
    }
    if let Some(path) = &opts.baseline {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("reading baseline {path}: {e}"))?;
        let floors = parse_floors(&text)?;
        gate(&cells, &floors)?;
        gate_publish(publish.as_ref(), &text)?;
        gate_admission(admission.as_ref(), &text)?;
        gate_slice(&slice, &text)?;
        eprintln!(
            "bench-monitor: perf-smoke gate passed ({} floors)",
            floors.len()
        );
    }
    Ok(())
}

/// Gates the incremental/full publish speedup directly against
/// `floors_publish_speedup` (keyed by trickle role count; floors for
/// other sizes — or runs that skipped the publish cells — are skipped).
fn gate_publish(publish: Option<&PublishCells>, baseline: &str) -> Result<(), String> {
    let Some(p) = publish else {
        return Ok(());
    };
    // The key is optional so older baselines keep working — but a
    // *present* key that fails to parse must fail the run, not silently
    // disable the gate.
    if !baseline.contains("\"floors_publish_speedup\"") {
        return Ok(());
    }
    let floors = parse_floor_map(baseline, "floors_publish_speedup")?;
    for (roles, floor) in floors {
        if roles != p.roles {
            continue;
        }
        let Some(speedup) = p.speedup() else {
            return Err("publish gate: full-rebuild cell measured zero publishes".into());
        };
        if speedup < floor {
            return Err(format!(
                "perf-smoke regression:\n  incremental publish speedup on \
                 wide_universe_trickle({roles} roles): {speedup:.2}x is below the {floor:.1}x floor \
                 (full {:.0}/s, incremental {:.0}/s)",
                p.full_per_sec, p.incremental_per_sec
            ));
        }
    }
    Ok(())
}

/// Gates the admission-gate publish overhead against
/// `floors_admission_publish_overhead` (keyed by trickle role count).
/// Unlike the other floors this is a **ceiling**: the measured
/// ungated/gated ratio must stay at or below it.
fn gate_admission(admission: Option<&AdmissionCells>, baseline: &str) -> Result<(), String> {
    let Some(a) = admission else {
        return Ok(());
    };
    // Optional so older baselines keep working — but a *present* key
    // that fails to parse must fail the run, not disable the gate.
    if !baseline.contains("\"floors_admission_publish_overhead\"") {
        return Ok(());
    }
    let ceilings = parse_floor_map(baseline, "floors_admission_publish_overhead")?;
    for (roles, ceiling) in ceilings {
        if roles != a.roles {
            continue;
        }
        let Some(overhead) = a.overhead() else {
            return Err("admission gate: gated cell measured zero publishes".into());
        };
        if overhead > ceiling {
            return Err(format!(
                "perf-smoke regression:\n  admission-gated publish overhead on \
                 wide_universe_trickle({roles} roles): {overhead:.2}x is above the \
                 {ceiling:.1}x ceiling (ungated {:.0}/s, gated {:.0}/s)",
                a.ungated_per_sec, a.gated_per_sec
            ));
        }
    }
    Ok(())
}

/// Gates the sliced/full search speedup directly against
/// `floors_slice_speedup` (keyed by cone department count; floors for
/// other sizes are skipped, like the publish gate).
fn gate_slice(slice: &SliceCells, baseline: &str) -> Result<(), String> {
    // Optional so older baselines keep working — but a *present* key
    // that fails to parse must fail the run, not disable the gate.
    if !baseline.contains("\"floors_slice_speedup\"") {
        return Ok(());
    }
    let floors = parse_floor_map(baseline, "floors_slice_speedup")?;
    for (departments, floor) in floors {
        if departments != slice.departments {
            continue;
        }
        let Some(speedup) = slice.speedup() else {
            return Err("slice gate: sliced cell measured zero elapsed time".into());
        };
        if speedup < floor {
            return Err(format!(
                "perf-smoke regression:\n  sliced perm_reachable speedup on \
                 cone({departments} departments): {speedup:.2}x is below the {floor:.1}x floor \
                 (full {:.1}ms, sliced {:.1}ms)",
                slice.full_ms, slice.sliced_ms
            ));
        }
    }
    Ok(())
}

fn speedup(cells: &[Cell], readers: usize) -> Option<f64> {
    let locked = cells
        .iter()
        .find(|c| c.implementation == "locked" && c.readers == readers)?;
    let epoch = cells
        .iter()
        .find(|c| c.implementation == "epoch" && c.readers == readers)?;
    if locked.read_ops_per_sec > 0.0 {
        Some(epoch.read_ops_per_sec / locked.read_ops_per_sec)
    } else {
        None
    }
}

fn render_table(
    cells: &[Cell],
    publish: Option<&PublishCells>,
    admission: Option<&AdmissionCells>,
    slice: &SliceCells,
) {
    println!(
        "{:<8} {:>8} {:>16} {:>16}",
        "impl", "readers", "reads/s", "write-cmds/s"
    );
    for c in cells {
        println!(
            "{:<8} {:>8} {:>16.0} {:>16.0}",
            c.implementation, c.readers, c.read_ops_per_sec, c.write_cmds_per_sec
        );
    }
    let mut reader_counts: Vec<usize> = cells.iter().map(|c| c.readers).collect();
    reader_counts.sort_unstable();
    reader_counts.dedup();
    for r in reader_counts {
        if let Some(s) = speedup(cells, r) {
            println!("epoch/locked read speedup at {r} readers: {s:.1}x");
        }
    }
    if let Some(p) = publish {
        println!(
            "publish (trickle, {} roles): full {:.0}/s, incremental {:.0}/s, speedup {:.1}x",
            p.roles,
            p.full_per_sec,
            p.incremental_per_sec,
            p.speedup().unwrap_or(0.0)
        );
    }
    if let Some(a) = admission {
        println!(
            "admission (trickle, {} roles): ungated {:.0}/s, gated {:.0}/s, overhead {:.2}x",
            a.roles,
            a.ungated_per_sec,
            a.gated_per_sec,
            a.overhead().unwrap_or(0.0)
        );
    }
    println!(
        "slice (cone, {} departments): full {:.1}ms, sliced {:.1}ms, speedup {:.1}x",
        slice.departments,
        slice.full_ms,
        slice.sliced_ms,
        slice.speedup().unwrap_or(0.0)
    );
}

fn render_json(
    opts: &BenchOptions,
    cells: &[Cell],
    publish: Option<&PublishCells>,
    admission: Option<&AdmissionCells>,
    slice: &SliceCells,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str(&format!("  \"roles\": {},\n", opts.roles));
    out.push_str(&format!("  \"secs_per_cell\": {},\n", opts.secs));
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"impl\": \"{}\", \"readers\": {}, \"read_ops_per_sec\": {:.0}, \
             \"write_cmds_per_sec\": {:.0}}}{}\n",
            c.implementation,
            c.readers,
            c.read_ops_per_sec,
            c.write_cmds_per_sec,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"epoch_read_speedup\": {");
    let mut reader_counts: Vec<usize> = cells.iter().map(|c| c.readers).collect();
    reader_counts.sort_unstable();
    reader_counts.dedup();
    let entries: Vec<String> = reader_counts
        .iter()
        .filter_map(|&r| speedup(cells, r).map(|s| format!("\"{r}\": {s:.2}")))
        .collect();
    out.push_str(&entries.join(", "));
    out.push('}');
    if let Some(p) = publish {
        out.push_str(",\n  \"publish\": {");
        out.push_str(&format!(
            "\"workload\": \"wide_universe_trickle\", \"roles\": {}, \
             \"full_publishes_per_sec\": {:.0}, \"incremental_publishes_per_sec\": {:.0}, \
             \"incremental_fallbacks\": {}, \"speedup\": {:.2}",
            p.roles,
            p.full_per_sec,
            p.incremental_per_sec,
            p.incremental_fallbacks,
            p.speedup().unwrap_or(0.0)
        ));
        out.push('}');
    }
    if let Some(a) = admission {
        out.push_str(",\n  \"admission\": {");
        out.push_str(&format!(
            "\"workload\": \"wide_universe_trickle\", \"roles\": {}, \
             \"ungated_publishes_per_sec\": {:.0}, \"gated_publishes_per_sec\": {:.0}, \
             \"checked\": {}, \"overhead\": {:.2}",
            a.roles,
            a.ungated_per_sec,
            a.gated_per_sec,
            a.checked,
            a.overhead().unwrap_or(0.0)
        ));
        out.push('}');
    }
    out.push_str(",\n  \"slice\": {");
    out.push_str(&format!(
        "\"workload\": \"cone\", \"departments\": {}, \"full_ms\": {:.2}, \
         \"sliced_ms\": {:.2}, \"speedup\": {:.2}",
        slice.departments,
        slice.full_ms,
        slice.sliced_ms,
        slice.speedup().unwrap_or(0.0)
    ));
    out.push('}');
    out.push_str("\n}");
    out
}

/// Extracts the `"floors_read_ops_per_sec": { "N": F, ... }` object from
/// the baseline JSON.
pub fn parse_floors(text: &str) -> Result<Vec<(usize, f64)>, String> {
    parse_floor_map(text, "floors_read_ops_per_sec")
}

/// Extracts a `"<key>": { "N": F, ... }` object from the baseline JSON.
/// Deliberately tiny: the baseline is a checked-in file with a fixed
/// shape, not arbitrary JSON.
pub fn parse_floor_map(text: &str, key_name: &str) -> Result<Vec<(usize, f64)>, String> {
    let key = format!("\"{key_name}\"");
    let at = text
        .find(&key)
        .ok_or_else(|| format!("baseline is missing {key}"))?;
    let rest = &text[at + key.len()..];
    let open = rest
        .find('{')
        .ok_or("baseline: expected { after floors key")?;
    let close = rest[open..]
        .find('}')
        .ok_or("baseline: unterminated floors object")?;
    let body = &rest[open + 1..open + close];
    let mut floors = Vec::new();
    for pair in body.split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (k, v) = pair
            .split_once(':')
            .ok_or_else(|| format!("baseline: malformed floor entry `{pair}`"))?;
        let readers: usize = k
            .trim()
            .trim_matches('"')
            .parse()
            .map_err(|e| format!("baseline: bad reader count in `{pair}`: {e}"))?;
        let floor: f64 = v
            .trim()
            .parse()
            .map_err(|e| format!("baseline: bad floor in `{pair}`: {e}"))?;
        floors.push((readers, floor));
    }
    if floors.is_empty() {
        return Err("baseline: floors object is empty".into());
    }
    Ok(floors)
}

/// Fails if the epoch read path regresses more than 2x below any floor
/// it was measured against.
fn gate(cells: &[Cell], floors: &[(usize, f64)]) -> Result<(), String> {
    let mut violations = Vec::new();
    for &(readers, floor) in floors {
        let Some(cell) = cells
            .iter()
            .find(|c| c.implementation == "epoch" && c.readers == readers)
        else {
            continue; // floor for a reader count this run didn't measure
        };
        let minimum = floor / 2.0;
        if cell.read_ops_per_sec < minimum {
            violations.push(format!(
                "epoch read throughput at {readers} readers: {:.0}/s is >2x below \
                 the {floor:.0}/s floor (minimum {minimum:.0}/s)",
                cell.read_ops_per_sec
            ));
        }
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "perf-smoke regression:\n  {}",
            violations.join("\n  ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floors_parse_from_baseline_shape() {
        let text = r#"{
          "schema": 1,
          "note": "conservative",
          "floors_read_ops_per_sec": { "1": 50000, "4": 100000.5 }
        }"#;
        let floors = parse_floors(text).unwrap();
        assert_eq!(floors, vec![(1, 50_000.0), (4, 100_000.5)]);
        assert!(parse_floors("{}").is_err());
        assert!(parse_floors(r#"{"floors_read_ops_per_sec": {}}"#).is_err());
    }

    #[test]
    fn publish_gate_compares_speedup_directly() {
        let baseline = r#"{ "floors_publish_speedup": { "2048": 3.0 } }"#;
        let fast = PublishCells {
            roles: 2048,
            full_per_sec: 1_000.0,
            incremental_per_sec: 4_000.0,
            incremental_fallbacks: 3,
        };
        assert!(gate_publish(Some(&fast), baseline).is_ok());
        let slow = PublishCells {
            incremental_per_sec: 2_500.0,
            ..fast
        };
        let err = gate_publish(Some(&slow), baseline).unwrap_err();
        assert!(err.contains("below the 3.0x floor"), "{err}");
        // Floors for other sizes, runs without publish cells, and
        // baselines without the key are all skipped.
        let other_size = PublishCells {
            roles: 64,
            ..slow.clone()
        };
        assert!(gate_publish(Some(&other_size), baseline).is_ok());
        assert!(gate_publish(None, baseline).is_ok());
        assert!(gate_publish(Some(&slow), "{}").is_ok());
        // A present-but-malformed key fails the run rather than
        // silently disabling the gate.
        assert!(gate_publish(Some(&fast), r#"{ "floors_publish_speedup": {} }"#).is_err());
    }

    #[test]
    fn admission_gate_treats_floor_as_ceiling() {
        let baseline = r#"{ "floors_admission_publish_overhead": { "2048": 3.0 } }"#;
        let cheap = AdmissionCells {
            roles: 2048,
            ungated_per_sec: 4_000.0,
            gated_per_sec: 2_000.0,
            checked: 100,
        };
        assert!(gate_admission(Some(&cheap), baseline).is_ok());
        let costly = AdmissionCells {
            gated_per_sec: 1_000.0,
            ..cheap
        };
        let err = gate_admission(Some(&costly), baseline).unwrap_err();
        assert!(err.contains("above the 3.0x ceiling"), "{err}");
        // Ceilings for other sizes, runs without admission cells, and
        // baselines without the key are all skipped.
        let other_size = AdmissionCells {
            roles: 64,
            ..costly.clone()
        };
        assert!(gate_admission(Some(&other_size), baseline).is_ok());
        assert!(gate_admission(None, baseline).is_ok());
        assert!(gate_admission(Some(&costly), "{}").is_ok());
        // A present-but-malformed key fails the run rather than
        // silently disabling the gate.
        assert!(gate_admission(
            Some(&cheap),
            r#"{ "floors_admission_publish_overhead": {} }"#
        )
        .is_err());
    }

    #[test]
    fn slice_gate_compares_speedup_directly() {
        let baseline = r#"{ "floors_slice_speedup": { "6": 2.0 } }"#;
        let fast = SliceCells {
            departments: 6,
            full_ms: 120.0,
            sliced_ms: 10.0,
        };
        assert!(gate_slice(&fast, baseline).is_ok());
        let slow = SliceCells {
            sliced_ms: 100.0,
            ..fast
        };
        let err = gate_slice(&slow, baseline).unwrap_err();
        assert!(err.contains("below the 2.0x floor"), "{err}");
        // Floors for other department counts and baselines without the
        // key are skipped; a malformed present key fails the run.
        let other_size = SliceCells {
            departments: 2,
            ..slow.clone()
        };
        assert!(gate_slice(&other_size, baseline).is_ok());
        assert!(gate_slice(&slow, "{}").is_ok());
        assert!(gate_slice(&fast, r#"{ "floors_slice_speedup": {} }"#).is_err());
    }

    #[test]
    fn gate_trips_only_below_half_floor() {
        let cells = vec![
            Cell {
                implementation: "epoch",
                readers: 1,
                read_ops_per_sec: 60_000.0,
                write_cmds_per_sec: 0.0,
            },
            Cell {
                implementation: "epoch",
                readers: 4,
                read_ops_per_sec: 40_000.0,
                write_cmds_per_sec: 0.0,
            },
        ];
        // 60k vs floor 100k: above half, passes. 40k vs floor 100k: fails.
        assert!(gate(&cells, &[(1, 100_000.0)]).is_ok());
        assert!(gate(&cells, &[(4, 100_000.0)]).is_err());
        // Floors for unmeasured reader counts are skipped.
        assert!(gate(&cells, &[(16, 1e12)]).is_ok());
    }
}
