//! `adminref bench-monitor` — reference-monitor read-throughput
//! measurement and the CI perf-smoke gate.
//!
//! Runs the `churn` workload (concurrent `check_access` readers + one
//! admin writer cycling command batches) against both monitor
//! implementations — the epoch-published [`ReferenceMonitor`] and the
//! single-lock [`LockedMonitor`] baseline — at several reader counts,
//! and emits the throughput numbers as JSON (stable schema, consumed by
//! CI as a workflow artifact).
//!
//! With `--baseline FILE` the measured epoch-path read throughput is
//! gated against checked-in floors: the run fails if any reader count
//! regresses more than 2x below its floor. Floors are intentionally
//! conservative (set far below healthy-machine numbers) so the gate
//! catches architecture regressions — a read path that re-acquires the
//! write lock, an index rebuild per query — not CI-runner noise.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use adminref_core::command::Command;
use adminref_monitor::{LockedMonitor, MonitorConfig, ReferenceMonitor, SessionId};
use adminref_workloads::{churn, ChurnSpec, ChurnWorkload};

/// Parsed `bench-monitor` options.
pub struct BenchOptions {
    /// Reader thread counts to measure.
    pub readers: Vec<usize>,
    /// Seconds per (implementation × readers) cell.
    pub secs: f64,
    /// Approximate role count of the generated policy.
    pub roles: usize,
    /// Emit JSON on stdout (otherwise a human table).
    pub json: bool,
    /// Baseline file with throughput floors to gate against.
    pub baseline: Option<String>,
}

impl BenchOptions {
    /// The `--quick` shape used by the CI perf-smoke job.
    pub fn quick() -> Self {
        BenchOptions {
            readers: vec![1, 4],
            secs: 0.25,
            roles: 128,
            json: false,
            baseline: None,
        }
    }

    /// The full default shape.
    pub fn full() -> Self {
        BenchOptions {
            readers: vec![1, 4, 16],
            secs: 1.0,
            roles: 256,
            json: false,
            baseline: None,
        }
    }
}

/// One measured cell.
struct Cell {
    implementation: &'static str,
    readers: usize,
    read_ops_per_sec: f64,
    write_cmds_per_sec: f64,
}

/// Which monitor implementation a measurement drives.
enum Subject {
    Epoch(ReferenceMonitor),
    Locked(LockedMonitor),
}

impl Subject {
    fn create_session(&self, user: adminref_core::ids::UserId) -> SessionId {
        match self {
            Subject::Epoch(m) => m.create_session(user),
            Subject::Locked(m) => m.create_session(user),
        }
    }

    fn activate_role(&self, sid: SessionId, role: adminref_core::ids::RoleId) {
        match self {
            Subject::Epoch(m) => m.activate_role(sid, role).expect("reader role activates"),
            Subject::Locked(m) => m.activate_role(sid, role).expect("reader role activates"),
        }
    }

    fn check_access(&self, sid: SessionId, perm: adminref_core::ids::Perm) -> bool {
        match self {
            Subject::Epoch(m) => m.check_access(sid, perm).expect("session stays live"),
            Subject::Locked(m) => m.check_access(sid, perm).expect("session stays live"),
        }
    }

    fn submit_batch(&self, batch: &[Command]) -> usize {
        match self {
            // The batched write path: one lock, one index rebuild, one
            // published epoch per batch.
            Subject::Epoch(m) => m.submit_batch(batch).expect("in-memory submit").len(),
            // The baseline's write path: one write-lock acquisition per
            // command (the design being replaced).
            Subject::Locked(m) => {
                for cmd in batch {
                    m.submit(cmd).expect("in-memory submit");
                }
                batch.len()
            }
        }
    }
}

/// Measures one cell: `readers` check_access threads + one admin writer
/// cycling the workload's batches, for `secs` wall seconds.
fn measure(w: &ChurnWorkload, subject: &Subject, readers: usize, secs: f64) -> (f64, f64) {
    type Probe = (
        SessionId,
        adminref_core::ids::Perm,
        adminref_core::ids::Perm,
    );
    let sessions: Vec<Probe> = (0..readers)
        .map(|i| {
            let profile = w.readers[i % w.readers.len()];
            let sid = subject.create_session(profile.user);
            subject.activate_role(sid, profile.role);
            (sid, profile.perm_hit, profile.perm_miss)
        })
        .collect();
    let stop = AtomicBool::new(false);
    let reads = AtomicU64::new(0);
    let writes = AtomicU64::new(0);
    let start = Instant::now();
    crossbeam::scope(|scope| {
        for &(sid, hit, miss) in &sessions {
            let (stop, reads) = (&stop, &reads);
            scope.spawn(move |_| {
                let mut local = 0u64;
                // Alternate a granted and a denied probe: denials are
                // the expensive case for closure-walking checkers.
                while !stop.load(Ordering::Relaxed) {
                    std::hint::black_box(subject.check_access(sid, hit));
                    std::hint::black_box(subject.check_access(sid, miss));
                    local += 2;
                }
                reads.fetch_add(local, Ordering::Relaxed);
            });
        }
        scope.spawn(|_| {
            let mut local = 0u64;
            for batch in w.batches.iter().cycle() {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                local += subject.submit_batch(batch) as u64;
            }
            writes.fetch_add(local, Ordering::Relaxed);
        });
        std::thread::sleep(Duration::from_secs_f64(secs));
        stop.store(true, Ordering::Relaxed);
    })
    .expect("bench threads join");
    let elapsed = start.elapsed().as_secs_f64();
    (
        reads.load(Ordering::Relaxed) as f64 / elapsed,
        writes.load(Ordering::Relaxed) as f64 / elapsed,
    )
}

/// Runs the full measurement matrix and handles output + gating.
pub fn run(opts: &BenchOptions) -> Result<(), String> {
    let w = churn(ChurnSpec {
        roles: opts.roles,
        readers: opts.readers.iter().copied().max().unwrap_or(1).max(1),
        batch_len: 32,
        batches: 8,
        valid_ratio: 0.7,
        seed: 0xBE7C,
    });
    let mut cells: Vec<Cell> = Vec::new();
    for implementation in ["locked", "epoch"] {
        for &readers in &opts.readers {
            let subject = match implementation {
                "locked" => Subject::Locked(LockedMonitor::new(
                    w.universe.clone(),
                    w.policy.clone(),
                    MonitorConfig::default(),
                )),
                _ => Subject::Epoch(ReferenceMonitor::new(
                    w.universe.clone(),
                    w.policy.clone(),
                    MonitorConfig::default(),
                )),
            };
            // Short warmup so first-touch costs don't skew short runs.
            measure(&w, &subject, readers, opts.secs.min(0.05));
            let (read_ops, write_cmds) = measure(&w, &subject, readers, opts.secs);
            eprintln!(
                "bench-monitor: {implementation:>6} readers={readers:<2} \
                 {read_ops:>12.0} reads/s  {write_cmds:>9.0} write-cmds/s"
            );
            cells.push(Cell {
                implementation,
                readers,
                read_ops_per_sec: read_ops,
                write_cmds_per_sec: write_cmds,
            });
        }
    }
    if opts.json {
        println!("{}", render_json(opts, &cells));
    } else {
        render_table(&cells);
    }
    if let Some(path) = &opts.baseline {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("reading baseline {path}: {e}"))?;
        let floors = parse_floors(&text)?;
        gate(&cells, &floors)?;
        eprintln!(
            "bench-monitor: perf-smoke gate passed ({} floors)",
            floors.len()
        );
    }
    Ok(())
}

fn speedup(cells: &[Cell], readers: usize) -> Option<f64> {
    let locked = cells
        .iter()
        .find(|c| c.implementation == "locked" && c.readers == readers)?;
    let epoch = cells
        .iter()
        .find(|c| c.implementation == "epoch" && c.readers == readers)?;
    if locked.read_ops_per_sec > 0.0 {
        Some(epoch.read_ops_per_sec / locked.read_ops_per_sec)
    } else {
        None
    }
}

fn render_table(cells: &[Cell]) {
    println!(
        "{:<8} {:>8} {:>16} {:>16}",
        "impl", "readers", "reads/s", "write-cmds/s"
    );
    for c in cells {
        println!(
            "{:<8} {:>8} {:>16.0} {:>16.0}",
            c.implementation, c.readers, c.read_ops_per_sec, c.write_cmds_per_sec
        );
    }
    let mut reader_counts: Vec<usize> = cells.iter().map(|c| c.readers).collect();
    reader_counts.sort_unstable();
    reader_counts.dedup();
    for r in reader_counts {
        if let Some(s) = speedup(cells, r) {
            println!("epoch/locked read speedup at {r} readers: {s:.1}x");
        }
    }
}

fn render_json(opts: &BenchOptions, cells: &[Cell]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str(&format!("  \"roles\": {},\n", opts.roles));
    out.push_str(&format!("  \"secs_per_cell\": {},\n", opts.secs));
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"impl\": \"{}\", \"readers\": {}, \"read_ops_per_sec\": {:.0}, \
             \"write_cmds_per_sec\": {:.0}}}{}\n",
            c.implementation,
            c.readers,
            c.read_ops_per_sec,
            c.write_cmds_per_sec,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"epoch_read_speedup\": {");
    let mut reader_counts: Vec<usize> = cells.iter().map(|c| c.readers).collect();
    reader_counts.sort_unstable();
    reader_counts.dedup();
    let entries: Vec<String> = reader_counts
        .iter()
        .filter_map(|&r| speedup(cells, r).map(|s| format!("\"{r}\": {s:.2}")))
        .collect();
    out.push_str(&entries.join(", "));
    out.push_str("}\n}");
    out
}

/// Extracts the `"floors_read_ops_per_sec": { "N": F, ... }` object from
/// the baseline JSON.
pub fn parse_floors(text: &str) -> Result<Vec<(usize, f64)>, String> {
    parse_floor_map(text, "floors_read_ops_per_sec")
}

/// Extracts a `"<key>": { "N": F, ... }` object from the baseline JSON.
/// Deliberately tiny: the baseline is a checked-in file with a fixed
/// shape, not arbitrary JSON.
pub fn parse_floor_map(text: &str, key_name: &str) -> Result<Vec<(usize, f64)>, String> {
    let key = format!("\"{key_name}\"");
    let at = text
        .find(&key)
        .ok_or_else(|| format!("baseline is missing {key}"))?;
    let rest = &text[at + key.len()..];
    let open = rest
        .find('{')
        .ok_or("baseline: expected { after floors key")?;
    let close = rest[open..]
        .find('}')
        .ok_or("baseline: unterminated floors object")?;
    let body = &rest[open + 1..open + close];
    let mut floors = Vec::new();
    for pair in body.split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (k, v) = pair
            .split_once(':')
            .ok_or_else(|| format!("baseline: malformed floor entry `{pair}`"))?;
        let readers: usize = k
            .trim()
            .trim_matches('"')
            .parse()
            .map_err(|e| format!("baseline: bad reader count in `{pair}`: {e}"))?;
        let floor: f64 = v
            .trim()
            .parse()
            .map_err(|e| format!("baseline: bad floor in `{pair}`: {e}"))?;
        floors.push((readers, floor));
    }
    if floors.is_empty() {
        return Err("baseline: floors object is empty".into());
    }
    Ok(floors)
}

/// Fails if the epoch read path regresses more than 2x below any floor
/// it was measured against.
fn gate(cells: &[Cell], floors: &[(usize, f64)]) -> Result<(), String> {
    let mut violations = Vec::new();
    for &(readers, floor) in floors {
        let Some(cell) = cells
            .iter()
            .find(|c| c.implementation == "epoch" && c.readers == readers)
        else {
            continue; // floor for a reader count this run didn't measure
        };
        let minimum = floor / 2.0;
        if cell.read_ops_per_sec < minimum {
            violations.push(format!(
                "epoch read throughput at {readers} readers: {:.0}/s is >2x below \
                 the {floor:.0}/s floor (minimum {minimum:.0}/s)",
                cell.read_ops_per_sec
            ));
        }
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "perf-smoke regression:\n  {}",
            violations.join("\n  ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floors_parse_from_baseline_shape() {
        let text = r#"{
          "schema": 1,
          "note": "conservative",
          "floors_read_ops_per_sec": { "1": 50000, "4": 100000.5 }
        }"#;
        let floors = parse_floors(text).unwrap();
        assert_eq!(floors, vec![(1, 50_000.0), (4, 100_000.5)]);
        assert!(parse_floors("{}").is_err());
        assert!(parse_floors(r#"{"floors_read_ops_per_sec": {}}"#).is_err());
    }

    #[test]
    fn gate_trips_only_below_half_floor() {
        let cells = vec![
            Cell {
                implementation: "epoch",
                readers: 1,
                read_ops_per_sec: 60_000.0,
                write_cmds_per_sec: 0.0,
            },
            Cell {
                implementation: "epoch",
                readers: 4,
                read_ops_per_sec: 40_000.0,
                write_cmds_per_sec: 0.0,
            },
        ];
        // 60k vs floor 100k: above half, passes. 40k vs floor 100k: fails.
        assert!(gate(&cells, &[(1, 100_000.0)]).is_ok());
        assert!(gate(&cells, &[(4, 100_000.0)]).is_err());
        // Floors for unmeasured reader counts are skipped.
        assert!(gate(&cells, &[(16, 1e12)]).is_ok());
    }
}
