//! `adminref bench-service` (alias `serve-bench`) — multi-writer
//! **write**-throughput measurement for the `PolicyService` protocol,
//! and the second CI perf-smoke gate.
//!
//! Runs the `write_storm` workload — per-writer grant/revoke toggle
//! streams where **every** command changes the policy, so every command
//! forces the full write cost (WAL append + sync, index delta, epoch
//! publication) — as concurrent single-command `Submit` requests
//! through two servers over identical **durable** monitors (real
//! stores under a scratch dir: with the read index delta-maintained,
//! the per-batch WAL sync is the dominant fixed cost group commit
//! exists to amortize, so in-memory cells would measure only combiner
//! overhead):
//!
//! * `percall` — `impl PolicyService for ReferenceMonitor`: every
//!   request takes the writer mutex itself and pays the batch costs
//!   (WAL sync, publication) for its single command — per-call writer
//!   locking, the design group commit replaces;
//! * `group` — [`MonitorService`]: concurrent submitters coalesce into
//!   one in-flight batch drained by a leader, paying those costs once
//!   per drain.
//!
//! Two more cells repeat the same comparison **over the wire**: a
//! [`Daemon`] serves each server on a local socket (Unix where
//! available), and all writer threads share one pipelined
//! [`WireClient`], so concurrent in-flight requests land in the
//! daemon's per-connection worker pool and — on the `wire-group` path —
//! coalesce in the group-commit combiner exactly as local submitters
//! do. `wire-percall` serializes on the monitor's writer mutex instead.
//! The pair isolates whether group commit survives the transport: the
//! socket adds identical framing/syscall overhead to both sides of the
//! ratio.
//!
//! A further cell (`router`, not gated) fans one writer per tenant out
//! over a [`ServiceRouter`] hosting independent **in-memory**
//! per-tenant monitors — aggregate multi-policy publication throughput,
//! not comparable to the durable percall/group cells.
//!
//! The `replica-read` cell measures the replication tentpole's read
//! side: a primary [`ReplicatedService`] under one admin writer streams
//! epoch deltas over a loopback socket to a bootstrapped replica, and
//! reader threads hammer `check_access` against the **replica's**
//! lock-free snapshots while the delta stream applies underneath them.
//! The measured value is replica read ops/s, gated (absolute, with the
//! same 2x slack as the write floor) by
//! `floors_replica_read_ops_per_sec`.
//!
//! With `--baseline FILE` the run is gated three ways: the
//! group/percall speedup at each floored writer count must meet
//! `floors_service_group_speedup` (the acceptance bar — ≥2x at 4
//! writers), the wire-group/wire-percall speedup must meet
//! `floors_wire_group_speedup` (≥2x at 4 writers — group commit must
//! hold up over the socket), and the group path's absolute write
//! throughput must stay within 2x of
//! `floors_service_write_cmds_per_sec` (conservative floors that catch
//! architecture regressions, not runner noise).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use adminref_core::command::Command;
use adminref_core::universe::Universe;
use adminref_monitor::{MonitorConfig, ReferenceMonitor};
use adminref_service::replication::fetch_bootstrap;
use adminref_service::{
    Daemon, DaemonConfig, FollowTarget, MonitorService, PolicyService, ReplicatedService,
    RouterConfig, ServiceRouter, WireClient, WireListener,
};
use adminref_store::{PolicyStore, TempDir};
use adminref_workloads::{
    churn, tenant_seed, write_storm, ChurnSpec, WriteStormSpec, WriteStormWorkload,
};

use crate::bench_monitor::parse_floor_map;

/// Parsed `bench-service` options.
pub struct BenchOptions {
    /// Writer thread counts to measure.
    pub writers: Vec<usize>,
    /// Seconds per (path × writers) cell.
    pub secs: f64,
    /// Approximate role count of the generated policy.
    pub roles: usize,
    /// Tenants (= writers) in the router cell; 0 skips it.
    pub tenants: usize,
    /// Emit JSON on stdout (otherwise a human table).
    pub json: bool,
    /// Baseline file with floors to gate against.
    pub baseline: Option<String>,
}

impl BenchOptions {
    /// The `--quick` shape used by the CI perf-smoke job. Cells are
    /// longer than `bench-monitor --quick`'s because the speedup gate
    /// divides two measurements (noise compounds); 0.5 s/cell keeps the
    /// whole matrix under ~5 s.
    pub fn quick() -> Self {
        BenchOptions {
            writers: vec![1, 4],
            secs: 0.5,
            roles: 128,
            tenants: 4,
            json: false,
            baseline: None,
        }
    }

    /// The full default shape.
    pub fn full() -> Self {
        BenchOptions {
            writers: vec![1, 2, 4],
            secs: 1.0,
            roles: 256,
            tenants: 4,
            json: false,
            baseline: None,
        }
    }
}

/// One measured cell.
struct Cell {
    path: &'static str,
    writers: usize,
    write_cmds_per_sec: f64,
}

/// Runs one writer thread per `(service, stream)` pair for `secs` wall
/// seconds, each cycling its own toggle stream, and returns commands/s.
/// The single-monitor cells pass the same service for every stream; the
/// router cell passes each tenant's own handle.
fn measure_workers<S: PolicyService>(workers: &[(S, Vec<Command>)], secs: f64) -> f64 {
    let stop = AtomicBool::new(false);
    let submitted = AtomicU64::new(0);
    let start = Instant::now();
    crossbeam::scope(|scope| {
        for (service, stream) in workers {
            let (stop, submitted) = (&stop, &submitted);
            scope.spawn(move |_| {
                let mut local = 0u64;
                for cmd in stream.iter().cycle() {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    std::hint::black_box(service.submit_one(*cmd).expect("bench submit"));
                    local += 1;
                }
                submitted.fetch_add(local, Ordering::Relaxed);
            });
        }
        std::thread::sleep(Duration::from_secs_f64(secs));
        stop.store(true, Ordering::Relaxed);
    })
    .expect("bench threads join");
    submitted.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64()
}

/// `measure_workers` with one shared service across all streams.
fn measure(service: &dyn PolicyService, streams: &[Vec<Command>], secs: f64) -> f64 {
    let workers: Vec<(&dyn PolicyService, Vec<Command>)> = streams
        .iter()
        .map(|stream| (service, stream.clone()))
        .collect();
    measure_workers(&workers, secs)
}

/// Runs the measurement matrix and handles output + gating.
pub fn run(opts: &BenchOptions) -> Result<(), String> {
    let max_writers = opts.writers.iter().copied().max().unwrap_or(1).max(1);
    let w = write_storm(WriteStormSpec {
        roles: opts.roles,
        writers: max_writers,
        seed: 0x5E4C,
    });
    let scratch = TempDir::new("bench-service").map_err(|e| format!("bench scratch dir: {e}"))?;
    let mut cells: Vec<Cell> = Vec::new();
    for path in ["percall", "group", "wire-percall", "wire-group"] {
        for &writers in &opts.writers {
            let streams = &w.streams[..writers];
            // A fresh **durable** monitor per cell (so earlier cells'
            // toggles don't shift the policy under later ones; only the
            // server over it differs between the paths). Durability is
            // the point of the comparison: with the read index now
            // delta-maintained, the dominant per-batch fixed cost group
            // commit amortizes is the WAL sync — one fsync per drain
            // versus one per command — so an in-memory monitor would
            // measure only combiner overhead, not the design.
            let store = PolicyStore::create(
                &scratch.path().join(format!("{path}-{writers}")),
                w.universe.clone(),
                w.policy.clone(),
                adminref_core::transition::AuthMode::Explicit,
            )
            .map_err(|e| format!("bench store: {e}"))?;
            let monitor = ReferenceMonitor::with_store(store, MonitorConfig::default());
            let group_server;
            let wire;
            let service: &dyn PolicyService = match path {
                "percall" => &monitor,
                "group" => {
                    group_server = MonitorService::new(monitor);
                    &group_server
                }
                // The wire cells serve the same two servers through a
                // daemon on a local socket; all writer threads share ONE
                // pipelined client, so their in-flight requests fill the
                // daemon's per-connection worker pool and feed the
                // combiner concurrently.
                _ => {
                    let served: Arc<dyn PolicyService> = if path == "wire-percall" {
                        Arc::new(monitor)
                    } else {
                        Arc::new(
                            MonitorService::new(monitor)
                                .with_write_gather(std::time::Duration::from_micros(50)),
                        )
                    };
                    wire = spawn_wire(served, w.universe.clone(), &scratch, path, writers)?;
                    &wire.1
                }
            };
            measure(service, streams, opts.secs.min(0.05));
            // Best of two runs, like the slice gate's min-of-2 timing:
            // the gated values are ratios of two cells measured seconds
            // apart, so a scheduler hiccup inside either cell shows up
            // as a phantom (de)regression. The max is the cell's real
            // capability; the hiccup is not.
            let rate =
                measure(service, streams, opts.secs).max(measure(service, streams, opts.secs));
            eprintln!("bench-service: {path:>12} writers={writers:<2} {rate:>10.0} write-cmds/s");
            cells.push(Cell {
                path,
                writers,
                write_cmds_per_sec: rate,
            });
        }
    }
    {
        let readers = max_writers;
        let rate = measure_replica_read(readers, opts.secs)?;
        eprintln!(
            "bench-service: {:>12} readers={readers:<2} {rate:>10.0} read-ops/s",
            "replica-read"
        );
        cells.push(Cell {
            path: "replica-read",
            writers: readers,
            write_cmds_per_sec: rate,
        });
    }
    if opts.tenants > 0 {
        let rate = measure_router(opts);
        eprintln!(
            "bench-service: {:>12} writers={:<2} {rate:>10.0} write-cmds/s ({} tenants)",
            "router", opts.tenants, opts.tenants
        );
        cells.push(Cell {
            path: "router",
            writers: opts.tenants,
            write_cmds_per_sec: rate,
        });
    }
    if opts.json {
        println!("{}", render_json(opts, &cells));
    } else {
        render_table(&cells);
    }
    if let Some(path) = &opts.baseline {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("reading baseline {path}: {e}"))?;
        gate(&cells, &text)?;
        eprintln!("bench-service: perf-smoke gate passed");
    }
    Ok(())
}

/// Serves `service` through a [`Daemon`] on a fresh local socket (Unix
/// domain where available, TCP loopback otherwise) and connects one
/// [`WireClient`] to it. Returned as a pair so the daemon outlives the
/// client for the whole cell and both tear down when the cell ends.
fn spawn_wire(
    service: Arc<dyn PolicyService>,
    universe: Universe,
    scratch: &TempDir,
    path: &str,
    writers: usize,
) -> Result<(Daemon, WireClient), String> {
    #[cfg(unix)]
    {
        let sock = scratch.path().join(format!("{path}-{writers}.sock"));
        let listener =
            WireListener::unix(&sock).map_err(|e| format!("bench wire listener: {e}"))?;
        let daemon = Daemon::spawn(service, universe, listener)
            .map_err(|e| format!("bench wire daemon: {e}"))?;
        let client =
            WireClient::connect_unix(&sock).map_err(|e| format!("bench wire client: {e}"))?;
        Ok((daemon, client))
    }
    #[cfg(not(unix))]
    {
        let _ = (scratch, path, writers);
        let listener =
            WireListener::tcp("127.0.0.1:0").map_err(|e| format!("bench wire listener: {e}"))?;
        let daemon = Daemon::spawn(service, universe, listener)
            .map_err(|e| format!("bench wire daemon: {e}"))?;
        let addr = daemon
            .local_addr()
            .ok_or_else(|| "bench wire daemon has no local addr".to_string())?;
        let client =
            WireClient::connect_tcp(addr).map_err(|e| format!("bench wire client: {e}"))?;
        Ok((daemon, client))
    }
}

/// One single-writer tenant per thread over a shared router: each
/// tenant is an independent write_storm policy, so this measures
/// aggregate multi-policy write throughput in one process.
fn measure_router(opts: &BenchOptions) -> f64 {
    let tenants: Vec<(String, WriteStormWorkload)> = (0..opts.tenants)
        .map(|i| {
            (
                format!("tenant{i}"),
                write_storm(WriteStormSpec {
                    roles: opts.roles,
                    writers: 1,
                    seed: tenant_seed(0x5E4C, i),
                }),
            )
        })
        .collect();
    let states: Vec<_> = tenants
        .iter()
        .map(|(id, w)| (id.clone(), w.universe.clone(), w.policy.clone()))
        .collect();
    let router = ServiceRouter::new(
        RouterConfig::default(),
        Box::new(move |id: &str| {
            let (_, u, p) = states
                .iter()
                .find(|(tid, _, _)| tid == id)
                .expect("known tenant");
            (u.clone(), p.clone())
        }),
    );
    let workers: Vec<_> = tenants
        .iter()
        .map(|(id, w)| {
            (
                router.tenant(id).expect("tenant opens"),
                w.streams[0].clone(),
            )
        })
        .collect();
    measure_workers(&workers, opts.secs)
}

/// The replication read cell: a primary [`ReplicatedService`] over an
/// in-memory monitor serves a TCP loopback daemon; a replica bootstraps
/// from it and follows the delta stream; `readers` threads alternate
/// granted/denied `check_access` probes against the replica's own
/// service while one writer churns the primary. Returns replica read
/// ops/s. Loopback TCP (not Unix) keeps the cell portable.
fn measure_replica_read(readers: usize, secs: f64) -> Result<f64, String> {
    let w = churn(ChurnSpec {
        roles: 128,
        readers: readers.max(1),
        batch_len: 16,
        batches: 64,
        valid_ratio: 0.9,
        seed: 0x5E4C,
    });
    let monitor = Arc::new(ReferenceMonitor::new(
        w.universe.clone(),
        w.policy.clone(),
        MonitorConfig::default(),
    ));
    let primary = Arc::new(ReplicatedService::primary(monitor));
    let hub = Arc::clone(primary.hub());
    let listener =
        WireListener::tcp("127.0.0.1:0").map_err(|e| format!("bench replica listener: {e}"))?;
    let daemon = Daemon::spawn_replicated(
        Arc::clone(&primary) as Arc<dyn PolicyService>,
        w.universe.clone(),
        listener,
        DaemonConfig::default(),
        Some(hub),
    )
    .map_err(|e| format!("bench replica daemon: {e}"))?;
    let addr = daemon
        .local_addr()
        .ok_or_else(|| "bench replica daemon has no local addr".to_string())?;
    let target = FollowTarget::Tcp(addr.to_string());
    let (universe, policy, constraints, epoch, term) =
        fetch_bootstrap(&target, Duration::from_secs(5))
            .map_err(|e| format!("bench replica bootstrap: {e}"))?;
    let replica_monitor = Arc::new(ReferenceMonitor::new(
        universe.clone(),
        policy.clone(),
        MonitorConfig::default(),
    ));
    replica_monitor
        .install_replica_state(universe, policy, epoch, constraints)
        .map_err(|e| format!("bench replica install: {e}"))?;
    let replica = ReplicatedService::replica(
        replica_monitor,
        target,
        Duration::from_millis(50),
        Some(term),
    );

    // Reader sessions live on the replica; the stream churning the
    // policy underneath them flips probe outcomes, which is the point —
    // black_box consumes either answer.
    let sessions: Vec<_> = (0..readers.max(1))
        .map(|i| {
            let profile = w.readers[i % w.readers.len()];
            let sid = replica.create_session(profile.user).expect("session");
            replica.activate_role(sid, profile.role).expect("activate");
            (sid, profile.perm_hit, profile.perm_miss)
        })
        .collect();
    let stop = AtomicBool::new(false);
    let reads = AtomicU64::new(0);
    let start = Instant::now();
    let replica = &replica;
    let primary = &*primary;
    crossbeam::scope(|scope| {
        for &(sid, hit, miss) in &sessions {
            let (stop, reads) = (&stop, &reads);
            scope.spawn(move |_| {
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    std::hint::black_box(replica.check_access(sid, hit).expect("replica read"));
                    std::hint::black_box(replica.check_access(sid, miss).expect("replica read"));
                    local += 2;
                }
                reads.fetch_add(local, Ordering::Relaxed);
            });
        }
        scope.spawn(|_| {
            for batch in w.batches.iter().cycle() {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                primary.submit(batch.clone()).expect("primary write");
            }
        });
        std::thread::sleep(Duration::from_secs_f64(secs));
        stop.store(true, Ordering::Relaxed);
    })
    .expect("bench replica threads join");
    let rate = reads.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64();
    daemon.shutdown();
    Ok(rate)
}

/// group-path / percall-path throughput ratio at one writer count; the
/// local cells pass (`"group"`, `"percall"`), the socket cells
/// (`"wire-group"`, `"wire-percall"`).
fn speedup_between(
    cells: &[Cell],
    group_path: &str,
    percall_path: &str,
    writers: usize,
) -> Option<f64> {
    let percall = cells
        .iter()
        .find(|c| c.path == percall_path && c.writers == writers)?;
    let group = cells
        .iter()
        .find(|c| c.path == group_path && c.writers == writers)?;
    if percall.write_cmds_per_sec > 0.0 {
        Some(group.write_cmds_per_sec / percall.write_cmds_per_sec)
    } else {
        None
    }
}

fn speedup(cells: &[Cell], writers: usize) -> Option<f64> {
    speedup_between(cells, "group", "percall", writers)
}

fn wire_speedup(cells: &[Cell], writers: usize) -> Option<f64> {
    speedup_between(cells, "wire-group", "wire-percall", writers)
}

fn writer_counts(cells: &[Cell]) -> Vec<usize> {
    let mut counts: Vec<usize> = cells
        .iter()
        .filter(|c| c.path != "router" && c.path != "replica-read")
        .map(|c| c.writers)
        .collect();
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn render_table(cells: &[Cell]) {
    println!("{:<12} {:>8} {:>16}", "path", "writers", "write-cmds/s");
    for c in cells {
        println!(
            "{:<12} {:>8} {:>16.0}",
            c.path, c.writers, c.write_cmds_per_sec
        );
    }
    for writers in writer_counts(cells) {
        if let Some(s) = speedup(cells, writers) {
            println!("group/percall write speedup at {writers} writers: {s:.1}x");
        }
        if let Some(s) = wire_speedup(cells, writers) {
            println!("wire-group/wire-percall write speedup at {writers} writers: {s:.1}x");
        }
    }
}

fn render_json(opts: &BenchOptions, cells: &[Cell]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str(&format!("  \"roles\": {},\n", opts.roles));
    out.push_str(&format!("  \"tenants\": {},\n", opts.tenants));
    out.push_str(&format!("  \"secs_per_cell\": {},\n", opts.secs));
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        // The replica cell measures reads; every other cell writes.
        let metric = if c.path == "replica-read" {
            "read_ops_per_sec"
        } else {
            "write_cmds_per_sec"
        };
        out.push_str(&format!(
            "    {{\"path\": \"{}\", \"writers\": {}, \"{metric}\": {:.0}}}{}\n",
            c.path,
            c.writers,
            c.write_cmds_per_sec,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"group_write_speedup\": {");
    let entries: Vec<String> = writer_counts(cells)
        .iter()
        .filter_map(|&n| speedup(cells, n).map(|s| format!("\"{n}\": {s:.2}")))
        .collect();
    out.push_str(&entries.join(", "));
    out.push_str("},\n");
    out.push_str("  \"wire_group_speedup\": {");
    let entries: Vec<String> = writer_counts(cells)
        .iter()
        .filter_map(|&n| wire_speedup(cells, n).map(|s| format!("\"{n}\": {s:.2}")))
        .collect();
    out.push_str(&entries.join(", "));
    out.push_str("}\n}");
    out
}

/// Gates the run: group/percall and wire-group/wire-percall speedups
/// against `floors_service_group_speedup` /
/// `floors_wire_group_speedup` (direct ≥), and the group path's
/// absolute throughput against `floors_service_write_cmds_per_sec`
/// and the replica cell's against `floors_replica_read_ops_per_sec`
/// (both fail only >2x below the floor, like `bench-monitor`).
fn gate(cells: &[Cell], baseline: &str) -> Result<(), String> {
    let mut violations = Vec::new();
    for (writers, min_speedup) in parse_floor_map(baseline, "floors_service_group_speedup")? {
        let Some(measured) = speedup(cells, writers) else {
            continue; // floor for a writer count this run didn't measure
        };
        if measured < min_speedup {
            violations.push(format!(
                "group-commit write speedup at {writers} writers: {measured:.2}x is below \
                 the {min_speedup:.1}x floor"
            ));
        }
    }
    for (writers, min_speedup) in parse_floor_map(baseline, "floors_wire_group_speedup")? {
        let Some(measured) = wire_speedup(cells, writers) else {
            continue;
        };
        if measured < min_speedup {
            violations.push(format!(
                "over-the-wire group-commit write speedup at {writers} writers: {measured:.2}x \
                 is below the {min_speedup:.1}x floor"
            ));
        }
    }
    for (writers, floor) in parse_floor_map(baseline, "floors_service_write_cmds_per_sec")? {
        let Some(cell) = cells
            .iter()
            .find(|c| c.path == "group" && c.writers == writers)
        else {
            continue;
        };
        let minimum = floor / 2.0;
        if cell.write_cmds_per_sec < minimum {
            violations.push(format!(
                "group write throughput at {writers} writers: {:.0}/s is >2x below the \
                 {floor:.0}/s floor (minimum {minimum:.0}/s)",
                cell.write_cmds_per_sec
            ));
        }
    }
    for (readers, floor) in parse_floor_map(baseline, "floors_replica_read_ops_per_sec")? {
        let Some(cell) = cells
            .iter()
            .find(|c| c.path == "replica-read" && c.writers == readers)
        else {
            continue;
        };
        let minimum = floor / 2.0;
        if cell.write_cmds_per_sec < minimum {
            violations.push(format!(
                "replica read throughput at {readers} readers: {:.0}/s is >2x below the \
                 {floor:.0}/s floor (minimum {minimum:.0}/s)",
                cell.write_cmds_per_sec
            ));
        }
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "perf-smoke regression:\n  {}",
            violations.join("\n  ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(path: &'static str, writers: usize, rate: f64) -> Cell {
        Cell {
            path,
            writers,
            write_cmds_per_sec: rate,
        }
    }

    #[test]
    fn speedup_and_gate_logic() {
        let cells = vec![
            cell("percall", 4, 10_000.0),
            cell("group", 4, 45_000.0),
            cell("wire-percall", 4, 5_000.0),
            cell("wire-group", 4, 20_000.0),
            cell("router", 4, 40_000.0),
            cell("replica-read", 4, 500_000.0),
        ];
        assert_eq!(speedup(&cells, 4), Some(4.5));
        assert_eq!(wire_speedup(&cells, 4), Some(4.0));
        let baseline = r#"{
          "floors_service_group_speedup": { "4": 2.0 },
          "floors_wire_group_speedup": { "4": 2.0 },
          "floors_service_write_cmds_per_sec": { "4": 20000 },
          "floors_replica_read_ops_per_sec": { "4": 400000 }
        }"#;
        assert!(gate(&cells, baseline).is_ok());
        // Speedup below the bar trips the gate directly…
        let slow = vec![cell("percall", 4, 10_000.0), cell("group", 4, 15_000.0)];
        let err = gate(&slow, baseline).unwrap_err();
        assert!(err.contains("speedup"), "{err}");
        // …the wire pair is gated the same way…
        let wire_slow = vec![
            cell("percall", 4, 10_000.0),
            cell("group", 4, 45_000.0),
            cell("wire-percall", 4, 10_000.0),
            cell("wire-group", 4, 15_000.0),
        ];
        let err = gate(&wire_slow, baseline).unwrap_err();
        assert!(err.contains("over-the-wire"), "{err}");
        // …and absolute throughput only trips >2x below its floor.
        let low = vec![cell("percall", 4, 100.0), cell("group", 4, 9_000.0)];
        let err = gate(&low, baseline).unwrap_err();
        assert!(err.contains("throughput"), "{err}");
        // The replica read floor is gated the same way.
        let slow_replica = vec![cell("replica-read", 4, 100_000.0)];
        let err = gate(&slow_replica, baseline).unwrap_err();
        assert!(err.contains("replica read"), "{err}");
        let ok_replica = vec![cell("replica-read", 4, 250_000.0)];
        assert!(gate(&ok_replica, baseline).is_ok(), "2x slack holds");
        // Floors for unmeasured writer counts are skipped.
        let partial = vec![cell("percall", 1, 100.0), cell("group", 1, 500.0)];
        assert!(gate(&partial, baseline).is_ok());
    }

    #[test]
    fn router_cells_do_not_feed_speedup() {
        let cells = vec![cell("router", 4, 99_999.0), cell("replica-read", 4, 9.0)];
        assert_eq!(speedup(&cells, 4), None);
        assert!(writer_counts(&cells).is_empty());
    }
}
