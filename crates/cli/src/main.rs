//! `adminref` — command-line front end for the administrative-policy
//! toolkit.
//!
//! ```text
//! adminref stats    <policy.rbac>
//! adminref validate <policy.rbac>
//! adminref print    <policy.rbac> [--paper]
//! adminref lint     <policy.rbac> [--json] [--deny note|warning|error]
//!                   [--sod r1,r2[,r3,r4…]] [--ordered]
//! adminref order    <policy.rbac> "<held priv>" "<requested priv>" [--strict]
//! adminref weaker   <policy.rbac> "<priv>" [--depth N]
//! adminref run      <policy.rbac> <queue.rbacq> [--ordered] [--store DIR]
//! adminref analyze  (<store-dir> | <policy.rbac>) --batch <queue.rbacq> [--ordered]
//! adminref constraint add  <store-dir> [--sod r1,r2[,…]]
//!                   [--deny note|warning|error] [--freeze a,b[,…]] [--ordered]
//! adminref constraint list <store-dir> [--ordered]
//! adminref compact  <store-dir> [--ordered]
//! adminref refines  <policy-a.rbac> <policy-b.rbac> [--witnesses N]
//! adminref reach    <policy.rbac> <user> <action> <object> [--ordered] [--steps N]
//!                   [--max-states N] [--jobs N] [--no-escalate] [--no-slice]
//! adminref verify   <policy.rbac> <user> <action> <object> [--ordered] [--steps N]
//!                   [--max-states N] [--no-slice]
//! adminref verify   <policy.rbac> --oracle <queue.rbacq> [--ordered]
//! adminref verify   --oracle-churn [--ordered]
//! adminref bench-monitor [--quick] [--json] [--readers 1,4,16] [--secs S]
//!                   [--roles N] [--trickle-roles N] [--baseline BENCH_BASELINE.json]
//! adminref bench-service [--quick] [--json] [--writers 1,2,4] [--secs S]
//!                   [--roles N] [--tenants T] [--baseline BENCH_BASELINE.json]
//! adminref serve    <store-dir> (--listen HOST:PORT | --unix PATH)
//!                   [--init policy.rbac] [--ordered] [--stop-file PATH] [--workers N]
//!                   [--replicate]
//! adminref serve    (--follow HOST:PORT | --follow-unix PATH)
//!                   (--listen HOST:PORT | --unix PATH) [--stop-file PATH] [--workers N]
//! adminref client   (<host:port> | --unix PATH) <verb> ...
//!                   verbs: check | reach | lint | submit | analyze | constraint
//!                          | compact | stats | version | promote
//! ```
//!
//! `refines` is scriptable: it prints the violation count and the first
//! witnesses, and exits nonzero (without usage noise) when refinement
//! fails. `lint` is the search-free static analyzer: it prints the
//! typed findings (or stable `--json` for CI diffing) and exits nonzero
//! when anything at or above the `--deny` floor (default `error`)
//! fires. `reach` and `verify` slice the command alphabet to the goal's
//! cone of influence by default — sound, often dramatically smaller —
//! and report the reduction; `--no-slice` searches the full alphabet. `verify` is the unbounded analysis front door: it dispatches
//! to the saturation engine on grow-only instances, to bounded BFS with
//! DPLL-based bounded model checking otherwise, and in `--oracle` mode
//! replays a command queue through a reference monitor and checks the
//! audit trace against the declarative invariant suite. `compact`
//! folds a durable store's command log into a fresh
//! snapshot (reporting what recovery replayed first), so reopening the
//! store replays nothing. `bench-service` (alias `serve-bench`)
//! measures multi-writer group-commit throughput against per-call
//! writer locking; `bench-monitor` additionally measures incremental
//! vs full-rebuild publish latency on the wide-universe trickle
//! workload. `serve` runs the `adminrefd` network daemon over a
//! durable store (TCP or Unix socket, wire protocol in
//! `specs/wire_protocol.md`), and `client` drives a running daemon
//! with remote twins of the local verbs — see [`remote`] for the
//! name-resolution model. `serve --replicate` makes the daemon a
//! replication primary that streams each published epoch's deltas to
//! subscribers; `serve --follow` runs an in-memory read replica that
//! refuses writes until `client … promote` turns it into the new
//! primary under a bumped fencing term.
//!
//! `analyze` is the publish-time admission front door: it simulates a
//! batch against a store (or bare policy file) and prints its blast
//! radius — permission verdicts that flip, interval-status changes,
//! grow-only transitions, and any admission findings — without
//! mutating anything; it exits nonzero when the declared constraints
//! would refuse the batch. `constraint add`/`constraint list` manage
//! the store's durable constraint set (separation-of-duty pairs, a
//! lint deny-level, frozen-edge assertions) that the serving monitor
//! enforces on every publish.
//!
//! Policies use the `adminref-lang` syntax; privileges on the command
//! line use the same expression syntax, quoted.

#![forbid(unsafe_code)]

mod bench_monitor;
mod bench_service;
mod remote;

use std::process::ExitCode;

use adminref_core::admission::{self, ConstraintSet, ImpactReport};
use adminref_core::analysis;
use adminref_core::display::{edge_to_string, priv_to_string, Notation};
use adminref_core::enumerate::{enumerate_weaker, remark2_depth, EnumerationConfig};
use adminref_core::ids::Entity;
use adminref_core::lint::{lint_policy, slice_alphabet, LintConfig, Severity};
use adminref_core::ordering::{OrderingMode, PrivilegeOrder};
use adminref_core::refinement::refinement_violations;
use adminref_core::safety::{perm_reachable, prepare_alphabet, ReachabilityAnswer, SafetyConfig};
use adminref_core::transition::AuthMode;
use adminref_core::verify::bmc::{BmcOutcome, Inconclusive};
use adminref_core::verify::{specs::InvariantSuite, verify_perm_reachable};
use adminref_lang::{load_policy, load_queue, parse_priv_expr, print_command, print_policy};
use adminref_monitor::{MonitorConfig, ReferenceMonitor};
use adminref_store::PolicyStore;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  adminref stats    <policy.rbac>
  adminref validate <policy.rbac>
  adminref print    <policy.rbac> [--paper]
  adminref lint     <policy.rbac> [--json] [--deny note|warning|error]
                    [--sod r1,r2[,r3,r4...]] [--ordered]
  adminref order    <policy.rbac> '<held priv>' '<requested priv>' [--strict]
  adminref weaker   <policy.rbac> '<priv>' [--depth N]
  adminref run      <policy.rbac> <queue.rbacq> [--ordered] [--store DIR]
  adminref analyze  (<store-dir> | <policy.rbac>) --batch <queue.rbacq> [--ordered]
  adminref constraint add  <store-dir> [--sod r1,r2[,...]]
                    [--deny note|warning|error] [--freeze a,b[,...]] [--ordered]
  adminref constraint list <store-dir> [--ordered]
  adminref compact  <store-dir> [--ordered]
  adminref refines  <policy-a.rbac> <policy-b.rbac> [--witnesses N]
  adminref reach    <policy.rbac> <user> <action> <object> [--ordered] [--steps N]
                    [--max-states N] [--jobs N] [--no-escalate] [--no-slice]
                    (--jobs 0 = all cores)
  adminref verify   <policy.rbac> <user> <action> <object> [--ordered] [--steps N]
                    [--max-states N] [--no-slice]
  adminref verify   <policy.rbac> --oracle <queue.rbacq> [--ordered]
  adminref verify   --oracle-churn [--ordered]
  adminref bench-monitor [--quick] [--json] [--readers 1,4,16] [--secs S]
                    [--roles N] [--trickle-roles N] [--baseline BENCH_BASELINE.json]
  adminref bench-service [--quick] [--json] [--writers 1,2,4] [--secs S]
                    [--roles N] [--tenants T] [--baseline BENCH_BASELINE.json]
  adminref serve    <store-dir> (--listen HOST:PORT | --unix PATH)
                    [--init policy.rbac] [--ordered] [--stop-file PATH] [--workers N]
                    [--replicate]
  adminref serve    (--follow HOST:PORT | --follow-unix PATH)
                    (--listen HOST:PORT | --unix PATH) [--stop-file PATH] [--workers N]
  adminref client   (<host:port> | --unix PATH) <verb> ...
                    check  <policy.rbac> <user> <action> <object> --roles r1[,r2...]
                    reach  <policy.rbac> <user> <action> <object> [--steps N]
                           [--max-states N] [--jobs N] [--no-escalate] [--no-slice]
                    lint   <policy.rbac> [--json] [--deny note|warning|error] [--sod ...]
                    submit <policy.rbac> <queue.rbacq>
                    analyze <policy.rbac> <queue.rbacq>
                    constraint <policy.rbac> add [--sod ...] [--deny ...] [--freeze ...]
                    constraint <policy.rbac> list
                    compact | stats | version | promote";

/// Dispatches to a subcommand. `Ok(code)` is a completed run (possibly
/// a scriptable nonzero exit, e.g. `refines` on a failed refinement or
/// a bench whose perf gate tripped); `Err` is a usage error and prints
/// the help text.
fn dispatch(args: &[String]) -> Result<ExitCode, String> {
    let mut it = args.iter();
    let cmd = it.next().ok_or("missing subcommand")?;
    let rest: Vec<&String> = it.collect();
    let done = |r: Result<(), String>| r.map(|()| ExitCode::SUCCESS);
    match cmd.as_str() {
        "stats" => done(cmd_stats(&rest)),
        "validate" => done(cmd_validate(&rest)),
        "print" => done(cmd_print(&rest)),
        "lint" => cmd_lint(&rest),
        "order" => cmd_order(&rest),
        "weaker" => done(cmd_weaker(&rest)),
        "run" => done(cmd_run(&rest)),
        "analyze" => cmd_analyze(&rest),
        "constraint" => cmd_constraint(&rest),
        "compact" => done(cmd_compact(&rest)),
        "refines" => cmd_refines(&rest),
        "reach" => done(cmd_reach(&rest)),
        "verify" => cmd_verify(&rest),
        "bench-monitor" => cmd_bench_monitor(&rest),
        "bench-service" | "serve-bench" => cmd_bench_service(&rest),
        "serve" => remote::cmd_serve(&rest),
        "client" => remote::cmd_client(&rest),
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

fn read_policy(
    path: &str,
) -> Result<
    (
        adminref_core::universe::Universe,
        adminref_core::policy::Policy,
    ),
    String,
> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    load_policy(&text).map_err(|e| format!("{path}: {e}"))
}

fn flag(rest: &[&String], name: &str) -> bool {
    rest.iter().any(|a| a.as_str() == name)
}

fn flag_value(rest: &[&String], name: &str) -> Option<String> {
    rest.iter()
        .position(|a| a.as_str() == name)
        .and_then(|i| rest.get(i + 1))
        .map(|s| s.to_string())
}

fn positional<'a>(rest: &'a [&String], n: usize) -> Result<&'a str, String> {
    rest.iter()
        .filter(|a| !a.starts_with("--"))
        .nth(n)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("missing argument #{}", n + 1))
}

fn cmd_stats(rest: &[&String]) -> Result<(), String> {
    let (uni, policy) = read_policy(positional(rest, 0)?)?;
    let s = analysis::stats(&uni, &policy);
    println!("users            {}", s.users);
    println!("roles            {}", s.roles);
    println!("UA edges         {}", s.ua_edges);
    println!("RH edges         {}", s.rh_edges);
    println!("PA edges         {}", s.pa_edges);
    println!("priv vertices    {}", s.priv_vertices);
    println!("admin vertices   {}", s.admin_vertices);
    println!("max priv depth   {}", s.max_priv_depth);
    println!("longest RH chain {}", s.longest_chain);
    println!("hierarchy SCCs   {}", s.hierarchy_sccs);
    Ok(())
}

fn cmd_validate(rest: &[&String]) -> Result<(), String> {
    let (uni, policy) = read_policy(positional(rest, 0)?)?;
    analysis::validate(&uni, &policy).map_err(|e| e.to_string())?;
    println!("ok: policy is well-formed");
    if policy.is_non_administrative(&uni) {
        println!("note: the policy is non-administrative (Definition 1)");
    }
    Ok(())
}

fn cmd_print(rest: &[&String]) -> Result<(), String> {
    let (uni, policy) = read_policy(positional(rest, 0)?)?;
    if flag(rest, "--paper") {
        print!(
            "{}",
            adminref_core::display::policy_to_string(&uni, &policy, Notation::Paper)
        );
    } else {
        print!("{}", print_policy(&uni, &policy, "policy"));
    }
    Ok(())
}

/// `adminref lint` — the search-free static analyzer. Prints the typed
/// findings (stable JSON with `--json`) and exits nonzero when anything
/// at or above the `--deny` floor (default `error`) fires, so CI lanes
/// can gate on policy hygiene without running a search. A store
/// directory lints the durable state, reading the declared SoD pairs
/// (and deny-level) from the store's constraint set, so pairs don't
/// need re-declaring on every invocation; `--sod`/`--deny` override.
fn cmd_lint(rest: &[&String]) -> Result<ExitCode, String> {
    let path = positional(rest, 0)?;
    let mode = if flag(rest, "--ordered") {
        AuthMode::Ordered(OrderingMode::Extended)
    } else {
        AuthMode::Explicit
    };
    let (uni, policy, stored) = if std::path::Path::new(path).is_dir() {
        let (store, _) =
            PolicyStore::open(std::path::Path::new(path), mode).map_err(|e| e.to_string())?;
        (
            store.universe().clone(),
            store.policy().clone(),
            store.constraints().clone(),
        )
    } else {
        let (uni, policy) = read_policy(path)?;
        (uni, policy, ConstraintSet::default())
    };
    let deny = match flag_value(rest, "--deny") {
        Some(v) => Severity::parse(&v)
            .ok_or_else(|| format!("--deny: unknown severity `{v}` (note|warning|error)"))?,
        None => stored.deny_level.unwrap_or(Severity::Error),
    };
    let sod_pairs = match flag_value(rest, "--sod") {
        Some(spec) => parse_sod_pairs(&uni, &spec)?,
        None => stored.sod_pairs,
    };
    let report = lint_policy(
        &uni,
        &policy,
        &LintConfig {
            auth_mode: mode,
            sod_pairs,
        },
    );
    if flag(rest, "--json") {
        println!("{}", report.to_json(&uni, path));
    } else {
        println!(
            "# {path}: {} rule site(s), {} edge(s) in the may-add closure",
            report.rules_checked, report.closure_edges
        );
        for f in &report.findings {
            println!("{}[{}]: {}", f.severity.name(), f.kind.name(), f.message);
        }
        println!(
            "# {} note(s), {} warning(s), {} error(s)",
            report.count_of(Severity::Note),
            report.count_of(Severity::Warning),
            report.count_of(Severity::Error)
        );
    }
    // Scriptable: findings at or above the floor are the exit code;
    // a noisy-but-tolerated policy is still a completed run.
    Ok(if report.count_at_or_above(deny) > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// Parses `--sod r1,r2[,r3,r4…]` into role pairs against the policy's
/// universe. Every named role must exist; the list length must be even.
fn parse_sod_pairs(
    uni: &adminref_core::universe::Universe,
    spec: &str,
) -> Result<Vec<(adminref_core::ids::RoleId, adminref_core::ids::RoleId)>, String> {
    let roles = spec
        .split(',')
        .map(|name| {
            let name = name.trim();
            uni.find_role(name)
                .ok_or_else(|| format!("--sod: unknown role `{name}`"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    if roles.is_empty() || roles.len() % 2 != 0 {
        return Err("--sod needs a comma-separated list of role pairs (an even count)".into());
    }
    Ok(roles.chunks(2).map(|c| (c[0], c[1])).collect())
}

fn cmd_order(rest: &[&String]) -> Result<ExitCode, String> {
    let (mut uni, policy) = read_policy(positional(rest, 0)?)?;
    let held_expr = parse_priv_expr(positional(rest, 1)?).map_err(|e| e.to_string())?;
    let req_expr = parse_priv_expr(positional(rest, 2)?).map_err(|e| e.to_string())?;
    let pos = adminref_lang::token::Pos::start();
    let held = adminref_lang::resolve_priv(&mut uni, &held_expr, pos).map_err(|e| e.to_string())?;
    let req = adminref_lang::resolve_priv(&mut uni, &req_expr, pos).map_err(|e| e.to_string())?;
    let mode = if flag(rest, "--strict") {
        OrderingMode::Strict
    } else {
        OrderingMode::Extended
    };
    let order = PrivilegeOrder::new(&uni, &policy, mode);
    let weaker = order.is_weaker(held, req);
    println!(
        "{}  ⊑  {}  ({mode:?}): {}",
        priv_to_string(&uni, held, Notation::Paper),
        priv_to_string(&uni, req, Notation::Paper),
        weaker
    );
    if let Some(d) = order.derive(held, req) {
        println!("derivation: {}", d.render(&uni));
    }
    // Scriptable: the answer is the exit code; `false` is a completed
    // run, not a usage error.
    Ok(if weaker {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_weaker(rest: &[&String]) -> Result<(), String> {
    let (mut uni, policy) = read_policy(positional(rest, 0)?)?;
    let expr = parse_priv_expr(positional(rest, 1)?).map_err(|e| e.to_string())?;
    let pos = adminref_lang::token::Pos::start();
    let p = adminref_lang::resolve_priv(&mut uni, &expr, pos).map_err(|e| e.to_string())?;
    let depth = match flag_value(rest, "--depth") {
        Some(v) => v.parse::<u32>().map_err(|e| e.to_string())?,
        None => remark2_depth(&uni, &policy),
    };
    let set = enumerate_weaker(
        &mut uni,
        &policy,
        p,
        EnumerationConfig {
            max_depth: depth,
            max_results: 10_000,
            mode: OrderingMode::Extended,
        },
    );
    println!(
        "# {} privileges weaker than {} (depth ≤ {depth}{})",
        set.privileges.len(),
        priv_to_string(&uni, p, Notation::Paper),
        if set.truncated { ", TRUNCATED" } else { "" }
    );
    for q in &set.privileges {
        println!("{}", priv_to_string(&uni, *q, Notation::Ascii));
    }
    Ok(())
}

fn cmd_run(rest: &[&String]) -> Result<(), String> {
    let (mut uni, policy) = read_policy(positional(rest, 0)?)?;
    let queue_text =
        std::fs::read_to_string(positional(rest, 1)?).map_err(|e| format!("reading queue: {e}"))?;
    let queue = load_queue(&queue_text, &mut uni).map_err(|e| e.to_string())?;
    let mode = if flag(rest, "--ordered") {
        AuthMode::Ordered(OrderingMode::Extended)
    } else {
        AuthMode::Explicit
    };
    if let Some(dir) = flag_value(rest, "--store") {
        let mut store = PolicyStore::create(std::path::Path::new(&dir), uni, policy, mode)
            .map_err(|e| e.to_string())?;
        for cmd in queue.iter() {
            let out = store.execute(cmd).map_err(|e| e.to_string())?;
            println!(
                "{:60} {}",
                print_command(store.universe(), cmd),
                if out.executed() {
                    "executed"
                } else {
                    "refused"
                }
            );
        }
        store.sync().map_err(|e| e.to_string())?;
        println!("# durable state in {dir}");
    } else {
        let mut live = policy;
        let trace = adminref_core::transition::run(&mut uni, &mut live, &queue, mode);
        for s in &trace.steps {
            println!(
                "{:60} {}",
                print_command(&uni, &s.command),
                if s.outcome.executed() {
                    "executed"
                } else {
                    "refused"
                }
            );
        }
        println!(
            "# {} executed, {} refused",
            trace.executed_count(),
            trace.refused_count()
        );
        print!("{}", print_policy(&uni, &live, "result"));
    }
    Ok(())
}

/// `adminref analyze (<store-dir> | <policy.rbac>) --batch <queue.rbacq>`
/// — the admission dry run: simulates the batch, prints its blast
/// radius, and evaluates the declared constraints without mutating
/// anything. A directory argument is a durable store (whose declared
/// constraint set gates the run); a file is a bare policy with an
/// empty set — add pairs with `--sod` to gate either. Scriptable: a
/// batch the gate would refuse exits nonzero.
fn cmd_analyze(rest: &[&String]) -> Result<ExitCode, String> {
    let path = positional(rest, 0)?;
    let batch_path = flag_value(rest, "--batch").ok_or("analyze needs --batch <queue.rbacq>")?;
    let mode = if flag(rest, "--ordered") {
        AuthMode::Ordered(OrderingMode::Extended)
    } else {
        AuthMode::Explicit
    };
    let (mut uni, policy, mut constraints) = if std::path::Path::new(path).is_dir() {
        let (store, _) =
            PolicyStore::open(std::path::Path::new(path), mode).map_err(|e| e.to_string())?;
        (
            store.universe().clone(),
            store.policy().clone(),
            store.constraints().clone(),
        )
    } else {
        let (uni, policy) = read_policy(path)?;
        (uni, policy, ConstraintSet::default())
    };
    if let Some(spec) = flag_value(rest, "--sod") {
        constraints.sod_pairs.extend(parse_sod_pairs(&uni, &spec)?);
        constraints.normalize();
    }
    let queue_text =
        std::fs::read_to_string(&batch_path).map_err(|e| format!("reading {batch_path}: {e}"))?;
    let queue = load_queue(&queue_text, &mut uni).map_err(|e| e.to_string())?;
    let report = admission::analyze_batch(&uni, &policy, queue.commands(), &constraints, mode);
    print_impact(&uni, &report);
    Ok(if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Renders an [`ImpactReport`] in triage order: simulation verdicts,
/// grow-only transition, published deltas, permission flips, interval
/// status changes, severed sessions, then any admission findings.
pub(crate) fn print_impact(uni: &adminref_core::universe::Universe, report: &ImpactReport) {
    let executed = report.outcomes.iter().filter(|o| o.executed()).count();
    println!(
        "# simulated: {} executed, {} refused",
        executed,
        report.outcomes.len() - executed
    );
    if report.grow_only_before != report.grow_only_after {
        println!(
            "grow-only: {} -> {}",
            report.grow_only_before, report.grow_only_after
        );
    }
    for d in &report.deltas {
        println!(
            "delta: {} {}",
            if d.added { "+" } else { "-" },
            edge_to_string(uni, d.edge, Notation::Ascii)
        );
    }
    for f in &report.flipped {
        println!(
            "flip: {} {} {}",
            uni.user_name(f.user),
            if f.now_granted { "gains" } else { "loses" },
            priv_to_string(uni, f.term, Notation::Ascii)
        );
    }
    for c in &report.status_changes {
        println!(
            "status: {} {} -> {}",
            edge_to_string(uni, c.edge, Notation::Ascii),
            c.before.name(),
            c.after.name()
        );
    }
    for s in &report.severed_sessions {
        println!("severed session: {s}");
    }
    for f in &report.findings {
        println!("{}[{}]: {}", f.severity.name(), f.kind.name(), f.message);
    }
    println!(
        "# admission: {}",
        if report.findings.is_empty() {
            "clean".to_string()
        } else {
            format!("REFUSED ({} finding(s))", report.findings.len())
        }
    );
}

/// `adminref constraint add|list <store-dir>` — manages the store's
/// durable admission constraint set. `add` merges `--sod` pairs,
/// a `--deny` level, and `--freeze` edge assertions into the declared
/// set (normalized, WAL-persisted); `list` prints the live set.
fn cmd_constraint(rest: &[&String]) -> Result<ExitCode, String> {
    let verb = positional(rest, 0)?;
    let dir = positional(rest, 1)?;
    let mode = if flag(rest, "--ordered") {
        AuthMode::Ordered(OrderingMode::Extended)
    } else {
        AuthMode::Explicit
    };
    let (mut store, _) =
        PolicyStore::open(std::path::Path::new(dir), mode).map_err(|e| e.to_string())?;
    match verb {
        "list" => {
            print_constraints(store.universe(), store.constraints());
            Ok(ExitCode::SUCCESS)
        }
        "add" => {
            let mut constraints = store.constraints().clone();
            merge_constraint_flags(rest, store.universe(), &mut constraints)?;
            constraints.normalize();
            store
                .set_constraints(constraints)
                .map_err(|e| e.to_string())?;
            print_constraints(store.universe(), store.constraints());
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown constraint verb `{other}` (add|list)")),
    }
}

/// Applies `--sod`, `--deny`, and `--freeze` to a constraint set; the
/// shared surface of local `constraint add` and its remote twin.
pub(crate) fn merge_constraint_flags(
    rest: &[&String],
    uni: &adminref_core::universe::Universe,
    constraints: &mut ConstraintSet,
) -> Result<(), String> {
    let mut touched = false;
    if let Some(spec) = flag_value(rest, "--sod") {
        constraints.sod_pairs.extend(parse_sod_pairs(uni, &spec)?);
        touched = true;
    }
    if let Some(v) = flag_value(rest, "--deny") {
        constraints.deny_level = Some(
            Severity::parse(&v)
                .ok_or_else(|| format!("--deny: unknown severity `{v}` (note|warning|error)"))?,
        );
        touched = true;
    }
    if let Some(spec) = flag_value(rest, "--freeze") {
        constraints
            .frozen_edges
            .extend(parse_freeze_edges(uni, &spec)?);
        touched = true;
    }
    if !touched {
        return Err("constraint add needs at least one of --sod, --deny, --freeze".into());
    }
    Ok(())
}

/// Parses `--freeze a,b[,c,d…]` into assignment/hierarchy edges: each
/// pair's first name is a user (user→role edge) or a role (role→role
/// edge), the second is always a role.
pub(crate) fn parse_freeze_edges(
    uni: &adminref_core::universe::Universe,
    spec: &str,
) -> Result<Vec<adminref_core::universe::Edge>, String> {
    use adminref_core::universe::Edge;
    let names: Vec<&str> = spec.split(',').map(str::trim).collect();
    if names.is_empty() || names.len() % 2 != 0 {
        return Err("--freeze needs a comma-separated list of name pairs (an even count)".into());
    }
    names
        .chunks(2)
        .map(|pair| {
            let target = uni
                .find_role(pair[1])
                .ok_or_else(|| format!("--freeze: unknown role `{}`", pair[1]))?;
            if let Some(user) = uni.find_user(pair[0]) {
                Ok(Edge::UserRole(user, target))
            } else if let Some(role) = uni.find_role(pair[0]) {
                Ok(Edge::RoleRole(role, target))
            } else {
                Err(format!("--freeze: unknown user or role `{}`", pair[0]))
            }
        })
        .collect()
}

/// Prints a constraint set with resolved names, one declaration per
/// line, in the canonical (normalized) order.
pub(crate) fn print_constraints(
    uni: &adminref_core::universe::Universe,
    constraints: &ConstraintSet,
) {
    if constraints.is_empty() {
        println!("# no constraints declared");
        return;
    }
    for (a, b) in &constraints.sod_pairs {
        println!("sod: {}, {}", uni.role_name(*a), uni.role_name(*b));
    }
    if let Some(level) = constraints.deny_level {
        println!("deny-level: {}", level.name());
    }
    for e in &constraints.frozen_edges {
        println!("frozen: {}", edge_to_string(uni, *e, Notation::Ascii));
    }
    println!("# {} constraint(s) declared", constraints.len());
}

/// Folds a durable store's command log into a fresh snapshot, so the
/// next open replays nothing. Prints the recovery report of the open
/// (replayed entries, torn tail, divergence) and the result.
fn cmd_compact(rest: &[&String]) -> Result<(), String> {
    let dir = positional(rest, 0)?;
    let mode = if flag(rest, "--ordered") {
        AuthMode::Ordered(OrderingMode::Extended)
    } else {
        AuthMode::Explicit
    };
    let (mut store, report) =
        PolicyStore::open(std::path::Path::new(dir), mode).map_err(|e| e.to_string())?;
    println!(
        "opened {dir}: replayed {} entr{}{}{}",
        report.replayed,
        if report.replayed == 1 { "y" } else { "ies" },
        if report.truncated_tail {
            ", truncated a torn tail"
        } else {
            ""
        },
        if report.divergent > 0 {
            ", DIVERGENT replay"
        } else {
            ""
        },
    );
    if report.divergent > 0 {
        return Err(format!(
            "{} divergent entr{}: the log and snapshot are from different histories; \
             refusing to compact (rerun with the auth mode the log was written under)",
            report.divergent,
            if report.divergent == 1 { "y" } else { "ies" }
        ));
    }
    store.compact().map_err(|e| e.to_string())?;
    println!(
        "compacted: log folded into snapshot ({} edges), reopen replays 0 entries",
        store.policy().edge_count()
    );
    Ok(())
}

/// Scriptable refinement check: prints `violations: N` plus the first
/// `(entity, perm)` witnesses (`--witnesses N`, default 10) and exits
/// nonzero — without usage noise — when refinement fails.
fn cmd_refines(rest: &[&String]) -> Result<ExitCode, String> {
    // Both policies must resolve in one shared universe for comparison.
    let text_a = std::fs::read_to_string(positional(rest, 0)?).map_err(|e| e.to_string())?;
    let text_b = std::fs::read_to_string(positional(rest, 1)?).map_err(|e| e.to_string())?;
    let doc_a = adminref_lang::parse_policy(&text_a).map_err(|e| e.to_string())?;
    let doc_b = adminref_lang::parse_policy(&text_b).map_err(|e| e.to_string())?;
    let mut uni = adminref_core::universe::Universe::new();
    let a = adminref_lang::resolve_policy_into(&doc_a, &mut uni).map_err(|e| e.to_string())?;
    let b = adminref_lang::resolve_policy_into(&doc_b, &mut uni).map_err(|e| e.to_string())?;
    let max_witnesses = match flag_value(rest, "--witnesses") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|e| format!("--witnesses: {e}"))?,
        None => 10,
    };
    let violations = refinement_violations(&uni, &a, &b);
    let holds = violations.is_empty();
    println!("A ⊒ B (B is a non-administrative refinement of A): {holds}");
    println!("violations: {}", violations.len());
    for v in violations.iter().take(max_witnesses) {
        let who = match v.entity {
            Entity::User(u) => format!("user {}", uni.user_name(u)),
            Entity::Role(r) => format!("role {}", uni.role_name(r)),
        };
        println!(
            "  {who} gains ({}, {})",
            uni.action_name(v.perm.action),
            uni.object_name(v.perm.object)
        );
    }
    if violations.len() > max_witnesses {
        println!("  … and {} more", violations.len() - max_witnesses);
    }
    Ok(if holds {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_bench_monitor(rest: &[&String]) -> Result<ExitCode, String> {
    let mut opts = if flag(rest, "--quick") {
        bench_monitor::BenchOptions::quick()
    } else {
        bench_monitor::BenchOptions::full()
    };
    opts.json = flag(rest, "--json");
    if let Some(readers) = flag_value(rest, "--readers") {
        opts.readers = readers
            .split(',')
            .map(|r| {
                r.trim()
                    .parse::<usize>()
                    .map_err(|e| format!("--readers: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        if opts.readers.is_empty() || opts.readers.contains(&0) {
            return Err("--readers needs a comma-separated list of positive counts".into());
        }
    }
    if let Some(secs) = flag_value(rest, "--secs") {
        opts.secs = secs.parse::<f64>().map_err(|e| format!("--secs: {e}"))?;
        if opts.secs.is_nan() || opts.secs <= 0.0 {
            return Err("--secs must be positive".into());
        }
    }
    if let Some(roles) = flag_value(rest, "--roles") {
        opts.roles = roles
            .parse::<usize>()
            .map_err(|e| format!("--roles: {e}"))?;
    }
    if let Some(roles) = flag_value(rest, "--trickle-roles") {
        opts.trickle_roles = roles
            .parse::<usize>()
            .map_err(|e| format!("--trickle-roles: {e}"))?;
    }
    opts.baseline = flag_value(rest, "--baseline");
    finish_bench(bench_monitor::run(&opts))
}

/// A bench that measured and then failed its gate (or couldn't read
/// its baseline) is a completed run, not a usage error: report the
/// failure and exit nonzero without the help text.
fn finish_bench(run: Result<(), String>) -> Result<ExitCode, String> {
    Ok(match run {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    })
}

fn cmd_bench_service(rest: &[&String]) -> Result<ExitCode, String> {
    let mut opts = if flag(rest, "--quick") {
        bench_service::BenchOptions::quick()
    } else {
        bench_service::BenchOptions::full()
    };
    opts.json = flag(rest, "--json");
    if let Some(writers) = flag_value(rest, "--writers") {
        opts.writers = writers
            .split(',')
            .map(|w| {
                w.trim()
                    .parse::<usize>()
                    .map_err(|e| format!("--writers: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        if opts.writers.is_empty() || opts.writers.contains(&0) {
            return Err("--writers needs a comma-separated list of positive counts".into());
        }
    }
    if let Some(secs) = flag_value(rest, "--secs") {
        opts.secs = secs.parse::<f64>().map_err(|e| format!("--secs: {e}"))?;
        if opts.secs.is_nan() || opts.secs <= 0.0 {
            return Err("--secs must be positive".into());
        }
    }
    if let Some(roles) = flag_value(rest, "--roles") {
        opts.roles = roles
            .parse::<usize>()
            .map_err(|e| format!("--roles: {e}"))?;
    }
    if let Some(tenants) = flag_value(rest, "--tenants") {
        opts.tenants = tenants
            .parse::<usize>()
            .map_err(|e| format!("--tenants: {e}"))?;
    }
    opts.baseline = flag_value(rest, "--baseline");
    finish_bench(bench_service::run(&opts))
}

/// Prints the alphabet before/after line when cone-of-influence slicing
/// is on and actually removed commands. The search recomputes the slice
/// itself — this costs one extra closure pass, paid only on the CLI.
fn report_slice(
    uni: &mut adminref_core::universe::Universe,
    policy: &adminref_core::policy::Policy,
    user: adminref_core::ids::UserId,
    perm: adminref_core::ids::Perm,
    config: SafetyConfig,
) {
    if !config.slice {
        return;
    }
    let target = uni.priv_perm(perm);
    let alphabet = prepare_alphabet(uni, policy, config);
    let outcome = slice_alphabet(
        uni,
        policy,
        &alphabet,
        Entity::User(user),
        target,
        config.auth_mode,
    );
    if outcome.shrunk() {
        println!(
            "slice: alphabet {} -> {} command(s) in the goal's cone of influence",
            outcome.before, outcome.after
        );
    }
}

fn cmd_reach(rest: &[&String]) -> Result<(), String> {
    let (mut uni, policy) = read_policy(positional(rest, 0)?)?;
    let user = uni.find_user(positional(rest, 1)?).ok_or("unknown user")?;
    let action = positional(rest, 2)?.to_string();
    let object = positional(rest, 3)?.to_string();
    let perm = uni.perm(&action, &object);
    let steps = match flag_value(rest, "--steps") {
        Some(v) => v.parse::<usize>().map_err(|e| e.to_string())?,
        None => 3,
    };
    let max_states = match flag_value(rest, "--max-states") {
        Some(v) => v.parse::<usize>().map_err(|e| e.to_string())?,
        None => SafetyConfig::default().max_states,
    };
    let jobs = match flag_value(rest, "--jobs") {
        Some(v) => v.parse::<usize>().map_err(|e| e.to_string())?,
        None => SafetyConfig::default().jobs,
    };
    let mode = if flag(rest, "--ordered") {
        AuthMode::Ordered(OrderingMode::Extended)
    } else {
        AuthMode::Explicit
    };
    let config = SafetyConfig {
        max_steps: steps,
        max_states,
        auth_mode: mode,
        jobs,
        escalate: !flag(rest, "--no-escalate"),
        slice: !flag(rest, "--no-slice"),
        ..SafetyConfig::default()
    };
    report_slice(&mut uni, &policy, user, perm, config);
    let answer = perm_reachable(&mut uni, &policy, Entity::User(user), perm, config);
    match answer {
        ReachabilityAnswer::Reachable { witness } => {
            println!(
                "REACHABLE in {} step(s): {} can come to hold ({action}, {object})",
                witness.len(),
                uni.user_name(user)
            );
            for cmd in witness.iter() {
                println!("  {}", print_command(&uni, cmd));
            }
            Ok(())
        }
        ReachabilityAnswer::Unreachable => {
            println!(
                "UNREACHABLE: the whole reachable space was explored (within {steps} step(s))"
            );
            Ok(())
        }
        ReachabilityAnswer::Unknown { truncation } => {
            println!("UNKNOWN: a bound cut the search off before the space was exhausted");
            println!(
                "  explored {} state(s) to depth {}",
                truncation.states, truncation.depth
            );
            if truncation.cap_hit {
                println!("  the state cap dropped successors: retry with a larger --max-states");
            } else {
                println!("  only the step bound cut the search off: retry with a larger --steps");
            }
            Ok(())
        }
    }
}

/// `adminref verify` — the unbounded front door. Reachability mode
/// picks the best engine per instance (saturation / BFS / DPLL-BMC) and
/// reports which one decided; oracle mode replays a queue through a
/// reference monitor and checks the audit trace against the declarative
/// invariant suite. Scriptable exits: `UNKNOWN` and oracle violations
/// are completed runs with a nonzero code, not usage errors.
fn cmd_verify(rest: &[&String]) -> Result<ExitCode, String> {
    let mode = if flag(rest, "--ordered") {
        AuthMode::Ordered(OrderingMode::Extended)
    } else {
        AuthMode::Explicit
    };
    if let Some(queue_path) = flag_value(rest, "--oracle") {
        let (mut uni, policy) = read_policy(positional(rest, 0)?)?;
        let queue_text = std::fs::read_to_string(&queue_path)
            .map_err(|e| format!("reading {queue_path}: {e}"))?;
        let queue = load_queue(&queue_text, &mut uni).map_err(|e| e.to_string())?;
        let monitor = ReferenceMonitor::new(
            uni.clone(),
            policy.clone(),
            MonitorConfig {
                auth_mode: mode,
                audit_capacity: queue.len().max(1),
                ..MonitorConfig::default()
            },
        );
        monitor.submit_queue(&queue).map_err(|e| e.to_string())?;
        return oracle_verdict(&uni, &policy, &monitor, mode);
    }
    if flag(rest, "--oracle-churn") {
        let w = adminref_workloads::churn(adminref_workloads::ChurnSpec {
            roles: 64,
            readers: 8,
            batch_len: 16,
            batches: 4,
            ..adminref_workloads::ChurnSpec::default()
        });
        let monitor = ReferenceMonitor::new(
            w.universe.clone(),
            w.policy.clone(),
            MonitorConfig {
                auth_mode: mode,
                audit_capacity: w.batches.iter().map(Vec::len).sum::<usize>().max(1),
                ..MonitorConfig::default()
            },
        );
        for r in &w.readers {
            let sid = monitor.create_session(r.user);
            monitor
                .activate_role(sid, r.role)
                .map_err(|e| e.to_string())?;
        }
        for batch in &w.batches {
            monitor.submit_batch(batch).map_err(|e| e.to_string())?;
        }
        return oracle_verdict(&w.universe, &w.policy, &monitor, mode);
    }
    let (mut uni, policy) = read_policy(positional(rest, 0)?)?;
    let user = uni.find_user(positional(rest, 1)?).ok_or("unknown user")?;
    let action = positional(rest, 2)?.to_string();
    let object = positional(rest, 3)?.to_string();
    let perm = uni.perm(&action, &object);
    let config = SafetyConfig {
        max_steps: match flag_value(rest, "--steps") {
            Some(v) => v.parse::<usize>().map_err(|e| e.to_string())?,
            None => SafetyConfig::default().max_steps,
        },
        max_states: match flag_value(rest, "--max-states") {
            Some(v) => v.parse::<usize>().map_err(|e| e.to_string())?,
            None => SafetyConfig::default().max_states,
        },
        auth_mode: mode,
        slice: !flag(rest, "--no-slice"),
        ..SafetyConfig::default()
    };
    report_slice(&mut uni, &policy, user, perm, config);
    let report = verify_perm_reachable(&mut uni, &policy, Entity::User(user), perm, config);
    println!(
        "engine: {}{}",
        report.engine.name(),
        if report.monotone {
            " (instance is grow-only)"
        } else {
            ""
        }
    );
    if let Some(bmc) = &report.bmc {
        println!(
            "bmc: bound {}, {} variable(s), {} clause(s)",
            bmc.bound, bmc.variables, bmc.clauses
        );
        if let BmcOutcome::Inconclusive(Inconclusive::GroundingTooLarge { estimated, budget }) =
            bmc.outcome
        {
            println!(
                "bmc: grounding bound {} needs ~{estimated} variable(s), over the {budget} budget",
                bmc.bound
            );
            if config.slice {
                println!("  the instance is too wide even sliced: reduce the policy or --steps");
            } else {
                println!("  drop --no-slice so the grounding only covers the goal's cone");
            }
        }
    }
    match report.answer {
        ReachabilityAnswer::Reachable { witness } => {
            println!(
                "REACHABLE in {} step(s): {} can come to hold ({action}, {object})",
                witness.len(),
                uni.user_name(user)
            );
            for cmd in witness.iter() {
                println!("  {}", print_command(&uni, cmd));
            }
            Ok(ExitCode::SUCCESS)
        }
        ReachabilityAnswer::Unreachable => {
            println!("UNREACHABLE: no reachable policy grants ({action}, {object})");
            Ok(ExitCode::SUCCESS)
        }
        ReachabilityAnswer::Unknown { truncation } => {
            println!(
                "UNKNOWN: {} state(s) to depth {}, no unbounded engine closed the instance",
                truncation.states, truncation.depth
            );
            Ok(ExitCode::FAILURE)
        }
    }
}

/// Replays a monitor's audit trace through the standard invariant suite
/// and prints the verdict; violations exit nonzero.
fn oracle_verdict(
    uni: &adminref_core::universe::Universe,
    root: &adminref_core::policy::Policy,
    monitor: &ReferenceMonitor,
    mode: AuthMode,
) -> Result<ExitCode, String> {
    let trace = monitor.audit_trace();
    let suite = InvariantSuite::standard(mode);
    let violations = suite.replay(uni, root, &trace, &monitor.session_views());
    if violations.is_empty() {
        println!(
            "oracle: {} step(s) replayed, {} invariant(s) hold",
            trace.len(),
            suite.len()
        );
        Ok(ExitCode::SUCCESS)
    } else {
        for v in &violations {
            println!("VIOLATION {} at step {}: {}", v.invariant, v.seq, v.message);
        }
        println!("oracle: {} violation(s)", violations.len());
        Ok(ExitCode::FAILURE)
    }
}
