//! The networked CLI surface: `adminref serve` runs `adminrefd` over a
//! durable store; `adminref client` drives a running daemon through
//! [`WireClient`], reusing the same verbs (`check`, `reach`, `lint`,
//! `submit`, `analyze`, `constraint`, `compact`, `stats`, `version`)
//! that exist locally.
//!
//! Name resolution on the client side is deliberately store-free: the
//! client loads the *same* `.rbac` policy source the serving store was
//! initialized from, and deterministic interning guarantees the ids it
//! derives match the server's. The server still bounds-checks every id
//! at the wire boundary, so a mismatched policy file produces a typed
//! transport error, not a panic.

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use adminref_core::ids::Entity;
use adminref_core::lint::Severity;
use adminref_core::ordering::OrderingMode;
use adminref_core::safety::{ReachabilityAnswer, SafetyConfig};
use adminref_core::transition::AuthMode;
use adminref_lang::{load_queue, print_command};
use adminref_monitor::{MonitorConfig, ReferenceMonitor};
use adminref_service::daemon::{Daemon, DaemonConfig, WireListener};
use adminref_service::replication::{fetch_bootstrap, FollowTarget, ReplicatedService};
use adminref_service::{MonitorService, PolicyService, WireClient};
use adminref_store::PolicyStore;

use crate::{
    flag, flag_value, merge_constraint_flags, parse_sod_pairs, print_constraints, print_impact,
    read_policy,
};

/// Flags that consume the following argument; their values must not be
/// mistaken for positionals when a caller interleaves them.
const VALUE_FLAGS: &[&str] = &[
    "--listen",
    "--unix",
    "--init",
    "--stop-file",
    "--workers",
    "--sod",
    "--deny",
    "--batch",
    "--freeze",
    "--steps",
    "--max-states",
    "--jobs",
    "--roles",
    "--witnesses",
    "--follow",
    "--follow-unix",
];

/// Positional arguments with the values of [`VALUE_FLAGS`] stripped, so
/// `client --unix /tmp/a.sock check …` parses the same as
/// `client check … --unix /tmp/a.sock`.
fn positionals<'a>(rest: &'a [&String]) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut skip = false;
    for arg in rest {
        if skip {
            skip = false;
            continue;
        }
        if VALUE_FLAGS.contains(&arg.as_str()) {
            skip = true;
            continue;
        }
        if !arg.starts_with("--") {
            out.push(arg.as_str());
        }
    }
    out
}

fn positional<'a>(pos: &[&'a str], n: usize, what: &str) -> Result<&'a str, String> {
    pos.get(n).copied().ok_or_else(|| format!("missing {what}"))
}

fn auth_mode(rest: &[&String]) -> AuthMode {
    if flag(rest, "--ordered") {
        AuthMode::Ordered(OrderingMode::Extended)
    } else {
        AuthMode::Explicit
    }
}

// ----- adminref serve --------------------------------------------------

/// `adminref serve <store-dir> (--listen HOST:PORT | --unix PATH)
/// [--init policy.rbac] [--ordered] [--stop-file PATH] [--workers N]
/// [--replicate]`, or
/// `adminref serve (--follow HOST:PORT | --follow-unix PATH)
/// (--listen … | --unix …) [--stop-file PATH] [--workers N]`
///
/// Serves a durable store over the wire protocol until the stop file
/// appears (or forever without one — the process is then stopped
/// externally; the WAL makes hard kills safe, at the cost of dropping
/// in-memory sessions). `--replicate` makes the daemon a replication
/// primary that streams every published epoch to subscribed replicas;
/// `--follow` makes it an in-memory read replica of a primary (no
/// store directory) that refuses writes until promoted.
pub fn cmd_serve(rest: &[&String]) -> Result<ExitCode, String> {
    let follow = match (
        flag_value(rest, "--follow"),
        flag_value(rest, "--follow-unix"),
    ) {
        (Some(_), Some(_)) => {
            return Err("pass at most one of --follow HOST:PORT and --follow-unix PATH".into())
        }
        (Some(addr), None) => Some(FollowTarget::Tcp(addr)),
        (None, Some(path)) => Some(FollowTarget::Unix(path.into())),
        (None, None) => None,
    };
    if let Some(target) = follow {
        return serve_replica(rest, target);
    }
    let pos = positionals(rest);
    let dir = positional(&pos, 0, "store directory")?;
    let mode = auth_mode(rest);

    let (store, recovery) = if let Some(policy_path) = flag_value(rest, "--init") {
        let (uni, policy) = read_policy(&policy_path)?;
        let store = PolicyStore::create(Path::new(dir), uni, policy, mode)
            .map_err(|e| format!("creating store in {dir}: {e}"))?;
        println!("initialized {dir} from {policy_path}");
        (store, None)
    } else {
        let (store, report) =
            PolicyStore::open(Path::new(dir), mode).map_err(|e| format!("opening {dir}: {e}"))?;
        println!(
            "opened {dir}: replayed {} entr{}{}",
            report.replayed,
            if report.replayed == 1 { "y" } else { "ies" },
            if report.truncated_tail {
                ", truncated a torn tail"
            } else {
                ""
            },
        );
        if report.divergent > 0 {
            return Err(format!(
                "{} divergent entr{}: the log and snapshot are from different histories; \
                 refusing to serve (rerun with the auth mode the log was written under)",
                report.divergent,
                if report.divergent == 1 { "y" } else { "ies" }
            ));
        }
        (store, Some(report))
    };

    // The serving universe doubles as the wire-decode context.
    let universe = store.universe().clone();
    // Thread the recovery report through so remote `client stats`
    // surfaces what replay found, same as the local monitor would.
    let monitor = ReferenceMonitor::with_store_recovered(store, recovery, MonitorConfig::default());
    // Network serving: a small write-gather window lets one pipelined
    // round-trip's submissions coalesce into one group-commit batch.
    let gather = std::time::Duration::from_micros(50);
    let (service, hub): (Arc<dyn PolicyService>, _) = if flag(rest, "--replicate") {
        let service = ReplicatedService::primary(Arc::new(monitor)).with_write_gather(gather);
        let hub = Arc::clone(service.hub());
        (Arc::new(service), Some(hub))
    } else {
        (
            Arc::new(MonitorService::new(monitor).with_write_gather(gather)),
            None,
        )
    };

    let (listener, unix) = bind_listener(rest)?;
    let config = daemon_config(rest)?;
    let daemon = Daemon::spawn_replicated(service, universe, listener, config, hub)
        .map_err(|e| format!("starting daemon: {e}"))?;
    match (daemon.local_addr(), &unix) {
        (Some(addr), _) => println!("serving {dir} on tcp {addr}"),
        (None, Some(path)) => println!("serving {dir} on unix {path}"),
        (None, None) => println!("serving {dir}"),
    }
    run_until_stopped(rest, daemon)
}

/// `adminref serve --follow …`: bootstrap from the primary, serve the
/// read alphabet in memory, stream and apply its epoch deltas.
fn serve_replica(rest: &[&String], target: FollowTarget) -> Result<ExitCode, String> {
    let (universe, policy, constraints, epoch, term) =
        fetch_bootstrap(&target, Duration::from_secs(30)).map_err(|e| format!("bootstrap: {e}"))?;
    println!(
        "bootstrapped at epoch {epoch} (term {term}): {} user(s), {} role(s)",
        universe.user_count(),
        universe.role_count()
    );
    let monitor = Arc::new(ReferenceMonitor::new(
        universe.clone(),
        policy.clone(),
        MonitorConfig::default(),
    ));
    monitor
        .install_replica_state(universe.clone(), policy, epoch, constraints)
        .map_err(|e| format!("installing bootstrap state: {e}"))?;
    let service = ReplicatedService::replica(
        Arc::clone(&monitor),
        target,
        Duration::from_millis(500),
        Some(term),
    );
    let hub = Arc::clone(service.hub());
    let (listener, unix) = bind_listener(rest)?;
    let config = daemon_config(rest)?;
    let daemon = Daemon::spawn_replicated(Arc::new(service), universe, listener, config, Some(hub))
        .map_err(|e| format!("starting daemon: {e}"))?;
    match (daemon.local_addr(), &unix) {
        (Some(addr), _) => println!("replica serving on tcp {addr} (writes refused until promote)"),
        (None, Some(path)) => {
            println!("replica serving on unix {path} (writes refused until promote)")
        }
        (None, None) => println!("replica serving (writes refused until promote)"),
    }
    run_until_stopped(rest, daemon)
}

fn bind_listener(rest: &[&String]) -> Result<(WireListener, Option<String>), String> {
    let listen = flag_value(rest, "--listen");
    let unix = flag_value(rest, "--unix");
    let listener = match (&listen, &unix) {
        (Some(addr), None) => {
            WireListener::tcp(addr.as_str()).map_err(|e| format!("binding {addr}: {e}"))?
        }
        (None, Some(path)) => {
            WireListener::unix(path).map_err(|e| format!("binding {path}: {e}"))?
        }
        _ => return Err("serve needs exactly one of --listen HOST:PORT or --unix PATH".into()),
    };
    Ok((listener, unix))
}

fn daemon_config(rest: &[&String]) -> Result<DaemonConfig, String> {
    let mut config = DaemonConfig::default();
    if let Some(w) = flag_value(rest, "--workers") {
        config.workers_per_connection = w
            .parse::<usize>()
            .map_err(|e| format!("--workers: {e}"))?
            .max(1);
    }
    Ok(config)
}

fn run_until_stopped(rest: &[&String], daemon: Daemon) -> Result<ExitCode, String> {
    // std cannot catch signals without unsafe; a stop file gives
    // scripts (and the CI smoke lanes) a portable graceful shutdown.
    let stop_file = flag_value(rest, "--stop-file");
    match stop_file {
        Some(stop_path) => {
            println!("stopping when {stop_path} exists");
            while !Path::new(&stop_path).exists() {
                std::thread::sleep(Duration::from_millis(200));
            }
            daemon.shutdown();
            let _ = std::fs::remove_file(&stop_path);
            println!("shutdown complete");
        }
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
    Ok(ExitCode::SUCCESS)
}

// ----- adminref client -------------------------------------------------

/// `adminref client (<host:port> | --unix PATH) <verb> …` — the remote
/// twins of the local verbs. See the module docs for name resolution.
pub fn cmd_client(rest: &[&String]) -> Result<ExitCode, String> {
    let unix = flag_value(rest, "--unix");
    let pos = positionals(rest);
    let (client, verb_at) = match &unix {
        Some(path) => {
            let client =
                WireClient::connect_unix(path).map_err(|e| format!("connecting to {path}: {e}"))?;
            (client, 0)
        }
        None => {
            let addr = positional(&pos, 0, "server address (host:port or --unix PATH)")?;
            let client =
                WireClient::connect_tcp(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
            (client, 1)
        }
    };
    let verb = positional(&pos, verb_at, "client verb")?;
    let args = &pos[verb_at + 1..];
    match verb {
        "check" => client_check(&client, rest, args),
        "reach" => client_reach(&client, rest, args),
        "lint" => client_lint(&client, rest, args),
        "submit" => client_submit(&client, args),
        "analyze" => client_analyze(&client, args),
        "constraint" => client_constraint(&client, rest, args),
        "compact" => {
            client.compact().map_err(|e| e.to_string())?;
            println!("compacted: log folded into snapshot, reopen replays 0 entries");
            Ok(ExitCode::SUCCESS)
        }
        "stats" => client_stats(&client),
        "version" => {
            let info = client.version_info().map_err(|e| e.to_string())?;
            println!("epoch {} checksum {:#018x}", info.epoch, info.checksum);
            Ok(ExitCode::SUCCESS)
        }
        "promote" => {
            let (term, epoch) = client.promote().map_err(|e| e.to_string())?;
            println!("promoted: primary under term {term} at epoch {epoch}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!(
            "unknown client verb `{other}` \
             (check|reach|lint|submit|analyze|constraint|compact|stats|version|promote)"
        )),
    }
}

/// `client … check <policy.rbac> <user> <action> <object> --roles r1[,r2…]`
///
/// Creates a session, activates the named roles, asks the access
/// question, and drops the session. Scriptable: granted exits 0,
/// denied exits 1.
fn client_check(client: &WireClient, rest: &[&String], args: &[&str]) -> Result<ExitCode, String> {
    let (mut uni, _policy) = read_policy(positional(args, 0, "policy file")?)?;
    let user_name = positional(args, 1, "user")?;
    let user = uni
        .find_user(user_name)
        .ok_or_else(|| format!("unknown user `{user_name}`"))?;
    let action = positional(args, 2, "action")?.to_string();
    let object = positional(args, 3, "object")?.to_string();
    let perm = uni.perm(&action, &object);
    let roles = match flag_value(rest, "--roles") {
        Some(spec) => spec
            .split(',')
            .map(|name| {
                let name = name.trim();
                uni.find_role(name)
                    .ok_or_else(|| format!("--roles: unknown role `{name}`"))
            })
            .collect::<Result<Vec<_>, _>>()?,
        None => return Err("check needs --roles r1[,r2…] to activate".into()),
    };

    let session = client.create_session(user).map_err(|e| e.to_string())?;
    for role in &roles {
        client
            .activate_role(session, *role)
            .map_err(|e| format!("activating {}: {e}", uni.role_name(*role)))?;
    }
    let granted = client
        .check_access(session, perm)
        .map_err(|e| e.to_string())?;
    let _ = client.drop_session(session);
    println!(
        "ACCESS {}: {user_name} with {} role(s) on ({action}, {object})",
        if granted { "granted" } else { "denied" },
        roles.len()
    );
    Ok(if granted {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `client … reach <policy.rbac> <user> <action> <object> [--steps N]
/// [--max-states N] [--jobs N] [--no-escalate] [--no-slice]`
///
/// The remote twin of `adminref reach`: the server analyzes a snapshot
/// of its *live* policy (which may have moved past the local file) and
/// overrides the auth mode with its own.
fn client_reach(client: &WireClient, rest: &[&String], args: &[&str]) -> Result<ExitCode, String> {
    let (mut uni, _policy) = read_policy(positional(args, 0, "policy file")?)?;
    let user_name = positional(args, 1, "user")?;
    let user = uni
        .find_user(user_name)
        .ok_or_else(|| format!("unknown user `{user_name}`"))?;
    let action = positional(args, 2, "action")?.to_string();
    let object = positional(args, 3, "object")?.to_string();
    let perm = uni.perm(&action, &object);
    let config = SafetyConfig {
        max_steps: match flag_value(rest, "--steps") {
            Some(v) => v.parse::<usize>().map_err(|e| format!("--steps: {e}"))?,
            None => 3,
        },
        max_states: match flag_value(rest, "--max-states") {
            Some(v) => v
                .parse::<usize>()
                .map_err(|e| format!("--max-states: {e}"))?,
            None => SafetyConfig::default().max_states,
        },
        jobs: match flag_value(rest, "--jobs") {
            Some(v) => v.parse::<usize>().map_err(|e| format!("--jobs: {e}"))?,
            None => SafetyConfig::default().jobs,
        },
        escalate: !flag(rest, "--no-escalate"),
        slice: !flag(rest, "--no-slice"),
        ..SafetyConfig::default()
    };
    let answer = client
        .analyze_reach(Entity::User(user), perm, config)
        .map_err(|e| e.to_string())?;
    match answer {
        ReachabilityAnswer::Reachable { witness } => {
            println!(
                "REACHABLE in {} step(s): {user_name} can come to hold ({action}, {object})",
                witness.len()
            );
            for cmd in witness.iter() {
                println!("  {}", print_command(&uni, cmd));
            }
            Ok(ExitCode::SUCCESS)
        }
        ReachabilityAnswer::Unreachable => {
            println!("UNREACHABLE: the whole reachable space was explored");
            Ok(ExitCode::SUCCESS)
        }
        ReachabilityAnswer::Unknown { truncation } => {
            println!(
                "UNKNOWN: {} state(s) to depth {}, a bound cut the search off",
                truncation.states, truncation.depth
            );
            Ok(ExitCode::FAILURE)
        }
    }
}

/// `client … lint <policy.rbac> [--json] [--deny note|warning|error]
/// [--sod r1,r2[,…]]` — the remote twin of `adminref lint`, answered
/// from the server's live policy with the same output and exit-code
/// contract.
fn client_lint(client: &WireClient, rest: &[&String], args: &[&str]) -> Result<ExitCode, String> {
    let path = positional(args, 0, "policy file")?;
    let (uni, _policy) = read_policy(path)?;
    let deny = match flag_value(rest, "--deny") {
        Some(v) => Severity::parse(&v)
            .ok_or_else(|| format!("--deny: unknown severity `{v}` (note|warning|error)"))?,
        None => Severity::Error,
    };
    let sod_pairs = match flag_value(rest, "--sod") {
        Some(spec) => parse_sod_pairs(&uni, &spec)?,
        None => Vec::new(),
    };
    let report = client.lint(sod_pairs).map_err(|e| e.to_string())?;
    if flag(rest, "--json") {
        println!("{}", report.to_json(&uni, path));
    } else {
        println!(
            "# {path} (served): {} rule site(s), {} edge(s) in the may-add closure",
            report.rules_checked, report.closure_edges
        );
        for f in &report.findings {
            println!("{}[{}]: {}", f.severity.name(), f.kind.name(), f.message);
        }
        println!(
            "# {} note(s), {} warning(s), {} error(s)",
            report.count_of(Severity::Note),
            report.count_of(Severity::Warning),
            report.count_of(Severity::Error)
        );
    }
    Ok(if report.count_at_or_above(deny) > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// `client … submit <policy.rbac> <queue.rbacq>` — submits the queue as
/// one atomic batch and prints the per-command outcomes.
fn client_submit(client: &WireClient, args: &[&str]) -> Result<ExitCode, String> {
    let (mut uni, _policy) = read_policy(positional(args, 0, "policy file")?)?;
    let queue_path = positional(args, 1, "queue file")?;
    let queue_text =
        std::fs::read_to_string(queue_path).map_err(|e| format!("reading {queue_path}: {e}"))?;
    let queue = load_queue(&queue_text, &mut uni).map_err(|e| e.to_string())?;
    let commands = queue.commands().to_vec();
    let outcomes = match client.submit(commands.clone()) {
        Ok(outcomes) => outcomes,
        Err(adminref_service::protocol::ServiceError::Admission(report)) => {
            // The batch was refused before anything executed: surface
            // the findings the gate produced instead of a bare error.
            for f in &report.findings {
                println!("{}[{}]: {}", f.severity.name(), f.kind.name(), f.message);
            }
            println!("# {report}");
            return Ok(ExitCode::FAILURE);
        }
        Err(e) => return Err(e.to_string()),
    };
    for (cmd, out) in commands.iter().zip(&outcomes) {
        println!(
            "{:60} {}",
            print_command(&uni, cmd),
            if out.executed() {
                "executed"
            } else {
                "refused"
            }
        );
    }
    let executed = outcomes.iter().filter(|o| o.executed()).count();
    println!(
        "# {} executed, {} refused, server epoch {}",
        executed,
        outcomes.len() - executed,
        client.version().map_err(|e| e.to_string())?
    );
    Ok(ExitCode::SUCCESS)
}

/// `client … analyze <policy.rbac> <queue.rbacq>` — asks the server to
/// simulate the batch against its live snapshot and constraint set, and
/// prints the impact report. Nothing is published. Scriptable: a clean
/// batch exits 0, one the gate would refuse exits 1.
fn client_analyze(client: &WireClient, args: &[&str]) -> Result<ExitCode, String> {
    let (mut uni, _policy) = read_policy(positional(args, 0, "policy file")?)?;
    let queue_path = positional(args, 1, "queue file")?;
    let queue_text =
        std::fs::read_to_string(queue_path).map_err(|e| format!("reading {queue_path}: {e}"))?;
    let queue = load_queue(&queue_text, &mut uni).map_err(|e| e.to_string())?;
    let report = client
        .analyze_batch(queue.commands().to_vec())
        .map_err(|e| e.to_string())?;
    print_impact(&uni, &report);
    Ok(if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `client … constraint <policy.rbac> (add … | list)` — reads or
/// extends the server's durable constraint set. `add` fetches the
/// current set, merges the flags client-side, and sends the result, so
/// repeated adds accumulate exactly like the local verb.
fn client_constraint(
    client: &WireClient,
    rest: &[&String],
    args: &[&str],
) -> Result<ExitCode, String> {
    let (uni, _policy) = read_policy(positional(args, 0, "policy file")?)?;
    match positional(args, 1, "constraint verb (add|list)")? {
        "list" => {
            let constraints = client.get_constraints().map_err(|e| e.to_string())?;
            print_constraints(&uni, &constraints);
            Ok(ExitCode::SUCCESS)
        }
        "add" => {
            let mut constraints = client.get_constraints().map_err(|e| e.to_string())?;
            merge_constraint_flags(rest, &uni, &mut constraints)?;
            constraints.normalize();
            let echoed = client
                .set_constraints(constraints)
                .map_err(|e| e.to_string())?;
            print_constraints(&uni, &echoed);
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown constraint verb `{other}` (add|list)")),
    }
}

fn client_stats(client: &WireClient) -> Result<ExitCode, String> {
    let s = client.stats().map_err(|e| e.to_string())?;
    println!("epoch                {}", s.epoch);
    println!("checksum             {:#018x}", s.checksum);
    println!("users                {}", s.users);
    println!("roles                {}", s.roles);
    println!("edges                {}", s.edges);
    println!("sessions             {}", s.sessions);
    println!("audit retained       {}", s.audit_retained);
    println!("forced deactivations {}", s.forced_deactivations);
    println!("analyses run         {}", s.analyses_run);
    println!("analyses indefinite  {}", s.analyses_indefinite);
    println!("lints run            {}", s.lints_run);
    println!("lint findings        {}", s.lint_findings);
    match s.recovery {
        None => println!("recovery             (in-memory or fresh store)"),
        Some(r) => println!(
            "recovery             replayed {}, torn tail {}, divergent {}",
            r.replayed, r.truncated_tail, r.divergent
        ),
    }
    match s.replication {
        None => println!("replication          (not enabled)"),
        Some(r) => println!(
            "replication          {} term {}, applied epoch {}, lag {}",
            match r.role {
                adminref_service::ReplicationRole::Primary => "primary",
                adminref_service::ReplicationRole::Replica => "replica",
            },
            r.term,
            r.last_applied_epoch,
            r.lag
        ),
    }
    Ok(ExitCode::SUCCESS)
}
