//! Shared fixtures for the benchmark harness (EXPERIMENTS.md B1–B7).
//!
//! Everything is deterministic: the same sizes and seeds produce the same
//! policies on every run, so Criterion's statistics measure the
//! algorithms, not the generator.

#![forbid(unsafe_code)]

use adminref_core::ids::{PrivId, RoleId, UserId};
use adminref_core::policy::Policy;
use adminref_core::universe::Universe;
use adminref_workloads::{
    chain, inject_admin_privs, layered, populate_perms, populate_users, AdminSpec, LayeredSpec,
};

/// A policy sized for benchmarking, with handles to its population.
pub struct SizedWorkload {
    /// The universe.
    pub universe: Universe,
    /// The policy.
    pub policy: Policy,
    /// The generated users.
    pub users: Vec<UserId>,
    /// All roles.
    pub roles: Vec<RoleId>,
    /// The injected `(holder, privilege)` administrative assignments.
    pub admin: Vec<(RoleId, PrivId)>,
}

/// Builds a layered policy with ~`roles` roles (4 layers), users, perms
/// and administrative privileges.
pub fn sized(roles: usize, seed: u64) -> SizedWorkload {
    let layers = 4;
    let width = roles.div_ceil(layers).max(1);
    let mut h = layered(LayeredSpec {
        layers,
        width,
        edge_prob: (8.0 / width as f64).min(1.0),
        seed,
    });
    let users = populate_users(&mut h, (roles / 8).max(4), 2, seed);
    populate_perms(&mut h, 2, roles.max(8), seed);
    let all_roles: Vec<RoleId> = h.layers.iter().flatten().copied().collect();
    let admin = inject_admin_privs(
        &mut h.universe,
        &mut h.policy,
        &users,
        &all_roles,
        AdminSpec {
            count: (roles / 4).max(8),
            max_depth: 2,
            grant_ratio: 0.8,
            seed,
        },
    );
    SizedWorkload {
        universe: h.universe,
        policy: h.policy,
        users,
        roles: all_roles,
        admin,
    }
}

/// A chain policy of `n` roles with one user at the top, for
/// depth-parameterised ordering benchmarks.
pub struct ChainWorkload {
    /// The universe.
    pub universe: Universe,
    /// The policy.
    pub policy: Policy,
    /// The single user, assigned to the top role.
    pub user: UserId,
    /// The chain, senior first.
    pub roles: Vec<RoleId>,
}

/// Builds the chain workload.
pub fn chain_workload(n: usize) -> ChainWorkload {
    let mut h = chain(n);
    let user = h.universe.user("admin");
    let roles: Vec<RoleId> = h.layers.iter().flatten().copied().collect();
    h.policy
        .add_edge(adminref_core::universe::Edge::UserRole(user, roles[0]));
    ChainWorkload {
        universe: h.universe,
        policy: h.policy,
        user,
        roles,
    }
}

/// Builds a `(p, q)` pair of nesting depth `depth` with `p ⊑ q` by
/// construction: `p = ¤(top, …¤(top, ¤(u, top))…)` and `q` the same shape
/// targeting the chain's bottom role.
pub fn deep_pair(w: &mut ChainWorkload, depth: u32) -> (PrivId, PrivId) {
    assert!(depth >= 1);
    let top = w.roles[0];
    let bottom = *w.roles.last().unwrap();
    let mut p = w.universe.grant_user_role(w.user, top);
    let mut q = w.universe.grant_user_role(w.user, bottom);
    for _ in 1..depth {
        p = w.universe.grant_role_priv(top, p);
        q = w.universe.grant_role_priv(top, q);
    }
    (p, q)
}

/// Renders one “paper table” row on stderr so bench output doubles as the
/// raw material for EXPERIMENTS.md.
pub fn table_row(table: &str, params: &str, value: &str) {
    eprintln!("[{table}] {params} => {value}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use adminref_core::ordering::{OrderingMode, PrivilegeOrder};

    #[test]
    fn sized_workload_shape() {
        let w = sized(64, 1);
        assert!(w.roles.len() >= 64);
        assert!(!w.users.is_empty());
        assert!(!w.admin.is_empty());
        assert!(w.policy.pa_len() > 0);
    }

    #[test]
    fn deep_pair_is_weaker_by_construction() {
        let mut w = chain_workload(8);
        for depth in [1u32, 2, 4] {
            let (p, q) = deep_pair(&mut w, depth);
            assert_eq!(w.universe.depth(p), depth);
            assert_eq!(w.universe.depth(q), depth);
            let order = PrivilegeOrder::new(&w.universe, &w.policy, OrderingMode::Strict);
            assert!(order.is_weaker(p, q), "depth {depth}");
            assert!(!order.is_weaker(q, p));
        }
    }

    #[test]
    fn sized_is_deterministic() {
        let a = sized(32, 7);
        let b = sized(32, 7);
        let ea: Vec<_> = a.policy.edges().collect();
        let eb: Vec<_> = b.policy.edges().collect();
        assert_eq!(ea, eb);
    }
}
