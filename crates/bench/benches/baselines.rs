//! B6 — Per-check cost across administrative models on the same
//! hierarchy: the paper's `⊑` decision vs ARBAC97 `can_assign` vs
//! administrative-scope membership vs role-graph domain lookup, plus the
//! HRU analyses as the scale reference for what “deciding safety by
//! search” costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use adminref_baselines::hru::{Command as HruCommand, Condition, Matrix, PrimOp, System};
use adminref_baselines::{AdminDomains, AdminScope, Arbac97, CanAssign, Prereq, RoleRange};
use adminref_bench::sized;
use adminref_core::ordering::{OrderingMode, PrivilegeOrder};
use adminref_core::reach::ReachIndex;
use adminref_core::universe::Edge;

fn per_check_costs(c: &mut Criterion) {
    let mut group = c.benchmark_group("B6_per_check");
    for &roles in &[256usize, 1024] {
        let mut w = sized(roles, 51);
        let closure = ReachIndex::build(&w.universe, &w.policy)
            .role_closure()
            .clone();
        let top = w.roles[0];
        let bottom = *w.roles.last().unwrap();
        let admin_user = w.users[0];
        let target_user = w.users[1];
        // Put the admin user at the top so every model authorizes.
        w.policy.add_edge(Edge::UserRole(admin_user, top));

        // Ours: held ¤(u, top) decides ¤(u, bottom).
        let p = w.universe.grant_user_role(target_user, top);
        let q = w.universe.grant_user_role(target_user, bottom);
        let index = ReachIndex::build(&w.universe, &w.policy);
        group.bench_with_input(BenchmarkId::new("ordering", roles), &roles, |b, _| {
            b.iter(|| {
                let order = PrivilegeOrder::with_index(
                    &w.universe,
                    &w.policy,
                    &index,
                    OrderingMode::Extended,
                );
                std::hint::black_box(order.is_weaker(p, q))
            })
        });

        // ARBAC97: one can_assign rule with the matching range.
        let mut arbac = Arbac97::new();
        arbac.add_can_assign(CanAssign {
            admin_role: top,
            prereq: Prereq::True,
            range: RoleRange::closed(bottom, top),
        });
        group.bench_with_input(
            BenchmarkId::new("arbac_can_assign", roles),
            &roles,
            |b, _| {
                b.iter(|| {
                    std::hint::black_box(arbac.check_assign(
                        &w.policy,
                        &closure,
                        admin_user,
                        target_user,
                        bottom,
                    ))
                })
            },
        );

        // Administrative scope: membership test.
        let scope = AdminScope::build(&w.universe, &w.policy);
        group.bench_with_input(BenchmarkId::new("admin_scope", roles), &roles, |b, _| {
            b.iter(|| std::hint::black_box(scope.in_strict_scope(top, bottom)))
        });

        // Role-graph domains: partition lookup (single domain over all).
        let domains =
            AdminDomains::build(w.universe.role_count(), &[(top, w.roles.clone())]).unwrap();
        group.bench_with_input(BenchmarkId::new("role_graph", roles), &roles, |b, _| {
            b.iter(|| {
                std::hint::black_box(domains.can_modify(top, Edge::UserRole(target_user, bottom)))
            })
        });
    }
    group.finish();
}

fn hru_safety_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("B6_hru_safety");
    group.sample_size(10);
    for &subjects in &[3usize, 5, 8] {
        let mut sys = System::new();
        let own = sys.right("own");
        let read = sys.right("read");
        sys.add_command(HruCommand {
            name: "grant_read".into(),
            params: 3,
            conditions: vec![Condition {
                right: own,
                subject: 0,
                object: 2,
            }],
            ops: vec![PrimOp::Enter(read, 1, 2)],
        });
        sys.add_command(HruCommand {
            name: "grant_own".into(),
            params: 3,
            conditions: vec![Condition {
                right: own,
                subject: 0,
                object: 2,
            }],
            ops: vec![PrimOp::Enter(own, 1, 2)],
        });
        let mut m = Matrix::new();
        let first = m.create_subject();
        for _ in 1..subjects {
            m.create_subject();
        }
        let file = m.create_object();
        m.enter(own, first, file);
        group.bench_with_input(
            BenchmarkId::new("mono_op_decision", subjects),
            &subjects,
            |b, _| b.iter(|| std::hint::black_box(sys.leaks_mono_operational(&m, read))),
        );
        group.bench_with_input(
            BenchmarkId::new("bounded_bfs", subjects),
            &subjects,
            |b, _| b.iter(|| std::hint::black_box(sys.leaks_bounded(&m, read, 20_000))),
        );
    }
    group.finish();
}

criterion_group!(benches, per_check_costs, hru_safety_reference);
criterion_main!(benches);
