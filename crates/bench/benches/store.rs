//! B7 — Durable store: command-log append throughput, recovery (replay)
//! time vs log length, and snapshot write/load.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use adminref_bench::sized;
use adminref_core::admission::ConstraintSet;
use adminref_core::transition::AuthMode;
use adminref_store::{load_snapshot, write_snapshot, PolicyStore, TempDir};
use adminref_workloads::{generate_queue, QueueSpec};

fn append_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("B7_append");
    group.sample_size(10);
    let w = sized(256, 61);
    let queue = generate_queue(
        &w.universe,
        &w.policy,
        &w.users,
        &w.roles,
        QueueSpec {
            len: 256,
            valid_ratio: 0.7,
            seed: 61,
        },
    );
    group.throughput(Throughput::Elements(queue.len() as u64));
    group.bench_function("execute_256_cmds", |b| {
        b.iter_with_setup(
            || {
                let dir = TempDir::new("bench-append").unwrap();
                let store = PolicyStore::create(
                    dir.path(),
                    w.universe.clone(),
                    w.policy.clone(),
                    AuthMode::Explicit,
                )
                .unwrap();
                (dir, store)
            },
            |(dir, mut store)| {
                for cmd in queue.iter() {
                    store.execute(cmd).unwrap();
                }
                store.sync().unwrap();
                drop(store);
                drop(dir);
            },
        )
    });
    group.finish();
}

fn recovery_vs_log_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("B7_recovery");
    group.sample_size(10);
    let w = sized(256, 67);
    for &len in &[64usize, 256, 1024] {
        let queue = generate_queue(
            &w.universe,
            &w.policy,
            &w.users,
            &w.roles,
            QueueSpec {
                len,
                valid_ratio: 0.7,
                seed: 67,
            },
        );
        let dir = TempDir::new("bench-recovery").unwrap();
        let mut store = PolicyStore::create(
            dir.path(),
            w.universe.clone(),
            w.policy.clone(),
            AuthMode::Explicit,
        )
        .unwrap();
        for cmd in queue.iter() {
            store.execute(cmd).unwrap();
        }
        store.sync().unwrap();
        drop(store);
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| {
                let (store, report) = PolicyStore::open(dir.path(), AuthMode::Explicit).unwrap();
                assert_eq!(report.replayed, len);
                std::hint::black_box(store.policy().edge_count())
            })
        });
    }
    group.finish();
}

fn snapshot_round_trip(c: &mut Criterion) {
    let mut group = c.benchmark_group("B7_snapshot");
    group.sample_size(10);
    for &roles in &[256usize, 1024] {
        let w = sized(roles, 71);
        let dir = TempDir::new("bench-snap").unwrap();
        let path = dir.path().join("bench.snap");
        group.bench_with_input(BenchmarkId::new("write", roles), &roles, |b, _| {
            b.iter(|| {
                write_snapshot(&path, &w.universe, &w.policy, 0, &ConstraintSet::default()).unwrap()
            })
        });
        write_snapshot(&path, &w.universe, &w.policy, 0, &ConstraintSet::default()).unwrap();
        group.bench_with_input(BenchmarkId::new("load", roles), &roles, |b, _| {
            b.iter(|| std::hint::black_box(load_snapshot(&path).unwrap().policy.edge_count()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    append_throughput,
    recovery_vs_log_length,
    snapshot_round_trip
);
criterion_main!(benches);
