//! B4 — Refinement checking.
//!
//! Non-administrative refinement (Definition 6) scales polynomially with
//! policy size; the bounded administrative check (Definition 7) hits an
//! exponential wall in queue length — which is exactly why Theorem 1's
//! syntactic certificate (one `⊑` decision) matters. The last group
//! measures that certificate on the same instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use adminref_bench::{sized, table_row};
use adminref_core::ordering::{OrderingMode, PrivilegeOrder};
use adminref_core::refinement::{refines, weaken_assignment};
use adminref_core::simulation::{check_admin_refinement, SimulationConfig};
use adminref_core::universe::{Edge, PrivTerm};
use adminref_workloads::hospital_fig2;

fn nonadmin_refinement_vs_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("B4_nonadmin_refines");
    group.sample_size(10);
    for &roles in &[64usize, 256, 1024] {
        let w = sized(roles, 23);
        let mut psi = w.policy.clone();
        if let Some(edge) = w.policy.edges().next() {
            psi.remove_edge(edge);
        }
        group.bench_with_input(BenchmarkId::from_parameter(roles), &roles, |b, _| {
            b.iter(|| std::hint::black_box(refines(&w.universe, &w.policy, &psi)))
        });
    }
    group.finish();
}

fn bounded_simulation_wall(c: &mut Criterion) {
    let mut group = c.benchmark_group("B4_bounded_simulation");
    group.sample_size(10);
    // Figure 2 instance: ψ weakens HR's ¤(bob, staff) to ¤(bob, dbusr2).
    let (mut uni, phi) = hospital_fig2();
    let bob = uni.find_user("bob").unwrap();
    let staff = uni.find_role("staff").unwrap();
    let dbusr2 = uni.find_role("dbusr2").unwrap();
    let hr = uni.find_role("hr").unwrap();
    let p = uni
        .find_term(PrivTerm::Grant(Edge::UserRole(bob, staff)))
        .unwrap();
    let q = uni.grant_user_role(bob, dbusr2);
    let psi = weaken_assignment(&phi, (hr, p), q);
    for &len in &[0usize, 1, 2] {
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &l| {
            b.iter(|| {
                let out = check_admin_refinement(
                    &uni,
                    &phi,
                    &psi,
                    SimulationConfig {
                        max_queue_len: l,
                        ..SimulationConfig::default()
                    },
                );
                std::hint::black_box(out.holds())
            })
        });
        table_row("B4b", &format!("fig2 queue_len={len}"), "holds=true");
    }
    group.finish();
}

fn theorem1_certificate(c: &mut Criterion) {
    // The syntactic alternative: one ⊑ decision replaces the whole
    // simulation (Theorem 1 guarantees the same answer for weakenings).
    let mut group = c.benchmark_group("B4_theorem1_certificate");
    let (mut uni, phi) = hospital_fig2();
    let bob = uni.find_user("bob").unwrap();
    let staff = uni.find_role("staff").unwrap();
    let dbusr2 = uni.find_role("dbusr2").unwrap();
    let p = uni
        .find_term(PrivTerm::Grant(Edge::UserRole(bob, staff)))
        .unwrap();
    let q = uni.grant_user_role(bob, dbusr2);
    group.bench_function("fig2_weakening", |b| {
        b.iter(|| {
            let order = PrivilegeOrder::new(&uni, &phi, OrderingMode::Extended);
            std::hint::black_box(order.is_weaker(p, q))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    nonadmin_refinement_vs_size,
    bounded_simulation_wall,
    theorem1_certificate
);
criterion_main!(benches);
