//! B5 — Reference-monitor throughput: the runtime price of the paper's
//! flexibility. Explicit mode checks one graph reachability per command;
//! ordered mode additionally decides `⊑` against every held vertex.
//! Includes concurrent read throughput while an admin thread churns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use adminref_bench::sized;
use adminref_core::ordering::OrderingMode;
use adminref_core::transition::AuthMode;
use adminref_monitor::{MonitorConfig, ReferenceMonitor};
use adminref_workloads::{generate_queue, QueueSpec};

fn command_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("B5_submit");
    group.sample_size(10);
    for &roles in &[64usize, 256, 1024] {
        let w = sized(roles, 31);
        let queue = generate_queue(
            &w.universe,
            &w.policy,
            &w.users,
            &w.roles,
            QueueSpec {
                len: 64,
                valid_ratio: 0.7,
                seed: 31,
            },
        );
        for (label, mode) in [
            ("explicit", AuthMode::Explicit),
            ("ordered", AuthMode::Ordered(OrderingMode::Extended)),
        ] {
            group.throughput(Throughput::Elements(queue.len() as u64));
            group.bench_with_input(BenchmarkId::new(label, roles), &roles, |b, _| {
                b.iter_with_setup(
                    || {
                        ReferenceMonitor::new(
                            w.universe.clone(),
                            w.policy.clone(),
                            MonitorConfig {
                                auth_mode: mode,
                                audit_capacity: 1 << 16,
                                ..MonitorConfig::default()
                            },
                        )
                    },
                    |monitor| {
                        let outcomes = monitor.submit_queue(&queue).unwrap();
                        std::hint::black_box(outcomes.len())
                    },
                )
            });
        }
    }
    group.finish();
}

fn session_checks(c: &mut Criterion) {
    let mut group = c.benchmark_group("B5_check_access");
    for &roles in &[256usize, 1024] {
        let mut w = sized(roles, 37);
        let monitor = ReferenceMonitor::new(
            w.universe.clone(),
            w.policy.clone(),
            MonitorConfig::default(),
        );
        let user = w.users[0];
        let sid = monitor.create_session(user);
        let role = w.policy.roles_of(user).next().unwrap();
        monitor.activate_role(sid, role).unwrap();
        let perm = w.universe.perm("read", "obj0");
        group.bench_with_input(BenchmarkId::from_parameter(roles), &roles, |b, _| {
            b.iter(|| std::hint::black_box(monitor.check_access(sid, perm).unwrap()))
        });
    }
    group.finish();
}

fn concurrent_reads_under_write_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("B5_concurrent");
    group.sample_size(10);
    let mut w = sized(256, 41);
    let monitor = ReferenceMonitor::new(
        w.universe.clone(),
        w.policy.clone(),
        MonitorConfig::default(),
    );
    let user = w.users[0];
    let sid = monitor.create_session(user);
    let role = w.policy.roles_of(user).next().unwrap();
    monitor.activate_role(sid, role).unwrap();
    let perm = w.universe.perm("read", "obj0");
    let queue = generate_queue(
        &w.universe,
        &w.policy,
        &w.users,
        &w.roles,
        QueueSpec {
            len: 32,
            valid_ratio: 0.7,
            seed: 41,
        },
    );
    group.bench_function("4readers_1writer", |b| {
        b.iter(|| {
            crossbeam::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|_| {
                        for _ in 0..100 {
                            std::hint::black_box(monitor.check_access(sid, perm).unwrap());
                        }
                    });
                }
                scope.spawn(|_| {
                    monitor.submit_queue(&queue).unwrap();
                });
            })
            .unwrap();
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    command_throughput,
    session_checks,
    concurrent_reads_under_write_load
);
criterion_main!(benches);
