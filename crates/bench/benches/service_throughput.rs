//! B9 — Service write throughput: the group-commit write path versus
//! per-call writer locking, and the multi-tenant router.
//!
//! Matrix: {percall, group} × {1, 2, 4} writer threads over the
//! `write_storm` workload (per-writer grant/revoke toggle streams where
//! **every** command changes the policy), plus a router cell fanning 4
//! single-writer tenants of the `multi_tenant_churn` scenario out over
//! a `ServiceRouter`. Each iteration pushes a fixed count of
//! single-command requests per writer through the `PolicyService`
//! protocol; the per-call path pays one writer-lock acquisition, one
//! `ReachIndex` rebuild, and one published epoch *per command*, while
//! group commit coalesces whatever is in flight into one batch and pays
//! those costs once per drain. Throughput is write commands/s
//! (`elem/s`), so the percall-vs-group ratio at equal writers is the
//! group-commit speedup — the `bench-service` CI gate wants ≥2x at 4
//! writers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use adminref_core::command::Command;
use adminref_monitor::{MonitorConfig, ReferenceMonitor};
use adminref_service::{
    MonitorService, PolicyService, RouterConfig, ServiceRouter, TenantStateFactory,
};
use adminref_workloads::{
    multi_tenant_churn, write_storm, ChurnSpec, MultiTenantSpec, WriteStormSpec,
};

/// Commands per writer per iteration.
const CMDS_PER_WRITER: u64 = 64;

/// Runs one thread per stream, each submitting `CMDS_PER_WRITER`
/// single-command requests through `service`.
fn drive(service: &impl PolicyService, streams: &[Vec<Command>]) {
    crossbeam::scope(|scope| {
        for stream in streams {
            let service = &service;
            scope.spawn(move |_| {
                for (i, cmd) in stream.iter().cycle().enumerate() {
                    if i as u64 >= CMDS_PER_WRITER {
                        break;
                    }
                    std::hint::black_box(service.submit_one(*cmd).expect("in-memory submit"));
                }
            });
        }
    })
    .unwrap();
}

fn write_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("B9_service_write_throughput");
    group.sample_size(10);
    let w = write_storm(WriteStormSpec {
        roles: 128,
        writers: 4,
        seed: 0xB9,
    });
    for &writers in &[1usize, 2, 4] {
        group.throughput(Throughput::Elements(writers as u64 * CMDS_PER_WRITER));
        let streams = &w.streams[..writers];
        for kind in ["percall", "group"] {
            group.bench_with_input(BenchmarkId::new(kind, writers), &writers, |b, _| {
                b.iter(|| match kind {
                    "percall" => {
                        let service = ReferenceMonitor::new(
                            w.universe.clone(),
                            w.policy.clone(),
                            MonitorConfig::default(),
                        );
                        drive(&service, streams);
                    }
                    _ => {
                        let service = MonitorService::in_memory(
                            w.universe.clone(),
                            w.policy.clone(),
                            MonitorConfig::default(),
                        );
                        drive(&service, streams);
                    }
                })
            });
        }
    }
    group.finish();
}

fn router_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("B9_router_write_throughput");
    group.sample_size(10);
    let tenants = 4usize;
    let mt = multi_tenant_churn(MultiTenantSpec {
        tenants,
        churn: ChurnSpec {
            roles: 128,
            readers: 4,
            batch_len: 32,
            batches: 8,
            valid_ratio: 0.7,
            seed: 0xB9,
        },
    });
    // One writer per tenant; each drives its own tenant's command
    // stream through the shared router.
    let streams: Vec<(String, Vec<Command>)> = mt
        .tenants
        .iter()
        .map(|t| {
            (
                t.id.clone(),
                t.workload.batches.iter().flatten().copied().collect(),
            )
        })
        .collect();
    group.throughput(Throughput::Elements(tenants as u64 * CMDS_PER_WRITER));
    group.bench_function(BenchmarkId::new("group", tenants), |b| {
        b.iter(|| {
            let factory: TenantStateFactory = {
                let states: Vec<_> = mt
                    .tenants
                    .iter()
                    .map(|t| {
                        (
                            t.id.clone(),
                            t.workload.universe.clone(),
                            t.workload.policy.clone(),
                        )
                    })
                    .collect();
                Box::new(move |id: &str| {
                    let (_, u, p) = states.iter().find(|(tid, _, _)| tid == id).unwrap();
                    (u.clone(), p.clone())
                })
            };
            let router = ServiceRouter::new(RouterConfig::default(), factory);
            crossbeam::scope(|scope| {
                for (tenant, commands) in &streams {
                    let router = &router;
                    scope.spawn(move |_| {
                        let service = router.tenant(tenant).expect("tenant opens");
                        for cmd in commands.iter().take(CMDS_PER_WRITER as usize) {
                            std::hint::black_box(
                                service.submit_one(*cmd).expect("in-memory submit"),
                            );
                        }
                    });
                }
            })
            .unwrap();
        })
    });
    group.finish();
}

criterion_group!(benches, write_throughput, router_throughput);
criterion_main!(benches);
