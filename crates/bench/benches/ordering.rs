//! B1 — Tractability of the privilege ordering (Lemma 1).
//!
//! Two sweeps: decision latency vs policy size (fixed nesting depth 2)
//! and vs nesting depth (fixed 256-role chain), in Strict and Extended
//! modes. The paper claims the ordering is tractable; the shape to verify
//! is polynomial growth in policy size and roughly linear growth in term
//! depth, with Extended paying a vertex-set factor over Strict.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use adminref_bench::{chain_workload, deep_pair, sized, table_row};
use adminref_core::ordering::{OrderingMode, PrivilegeOrder};
use adminref_core::reach::ReachIndex;

fn decision_vs_policy_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("B1_ordering_vs_roles");
    group.sample_size(20);
    for &roles in &[64usize, 256, 1024, 4096] {
        let mut w = sized(roles, 42);
        // One weaker pair at depth 2 rooted in the top layer.
        let top = w.roles[0];
        let bottom = *w.roles.last().unwrap();
        let user = w.users[0];
        let inner_p = w.universe.grant_user_role(user, top);
        let inner_q = w.universe.grant_user_role(user, bottom);
        let p = w.universe.grant_role_priv(top, inner_p);
        let q = w.universe.grant_role_priv(top, inner_q);
        let index = ReachIndex::build(&w.universe, &w.policy);
        for mode in [OrderingMode::Strict, OrderingMode::Extended] {
            let label = format!("{mode:?}");
            group.bench_with_input(BenchmarkId::new(label.clone(), roles), &roles, |b, _| {
                b.iter(|| {
                    // Fresh order per iteration: measures the decision
                    // without memo warm-up, sharing the reach index.
                    let order = PrivilegeOrder::with_index(&w.universe, &w.policy, &index, mode);
                    std::hint::black_box(order.is_weaker(p, q))
                })
            });
            let order = PrivilegeOrder::with_index(&w.universe, &w.policy, &index, mode);
            table_row(
                "B1a",
                &format!("roles={roles} mode={label} depth=2"),
                &format!("decides={}", order.is_weaker(p, q)),
            );
        }
    }
    group.finish();
}

fn decision_vs_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("B1_ordering_vs_depth");
    group.sample_size(20);
    for &depth in &[1u32, 2, 4, 8, 12] {
        let mut w = chain_workload(256);
        let (p, q) = deep_pair(&mut w, depth);
        let index = ReachIndex::build(&w.universe, &w.policy);
        for mode in [OrderingMode::Strict, OrderingMode::Extended] {
            let label = format!("{mode:?}");
            group.bench_with_input(BenchmarkId::new(label, depth), &depth, |b, _| {
                b.iter(|| {
                    let order = PrivilegeOrder::with_index(&w.universe, &w.policy, &index, mode);
                    std::hint::black_box(order.is_weaker(p, q))
                })
            });
        }
        table_row("B1b", &format!("chain=256 depth={depth}"), "decides=true");
    }
    group.finish();
}

fn index_construction(c: &mut Criterion) {
    // The one-off cost the decision amortises: building the reach index.
    let mut group = c.benchmark_group("B1_order_build");
    group.sample_size(10);
    for &roles in &[256usize, 1024, 4096] {
        let w = sized(roles, 42);
        group.bench_with_input(BenchmarkId::from_parameter(roles), &roles, |b, _| {
            b.iter(|| {
                std::hint::black_box(PrivilegeOrder::new(
                    &w.universe,
                    &w.policy,
                    OrderingMode::Extended,
                ))
            })
        });
    }
    group.finish();
}

fn negative_decisions(c: &mut Criterion) {
    // Refusals matter for monitor latency: measure the converse (q ⊑ p is
    // false) on the depth-8 pair.
    let mut group = c.benchmark_group("B1_ordering_negative");
    group.sample_size(20);
    let mut w = chain_workload(256);
    let (p, q) = deep_pair(&mut w, 8);
    let index = ReachIndex::build(&w.universe, &w.policy);
    for mode in [OrderingMode::Strict, OrderingMode::Extended] {
        group.bench_function(format!("{mode:?}"), |b| {
            b.iter(|| {
                let order = PrivilegeOrder::with_index(&w.universe, &w.policy, &index, mode);
                std::hint::black_box(order.is_weaker(q, p))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    decision_vs_policy_size,
    decision_vs_depth,
    index_construction,
    negative_decisions
);
criterion_main!(benches);
