//! B10 — Incremental epoch publication: deriving a child
//! `PolicySnapshot` by delta maintenance versus rebuilding the read
//! index from scratch.
//!
//! Matrix: universe size (roles) × batch size (edge deltas per
//! publish). Each cell derives the same child snapshot two ways:
//!
//! * `full` — `PolicySnapshot::next` under `PublishMode::FullRebuild`:
//!   one `ReachIndex::build` (`O(|R|²/64 + |E|)`) per publish — the
//!   pre-incremental cost model;
//! * `incremental` — `PublishMode::Incremental`: `Arc`-shared universe
//!   and closure rows plus `ReachIndex::apply_delta` over the batch's
//!   edge deltas.
//!
//! The ratio at batch size 1 on the widest universe is the headline the
//! `wide_universe_trickle` perf-smoke gate enforces (≥3x); sweeping the
//! batch axis shows where amortization hands the advantage back to the
//! rebuild (many-edge batches touch most rows anyway).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use adminref_core::reach::EdgeDelta;
use adminref_core::snapshot::{PolicySnapshot, PublishMode};
use adminref_workloads::{wide_universe_trickle, TrickleSpec};

/// One prepared cell: the parent snapshot and one batch's worth of
/// post-state + deltas.
struct PublishCase {
    parent: PolicySnapshot,
    policy_after: adminref_core::policy::Policy,
    deltas: Vec<EdgeDelta>,
}

fn prepare(roles: usize, batch: usize) -> PublishCase {
    let w = wide_universe_trickle(TrickleSpec {
        roles,
        toggles: batch.max(1),
        // Membership-only toggles here: every delta must apply
        // incrementally so the two modes derive identical children and
        // the comparison is pure index-derivation cost.
        rh_toggle_per_mille: 0,
        ..TrickleSpec::default()
    });
    let parent = PolicySnapshot::build(w.universe.clone(), w.policy.clone(), 0);
    let mut policy_after = w.policy.clone();
    let mut deltas = Vec::with_capacity(batch);
    for single in w.batches.iter().take(batch) {
        let cmd = single[0];
        assert!(policy_after.add_edge(cmd.edge), "toggle edges start absent");
        deltas.push(EdgeDelta {
            edge: cmd.edge,
            added: true,
        });
    }
    PublishCase {
        parent,
        policy_after,
        deltas,
    }
}

fn publish_derivation(c: &mut Criterion) {
    let mut group = c.benchmark_group("B10_snapshot_delta");
    group.sample_size(10);
    for &roles in &[256usize, 1024, 2048] {
        for &batch in &[1usize, 16, 128] {
            let case = prepare(roles, batch);
            group.throughput(Throughput::Elements(1));
            for mode in ["full", "incremental"] {
                let publish_mode = match mode {
                    "full" => PublishMode::FullRebuild,
                    _ => PublishMode::Incremental,
                };
                group.bench_with_input(
                    BenchmarkId::new(format!("{mode}/roles{roles}"), batch),
                    &batch,
                    |b, _| {
                        b.iter(|| {
                            let (snapshot, _path) = PolicySnapshot::next(
                                &case.parent,
                                case.parent.universe(),
                                &case.policy_after,
                                &case.deltas,
                                1,
                                publish_mode,
                            );
                            snapshot.epoch
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, publish_derivation);
criterion_main!(benches);
