//! B3 — Weaker-set enumeration (§4.2, Example 6, Remark 2).
//!
//! Measures: frontier growth on the Example-6 policy as the depth bound
//! rises (the observable form of the infinite weaker set), and the cost
//! of enumerating with the Remark 2 bound (longest RH chain) on layered
//! policies vs fixed deeper bounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use adminref_bench::{sized, table_row};
use adminref_core::enumerate::{enumerate_weaker, remark2_depth, EnumerationConfig};
use adminref_core::ordering::OrderingMode;
use adminref_workloads::example6;

fn example6_frontier_growth(c: &mut Criterion) {
    let mut group = c.benchmark_group("B3_example6_depth");
    group.sample_size(10);
    for &depth in &[2u32, 4, 6, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            b.iter_with_setup(example6, |(mut uni, policy, g)| {
                let set = enumerate_weaker(
                    &mut uni,
                    &policy,
                    g,
                    EnumerationConfig {
                        max_depth: d,
                        max_results: 1_000_000,
                        mode: OrderingMode::Extended,
                    },
                );
                std::hint::black_box(set.privileges.len())
            })
        });
        let (mut uni, policy, g) = example6();
        let set = enumerate_weaker(
            &mut uni,
            &policy,
            g,
            EnumerationConfig {
                max_depth: depth,
                max_results: 1_000_000,
                mode: OrderingMode::Extended,
            },
        );
        table_row(
            "B3a",
            &format!("example6 depth={depth}"),
            &format!(
                "weaker={} frontier_tail={}",
                set.privileges.len(),
                set.frontier_by_depth[depth as usize]
            ),
        );
    }
    group.finish();
}

fn remark2_bound_vs_fixed(c: &mut Criterion) {
    let mut group = c.benchmark_group("B3_remark2_bound");
    group.sample_size(10);
    for &roles in &[16usize, 64] {
        let w = sized(roles, 13);
        let (holder, p) = w.admin[0];
        let _ = holder;
        let n = remark2_depth(&w.universe, &w.policy);
        for (label, depth) in [("remark2", n), ("fixed6", 6), ("fixed8", 8)] {
            let mut uni = w.universe.clone();
            let policy = w.policy.clone();
            group.bench_with_input(BenchmarkId::new(label, roles), &depth, |b, &d| {
                b.iter(|| {
                    let mut uni_local = uni.clone();
                    let set = enumerate_weaker(
                        &mut uni_local,
                        &policy,
                        p,
                        EnumerationConfig {
                            max_depth: d,
                            max_results: 50_000,
                            mode: OrderingMode::Extended,
                        },
                    );
                    std::hint::black_box(set.privileges.len())
                })
            });
            let set = enumerate_weaker(
                &mut uni,
                &policy,
                p,
                EnumerationConfig {
                    max_depth: depth,
                    max_results: 50_000,
                    mode: OrderingMode::Extended,
                },
            );
            table_row(
                "B3b",
                &format!("roles={roles} bound={label}({depth})"),
                &format!(
                    "weaker={} truncated={}",
                    set.privileges.len(),
                    set.truncated
                ),
            );
        }
    }
    group.finish();
}

fn strict_vs_extended_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("B3_mode_ablation");
    group.sample_size(10);
    let w = sized(32, 19);
    let (_, p) = w.admin[0];
    for mode in [OrderingMode::Strict, OrderingMode::Extended] {
        group.bench_function(format!("{mode:?}"), |b| {
            b.iter(|| {
                let mut uni_local = w.universe.clone();
                let set = enumerate_weaker(
                    &mut uni_local,
                    &w.policy,
                    p,
                    EnumerationConfig {
                        max_depth: 4,
                        max_results: 50_000,
                        mode,
                    },
                );
                std::hint::black_box(set.privileges.len())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    example6_frontier_growth,
    remark2_bound_vs_fixed,
    strict_vs_extended_enumeration
);
criterion_main!(benches);
