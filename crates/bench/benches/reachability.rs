//! B2 — Reachability substrate cost: closure construction and query
//! latency vs policy size. This is the cost model underneath every B1
//! decision and every refinement check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use adminref_bench::{sized, table_row};
use adminref_core::ids::Entity;
use adminref_core::reach::{reaches_entity, ReachIndex};

fn closure_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("B2_index_build");
    group.sample_size(10);
    for &roles in &[64usize, 256, 1024, 4096] {
        let w = sized(roles, 7);
        group.throughput(Throughput::Elements(w.policy.edge_count() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(roles), &roles, |b, _| {
            b.iter(|| std::hint::black_box(ReachIndex::build(&w.universe, &w.policy)))
        });
        table_row(
            "B2a",
            &format!("roles={roles}"),
            &format!("edges={}", w.policy.edge_count()),
        );
    }
    group.finish();
}

fn indexed_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("B2_indexed_query");
    for &roles in &[256usize, 1024, 4096] {
        let w = sized(roles, 7);
        let index = ReachIndex::build(&w.universe, &w.policy);
        let user = w.users[0];
        let targets: Vec<Entity> = w.roles.iter().map(|&r| Entity::Role(r)).collect();
        group.throughput(Throughput::Elements(targets.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(roles), &roles, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for &t in &targets {
                    if index.reach_entity(Entity::User(user), t) {
                        hits += 1;
                    }
                }
                std::hint::black_box(hits)
            })
        });
    }
    group.finish();
}

fn bfs_vs_index_single_query(c: &mut Criterion) {
    // The break-even question: one ad-hoc BFS vs an indexed lookup
    // (having paid the build). The bounded simulation checker uses BFS
    // because it mutates policies every step.
    let mut group = c.benchmark_group("B2_bfs_single");
    for &roles in &[256usize, 1024] {
        let w = sized(roles, 7);
        let user = w.users[0];
        let bottom = Entity::Role(*w.roles.last().unwrap());
        group.bench_with_input(BenchmarkId::new("bfs", roles), &roles, |b, _| {
            b.iter(|| std::hint::black_box(reaches_entity(&w.policy, Entity::User(user), bottom)))
        });
        let index = ReachIndex::build(&w.universe, &w.policy);
        group.bench_with_input(BenchmarkId::new("indexed", roles), &roles, |b, _| {
            b.iter(|| std::hint::black_box(index.reach_entity(Entity::User(user), bottom)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    closure_build,
    indexed_queries,
    bfs_vs_index_single_query
);
criterion_main!(benches);
