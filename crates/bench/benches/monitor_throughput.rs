//! B8 — Monitor read throughput under concurrent admin writes: the
//! epoch-snapshot read path versus the single-`RwLock` baseline it
//! replaced.
//!
//! Matrix: {locked, epoch} × {1, 4, 16} reader threads × {idle, churn}
//! write load. Each iteration runs every reader through a fixed count
//! of alternating granted/denied `check_access` probes (denials are the
//! expensive case for the closure-walking baseline); under `churn` an
//! admin writer concurrently cycles 32-command batches the whole time.
//! Throughput is reported in reads/s (`elem/s`), so the locked-vs-epoch
//! ratio at equal parameters is the read-path speedup — the acceptance
//! target is ≥5x at 4 readers under churn.

use std::sync::atomic::{AtomicBool, Ordering};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use adminref_core::command::Command;
use adminref_core::ids::{Perm, RoleId, UserId};
use adminref_monitor::{LockedMonitor, MonitorConfig, ReferenceMonitor, SessionId};
use adminref_workloads::{churn, ChurnSpec, ChurnWorkload};

/// check_access pairs (one hit + one miss) per reader per iteration.
const PAIRS_PER_READER: u64 = 500;

enum Subject {
    Epoch(Box<ReferenceMonitor>),
    Locked(Box<LockedMonitor>),
}

impl Subject {
    fn build(kind: &str, w: &ChurnWorkload) -> Subject {
        match kind {
            "locked" => Subject::Locked(Box::new(LockedMonitor::new(
                w.universe.clone(),
                w.policy.clone(),
                MonitorConfig::default(),
            ))),
            _ => Subject::Epoch(Box::new(ReferenceMonitor::new(
                w.universe.clone(),
                w.policy.clone(),
                MonitorConfig::default(),
            ))),
        }
    }

    fn create_session(&self, user: UserId, role: RoleId) -> SessionId {
        match self {
            Subject::Epoch(m) => {
                let sid = m.create_session(user);
                m.activate_role(sid, role).unwrap();
                sid
            }
            Subject::Locked(m) => {
                let sid = m.create_session(user);
                m.activate_role(sid, role).unwrap();
                sid
            }
        }
    }

    fn check_access(&self, sid: SessionId, perm: Perm) -> bool {
        match self {
            Subject::Epoch(m) => m.check_access(sid, perm).unwrap(),
            Subject::Locked(m) => m.check_access(sid, perm).unwrap(),
        }
    }

    fn submit_batch(&self, batch: &[Command]) {
        match self {
            Subject::Epoch(m) => {
                m.submit_batch(batch).unwrap();
            }
            Subject::Locked(m) => {
                for cmd in batch {
                    m.submit(cmd).unwrap();
                }
            }
        }
    }
}

fn read_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("B8_monitor_read_throughput");
    group.sample_size(10);
    let w = churn(ChurnSpec {
        roles: 256,
        readers: 16,
        batch_len: 32,
        batches: 8,
        valid_ratio: 0.7,
        seed: 0xB8,
    });
    for write_load in ["idle", "churn"] {
        for &readers in &[1usize, 4, 16] {
            for kind in ["locked", "epoch"] {
                let subject = Subject::build(kind, &w);
                let sessions: Vec<(SessionId, Perm, Perm)> = (0..readers)
                    .map(|i| {
                        let p = w.readers[i % w.readers.len()];
                        (
                            subject.create_session(p.user, p.role),
                            p.perm_hit,
                            p.perm_miss,
                        )
                    })
                    .collect();
                group.throughput(Throughput::Elements(readers as u64 * PAIRS_PER_READER * 2));
                group.bench_with_input(
                    BenchmarkId::new(format!("{kind}/{write_load}"), readers),
                    &readers,
                    |b, _| {
                        b.iter(|| {
                            let stop = AtomicBool::new(false);
                            crossbeam::scope(|scope| {
                                if write_load == "churn" {
                                    let (subject, stop, w) = (&subject, &stop, &w);
                                    scope.spawn(move |_| {
                                        for batch in w.batches.iter().cycle() {
                                            if stop.load(Ordering::Relaxed) {
                                                break;
                                            }
                                            subject.submit_batch(batch);
                                        }
                                    });
                                }
                                let readers: Vec<_> = sessions
                                    .iter()
                                    .map(|&(sid, hit, miss)| {
                                        let subject = &subject;
                                        scope.spawn(move |_| {
                                            for _ in 0..PAIRS_PER_READER {
                                                std::hint::black_box(
                                                    subject.check_access(sid, hit),
                                                );
                                                std::hint::black_box(
                                                    subject.check_access(sid, miss),
                                                );
                                            }
                                        })
                                    })
                                    .collect();
                                for handle in readers {
                                    handle.join().unwrap();
                                }
                                // Readers done: release the churn writer,
                                // whose tail batch the scope then joins.
                                stop.store(true, Ordering::Relaxed);
                            })
                            .unwrap();
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, read_throughput);
criterion_main!(benches);
