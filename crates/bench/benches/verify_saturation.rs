//! V1 — Unbounded vs bounded engine cost on grow-only instances: the
//! monotone saturation engine (definitive, frontier-free) against the
//! compact-state bounded BFS and the seed's clone-based BFS (both
//! truncated, `escalate: false`). The grow-only workload's reachable
//! space has `2^(members × tiers)` states, so the bounded engines are
//! benched at a fixed two-round budget — already far more work than the
//! fixpoint — while saturation closes the instance outright.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use adminref_bench::table_row;
use adminref_core::ids::Entity;
use adminref_core::reach::ReachIndex;
use adminref_core::safety::{find_reachable_clone, perm_reachable, SafetyConfig};
use adminref_core::verify::verify_perm_reachable;
use adminref_workloads::{grow_only, GrowOnlySpec};

fn saturation_vs_bounded(c: &mut Criterion) {
    let mut group = c.benchmark_group("V1_saturation_vs_bounded");
    group.sample_size(10);
    for &width in &[16usize, 64] {
        let mut w = grow_only(GrowOnlySpec {
            width,
            ..GrowOnlySpec::default()
        });
        let member = w.members[0];
        let entity = Entity::User(member);
        let goal = w.goal_perm;
        let target = w.universe.priv_perm(goal);
        table_row(
            "V1",
            &format!("width={width}"),
            &format!("edges={}", w.policy.edge_count()),
        );
        // Saturation: unbounded and definitive — `max_states: 0` would
        // starve both bounded engines immediately.
        group.bench_with_input(BenchmarkId::new("saturation", width), &width, |b, _| {
            b.iter(|| {
                std::hint::black_box(verify_perm_reachable(
                    &mut w.universe,
                    &w.policy,
                    entity,
                    goal,
                    SafetyConfig {
                        max_steps: 0,
                        max_states: 0,
                        ..SafetyConfig::default()
                    },
                ))
            })
        });
        // The bounded engines get a fixed two-round budget; neither is
        // definitive on this space, so this is pure per-state cost.
        let bounded = SafetyConfig {
            max_steps: 2,
            max_states: 2_000,
            escalate: false,
            ..SafetyConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("engine_bfs", width), &width, |b, _| {
            b.iter(|| {
                std::hint::black_box(perm_reachable(
                    &mut w.universe,
                    &w.policy,
                    entity,
                    goal,
                    bounded,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("clone_bfs", width), &width, |b, _| {
            b.iter(|| {
                std::hint::black_box(find_reachable_clone(
                    &mut w.universe,
                    &w.policy,
                    bounded,
                    |u, p| ReachIndex::build(u, p).reach_priv(entity, target),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, saturation_vs_bounded);
criterion_main!(benches);
