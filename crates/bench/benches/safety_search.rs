//! S1 — Safety-search engine cost: the compact-state parallel engine of
//! `adminref_core::search` against the seed's clone-based BFS
//! (`find_reachable_clone`), and sequential vs parallel frontier
//! expansion. The question asked is an unreachable `perm_reachable`, so
//! every series pays for the same full bounded exploration instead of
//! short-circuiting on a witness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use adminref_bench::{sized, table_row};
use adminref_core::ids::Entity;
use adminref_core::reach::ReachIndex;
use adminref_core::safety::{find_reachable_clone, perm_reachable, SafetyConfig};
use adminref_workloads::{deep_delegation, DelegationSpec};

/// Clone-based vs compact-state on the sized layered workloads: one
/// full frontier round (`max_steps = 1`) over the complete command
/// alphabet — the per-candidate cost gap (policy clone + full-policy
/// hash + per-command graph walk vs one index per state + bit flips).
fn compact_vs_clone(c: &mut Criterion) {
    let mut group = c.benchmark_group("S1_compact_vs_clone");
    group.sample_size(10);
    for &roles in &[128usize, 512] {
        let mut w = sized(roles, 11);
        let user = w.users[0];
        let never = w.universe.perm("open", "no-such-vault");
        let target = w.universe.priv_perm(never);
        let config = SafetyConfig {
            max_steps: 1,
            max_states: 100_000,
            ..SafetyConfig::default()
        };
        table_row(
            "S1a",
            &format!("roles={roles}"),
            &format!("edges={}", w.policy.edge_count()),
        );
        group.bench_with_input(BenchmarkId::new("clone", roles), &roles, |b, _| {
            b.iter(|| {
                std::hint::black_box(find_reachable_clone(
                    &mut w.universe,
                    &w.policy,
                    config,
                    |u, p| ReachIndex::build(u, p).reach_priv(Entity::User(user), target),
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("compact_seq", roles), &roles, |b, _| {
            b.iter(|| {
                std::hint::black_box(perm_reachable(
                    &mut w.universe,
                    &w.policy,
                    Entity::User(user),
                    never,
                    config,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("compact_par", roles), &roles, |b, _| {
            b.iter(|| {
                std::hint::black_box(perm_reachable(
                    &mut w.universe,
                    &w.policy,
                    Entity::User(user),
                    never,
                    SafetyConfig { jobs: 0, ..config },
                ))
            })
        });
    }
    group.finish();
}

/// Sequential vs parallel frontier expansion where the frontier is wide
/// enough to matter: two rounds over the sized(128) workload under a
/// state cap, and a deep-delegation chain whose frontier growth is
/// combinatorial.
fn sequential_vs_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("S1_seq_vs_par");
    group.sample_size(10);
    {
        let mut w = sized(128, 11);
        let user = w.users[0];
        let never = w.universe.perm("open", "no-such-vault");
        let base = SafetyConfig {
            max_steps: 2,
            max_states: 192,
            ..SafetyConfig::default()
        };
        for &jobs in &[1usize, 0] {
            let label = if jobs == 1 { "jobs1" } else { "jobsN" };
            group.bench_with_input(BenchmarkId::new(label, "sized128"), &jobs, |b, &jobs| {
                b.iter(|| {
                    std::hint::black_box(perm_reachable(
                        &mut w.universe,
                        &w.policy,
                        Entity::User(user),
                        never,
                        SafetyConfig { jobs, ..base },
                    ))
                })
            });
        }
    }
    {
        let mut w = deep_delegation(DelegationSpec {
            depth: 4,
            fanout: 4,
        });
        let worker = w.workers[0];
        let never = w.universe.perm("launch", "missiles");
        let base = SafetyConfig {
            max_steps: 5,
            max_states: 20_000,
            ..SafetyConfig::default()
        };
        table_row("S1b", "deep_delegation d=4 f=4", "arena-stress series");
        for &jobs in &[1usize, 0] {
            let label = if jobs == 1 { "jobs1" } else { "jobsN" };
            group.bench_with_input(BenchmarkId::new(label, "delegation"), &jobs, |b, &jobs| {
                b.iter(|| {
                    std::hint::black_box(perm_reachable(
                        &mut w.universe,
                        &w.policy,
                        Entity::User(worker),
                        never,
                        SafetyConfig { jobs, ..base },
                    ))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, compact_vs_clone, sequential_vs_parallel);
criterion_main!(benches);
