//! Snapshot files: a universe + policy + base sequence number in one
//! CRC-framed record, written atomically (write to a temp file, rename).

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

use bytes::{Buf, BytesMut};

use adminref_core::admission::ConstraintSet;
use adminref_core::policy::Policy;
use adminref_core::universe::Universe;

use crate::codec::{
    get_constraints, get_policy, get_universe, get_varint, put_constraints, put_policy,
    put_universe, put_varint,
};
use crate::log::StoreError;
use crate::record::{read_record, write_record, RecordRead};

/// Magic bytes identifying a snapshot file. `ADMREFS2` appended the
/// admission constraint section; `ADMREFS1` files are refused cleanly.
const MAGIC: &[u8; 8] = b"ADMREFS2";

/// A loaded snapshot.
#[derive(Debug)]
pub struct Snapshot {
    /// The universe at snapshot time.
    pub universe: Universe,
    /// The policy at snapshot time.
    pub policy: Policy,
    /// Sequence number the log restarts at after this snapshot.
    pub base_seq: u64,
    /// The admission constraint set declared at snapshot time.
    pub constraints: ConstraintSet,
}

/// Writes a snapshot atomically (temp file + rename).
pub fn write_snapshot(
    path: &Path,
    universe: &Universe,
    policy: &Policy,
    base_seq: u64,
    constraints: &ConstraintSet,
) -> Result<(), StoreError> {
    let mut payload = BytesMut::new();
    payload.extend_from_slice(MAGIC);
    put_varint(&mut payload, base_seq);
    put_universe(&mut payload, universe);
    put_policy(&mut payload, policy);
    put_constraints(&mut payload, constraints);
    let tmp = path.with_extension("tmp");
    {
        let file = File::create(&tmp)?;
        let mut writer = BufWriter::new(file);
        write_record(&mut writer, &payload)?;
        use std::io::Write as _;
        writer.flush()?;
        writer.get_ref().sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Encodes a `(universe, policy, constraints)` state as one
/// self-contained, CRC-framed byte blob — the same record layout
/// [`write_snapshot`] puts on disk, minus the file. Replication uses
/// this as the bootstrap payload a primary ships to a fresh or lagging
/// replica; carrying the constraint set means a promoted replica keeps
/// enforcing the same admission gate.
pub fn encode_state(universe: &Universe, policy: &Policy, constraints: &ConstraintSet) -> Vec<u8> {
    let mut payload = BytesMut::new();
    payload.extend_from_slice(MAGIC);
    put_varint(&mut payload, 0);
    put_universe(&mut payload, universe);
    put_policy(&mut payload, policy);
    put_constraints(&mut payload, constraints);
    let mut framed = Vec::new();
    // Writing a record to an in-memory Vec cannot fail.
    if write_record(&mut framed, &payload).is_err() {
        return Vec::new();
    }
    framed
}

/// Decodes a blob produced by [`encode_state`], verifying the CRC frame
/// and magic. A truncated or bit-flipped blob is a typed refusal, never
/// a partial state.
pub fn decode_state(bytes: &[u8]) -> Result<(Universe, Policy, ConstraintSet), StoreError> {
    let mut reader = bytes;
    let payload = match read_record(&mut reader)? {
        RecordRead::Record(p) => p,
        RecordRead::Eof => return Err(StoreError::BadHeader("empty state blob")),
        RecordRead::Corrupt { reason } => return Err(StoreError::BadHeader(reason)),
    };
    let mut buf = &payload[..];
    if buf.remaining() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
        return Err(StoreError::BadHeader("bad magic"));
    }
    buf.advance(MAGIC.len());
    let _base_seq = get_varint(&mut buf)?;
    let universe = get_universe(&mut buf)?;
    let policy = get_policy(&mut buf, &universe)?;
    let constraints = get_constraints(&mut buf)?;
    Ok((universe, policy, constraints))
}

/// Loads a snapshot written by [`write_snapshot`].
pub fn load_snapshot(path: &Path) -> Result<Snapshot, StoreError> {
    let file = File::open(path)?;
    let mut reader = BufReader::new(file);
    let payload = match read_record(&mut reader)? {
        RecordRead::Record(p) => p,
        RecordRead::Eof => return Err(StoreError::BadHeader("empty snapshot file")),
        RecordRead::Corrupt { reason } => return Err(StoreError::BadHeader(reason)),
    };
    let mut buf = &payload[..];
    if buf.remaining() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
        return Err(StoreError::BadHeader("bad magic"));
    }
    buf.advance(MAGIC.len());
    let base_seq = get_varint(&mut buf)?;
    let universe = get_universe(&mut buf)?;
    let policy = get_policy(&mut buf, &universe)?;
    let constraints = get_constraints(&mut buf)?;
    Ok(Snapshot {
        universe,
        policy,
        base_seq,
        constraints,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;
    use adminref_core::policy::PolicyBuilder;

    fn sample() -> (Universe, Policy) {
        let mut b = PolicyBuilder::new()
            .assign("diana", "nurse")
            .inherit("staff", "nurse")
            .permit("nurse", "read", "t1");
        let (diana, staff) = {
            let u = b.universe_mut();
            (u.find_user("diana").unwrap(), u.find_role("staff").unwrap())
        };
        let g = b.universe_mut().grant_user_role(diana, staff);
        b = b.assign_priv("staff", g);
        b.finish()
    }

    #[test]
    fn snapshot_round_trip() {
        let dir = TempDir::new("snap").unwrap();
        let path = dir.path().join("policy.snap");
        let (uni, policy) = sample();
        let constraints = ConstraintSet {
            sod_pairs: vec![(adminref_core::ids::RoleId(0), adminref_core::ids::RoleId(1))],
            ..ConstraintSet::default()
        };
        write_snapshot(&path, &uni, &policy, 42, &constraints).unwrap();
        let snap = load_snapshot(&path).unwrap();
        assert_eq!(snap.base_seq, 42);
        assert_eq!(snap.constraints, constraints);
        assert_eq!(snap.universe.user_count(), uni.user_count());
        assert_eq!(snap.policy.edge_count(), policy.edge_count());
        let edges1: Vec<_> = policy.edges().collect();
        let edges2: Vec<_> = snap.policy.edges().collect();
        assert_eq!(edges1, edges2);
    }

    #[test]
    fn state_blob_round_trip() {
        let (uni, policy) = sample();
        let blob = encode_state(&uni, &policy, &ConstraintSet::default());
        let (uni2, policy2, constraints) = decode_state(&blob).unwrap();
        assert!(constraints.is_empty());
        assert_eq!(uni2.user_count(), uni.user_count());
        let edges1: Vec<_> = policy.edges().collect();
        let edges2: Vec<_> = policy2.edges().collect();
        assert_eq!(edges1, edges2);
    }

    #[test]
    fn corrupted_state_blob_rejected() {
        let (uni, policy) = sample();
        let mut blob = encode_state(&uni, &policy, &ConstraintSet::default());
        let mid = blob.len() - 2;
        blob[mid] ^= 0x10;
        assert!(decode_state(&blob).is_err());
        assert!(decode_state(&blob[..blob.len() / 2]).is_err());
        assert!(decode_state(&[]).is_err());
    }

    #[test]
    fn corrupted_snapshot_rejected() {
        let dir = TempDir::new("snapbad").unwrap();
        let path = dir.path().join("policy.snap");
        let (uni, policy) = sample();
        write_snapshot(&path, &uni, &policy, 0, &ConstraintSet::default()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() - 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_snapshot(&path),
            Err(StoreError::BadHeader("checksum mismatch"))
        ));
    }

    #[test]
    fn wrong_magic_rejected() {
        let dir = TempDir::new("snapmagic").unwrap();
        let path = dir.path().join("policy.snap");
        let mut payload = Vec::new();
        payload.extend_from_slice(b"NOTMAGIC");
        let mut file = std::io::BufWriter::new(File::create(&path).unwrap());
        write_record(&mut file, &payload).unwrap();
        use std::io::Write as _;
        file.flush().unwrap();
        drop(file);
        assert!(matches!(
            load_snapshot(&path),
            Err(StoreError::BadHeader("bad magic"))
        ));
    }

    #[test]
    fn missing_file_is_io_error() {
        let dir = TempDir::new("snapnone").unwrap();
        assert!(matches!(
            load_snapshot(&dir.path().join("nope.snap")),
            Err(StoreError::Io(_))
        ));
    }

    #[test]
    fn no_tmp_file_left_behind() {
        let dir = TempDir::new("snaptmp").unwrap();
        let path = dir.path().join("policy.snap");
        let (uni, policy) = sample();
        write_snapshot(&path, &uni, &policy, 0, &ConstraintSet::default()).unwrap();
        assert!(!path.with_extension("tmp").exists());
    }
}
