//! Binary codec for universes, policies and commands.
//!
//! Length-prefixed, varint-based, deterministic. The format is internal to
//! the store (no cross-version guarantees beyond the header magic), but it
//! is exercised hard by round-trip and corruption tests. Term tables
//! serialize in id order, which is topologically valid: hash-consing
//! interns children before parents, so nested [`PrivTerm`]s always
//! reference earlier ids.

use bytes::{Buf, BufMut};

use adminref_core::admission::ConstraintSet;
use adminref_core::command::{Command, CommandKind};
use adminref_core::ids::{ActionId, ObjectId, Perm, PrivId, RoleId, UserId};
use adminref_core::lint::Severity;
use adminref_core::policy::Policy;
use adminref_core::universe::{Edge, PrivTerm, Universe};

/// Decoding failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CodecError {
    /// Input ended before the value was complete.
    UnexpectedEof,
    /// An enum tag byte was invalid.
    BadTag(u8),
    /// A varint exceeded 64 bits.
    VarintOverflow,
    /// A string was not valid UTF-8.
    BadUtf8,
    /// An id referenced a not-yet-decoded table entry.
    DanglingId(u64),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::BadTag(t) => write!(f, "invalid tag byte {t:#04x}"),
            CodecError::VarintOverflow => write!(f, "varint longer than 64 bits"),
            CodecError::BadUtf8 => write!(f, "invalid utf-8 in string"),
            CodecError::DanglingId(id) => write!(f, "dangling table reference {id}"),
        }
    }
}

impl std::error::Error for CodecError {}

// ----- primitives ------------------------------------------------------

/// Writes a LEB128 varint.
pub fn put_varint(buf: &mut impl BufMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads a LEB128 varint.
pub fn get_varint(buf: &mut impl Buf) -> Result<u64, CodecError> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(CodecError::UnexpectedEof);
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(CodecError::VarintOverflow);
        }
        out |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
    }
}

/// Writes a length-prefixed UTF-8 string.
pub fn put_string(buf: &mut impl BufMut, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

/// Reads a length-prefixed UTF-8 string.
pub fn get_string(buf: &mut impl Buf) -> Result<String, CodecError> {
    let len = get_varint(buf)? as usize;
    if buf.remaining() < len {
        return Err(CodecError::UnexpectedEof);
    }
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| CodecError::BadUtf8)
}

// ----- edges, terms, commands ------------------------------------------

/// Writes an edge.
pub fn put_edge(buf: &mut impl BufMut, edge: Edge) {
    match edge {
        Edge::UserRole(u, r) => {
            buf.put_u8(0);
            put_varint(buf, u.0 as u64);
            put_varint(buf, r.0 as u64);
        }
        Edge::RoleRole(a, b) => {
            buf.put_u8(1);
            put_varint(buf, a.0 as u64);
            put_varint(buf, b.0 as u64);
        }
        Edge::RolePriv(r, p) => {
            buf.put_u8(2);
            put_varint(buf, r.0 as u64);
            put_varint(buf, p.0 as u64);
        }
    }
}

/// Reads an edge.
pub fn get_edge(buf: &mut impl Buf) -> Result<Edge, CodecError> {
    if !buf.has_remaining() {
        return Err(CodecError::UnexpectedEof);
    }
    let tag = buf.get_u8();
    let a = get_varint(buf)? as u32;
    let b = get_varint(buf)? as u32;
    match tag {
        0 => Ok(Edge::UserRole(UserId(a), RoleId(b))),
        1 => Ok(Edge::RoleRole(RoleId(a), RoleId(b))),
        2 => Ok(Edge::RolePriv(RoleId(a), PrivId(b))),
        t => Err(CodecError::BadTag(t)),
    }
}

/// Writes a privilege term (children as ids — table order guarantees they
/// are already present on decode).
pub fn put_term(buf: &mut impl BufMut, term: PrivTerm) {
    match term {
        PrivTerm::Perm(p) => {
            buf.put_u8(0);
            put_varint(buf, p.action.0 as u64);
            put_varint(buf, p.object.0 as u64);
        }
        PrivTerm::Grant(e) => {
            buf.put_u8(1);
            put_edge(buf, e);
        }
        PrivTerm::Revoke(e) => {
            buf.put_u8(2);
            put_edge(buf, e);
        }
    }
}

/// Reads a privilege term.
pub fn get_term(buf: &mut impl Buf) -> Result<PrivTerm, CodecError> {
    if !buf.has_remaining() {
        return Err(CodecError::UnexpectedEof);
    }
    match buf.get_u8() {
        0 => {
            let action = get_varint(buf)? as u32;
            let object = get_varint(buf)? as u32;
            Ok(PrivTerm::Perm(Perm::new(
                ActionId(action),
                ObjectId(object),
            )))
        }
        1 => Ok(PrivTerm::Grant(get_edge(buf)?)),
        2 => Ok(PrivTerm::Revoke(get_edge(buf)?)),
        t => Err(CodecError::BadTag(t)),
    }
}

/// Writes a command.
pub fn put_command(buf: &mut impl BufMut, cmd: &Command) {
    put_varint(buf, cmd.actor.0 as u64);
    buf.put_u8(match cmd.kind {
        CommandKind::Grant => 0,
        CommandKind::Revoke => 1,
    });
    put_edge(buf, cmd.edge);
}

/// Reads a command.
pub fn get_command(buf: &mut impl Buf) -> Result<Command, CodecError> {
    let actor = UserId(get_varint(buf)? as u32);
    if !buf.has_remaining() {
        return Err(CodecError::UnexpectedEof);
    }
    let kind = match buf.get_u8() {
        0 => CommandKind::Grant,
        1 => CommandKind::Revoke,
        t => return Err(CodecError::BadTag(t)),
    };
    let edge = get_edge(buf)?;
    Ok(Command { actor, kind, edge })
}

// ----- constraint sets ---------------------------------------------------

/// Writes an admission [`ConstraintSet`].
pub fn put_constraints(buf: &mut impl BufMut, constraints: &ConstraintSet) {
    put_varint(buf, constraints.sod_pairs.len() as u64);
    for &(a, b) in &constraints.sod_pairs {
        put_varint(buf, a.0 as u64);
        put_varint(buf, b.0 as u64);
    }
    match constraints.deny_level {
        None => buf.put_u8(0),
        Some(level) => {
            buf.put_u8(1);
            buf.put_u8(match level {
                Severity::Note => 0,
                Severity::Warning => 1,
                Severity::Error => 2,
            });
        }
    }
    put_varint(buf, constraints.frozen_edges.len() as u64);
    for &e in &constraints.frozen_edges {
        put_edge(buf, e);
    }
}

/// Reads a [`ConstraintSet`] written by [`put_constraints`].
pub fn get_constraints(buf: &mut impl Buf) -> Result<ConstraintSet, CodecError> {
    let pairs = get_varint(buf)?;
    let mut sod_pairs = Vec::with_capacity(pairs.min(4096) as usize);
    for _ in 0..pairs {
        let a = get_varint(buf)? as u32;
        let b = get_varint(buf)? as u32;
        sod_pairs.push((RoleId(a), RoleId(b)));
    }
    if !buf.has_remaining() {
        return Err(CodecError::UnexpectedEof);
    }
    let deny_level = match buf.get_u8() {
        0 => None,
        1 => {
            if !buf.has_remaining() {
                return Err(CodecError::UnexpectedEof);
            }
            Some(match buf.get_u8() {
                0 => Severity::Note,
                1 => Severity::Warning,
                2 => Severity::Error,
                t => return Err(CodecError::BadTag(t)),
            })
        }
        t => return Err(CodecError::BadTag(t)),
    };
    let edges = get_varint(buf)?;
    let mut frozen_edges = Vec::with_capacity(edges.min(4096) as usize);
    for _ in 0..edges {
        frozen_edges.push(get_edge(buf)?);
    }
    Ok(ConstraintSet {
        sod_pairs,
        deny_level,
        frozen_edges,
    })
}

// ----- universe and policy snapshots ------------------------------------

/// Writes the full universe (vocabulary + term table + identity tag).
pub fn put_universe(buf: &mut impl BufMut, universe: &Universe) {
    put_varint(buf, universe.tag().raw());
    put_varint(buf, universe.user_count() as u64);
    for u in universe.users() {
        put_string(buf, universe.user_name(u));
    }
    put_varint(buf, universe.role_count() as u64);
    for r in universe.roles() {
        put_string(buf, universe.role_name(r));
    }
    // Actions and objects: walk the term table for perms and collect the
    // maximal id, then emit names by probing. Simpler and robust: emit
    // every action/object referenced by any term, as (id, name) pairs.
    let mut actions: Vec<(u32, String)> = Vec::new();
    let mut objects: Vec<(u32, String)> = Vec::new();
    for p in universe.priv_ids() {
        if let PrivTerm::Perm(perm) = universe.term(p) {
            let a = (perm.action.0, universe.action_name(perm.action).to_string());
            if !actions.contains(&a) {
                actions.push(a);
            }
            let o = (perm.object.0, universe.object_name(perm.object).to_string());
            if !objects.contains(&o) {
                objects.push(o);
            }
        }
    }
    actions.sort_unstable_by_key(|(id, _)| *id);
    objects.sort_unstable_by_key(|(id, _)| *id);
    put_varint(buf, actions.len() as u64);
    for (id, name) in &actions {
        put_varint(buf, *id as u64);
        put_string(buf, name);
    }
    put_varint(buf, objects.len() as u64);
    for (id, name) in &objects {
        put_varint(buf, *id as u64);
        put_string(buf, name);
    }
    put_varint(buf, universe.term_count() as u64);
    for p in universe.priv_ids() {
        put_term(buf, universe.term(p));
    }
}

/// Reads a universe written by [`put_universe`].
///
/// Ids are reassigned densely in the same order, so they coincide with the
/// written ones (interning is deterministic append-order).
pub fn get_universe(buf: &mut impl Buf) -> Result<Universe, CodecError> {
    let mut universe = Universe::new();
    // Reconstruction is deterministic (same names and terms in the same
    // order yield the same ids), so the recovered universe *is* the saved
    // one; adopt its identity tag so policies interoperate.
    let tag = get_varint(buf)?;
    universe.adopt_tag(adminref_core::universe::UniverseTag::from_raw(tag));
    let users = get_varint(buf)?;
    for _ in 0..users {
        let name = get_string(buf)?;
        universe.user(&name);
    }
    let roles = get_varint(buf)?;
    for _ in 0..roles {
        let name = get_string(buf)?;
        universe.role(&name);
    }
    // Actions/objects arrive as sparse (id, name) pairs in id order; ids
    // must come out identical, so intern placeholder names for gaps.
    let actions = get_varint(buf)?;
    let mut next_action = 0u64;
    for _ in 0..actions {
        let id = get_varint(buf)?;
        let name = get_string(buf)?;
        while next_action < id {
            universe.action(&format!("__action_{next_action}"));
            next_action += 1;
        }
        universe.action(&name);
        next_action = id + 1;
    }
    let objects = get_varint(buf)?;
    let mut next_object = 0u64;
    for _ in 0..objects {
        let id = get_varint(buf)?;
        let name = get_string(buf)?;
        while next_object < id {
            universe.object(&format!("__object_{next_object}"));
            next_object += 1;
        }
        universe.object(&name);
        next_object = id + 1;
    }
    let terms = get_varint(buf)?;
    for i in 0..terms {
        let term = get_term(buf)?;
        // Children must already exist.
        if let PrivTerm::Grant(Edge::RolePriv(_, p)) | PrivTerm::Revoke(Edge::RolePriv(_, p)) = term
        {
            if p.0 as u64 >= i {
                return Err(CodecError::DanglingId(p.0 as u64));
            }
        }
        match term {
            PrivTerm::Perm(perm) => universe.priv_perm(perm),
            PrivTerm::Grant(e) => universe.priv_grant(e),
            PrivTerm::Revoke(e) => universe.priv_revoke(e),
        };
    }
    Ok(universe)
}

/// Writes a policy's edge sets.
pub fn put_policy(buf: &mut impl BufMut, policy: &Policy) {
    put_varint(buf, policy.ua_len() as u64);
    for (u, r) in policy.ua() {
        put_varint(buf, u.0 as u64);
        put_varint(buf, r.0 as u64);
    }
    put_varint(buf, policy.rh_len() as u64);
    for (a, b) in policy.rh() {
        put_varint(buf, a.0 as u64);
        put_varint(buf, b.0 as u64);
    }
    put_varint(buf, policy.pa_len() as u64);
    for (r, p) in policy.pa() {
        put_varint(buf, r.0 as u64);
        put_varint(buf, p.0 as u64);
    }
}

/// Reads a policy written by [`put_policy`], bound to `universe`.
pub fn get_policy(buf: &mut impl Buf, universe: &Universe) -> Result<Policy, CodecError> {
    let mut policy = Policy::new(universe);
    let ua = get_varint(buf)?;
    for _ in 0..ua {
        let u = get_varint(buf)? as u32;
        let r = get_varint(buf)? as u32;
        policy.add_edge(Edge::UserRole(UserId(u), RoleId(r)));
    }
    let rh = get_varint(buf)?;
    for _ in 0..rh {
        let a = get_varint(buf)? as u32;
        let b = get_varint(buf)? as u32;
        policy.add_edge(Edge::RoleRole(RoleId(a), RoleId(b)));
    }
    let pa = get_varint(buf)?;
    for _ in 0..pa {
        let r = get_varint(buf)? as u32;
        let p = get_varint(buf)? as u32;
        policy.add_edge(Edge::RolePriv(RoleId(r), PrivId(p)));
    }
    Ok(policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adminref_core::policy::PolicyBuilder;
    use bytes::BytesMut;

    #[test]
    fn varint_round_trip() {
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut r = buf.freeze();
            assert_eq!(get_varint(&mut r).unwrap(), v);
        }
    }

    #[test]
    fn varint_eof() {
        let mut buf = &[0x80u8][..]; // continuation bit but no next byte
        assert_eq!(get_varint(&mut buf), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn string_round_trip() {
        let mut buf = BytesMut::new();
        put_string(&mut buf, "nurse-α");
        let mut r = buf.freeze();
        assert_eq!(get_string(&mut r).unwrap(), "nurse-α");
    }

    #[test]
    fn string_bad_utf8() {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, 2);
        buf.put_slice(&[0xFF, 0xFE]);
        let mut r = buf.freeze();
        assert_eq!(get_string(&mut r), Err(CodecError::BadUtf8));
    }

    fn sample() -> (Universe, Policy) {
        let mut b = PolicyBuilder::new()
            .assign("diana", "nurse")
            .assign("jane", "hr")
            .declare_user("bob")
            .inherit("staff", "nurse")
            .permit("dbusr1", "read", "t1")
            .permit("dbusr1", "read", "t2");
        let (bob, staff) = {
            let u = b.universe_mut();
            (u.find_user("bob").unwrap(), u.find_role("staff").unwrap())
        };
        let g = b.universe_mut().grant_user_role(bob, staff);
        let nested = b.universe_mut().grant_role_priv(staff, g);
        b = b.assign_priv("hr", g).assign_priv("hr", nested);
        b.finish()
    }

    #[test]
    fn universe_round_trip_preserves_ids_and_names() {
        let (uni, _) = sample();
        let mut buf = BytesMut::new();
        put_universe(&mut buf, &uni);
        let mut r = buf.freeze();
        let uni2 = get_universe(&mut r).unwrap();
        assert_eq!(uni2.user_count(), uni.user_count());
        assert_eq!(uni2.role_count(), uni.role_count());
        assert_eq!(uni2.term_count(), uni.term_count());
        for u in uni.users() {
            assert_eq!(uni.user_name(u), uni2.user_name(u));
        }
        for p in uni.priv_ids() {
            assert_eq!(uni.term(p), uni2.term(p));
            assert_eq!(uni.depth(p), uni2.depth(p));
        }
    }

    #[test]
    fn policy_round_trip_is_structural() {
        let (uni, policy) = sample();
        let mut buf = BytesMut::new();
        put_universe(&mut buf, &uni);
        put_policy(&mut buf, &policy);
        let mut r = buf.freeze();
        let uni2 = get_universe(&mut r).unwrap();
        let policy2 = get_policy(&mut r, &uni2).unwrap();
        assert_eq!(policy.edge_count(), policy2.edge_count());
        let edges1: Vec<Edge> = policy.edges().collect();
        let edges2: Vec<Edge> = policy2.edges().collect();
        assert_eq!(edges1, edges2);
    }

    #[test]
    fn command_round_trip() {
        let cmds = [
            Command::grant(UserId(3), Edge::UserRole(UserId(1), RoleId(2))),
            Command::revoke(UserId(0), Edge::RoleRole(RoleId(5), RoleId(6))),
            Command::grant(UserId(9), Edge::RolePriv(RoleId(1), PrivId(4))),
        ];
        for cmd in &cmds {
            let mut buf = BytesMut::new();
            put_command(&mut buf, cmd);
            let mut r = buf.freeze();
            assert_eq!(&get_command(&mut r).unwrap(), cmd);
        }
    }

    #[test]
    fn bad_tags_are_rejected() {
        let mut buf = &[9u8, 0, 0][..];
        assert_eq!(get_edge(&mut buf), Err(CodecError::BadTag(9)));
        let mut buf = &[7u8][..];
        assert_eq!(get_term(&mut buf), Err(CodecError::BadTag(7)));
    }

    #[test]
    fn dangling_term_reference_rejected() {
        // A term table whose first term references priv id 5.
        let mut buf = BytesMut::new();
        put_varint(&mut buf, 1); // tag
        put_varint(&mut buf, 0); // users
        put_varint(&mut buf, 1); // roles
        put_string(&mut buf, "r");
        put_varint(&mut buf, 0); // actions
        put_varint(&mut buf, 0); // objects
        put_varint(&mut buf, 1); // terms
        put_term(
            &mut buf,
            PrivTerm::Grant(Edge::RolePriv(RoleId(0), PrivId(5))),
        );
        let mut r = buf.freeze();
        assert!(matches!(
            get_universe(&mut r),
            Err(CodecError::DanglingId(5))
        ));
    }

    #[test]
    fn constraints_round_trip() {
        let cases = [
            ConstraintSet::default(),
            ConstraintSet {
                sod_pairs: vec![(RoleId(1), RoleId(4)), (RoleId(0), RoleId(2))],
                deny_level: Some(Severity::Warning),
                frozen_edges: vec![
                    Edge::UserRole(UserId(0), RoleId(1)),
                    Edge::RolePriv(RoleId(2), PrivId(7)),
                ],
            },
        ];
        for c in &cases {
            let mut buf = BytesMut::new();
            put_constraints(&mut buf, c);
            let mut r = buf.freeze();
            assert_eq!(&get_constraints(&mut r).unwrap(), c);
        }
        let mut bad = &[1u8, 0, 0, 3][..]; // deny tag 3 after one pair
        assert_eq!(get_constraints(&mut bad), Err(CodecError::BadTag(3)));
    }

    #[test]
    fn truncated_input_is_eof() {
        let (uni, _) = sample();
        let mut buf = BytesMut::new();
        put_universe(&mut buf, &uni);
        let bytes = buf.freeze();
        let mut truncated = bytes.slice(0..bytes.len() / 2);
        assert!(get_universe(&mut truncated).is_err());
    }
}
