//! The append-only command log.
//!
//! Each record carries a sequence number and a kind tag: kind `0` is an
//! administrative command together with whether it was authorized when
//! first executed; kind `1` is an admission [`ConstraintSet`] declaration
//! (the whole set, last-writer-wins, so recovery needs no merging).
//! Records are CRC-framed ([`crate::record`]); recovery replays the
//! longest valid prefix and truncates a torn tail.

use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use bytes::BytesMut;

use adminref_core::admission::ConstraintSet;
use adminref_core::command::Command;

use crate::codec::{
    get_command, get_constraints, get_varint, put_command, put_constraints, put_varint, CodecError,
};
use crate::record::{read_record, write_record, RecordRead};

/// Record kind tag: an administrative command.
const KIND_COMMAND: u8 = 0;
/// Record kind tag: a constraint-set declaration.
const KIND_CONSTRAINTS: u8 = 1;

/// One durable log entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LogEntry {
    /// Monotonic sequence number (starting at the snapshot's base).
    pub seq: u64,
    /// The command.
    pub command: Command,
    /// Whether the reference monitor authorized it when it first ran.
    pub executed: bool,
}

/// Store-level errors.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Undecodable payload inside a checksum-valid record.
    Codec(CodecError),
    /// Snapshot/log header mismatch.
    BadHeader(&'static str),
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Codec(e) => write!(f, "codec error: {e}"),
            StoreError::BadHeader(what) => write!(f, "bad header: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Append-only command log backed by one file.
#[derive(Debug)]
pub struct CommandLog {
    path: PathBuf,
    writer: BufWriter<File>,
    next_seq: u64,
    entries_written: u64,
}

/// Result of opening a log: the log handle plus the recovered entries.
#[derive(Debug)]
pub struct RecoveredLog {
    /// The log, positioned for appends.
    pub log: CommandLog,
    /// The valid prefix of command entries found on disk.
    pub entries: Vec<LogEntry>,
    /// The last constraint-set declaration in the valid prefix, if any.
    pub constraints: Option<ConstraintSet>,
    /// `true` iff a torn/corrupt tail was truncated during recovery.
    pub truncated_tail: bool,
}

/// One decoded log record (internal to recovery).
enum LogRecord {
    Command(LogEntry),
    Constraints { seq: u64, set: ConstraintSet },
}

impl CommandLog {
    /// Opens (or creates) the log at `path`, replaying the valid prefix
    /// and truncating any torn tail.
    pub fn open(path: &Path) -> Result<RecoveredLog, StoreError> {
        let mut entries = Vec::new();
        let mut constraints = None;
        let mut last_seq = None;
        let mut records: u64 = 0;
        let mut valid_bytes: u64 = 0;
        let mut truncated_tail = false;
        if path.exists() {
            let file = File::open(path)?;
            let mut reader = BufReader::new(file);
            loop {
                match read_record(&mut reader)? {
                    RecordRead::Record(payload) => {
                        let mut buf = &payload[..];
                        match decode_log_record(&mut buf)? {
                            LogRecord::Command(entry) => {
                                last_seq = Some(entry.seq);
                                entries.push(entry);
                            }
                            LogRecord::Constraints { seq, set } => {
                                last_seq = Some(seq);
                                constraints = Some(set);
                            }
                        }
                        records += 1;
                        valid_bytes += 8 + payload.len() as u64;
                    }
                    RecordRead::Eof => break,
                    RecordRead::Corrupt { .. } => {
                        truncated_tail = true;
                        break;
                    }
                }
            }
        }
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(path)?;
        file.set_len(valid_bytes)?;
        file.seek(SeekFrom::Start(valid_bytes))?;
        let next_seq = last_seq.map(|s| s + 1).unwrap_or(0);
        Ok(RecoveredLog {
            log: CommandLog {
                path: path.to_path_buf(),
                writer: BufWriter::new(file),
                next_seq,
                entries_written: records,
            },
            entries,
            constraints,
            truncated_tail,
        })
    }

    /// Appends a command entry and flushes it to the OS.
    ///
    /// Returns the entry's sequence number.
    pub fn append(&mut self, command: &Command, executed: bool) -> Result<u64, StoreError> {
        let mut payload = BytesMut::new();
        let seq = self.next_seq;
        put_varint(&mut payload, seq);
        payload.extend_from_slice(&[KIND_COMMAND, u8::from(executed)]);
        put_command(&mut payload, command);
        self.append_payload(&payload)?;
        Ok(seq)
    }

    /// Appends a constraint-set declaration and flushes it to the OS.
    ///
    /// Returns the record's sequence number.
    pub fn append_constraints(&mut self, constraints: &ConstraintSet) -> Result<u64, StoreError> {
        let mut payload = BytesMut::new();
        let seq = self.next_seq;
        put_varint(&mut payload, seq);
        payload.extend_from_slice(&[KIND_CONSTRAINTS]);
        put_constraints(&mut payload, constraints);
        self.append_payload(&payload)?;
        Ok(seq)
    }

    fn append_payload(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        write_record(&mut self.writer, payload)?;
        self.writer.flush()?;
        self.next_seq += 1;
        self.entries_written += 1;
        Ok(())
    }

    /// Forces the file contents to stable storage (`fsync`).
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        Ok(())
    }

    /// The next sequence number an append would get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Number of entries appended (including recovered ones).
    pub fn len(&self) -> u64 {
        self.entries_written
    }

    /// `true` iff the log holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries_written == 0
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Truncates the log to zero entries, restarting sequence numbers at
    /// `base_seq` (used after writing a snapshot).
    pub fn reset(&mut self, base_seq: u64) -> Result<(), StoreError> {
        self.writer.flush()?;
        let file = self.writer.get_mut();
        file.set_len(0)?;
        file.seek(SeekFrom::Start(0))?;
        self.next_seq = base_seq;
        self.entries_written = 0;
        Ok(())
    }
}

fn decode_log_record(buf: &mut &[u8]) -> Result<LogRecord, CodecError> {
    let seq = get_varint(buf)?;
    if buf.is_empty() {
        return Err(CodecError::UnexpectedEof);
    }
    let kind = buf[0];
    *buf = &buf[1..];
    match kind {
        KIND_COMMAND => {
            if buf.is_empty() {
                return Err(CodecError::UnexpectedEof);
            }
            let executed = buf[0] != 0;
            *buf = &buf[1..];
            let command = get_command(buf)?;
            Ok(LogRecord::Command(LogEntry {
                seq,
                command,
                executed,
            }))
        }
        KIND_CONSTRAINTS => Ok(LogRecord::Constraints {
            seq,
            set: get_constraints(buf)?,
        }),
        t => Err(CodecError::BadTag(t)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;
    use adminref_core::ids::{RoleId, UserId};
    use adminref_core::universe::Edge;

    fn cmd(u: u32, r: u32) -> Command {
        Command::grant(UserId(u), Edge::UserRole(UserId(u), RoleId(r)))
    }

    #[test]
    fn append_and_recover() {
        let dir = TempDir::new("log").unwrap();
        let path = dir.path().join("commands.log");
        {
            let mut rec = CommandLog::open(&path).unwrap();
            assert!(rec.entries.is_empty());
            rec.log.append(&cmd(1, 2), true).unwrap();
            rec.log.append(&cmd(3, 4), false).unwrap();
            rec.log.sync().unwrap();
        }
        let rec = CommandLog::open(&path).unwrap();
        assert_eq!(rec.entries.len(), 2);
        assert!(!rec.truncated_tail);
        assert_eq!(rec.entries[0].seq, 0);
        assert!(rec.entries[0].executed);
        assert_eq!(rec.entries[1].seq, 1);
        assert!(!rec.entries[1].executed);
        assert_eq!(rec.log.next_seq(), 2);
    }

    #[test]
    fn torn_tail_is_truncated() {
        let dir = TempDir::new("torn").unwrap();
        let path = dir.path().join("commands.log");
        {
            let mut rec = CommandLog::open(&path).unwrap();
            rec.log.append(&cmd(1, 2), true).unwrap();
            rec.log.append(&cmd(3, 4), true).unwrap();
            rec.log.sync().unwrap();
        }
        // Chop the last 3 bytes, simulating a crash mid-write.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let rec = CommandLog::open(&path).unwrap();
        assert_eq!(rec.entries.len(), 1, "only the intact prefix survives");
        assert!(rec.truncated_tail);
        // Appending after recovery continues the sequence.
        let mut log = rec.log;
        let seq = log.append(&cmd(5, 6), true).unwrap();
        assert_eq!(seq, 1);
        drop(log);
        let rec2 = CommandLog::open(&path).unwrap();
        assert_eq!(rec2.entries.len(), 2);
        assert!(!rec2.truncated_tail);
    }

    #[test]
    fn corrupted_middle_stops_recovery_at_prefix() {
        let dir = TempDir::new("flip").unwrap();
        let path = dir.path().join("commands.log");
        {
            let mut rec = CommandLog::open(&path).unwrap();
            for i in 0..5 {
                rec.log.append(&cmd(i, i + 1), true).unwrap();
            }
            rec.log.sync().unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let rec = CommandLog::open(&path).unwrap();
        assert!(rec.truncated_tail);
        assert!(rec.entries.len() < 5);
        // The surviving prefix is intact and correctly ordered.
        for (i, e) in rec.entries.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }

    #[test]
    fn constraint_records_interleave_and_last_wins() {
        let dir = TempDir::new("cons").unwrap();
        let path = dir.path().join("commands.log");
        let first = ConstraintSet {
            sod_pairs: vec![(RoleId(0), RoleId(1))],
            ..ConstraintSet::default()
        };
        let second = ConstraintSet {
            sod_pairs: vec![(RoleId(2), RoleId(3))],
            ..ConstraintSet::default()
        };
        {
            let mut rec = CommandLog::open(&path).unwrap();
            rec.log.append(&cmd(1, 2), true).unwrap();
            rec.log.append_constraints(&first).unwrap();
            rec.log.append(&cmd(3, 4), true).unwrap();
            rec.log.append_constraints(&second).unwrap();
            rec.log.sync().unwrap();
        }
        let rec = CommandLog::open(&path).unwrap();
        assert_eq!(rec.entries.len(), 2, "constraint records are not commands");
        assert_eq!(rec.entries[0].seq, 0);
        assert_eq!(rec.entries[1].seq, 2);
        assert_eq!(rec.constraints, Some(second), "last declaration wins");
        assert_eq!(rec.log.next_seq(), 4);
    }

    #[test]
    fn reset_restarts_sequences() {
        let dir = TempDir::new("reset").unwrap();
        let path = dir.path().join("commands.log");
        let mut rec = CommandLog::open(&path).unwrap();
        rec.log.append(&cmd(1, 2), true).unwrap();
        rec.log.reset(10).unwrap();
        assert!(rec.log.is_empty());
        let seq = rec.log.append(&cmd(3, 4), true).unwrap();
        assert_eq!(seq, 10);
        drop(rec);
        let rec2 = CommandLog::open(&path).unwrap();
        assert_eq!(rec2.entries.len(), 1);
        assert_eq!(rec2.entries[0].seq, 10);
    }
}
