//! CRC-framed record I/O.
//!
//! Every record on disk is `[len: u32 LE][crc32: u32 LE][payload]`. Readers
//! stop at the first frame that is truncated or fails its checksum — the
//! classic write-ahead-log discipline: a torn tail loses at most the
//! records that were never acknowledged.

use std::io::{self, Read, Write};

use crate::crc::crc32;

/// Maximum accepted payload size (guards against reading garbage lengths
/// from a corrupted header).
pub const MAX_RECORD_LEN: u32 = 64 * 1024 * 1024;

/// Writes one framed record.
pub fn write_record(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = payload.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Result of reading one record.
#[derive(Debug, PartialEq, Eq)]
pub enum RecordRead {
    /// A complete, checksum-valid record.
    Record(Vec<u8>),
    /// Clean end of stream (no more bytes).
    Eof,
    /// A truncated or corrupted frame — recovery must stop here.
    Corrupt {
        /// Human-readable reason.
        reason: &'static str,
    },
}

/// Reads one framed record.
pub fn read_record(r: &mut impl Read) -> io::Result<RecordRead> {
    let mut header = [0u8; 8];
    match read_exact_or_eof(r, &mut header)? {
        ReadStatus::Eof => return Ok(RecordRead::Eof),
        ReadStatus::Partial => {
            return Ok(RecordRead::Corrupt {
                reason: "truncated header",
            })
        }
        ReadStatus::Full => {}
    }
    let mut word = [0u8; 4];
    word.copy_from_slice(&header[0..4]);
    let len = u32::from_le_bytes(word);
    word.copy_from_slice(&header[4..8]);
    let crc = u32::from_le_bytes(word);
    if len > MAX_RECORD_LEN {
        return Ok(RecordRead::Corrupt {
            reason: "length exceeds maximum",
        });
    }
    let mut payload = vec![0u8; len as usize];
    match read_exact_or_eof(r, &mut payload)? {
        ReadStatus::Full => {}
        _ => {
            return Ok(RecordRead::Corrupt {
                reason: "truncated payload",
            })
        }
    }
    if crc32(&payload) != crc {
        return Ok(RecordRead::Corrupt {
            reason: "checksum mismatch",
        });
    }
    Ok(RecordRead::Record(payload))
}

enum ReadStatus {
    Full,
    Partial,
    Eof,
}

fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<ReadStatus> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..])? {
            0 => {
                return Ok(if filled == 0 {
                    ReadStatus::Eof
                } else {
                    ReadStatus::Partial
                })
            }
            n => filled += n,
        }
    }
    Ok(ReadStatus::Full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip_multiple_records() {
        let mut buf = Vec::new();
        write_record(&mut buf, b"alpha").unwrap();
        write_record(&mut buf, b"").unwrap();
        write_record(&mut buf, b"gamma-gamma").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(
            read_record(&mut r).unwrap(),
            RecordRead::Record(b"alpha".to_vec())
        );
        assert_eq!(read_record(&mut r).unwrap(), RecordRead::Record(Vec::new()));
        assert_eq!(
            read_record(&mut r).unwrap(),
            RecordRead::Record(b"gamma-gamma".to_vec())
        );
        assert_eq!(read_record(&mut r).unwrap(), RecordRead::Eof);
    }

    #[test]
    fn torn_header_detected() {
        let mut buf = Vec::new();
        write_record(&mut buf, b"data").unwrap();
        buf.extend_from_slice(&[1, 2, 3]); // partial next header
        let mut r = Cursor::new(buf);
        assert!(matches!(
            read_record(&mut r).unwrap(),
            RecordRead::Record(_)
        ));
        assert!(matches!(
            read_record(&mut r).unwrap(),
            RecordRead::Corrupt {
                reason: "truncated header"
            }
        ));
    }

    #[test]
    fn torn_payload_detected() {
        let mut buf = Vec::new();
        write_record(&mut buf, b"0123456789").unwrap();
        buf.truncate(buf.len() - 4);
        let mut r = Cursor::new(buf);
        assert!(matches!(
            read_record(&mut r).unwrap(),
            RecordRead::Corrupt {
                reason: "truncated payload"
            }
        ));
    }

    #[test]
    fn bit_flip_detected() {
        let mut buf = Vec::new();
        write_record(&mut buf, b"sensitive").unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        let mut r = Cursor::new(buf);
        assert!(matches!(
            read_record(&mut r).unwrap(),
            RecordRead::Corrupt {
                reason: "checksum mismatch"
            }
        ));
    }

    #[test]
    fn insane_length_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let mut r = Cursor::new(buf);
        assert!(matches!(
            read_record(&mut r).unwrap(),
            RecordRead::Corrupt {
                reason: "length exceeds maximum"
            }
        ));
    }
}
