//! Minimal temp-directory helper for tests and examples (std-only; the
//! workspace takes no `tempfile` dependency).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A uniquely-named directory under the system temp dir, removed on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `"$TMPDIR/adminref-<pid>-<n>-<label>"`.
    pub fn new(label: &str) -> std::io::Result<Self> {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("adminref-{}-{}-{}", std::process::id(), n, label));
        std::fs::create_dir_all(&path)?;
        Ok(TempDir { path })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_cleans_up() {
        let path;
        {
            let dir = TempDir::new("probe").unwrap();
            path = dir.path().to_path_buf();
            assert!(path.exists());
            std::fs::write(path.join("f.txt"), b"x").unwrap();
        }
        assert!(!path.exists(), "dropped dirs are removed");
    }

    #[test]
    fn names_are_unique() {
        let a = TempDir::new("u").unwrap();
        let b = TempDir::new("u").unwrap();
        assert_ne!(a.path(), b.path());
    }
}
