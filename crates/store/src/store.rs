//! The durable policy store: snapshot + command log + live state.
//!
//! Layout of a store directory:
//!
//! ```text
//! <dir>/policy.snap    snapshot: universe + policy + base sequence
//! <dir>/commands.log   CRC-framed commands appended since the snapshot
//! ```
//!
//! Opening a store loads the snapshot and replays the log through the
//! Definition-5 transition function, which is deterministic, so the
//! recovered state is exactly the pre-crash state up to the last fully
//! written record. `compact` folds the log into a fresh snapshot.

use std::path::{Path, PathBuf};

use adminref_core::admission::ConstraintSet;
use adminref_core::command::Command;
use adminref_core::policy::Policy;
use adminref_core::transition::{step, AuthMode, StepOutcome};
use adminref_core::universe::Universe;

use crate::log::{CommandLog, LogEntry, StoreError};
use crate::snapshot::{load_snapshot, write_snapshot};

const SNAPSHOT_FILE: &str = "policy.snap";
const LOG_FILE: &str = "commands.log";

/// What recovery found when opening a store.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RecoveryReport {
    /// Entries replayed from the log.
    pub replayed: usize,
    /// Whether a torn tail was truncated.
    pub truncated_tail: bool,
    /// Entries whose recorded authorization outcome differed on replay
    /// (should be zero; nonzero indicates the log and snapshot are from
    /// different histories).
    pub divergent: usize,
}

/// A durable administrative policy store.
#[derive(Debug)]
pub struct PolicyStore {
    dir: PathBuf,
    universe: Universe,
    policy: Policy,
    log: CommandLog,
    auth_mode: AuthMode,
    constraints: ConstraintSet,
    /// Testing hook: when `Some(n)`, the append after `n` more
    /// successful appends fails with an injected I/O error (once).
    fail_append_after: Option<u64>,
    /// Testing hook: when `true`, the next batch-final sync fails once.
    fail_next_sync: bool,
}

impl PolicyStore {
    /// Creates a new store at `dir` with the given initial state, writing
    /// the initial snapshot.
    pub fn create(
        dir: &Path,
        universe: Universe,
        policy: Policy,
        auth_mode: AuthMode,
    ) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir)?;
        let constraints = ConstraintSet::default();
        write_snapshot(
            &dir.join(SNAPSHOT_FILE),
            &universe,
            &policy,
            0,
            &constraints,
        )?;
        let recovered = CommandLog::open(&dir.join(LOG_FILE))?;
        let mut log = recovered.log;
        log.reset(0)?;
        Ok(PolicyStore {
            dir: dir.to_path_buf(),
            universe,
            policy,
            log,
            auth_mode,
            constraints,
            fail_append_after: None,
            fail_next_sync: false,
        })
    }

    /// Opens an existing store, replaying the log.
    pub fn open(dir: &Path, auth_mode: AuthMode) -> Result<(Self, RecoveryReport), StoreError> {
        let snap = load_snapshot(&dir.join(SNAPSHOT_FILE))?;
        let recovered = CommandLog::open(&dir.join(LOG_FILE))?;
        let mut universe = snap.universe;
        let mut policy = snap.policy;
        // The snapshot's constraint set, overridden by the latest WAL
        // declaration (last-writer-wins).
        let constraints = recovered.constraints.unwrap_or(snap.constraints);
        let mut report = RecoveryReport {
            replayed: recovered.entries.len(),
            truncated_tail: recovered.truncated_tail,
            divergent: 0,
        };
        for LogEntry {
            command, executed, ..
        } in &recovered.entries
        {
            let outcome = step(&mut universe, &mut policy, command, auth_mode);
            if outcome.executed() != *executed {
                report.divergent += 1;
            }
        }
        Ok((
            PolicyStore {
                dir: dir.to_path_buf(),
                universe,
                policy,
                log: recovered.log,
                auth_mode,
                constraints,
                fail_append_after: None,
                fail_next_sync: false,
            },
            report,
        ))
    }

    /// One command through the WAL discipline: authorize, **append the
    /// decision to the log, then apply** the state change — so a failed
    /// append never leaves the live policy ahead of the log.
    fn execute_logged(&mut self, command: &Command) -> Result<StepOutcome, StoreError> {
        let authorization = adminref_core::transition::authorize(
            &mut self.universe,
            &self.policy,
            command,
            self.auth_mode,
        );
        match self.fail_append_after {
            Some(0) => {
                self.fail_append_after = None;
                return Err(StoreError::Io(std::io::Error::other(
                    "injected append failure",
                )));
            }
            Some(n) => self.fail_append_after = Some(n - 1),
            None => {}
        }
        self.log.append(command, authorization.is_some())?;
        let changed = authorization.is_some()
            && adminref_core::transition::apply_edge(&mut self.policy, command);
        Ok(StepOutcome {
            authorization,
            changed,
        })
    }

    /// Executes a command against the live policy and logs it durably
    /// (log-before-apply: on an append error the live state is
    /// unchanged).
    pub fn execute(&mut self, command: &Command) -> Result<StepOutcome, StoreError> {
        self.execute_logged(command)
    }

    /// Executes a batch of commands, appending each to the log in order
    /// and forcing the log to stable storage **once** at the end.
    ///
    /// This is the write path for batched monitors: per-command WAL
    /// ordering is identical to calling [`execute`](Self::execute) in a
    /// loop (recovery replays the same sequence), but the fsync cost is
    /// amortized over the whole batch, and the batch is durable when the
    /// call returns.
    ///
    /// Returns the outcomes of every command that executed plus the
    /// first error, if any. On error the live state and log hold
    /// exactly the commands whose outcomes were returned (the failing
    /// command changed nothing), so callers can audit/publish the
    /// applied prefix and surface the failure.
    pub fn execute_batch<'a>(
        &mut self,
        commands: impl IntoIterator<Item = &'a Command>,
    ) -> (Vec<StepOutcome>, Result<(), StoreError>) {
        let mut outcomes = Vec::new();
        for command in commands {
            match self.execute_logged(command) {
                Ok(outcome) => outcomes.push(outcome),
                Err(e) => return (outcomes, self.sync_after(Err(e))),
            }
        }
        let status = if outcomes.is_empty() {
            Ok(())
        } else if self.fail_next_sync {
            self.fail_next_sync = false;
            Err(StoreError::Io(std::io::Error::other(
                "injected sync failure",
            )))
        } else {
            self.log.sync()
        };
        (outcomes, status)
    }

    /// Best-effort sync of the applied prefix after a mid-batch failure;
    /// the original error wins over a subsequent sync error.
    fn sync_after(&mut self, failure: Result<(), StoreError>) -> Result<(), StoreError> {
        let _ = self.log.sync();
        failure
    }

    /// Forces the log to stable storage.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.log.sync()
    }

    /// Failure-injection hook for crash/partial-batch tests: the append
    /// after `appends` more successful appends fails once with a
    /// synthetic I/O error, exercising the log-before-apply discipline
    /// and the applied-prefix semantics of
    /// [`execute_batch`](Self::execute_batch) without real disk faults.
    /// Not intended for production use.
    pub fn inject_append_failure_after(&mut self, appends: u64) {
        self.fail_append_after = Some(appends);
    }

    /// Failure-injection hook for durability tests: the next
    /// *batch-final* sync in [`execute_batch`](Self::execute_batch)
    /// fails once with a synthetic I/O error after every command
    /// applied — the "executed but durability in doubt" case. Not
    /// intended for production use.
    pub fn inject_sync_failure(&mut self) {
        self.fail_next_sync = true;
    }

    /// Folds the log into a fresh snapshot (including the live
    /// constraint set) and truncates it.
    pub fn compact(&mut self) -> Result<(), StoreError> {
        let base = self.log.next_seq();
        write_snapshot(
            &self.dir.join(SNAPSHOT_FILE),
            &self.universe,
            &self.policy,
            base,
            &self.constraints,
        )?;
        self.log.reset(base)?;
        Ok(())
    }

    /// Durably replaces the admission constraint set: appends a WAL
    /// record and fsyncs before the live set changes, so a crash can
    /// never lose an acknowledged declaration.
    pub fn set_constraints(&mut self, constraints: ConstraintSet) -> Result<(), StoreError> {
        self.log.append_constraints(&constraints)?;
        self.log.sync()?;
        self.constraints = constraints;
        Ok(())
    }

    /// The live admission constraint set.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// The live universe.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// Mutable access to the universe (interning new terms is append-only
    /// and safe; the snapshot captures whatever exists at compaction).
    pub fn universe_mut(&mut self) -> &mut Universe {
        &mut self.universe
    }

    /// The live policy.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// The authorization mode commands are executed under.
    pub fn auth_mode(&self) -> AuthMode {
        self.auth_mode
    }

    /// Entries in the log since the last snapshot.
    pub fn log_len(&self) -> u64 {
        self.log.len()
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;
    use adminref_core::policy::PolicyBuilder;
    use adminref_core::universe::Edge;

    fn sample() -> (Universe, Policy) {
        let mut b = PolicyBuilder::new()
            .assign("jane", "hr")
            .declare_user("bob")
            .inherit("staff", "dbusr2")
            .permit("dbusr2", "write", "t3");
        let (bob, staff) = {
            let u = b.universe_mut();
            (u.find_user("bob").unwrap(), u.find_role("staff").unwrap())
        };
        let g = b.universe_mut().grant_user_role(bob, staff);
        b = b.assign_priv("hr", g);
        b.finish()
    }

    #[test]
    fn create_execute_reopen() {
        let dir = TempDir::new("store").unwrap();
        let (uni, policy) = sample();
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        {
            let mut store =
                PolicyStore::create(dir.path(), uni, policy, AuthMode::Explicit).unwrap();
            let out = store
                .execute(&Command::grant(jane, Edge::UserRole(bob, staff)))
                .unwrap();
            assert!(out.executed());
            store.sync().unwrap();
        }
        let (store, report) = PolicyStore::open(dir.path(), AuthMode::Explicit).unwrap();
        assert_eq!(report.replayed, 1);
        assert_eq!(report.divergent, 0);
        assert!(!report.truncated_tail);
        assert!(store.policy().contains_edge(Edge::UserRole(bob, staff)));
    }

    #[test]
    fn execute_batch_matches_serial_execution_and_is_durable() {
        let (uni, policy) = sample();
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let batch = [
            Command::grant(jane, Edge::UserRole(bob, staff)),
            Command::grant(bob, Edge::UserRole(jane, staff)), // refused
            Command::revoke(jane, Edge::UserRole(bob, staff)), // refused: jane holds no ♦
        ];

        let dir_batch = TempDir::new("batch").unwrap();
        let dir_serial = TempDir::new("serial").unwrap();
        let mut batched = PolicyStore::create(
            dir_batch.path(),
            uni.clone(),
            policy.clone(),
            AuthMode::Explicit,
        )
        .unwrap();
        let mut serial =
            PolicyStore::create(dir_serial.path(), uni, policy, AuthMode::Explicit).unwrap();

        let (batch_outcomes, status) = batched.execute_batch(batch.iter());
        status.unwrap();
        let serial_outcomes: Vec<StepOutcome> =
            batch.iter().map(|c| serial.execute(c).unwrap()).collect();
        serial.sync().unwrap();
        assert_eq!(batch_outcomes, serial_outcomes);
        assert_eq!(batched.policy(), serial.policy());
        assert_eq!(batched.log_len(), 3);

        // The batch is durable without a further sync (recovery replays
        // the identical sequence).
        drop(batched);
        let (store, report) = PolicyStore::open(dir_batch.path(), AuthMode::Explicit).unwrap();
        assert_eq!(report.replayed, 3);
        assert_eq!(report.divergent, 0);
        assert!(store.policy().contains_edge(Edge::UserRole(bob, staff)));
    }

    #[test]
    fn refused_commands_are_logged_too() {
        let dir = TempDir::new("refused").unwrap();
        let (uni, policy) = sample();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let mut store = PolicyStore::create(dir.path(), uni, policy, AuthMode::Explicit).unwrap();
        // Bob has no authority yet.
        let out = store
            .execute(&Command::grant(bob, Edge::UserRole(bob, staff)))
            .unwrap();
        assert!(!out.executed());
        assert_eq!(store.log_len(), 1);
        drop(store);
        let (_, report) = PolicyStore::open(dir.path(), AuthMode::Explicit).unwrap();
        assert_eq!(report.replayed, 1);
        assert_eq!(report.divergent, 0);
    }

    #[test]
    fn compact_folds_log_into_snapshot() {
        let dir = TempDir::new("compact").unwrap();
        let (uni, policy) = sample();
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let mut store = PolicyStore::create(dir.path(), uni, policy, AuthMode::Explicit).unwrap();
        store
            .execute(&Command::grant(jane, Edge::UserRole(bob, staff)))
            .unwrap();
        store.compact().unwrap();
        assert_eq!(store.log_len(), 0);
        drop(store);
        let (store, report) = PolicyStore::open(dir.path(), AuthMode::Explicit).unwrap();
        assert_eq!(report.replayed, 0, "log was folded into the snapshot");
        assert!(store.policy().contains_edge(Edge::UserRole(bob, staff)));
    }

    #[test]
    fn constraints_survive_recovery_and_compaction() {
        let dir = TempDir::new("storecons").unwrap();
        let (uni, policy) = sample();
        let hr = uni.find_role("hr").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let declared = ConstraintSet {
            sod_pairs: vec![(hr.min(staff), hr.max(staff))],
            ..ConstraintSet::default()
        };
        {
            let mut store =
                PolicyStore::create(dir.path(), uni, policy, AuthMode::Explicit).unwrap();
            assert!(store.constraints().is_empty());
            store.set_constraints(declared.clone()).unwrap();
        }
        // WAL record alone restores the set.
        let (mut store, _) = PolicyStore::open(dir.path(), AuthMode::Explicit).unwrap();
        assert_eq!(store.constraints(), &declared);
        // Compaction folds it into the snapshot; a fresh open with an
        // empty log still sees it.
        store.compact().unwrap();
        drop(store);
        let (store, report) = PolicyStore::open(dir.path(), AuthMode::Explicit).unwrap();
        assert_eq!(report.replayed, 0);
        assert_eq!(store.constraints(), &declared);
    }

    #[test]
    fn crash_recovery_keeps_durable_prefix() {
        let dir = TempDir::new("crash").unwrap();
        let (uni, policy) = sample();
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        {
            let mut store =
                PolicyStore::create(dir.path(), uni, policy, AuthMode::Explicit).unwrap();
            store
                .execute(&Command::grant(jane, Edge::UserRole(bob, staff)))
                .unwrap();
            store
                .execute(&Command::revoke(jane, Edge::UserRole(bob, staff)))
                .unwrap();
            store.sync().unwrap();
            // no clean shutdown: just drop
        }
        // Simulate a torn tail: chop bytes off the log.
        let log_path = dir.path().join("commands.log");
        let bytes = std::fs::read(&log_path).unwrap();
        std::fs::write(&log_path, &bytes[..bytes.len() - 5]).unwrap();
        let (store, report) = PolicyStore::open(dir.path(), AuthMode::Explicit).unwrap();
        assert!(report.truncated_tail);
        assert_eq!(report.replayed, 1, "second record was torn");
        assert!(
            store.policy().contains_edge(Edge::UserRole(bob, staff)),
            "state reflects the surviving prefix only"
        );
    }

    #[test]
    fn ordered_mode_round_trips_through_recovery() {
        use adminref_core::ordering::OrderingMode;
        let dir = TempDir::new("ordered").unwrap();
        let (uni, policy) = sample();
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let dbusr2 = uni.find_role("dbusr2").unwrap();
        let mode = AuthMode::Ordered(OrderingMode::Extended);
        {
            let mut store = PolicyStore::create(dir.path(), uni, policy, mode).unwrap();
            // Only authorized in ordered mode (weaker than ¤(bob, staff)).
            let out = store
                .execute(&Command::grant(jane, Edge::UserRole(bob, dbusr2)))
                .unwrap();
            assert!(out.executed());
            store.sync().unwrap();
        }
        let (store, report) = PolicyStore::open(dir.path(), mode).unwrap();
        assert_eq!(report.divergent, 0, "replay in the same mode agrees");
        assert!(store.policy().contains_edge(Edge::UserRole(bob, dbusr2)));
        // Replaying under a *different* mode diverges — detected.
        let (_, report2) = PolicyStore::open(dir.path(), AuthMode::Explicit).unwrap();
        assert_eq!(report2.divergent, 1);
    }
}
