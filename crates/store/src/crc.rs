//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Used to checksum every record in the command log so torn or corrupted
//! tails are detected during recovery. Implemented here rather than pulled
//! in as a dependency — it is 30 lines and part of the storage substrate.

const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Computes the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox";
        let base = crc32(data);
        let mut copy = data.to_vec();
        for i in 0..copy.len() {
            for bit in 0..8 {
                copy[i] ^= 1 << bit;
                assert_ne!(crc32(&copy), base, "flip at byte {i} bit {bit}");
                copy[i] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn order_sensitive() {
        assert_ne!(crc32(b"ab"), crc32(b"ba"));
    }
}
