//! # adminref-store
//!
//! Durable storage for administrative policies: the paper's reference
//! monitor needs its policy to survive restarts, and this crate provides
//! the database-style substrate — a CRC-framed append-only command log
//! ([`log::CommandLog`]), atomic snapshots ([`snapshot`]), deterministic
//! replay recovery ([`store::PolicyStore`]), and the binary codec
//! ([`codec`]) underneath them. All of it is built from scratch on
//! `std::fs` + `bytes`; corruption handling is tested with injected torn
//! tails and bit flips.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Serving-path hygiene: no unwrap/expect/panic! outside tests (the
// test exemption lives in the workspace clippy.toml).
#![warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

pub mod codec;
pub mod crc;
pub mod log;
pub mod record;
pub mod snapshot;
pub mod store;
pub mod tempdir;

pub use codec::CodecError;
pub use log::{CommandLog, LogEntry, RecoveredLog, StoreError};
pub use snapshot::{decode_state, encode_state, load_snapshot, write_snapshot, Snapshot};
pub use store::{PolicyStore, RecoveryReport};
pub use tempdir::TempDir;
