//! Property-based tests for the storage layer: codec round-trips on
//! random universes/policies, and the prefix-durability property of log
//! recovery under arbitrary truncation points.

use adminref_core::command::Command;
use adminref_core::ids::{RoleId, UserId};
use adminref_core::policy::Policy;
use adminref_core::transition::AuthMode;
use adminref_core::universe::{Edge, Universe};
use adminref_store::codec::{get_policy, get_universe, put_policy, put_universe};
use adminref_store::{CommandLog, PolicyStore, TempDir};
use bytes::BytesMut;
use proptest::prelude::*;

const USERS: usize = 4;
const ROLES: usize = 5;

#[derive(Clone, Debug)]
struct Spec {
    ua: Vec<(u8, u8)>,
    rh: Vec<(u8, u8)>,
    perms: Vec<(u8, u8)>,
    grants: Vec<(u8, u8, u8)>, // holder role, user, target role
    nested: Vec<(u8, u8)>,     // holder role, wraps grant #i (mod len)
}

fn spec() -> impl Strategy<Value = Spec> {
    (
        prop::collection::vec(((0u8..USERS as u8), (0u8..ROLES as u8)), 0..6),
        prop::collection::vec(((0u8..ROLES as u8), (0u8..ROLES as u8)), 0..6),
        prop::collection::vec(((0u8..ROLES as u8), (0u8..4)), 0..5),
        prop::collection::vec(
            ((0u8..ROLES as u8), (0u8..USERS as u8), (0u8..ROLES as u8)),
            0..5,
        ),
        prop::collection::vec(((0u8..ROLES as u8), (0u8..8)), 0..3),
    )
        .prop_map(|(ua, rh, perms, grants, nested)| Spec {
            ua,
            rh,
            perms,
            grants,
            nested,
        })
}

fn build(s: &Spec) -> (Universe, Policy) {
    let mut uni = Universe::new();
    let users: Vec<UserId> = (0..USERS).map(|i| uni.user(&format!("u{i}"))).collect();
    let roles: Vec<RoleId> = (0..ROLES).map(|i| uni.role(&format!("r{i}"))).collect();
    let mut policy = Policy::new(&uni);
    for &(u, r) in &s.ua {
        policy.add_edge(Edge::UserRole(users[u as usize], roles[r as usize]));
    }
    for &(a, b) in &s.rh {
        policy.add_edge(Edge::RoleRole(roles[a as usize], roles[b as usize]));
    }
    for &(r, o) in &s.perms {
        let perm = uni.perm("read", &format!("obj{o}"));
        let p = uni.priv_perm(perm);
        policy.add_edge(Edge::RolePriv(roles[r as usize], p));
    }
    let mut grant_ids = Vec::new();
    for &(holder, u, r) in &s.grants {
        let g = uni.grant_user_role(users[u as usize], roles[r as usize]);
        grant_ids.push(g);
        policy.add_edge(Edge::RolePriv(roles[holder as usize], g));
    }
    for &(holder, i) in &s.nested {
        if grant_ids.is_empty() {
            continue;
        }
        let inner = grant_ids[i as usize % grant_ids.len()];
        let outer = uni.grant_role_priv(roles[holder as usize], inner);
        policy.add_edge(Edge::RolePriv(roles[holder as usize], outer));
    }
    (uni, policy)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn codec_round_trip(s in spec()) {
        let (uni, policy) = build(&s);
        let mut buf = BytesMut::new();
        put_universe(&mut buf, &uni);
        put_policy(&mut buf, &policy);
        let mut r = buf.freeze();
        let uni2 = get_universe(&mut r).unwrap();
        let policy2 = get_policy(&mut r, &uni2).unwrap();
        prop_assert_eq!(&policy, &policy2);
        prop_assert_eq!(uni.term_count(), uni2.term_count());
        prop_assert_eq!(uni.tag(), uni2.tag(), "identity survives the codec");
        for p in uni.priv_ids() {
            prop_assert_eq!(uni.term(p), uni2.term(p));
        }
    }

    #[test]
    fn log_recovery_is_prefix_durable(
        s in spec(),
        cmds in prop::collection::vec(
            ((0u8..USERS as u8), (0u8..USERS as u8), (0u8..ROLES as u8), any::<bool>()),
            1..12,
        ),
        cut in 1usize..40,
    ) {
        let (uni, _) = build(&s);
        let users: Vec<UserId> = uni.users().collect();
        let roles: Vec<RoleId> = uni.roles().collect();
        let dir = TempDir::new("prop-log").unwrap();
        let path = dir.path().join("commands.log");
        let commands: Vec<Command> = cmds
            .iter()
            .map(|&(a, u, r, grant)| {
                let edge = Edge::UserRole(users[u as usize], roles[r as usize]);
                if grant {
                    Command::grant(users[a as usize], edge)
                } else {
                    Command::revoke(users[a as usize], edge)
                }
            })
            .collect();
        {
            let mut rec = CommandLog::open(&path).unwrap();
            for cmd in &commands {
                rec.log.append(cmd, true).unwrap();
            }
            rec.log.sync().unwrap();
        }
        // Truncate the tail at an arbitrary byte count.
        let bytes = std::fs::read(&path).unwrap();
        let keep = bytes.len().saturating_sub(cut);
        std::fs::write(&path, &bytes[..keep]).unwrap();
        let rec = CommandLog::open(&path).unwrap();
        // Recovered entries are exactly a prefix of what was written.
        prop_assert!(rec.entries.len() <= commands.len());
        for (i, entry) in rec.entries.iter().enumerate() {
            prop_assert_eq!(entry.seq, i as u64);
            prop_assert_eq!(&entry.command, &commands[i]);
        }
    }

    #[test]
    fn store_reopen_reproduces_state(s in spec()) {
        let (uni, policy) = build(&s);
        let users: Vec<UserId> = uni.users().collect();
        let roles: Vec<RoleId> = uni.roles().collect();
        let dir = TempDir::new("prop-store").unwrap();
        let live = {
            let mut store = PolicyStore::create(
                dir.path(), uni, policy, AuthMode::Explicit,
            ).unwrap();
            // Replay a few commands (authorized or not — both are logged).
            for i in 0..6u32 {
                let cmd = Command::grant(
                    users[i as usize % users.len()],
                    Edge::UserRole(users[(i as usize + 1) % users.len()], roles[i as usize % roles.len()]),
                );
                store.execute(&cmd).unwrap();
            }
            store.sync().unwrap();
            store.policy().clone()
        };
        let (store, report) = PolicyStore::open(dir.path(), AuthMode::Explicit).unwrap();
        prop_assert_eq!(report.replayed, 6);
        prop_assert_eq!(report.divergent, 0);
        prop_assert_eq!(store.policy(), &live);
    }
}
