//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The workspace builds fully offline, so instead of the real `rand` this
//! path crate provides exactly the surface the generators use:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::random_bool` and
//! `Rng::random_range` over integer ranges. The generator is SplitMix64:
//! deterministic, seedable, and statistically fine for workload synthesis
//! (nothing here is cryptographic).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Concrete generators.
pub mod rngs {
    /// A deterministic 64-bit generator (SplitMix64 under the hood).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed. Same seed, same stream.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

/// Random-value methods (subset of `rand::Rng`).
pub trait Rng {
    /// The raw 64-bit output feeding every derived method.
    fn next_u64(&mut self) -> u64;

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A uniform value in `range`. Panics on an empty range.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform value.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u128) - (self.start as u128);
                // Modulo bias is < 2^-64 * width: irrelevant for workloads.
                self.start + (rng.next_u64() as u128 % width) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % width) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(1u32..=4);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.random_bool(0.0));
            assert!(rng.random_bool(1.0));
        }
    }
}
