//! Minimal, dependency-free stand-in for `arc-swap`: an [`ArcSwap`] cell
//! holding an `Arc<T>` that readers load without ever blocking behind a
//! writer.
//!
//! Only the shape this workspace uses is provided: `new`, `load_full`,
//! `store`, and `swap`. The implementation is a two-generation
//! ("epoch-parity") RCU rather than arc-swap's debt lists, which is
//! plenty for the reference monitor's rare-writer / hot-reader pattern:
//!
//! * **Readers are lock-free.** A load pins one of two generation
//!   counters, validates the epoch, clones the `Arc` by bumping its
//!   strong count, and unpins — a handful of atomic operations, no
//!   mutex, no writer can make a reader wait.
//! * **Writers are serialized and briefly blocking.** A store swaps the
//!   pointer, flips the epoch, then waits for readers pinned on the
//!   *previous* parity to drain before releasing the old `Arc`. Pins
//!   last nanoseconds, so the grace period is short; writers are
//!   expected to be rare and batched.
//!
//! # Why this is sound
//!
//! The reader protocol is pin → validate epoch → load pointer →
//! re-validate epoch → clone. The writer protocol (under the writer
//! mutex) is swap pointer → increment epoch → wait for the pre-flip
//! parity's pin count to reach zero → release the old `Arc`.
//!
//! Suppose a reader passes both validations against epoch value `e`
//! (full 64-bit value, so no parity ABA). Then no epoch increment
//! became visible between its pin and its pointer load, and the loaded
//! pointer `p` was the cell's value inside that window. Whichever
//! writer later swaps `p` out must increment the epoch from some
//! `e' >= e` and then wait for all pins on parity `e' mod 2`. If
//! `e' = e` that wait includes this reader's pin, which is released
//! only after the strong count of `p` was incremented. If `e' > e`,
//! some earlier writer already performed the `e -> e+1` increment, and
//! *that* writer's grace period waited on this reader's pin (parity
//! `e mod 2`) — writers are serialized by the mutex, so the `p`-freeing
//! writer cannot even start until the reader has cloned. Either way the
//! strong count is bumped strictly before the release of the writer's
//! reference, so `p` is never dereferenced after its last `Arc` drops.
//!
//! The pin/validate handshake itself is the Dekker pattern (reader:
//! write pin, read epoch; writer: write epoch, read pins) and all the
//! participating atomics are `SeqCst`, so at least one side always
//! observes the other: a reader that missed the flip is seen by the
//! writer's drain loop, and a reader the writer missed sees the flip
//! and retries.

use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// A cell holding an `Arc<T>` with lock-free loads and serialized,
/// grace-period stores.
pub struct ArcSwap<T> {
    /// Raw pointer from `Arc::into_raw`; the cell always owns exactly one
    /// strong reference to the pointee.
    ptr: AtomicPtr<T>,
    /// Full epoch value; low bit selects the active reader generation.
    epoch: AtomicU64,
    /// In-flight reader pins, one counter per epoch parity.
    pins: [AtomicUsize; 2],
    /// Serializes writers (readers never touch it).
    writer: Mutex<()>,
}

// The cell hands out `Arc<T>` clones across threads, so the usual Arc
// bounds apply to the whole cell.
unsafe impl<T: Send + Sync> Send for ArcSwap<T> {}
unsafe impl<T: Send + Sync> Sync for ArcSwap<T> {}

impl<T> ArcSwap<T> {
    /// Wraps an initial value.
    pub fn new(value: Arc<T>) -> Self {
        ArcSwap {
            ptr: AtomicPtr::new(Arc::into_raw(value) as *mut T),
            epoch: AtomicU64::new(0),
            pins: [AtomicUsize::new(0), AtomicUsize::new(0)],
            writer: Mutex::new(()),
        }
    }

    /// Wraps a value, allocating the `Arc`.
    pub fn from_pointee(value: T) -> Self {
        ArcSwap::new(Arc::new(value))
    }

    /// Loads the current value as an owned `Arc`. Lock-free: retries only
    /// when a writer flipped the epoch inside the (nanoseconds-wide)
    /// pin window.
    pub fn load_full(&self) -> Arc<T> {
        loop {
            let e = self.epoch.load(SeqCst);
            let slot = (e & 1) as usize;
            self.pins[slot].fetch_add(1, SeqCst);
            if self.epoch.load(SeqCst) == e {
                let p = self.ptr.load(SeqCst);
                if self.epoch.load(SeqCst) == e {
                    // SAFETY: both validations read epoch `e`, so `p` was
                    // the published pointer while this thread's pin on
                    // parity `e & 1` was visible; per the module-level
                    // argument every writer that could release `p` first
                    // drains that parity, and the pin is dropped only
                    // after this increment.
                    unsafe { Arc::increment_strong_count(p) };
                    self.pins[slot].fetch_sub(1, SeqCst);
                    // SAFETY: the strong count bumped above is handed to
                    // this new `Arc`.
                    return unsafe { Arc::from_raw(p) };
                }
            }
            self.pins[slot].fetch_sub(1, SeqCst);
            std::hint::spin_loop();
        }
    }

    /// Publishes `new`, releasing the cell's reference to the previous
    /// value after the grace period.
    pub fn store(&self, new: Arc<T>) {
        drop(self.swap(new));
    }

    /// Publishes `new` and returns the previous value.
    pub fn swap(&self, new: Arc<T>) -> Arc<T> {
        let _guard = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let e = self.epoch.load(SeqCst);
        let slot = (e & 1) as usize;
        let old = self.ptr.swap(Arc::into_raw(new) as *mut T, SeqCst);
        self.epoch.store(e + 1, SeqCst);
        // Grace period: readers pinned on the pre-flip parity either saw
        // the flip (and retried onto the new parity) or are mid-clone of
        // a pointer this writer may be about to release — wait them out.
        while self.pins[slot].load(SeqCst) != 0 {
            std::thread::yield_now();
        }
        // SAFETY: `old` came from `Arc::into_raw` and the cell's strong
        // reference to it is transferred to the returned Arc; no reader
        // can still be between pointer load and clone (drained above).
        unsafe { Arc::from_raw(old) }
    }
}

impl<T> Drop for ArcSwap<T> {
    fn drop(&mut self) {
        // SAFETY: the cell owns one strong reference to the current
        // pointee; `&mut self` means no readers exist.
        unsafe { drop(Arc::from_raw(self.ptr.load(SeqCst))) };
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ArcSwap<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArcSwap")
            .field("value", &self.load_full())
            .field("epoch", &self.epoch.load(SeqCst))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    #[test]
    fn load_and_store_round_trip() {
        let cell = ArcSwap::from_pointee(1u32);
        assert_eq!(*cell.load_full(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load_full(), 2);
        let old = cell.swap(Arc::new(3));
        assert_eq!(*old, 2);
        assert_eq!(*cell.load_full(), 3);
    }

    #[test]
    fn refcounts_balance() {
        let first = Arc::new(10u32);
        let cell = ArcSwap::new(Arc::clone(&first));
        let loaded = cell.load_full();
        assert_eq!(Arc::strong_count(&first), 3); // first + cell + loaded
        cell.store(Arc::new(11));
        assert_eq!(Arc::strong_count(&first), 2); // cell's ref released
        drop(loaded);
        assert_eq!(Arc::strong_count(&first), 1);
    }

    #[test]
    fn dropping_the_cell_releases_the_value() {
        let value = Arc::new(5u32);
        let cell = ArcSwap::new(Arc::clone(&value));
        drop(cell);
        assert_eq!(Arc::strong_count(&value), 1);
    }

    /// Hammer the cell from many readers while a writer republishes
    /// continuously. Each published value is internally consistent
    /// (`(n, n)` pairs), so a torn or dangling read would show up as a
    /// mismatched pair — or as a crash under the allocator.
    #[test]
    fn concurrent_readers_see_only_published_pairs() {
        let cell = ArcSwap::from_pointee((0u64, 0u64));
        let stop = AtomicBool::new(false);
        let reads = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let v = cell.load_full();
                        assert_eq!(v.0, v.1, "torn read");
                        assert!(v.0 >= last, "went backwards");
                        last = v.0;
                        reads.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            s.spawn(|| {
                for n in 1..=10_000u64 {
                    cell.store(Arc::new((n, n)));
                }
                stop.store(true, Ordering::Relaxed);
            });
        });
        assert_eq!(cell.load_full().0, 10_000);
        assert!(reads.load(Ordering::Relaxed) > 0);
    }
}
