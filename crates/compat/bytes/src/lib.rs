//! Minimal, dependency-free stand-in for the `bytes` crate.
//!
//! Provides the reader/writer traits and the two buffer types the store's
//! codec uses. Buffers are contiguous (`chunk()` always returns everything
//! remaining), which keeps the provided `Buf` methods simple.

#![forbid(unsafe_code)]

use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Sequential reader over a byte buffer (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The remaining bytes (this implementation is always contiguous).
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// `true` iff any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte. Panics if empty.
    fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "get_u8 on empty buffer");
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Fills `dst` from the front of the buffer. Panics if short.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice out of bounds");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads a little-endian `u64`. Panics if fewer than 8 bytes remain.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Sequential writer onto a growable buffer (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, b: u8);
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, b: u8) {
        self.push(b);
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A growable byte buffer that freezes into an immutable [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Converts into an immutable, cheaply sliceable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.inner)
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.inner.push(b);
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

/// An immutable, reference-counted byte buffer with a consuming cursor
/// (subset of `bytes::Bytes`; also implements [`Buf`]).
#[derive(Clone, Debug)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    fn from_vec(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }

    /// Remaining length of this view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` iff the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of the current view; shares the underlying storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_freeze() {
        let mut b = BytesMut::new();
        b.put_u8(1);
        b.put_slice(&[2, 3, 4]);
        assert_eq!(&b[..], &[1, 2, 3, 4]);
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 1);
        let mut rest = [0u8; 3];
        r.copy_to_slice(&mut rest);
        assert_eq!(rest, [2, 3, 4]);
        assert!(!r.has_remaining());
    }

    #[test]
    fn slices_share_storage_and_are_relative() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"abcdef");
        let bytes = b.freeze();
        let mid = bytes.slice(2..5);
        assert_eq!(&mid[..], b"cde");
        let inner = mid.slice(1..);
        assert_eq!(&inner[..], b"de");
    }

    #[test]
    fn slice_of_slice_after_advance() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"0123456789");
        let mut bytes = b.freeze();
        bytes.advance(4);
        assert_eq!(bytes.len(), 6);
        assert_eq!(&bytes.slice(0..2)[..], b"45");
    }
}
