//! Minimal, dependency-free stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros this workspace's
//! property tests use — `proptest! { #![proptest_config(...)] ... }`,
//! integer-range strategies, tuples, `prop_map`, `boxed`, `prop_oneof!`
//! (weighted and unweighted), `prop::collection::vec`, `any::<T>()`, and
//! the `prop_assert*` macros. Cases are generated from a per-test
//! deterministic seed (an FNV hash of the test name), so failures
//! reproduce; there is no shrinking — instead, a failing case reports its
//! case number and the `Debug` rendering of every generated input
//! alongside the assertion message.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Value-generation entry points (`any::<T>()`).
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng as _;
    use std::marker::PhantomData;

    /// Types with a canonical random generator.
    pub trait Arbitrary: Sized {
        /// Draws one value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.rng.random_bool(0.5)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    use rand::Rng as _;
                    rng.rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize);

    /// Strategy producing arbitrary values of `T`.
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy for any `T: Arbitrary` (subset of `proptest::arbitrary::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng as _;
    use std::ops::Range;

    /// Strategy for `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors with a length drawn from `size` (subset of
    /// `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Weighted or unweighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each test runs `config.cases` generated cases; the RNG seed is derived
/// from the test's name, so runs are deterministic.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                // Build each strategy once (binding it to the argument
                // name, which the generated value then shadows per case).
                $(let $arg = $strat;)+
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut rng);)+
                    // On panic, the guard reports the case number and the
                    // generated inputs so the failure is reconstructible.
                    let _guard = $crate::test_runner::CaseGuard::new(
                        _case,
                        format!(
                            concat!($(stringify!($arg), " = {:?}; "),+),
                            $(&$arg),+
                        ),
                    );
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
}
