//! Test configuration and the deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::SeedableRng as _;

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Reports the failing case's number and generated inputs if the test
/// body panics (dropped during unwinding); silent on success.
pub struct CaseGuard {
    case: u32,
    inputs: String,
}

impl CaseGuard {
    /// Arms a guard for one generated case.
    pub fn new(case: u32, inputs: String) -> Self {
        CaseGuard { case, inputs }
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest: case #{} failed with inputs: {}",
                self.case, self.inputs
            );
        }
    }
}

/// The RNG handed to strategies; seeded deterministically per test.
pub struct TestRng {
    pub(crate) rng: StdRng,
}

impl TestRng {
    /// Seeds from the test name (FNV-1a), so each test has its own
    /// reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(hash),
        }
    }
}
