//! The strategy trait and combinators.

use crate::test_runner::TestRng;
use rand::Rng as _;
use std::ops::Range;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Weighted choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { options, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.rng.random_range(0u64..self.total);
        for (w, strat) in &self.options {
            let w = u64::from(*w);
            if pick < w {
                return strat.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights summed to total")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
