//! Minimal, dependency-free stand-in for `crossbeam`'s scoped threads,
//! implemented on `std::thread::scope` (stable since 1.63).
//!
//! Only the shape this workspace uses is provided: `crossbeam::scope(|s| {
//! s.spawn(|_| ...); ... }).unwrap()`. The spawn closure's argument is a
//! unit placeholder (callers here always write `|_|`), and a child panic
//! propagates as a panic from `scope` rather than as `Err` — equivalent
//! for tests, which unwrap the result anyway.

#![forbid(unsafe_code)]

use std::any::Any;
use std::thread;

/// A scope handle for spawning threads that may borrow from the caller.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure argument is a placeholder so
    /// call sites written for crossbeam (`|_| ...`) compile unchanged.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(()))
    }
}

/// Runs `f` with a scope; all spawned threads are joined before returning.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }
}
