//! Minimal, dependency-free stand-in for `parking_lot`.
//!
//! Wraps `std::sync` locks with parking_lot's non-poisoning API: `read()`
//! / `write()` / `lock()` return guards directly, recovering the data if a
//! previous holder panicked.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock whose guards never surface poisoning.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock whose guard never surfaces poisoning.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
