//! Offline stand-in for a SAT solver.
//!
//! A small, deterministic DPLL: two-watched-literal unit propagation,
//! chronological backtracking, lowest-index branching with false-first
//! phase. No clause learning, no restarts, no activity heuristics — the
//! callers in this workspace ground bounded model-checking instances
//! whose size is capped *before* encoding, so a predictable solver that
//! is obviously correct beats a clever one.
//!
//! The API mirrors the subset of minisat-style solvers the workspace
//! uses: create variables, add clauses, solve (optionally under a
//! decision budget), read the model back.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A propositional variable, created by [`Solver::new_var`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub u32);

/// A literal: a variable with a sign. Encoded as `2·var + sign` so it
/// can index watch lists directly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn positive(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    pub fn negative(v: Var) -> Lit {
        Lit((v.0 << 1) | 1)
    }

    /// The literal of `v` with the given sign (`true` = positive).
    pub fn new(v: Var, positive: bool) -> Lit {
        if positive {
            Lit::positive(v)
        } else {
            Lit::negative(v)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` iff this is the positive literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The literal's index into sign-interleaved tables.
    fn code(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

/// The outcome of a budgeted [`Solver::solve_within`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveOutcome {
    /// A satisfying assignment was found (read it with [`Solver::value`]).
    Sat,
    /// The formula is unsatisfiable.
    Unsat,
    /// The decision budget ran out before an answer.
    BudgetExceeded,
}

#[derive(Debug)]
struct Clause {
    /// Literals; positions 0 and 1 are the watched pair once the clause
    /// has at least two literals.
    lits: Vec<Lit>,
}

/// One decision point on the trail.
#[derive(Debug)]
struct Decision {
    /// The literal assigned at this decision (first phase tried).
    lit: Lit,
    /// Trail length just before the decision.
    trail_len: usize,
    /// Whether the opposite phase has already been tried.
    flipped: bool,
}

/// A DPLL solver over clauses added with [`Solver::add_clause`].
#[derive(Debug, Default)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// `watches[lit.code()]`: indices of clauses currently watching `lit`.
    watches: Vec<Vec<usize>>,
    /// Current assignment per variable (`None` = unassigned).
    assigns: Vec<Option<bool>>,
    /// Assigned literals in order.
    trail: Vec<Lit>,
    /// Next trail position to propagate from.
    prop_head: usize,
    /// Open decisions, in order.
    decisions: Vec<Decision>,
    /// Set once an empty clause is added; the instance is trivially unsat.
    contradiction: bool,
    /// Decisions made during the last `solve` call.
    last_decisions: u64,
}

impl Solver {
    /// An empty solver.
    pub fn new() -> Solver {
        Solver::default()
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(None);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Number of variables created.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of clauses retained (tautologies are dropped at add time).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Decisions made by the most recent solve call.
    pub fn decisions_made(&self) -> u64 {
        self.last_decisions
    }

    /// The value of a literal under the current assignment.
    fn lit_value(&self, lit: Lit) -> Option<bool> {
        self.assigns[lit.var().0 as usize].map(|v| v == lit.is_positive())
    }

    /// Adds a clause. Returns `false` iff the clause is empty (the
    /// instance is now trivially unsatisfiable). Tautologies are dropped;
    /// duplicate literals are merged. Must be called before `solve`; the
    /// solver does not support incremental solving under assumptions.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert!(
            self.decisions.is_empty(),
            "clauses must be added before solving"
        );
        let mut lits: Vec<Lit> = lits.to_vec();
        lits.sort_unstable();
        lits.dedup();
        // A clause containing both l and ¬l is always true: adjacent
        // after the sort because codes differ only in the low bit.
        if lits.windows(2).any(|w| w[0] == !w[1]) {
            return true;
        }
        match lits.len() {
            0 => {
                self.contradiction = true;
                false
            }
            1 => {
                // Top-level unit: assign immediately (conflicts surface
                // as a contradiction right here or during propagation).
                match self.lit_value(lits[0]) {
                    Some(false) => {
                        self.contradiction = true;
                        false
                    }
                    Some(true) => true,
                    None => {
                        self.enqueue(lits[0]);
                        true
                    }
                }
            }
            _ => {
                let index = self.clauses.len();
                self.watches[lits[0].code()].push(index);
                self.watches[lits[1].code()].push(index);
                self.clauses.push(Clause { lits });
                true
            }
        }
    }

    /// Records `lit` as true and queues it for propagation.
    fn enqueue(&mut self, lit: Lit) {
        debug_assert!(self.lit_value(lit).is_none());
        self.assigns[lit.var().0 as usize] = Some(lit.is_positive());
        self.trail.push(lit);
    }

    /// Propagates all queued assignments. Returns `false` on conflict.
    fn propagate(&mut self) -> bool {
        while self.prop_head < self.trail.len() {
            let lit = self.trail[self.prop_head];
            self.prop_head += 1;
            // `lit` just became true, so ¬lit became false: every clause
            // watching ¬lit must find a new watch or resolve to a unit.
            let falsified = !lit;
            let mut watchers = std::mem::take(&mut self.watches[falsified.code()]);
            let mut kept = 0;
            let mut conflict = false;
            let mut index = 0;
            while index < watchers.len() {
                let clause_index = watchers[index];
                index += 1;
                let clause = &mut self.clauses[clause_index];
                // Normalize so position 1 holds the falsified watch.
                if clause.lits[0] == falsified {
                    clause.lits.swap(0, 1);
                }
                let other = clause.lits[0];
                if self.assigns[other.var().0 as usize] == Some(other.is_positive()) {
                    // Clause already satisfied by its other watch.
                    watchers[kept] = clause_index;
                    kept += 1;
                    continue;
                }
                // Look for an unfalsified literal to watch instead.
                let mut moved = false;
                for pos in 2..clause.lits.len() {
                    let candidate = clause.lits[pos];
                    let falsy =
                        self.assigns[candidate.var().0 as usize] == Some(!candidate.is_positive());
                    if !falsy {
                        clause.lits.swap(1, pos);
                        self.watches[candidate.code()].push(clause_index);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // No replacement: clause is unit (on `other`) or conflicting.
                watchers[kept] = clause_index;
                kept += 1;
                match self.lit_value(other) {
                    None => self.enqueue(other),
                    Some(true) => unreachable!("satisfied clauses are skipped above"),
                    Some(false) => {
                        // Keep the remaining watchers registered, then fail.
                        while index < watchers.len() {
                            watchers[kept] = watchers[index];
                            kept += 1;
                            index += 1;
                        }
                        conflict = true;
                    }
                }
            }
            watchers.truncate(kept);
            // Re-register watchers that stayed on the falsified literal
            // (new ones may have landed there while we propagated).
            let slot = &mut self.watches[falsified.code()];
            if slot.is_empty() {
                *slot = watchers;
            } else {
                slot.extend(watchers);
            }
            if conflict {
                return false;
            }
        }
        true
    }

    /// Undoes the trail down to `len`. Everything at or below a decision
    /// point was fully propagated before the decision was made, so the
    /// propagation head lands on the new trail end.
    fn backtrack_to(&mut self, len: usize) {
        while self.trail.len() > len {
            let lit = self.trail.pop().expect("trail shrinks to len");
            self.assigns[lit.var().0 as usize] = None;
        }
        self.prop_head = self.trail.len();
    }

    /// The lowest-index unassigned variable, if any.
    fn pick_branch(&self) -> Option<Var> {
        self.assigns
            .iter()
            .position(|a| a.is_none())
            .map(|i| Var(i as u32))
    }

    /// Solves without a budget. Returns `true` iff satisfiable.
    pub fn solve(&mut self) -> bool {
        match self.solve_within(u64::MAX) {
            SolveOutcome::Sat => true,
            SolveOutcome::Unsat => false,
            SolveOutcome::BudgetExceeded => unreachable!("unbounded budget"),
        }
    }

    /// Solves under a decision budget. Deterministic: branching picks the
    /// lowest-index unassigned variable and tries `false` first.
    pub fn solve_within(&mut self, max_decisions: u64) -> SolveOutcome {
        self.last_decisions = 0;
        if self.contradiction {
            return SolveOutcome::Unsat;
        }
        loop {
            if self.propagate() {
                let Some(var) = self.pick_branch() else {
                    return SolveOutcome::Sat;
                };
                if self.last_decisions >= max_decisions {
                    return SolveOutcome::BudgetExceeded;
                }
                self.last_decisions += 1;
                let lit = Lit::negative(var);
                self.decisions.push(Decision {
                    lit,
                    trail_len: self.trail.len(),
                    flipped: false,
                });
                self.enqueue(lit);
            } else {
                // Conflict: flip the deepest decision not yet flipped.
                loop {
                    let Some(mut decision) = self.decisions.pop() else {
                        return SolveOutcome::Unsat;
                    };
                    self.backtrack_to(decision.trail_len);
                    if !decision.flipped {
                        let flipped_lit = !decision.lit;
                        decision.flipped = true;
                        self.decisions.push(decision);
                        self.enqueue(flipped_lit);
                        break;
                    }
                }
            }
        }
    }

    /// The model value of `v` after a satisfiable solve. Variables the
    /// search never constrained default to `false`.
    pub fn value(&self, v: Var) -> bool {
        self.assigns[v.0 as usize].unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(solver_vars: &[Var], spec: &[i32]) -> Vec<Lit> {
        spec.iter()
            .map(|&l| {
                let v = solver_vars[(l.unsigned_abs() - 1) as usize];
                Lit::new(v, l > 0)
            })
            .collect()
    }

    fn mk(n: usize) -> (Solver, Vec<Var>) {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
        (s, vars)
    }

    #[test]
    fn empty_formula_is_sat() {
        let (mut s, _) = mk(0);
        assert!(s.solve());
    }

    #[test]
    fn unit_conflict_is_unsat() {
        let (mut s, v) = mk(1);
        assert!(s.add_clause(&lits(&v, &[1])));
        assert!(!s.add_clause(&lits(&v, &[-1])));
        assert!(!s.solve());
    }

    #[test]
    fn simple_sat_with_model() {
        let (mut s, v) = mk(3);
        s.add_clause(&lits(&v, &[1, 2]));
        s.add_clause(&lits(&v, &[-1, 3]));
        s.add_clause(&lits(&v, &[-2, -3]));
        assert!(s.solve());
        // Check the model satisfies each clause.
        let model = |l: i32| {
            let val = s.value(v[(l.unsigned_abs() - 1) as usize]);
            if l > 0 {
                val
            } else {
                !val
            }
        };
        assert!(model(1) || model(2));
        assert!(model(-1) || model(3));
        assert!(model(-2) || model(-3));
    }

    #[test]
    fn pigeonhole_two_pigeons_one_hole_is_unsat() {
        // p1h1, p2h1; both pigeons need the hole, hole takes one.
        let (mut s, v) = mk(2);
        s.add_clause(&lits(&v, &[1]));
        s.add_clause(&lits(&v, &[2]));
        s.add_clause(&lits(&v, &[-1, -2]));
        assert!(!s.solve());
    }

    #[test]
    fn pigeonhole_three_pigeons_two_holes_is_unsat() {
        // Var (p,h) for p in 0..3, h in 0..2 → index 2p+h+1.
        let (mut s, v) = mk(6);
        let idx = |p: i32, h: i32| 2 * p + h + 1;
        for p in 0..3 {
            s.add_clause(&lits(&v, &[idx(p, 0), idx(p, 1)]));
        }
        for h in 0..2 {
            for p1 in 0..3 {
                for p2 in (p1 + 1)..3 {
                    s.add_clause(&lits(&v, &[-idx(p1, h), -idx(p2, h)]));
                }
            }
        }
        assert!(!s.solve());
    }

    #[test]
    fn tautologies_are_dropped() {
        let (mut s, v) = mk(1);
        assert!(s.add_clause(&lits(&v, &[1, -1])));
        assert_eq!(s.num_clauses(), 0);
        assert!(s.solve());
    }

    #[test]
    fn empty_clause_is_contradiction() {
        let (mut s, _) = mk(2);
        assert!(!s.add_clause(&[]));
        assert!(!s.solve());
    }

    #[test]
    fn budget_exceeded_is_reported() {
        // A formula needing at least one decision, budget zero.
        let (mut s, v) = mk(2);
        s.add_clause(&lits(&v, &[1, 2]));
        assert_eq!(s.solve_within(0), SolveOutcome::BudgetExceeded);
    }

    #[test]
    fn chain_of_implications_propagates() {
        let n = 50;
        let (mut s, v) = mk(n);
        s.add_clause(&lits(&v, &[1]));
        for i in 1..n as i32 {
            s.add_clause(&lits(&v, &[-i, i + 1]));
        }
        assert!(s.solve());
        for var in &v {
            assert!(s.value(*var));
        }
        // The chain is pure propagation: no decisions needed.
        assert_eq!(s.decisions_made(), 0);
    }

    #[test]
    fn exactly_one_constraints_solve() {
        // 8 slots, exactly one true, forced to slot 5 by negating others.
        let (mut s, v) = mk(8);
        let all: Vec<i32> = (1..=8).collect();
        s.add_clause(&lits(&v, &all));
        for a in 1..=8 {
            for b in (a + 1)..=8 {
                s.add_clause(&lits(&v, &[-a, -b]));
            }
        }
        for x in [1, 2, 3, 4, 6, 7, 8] {
            s.add_clause(&lits(&v, &[-x]));
        }
        assert!(s.solve());
        assert!(s.value(v[4]));
    }
}
