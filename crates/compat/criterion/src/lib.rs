//! Minimal, dependency-free stand-in for `criterion`.
//!
//! Provides the API shape the workspace's benches use (`Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Throughput`, `Bencher::iter`,
//! `Bencher::iter_with_setup`, `criterion_group!`, `criterion_main!`)
//! with a simple wall-clock measurement loop: a short warm-up, then a
//! fixed batch of timed iterations, reporting mean ns/iter (and
//! elements/s when a throughput was declared). No statistics, no HTML
//! reports — but `cargo bench` runs and prints comparable numbers.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard black box to pessimize constant folding.
pub use std::hint::black_box;

const MEASURE_TARGET: Duration = Duration::from_millis(200);

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("## {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness sizes batches by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (measurement time hint).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declares how much work one iteration performs; subsequent
    /// benchmarks report a rate alongside the time.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { measured: None };
        // The Bencher's own loop calibrates (one warm call) then measures.
        f(&mut bencher);
        report(&self.name, &id, bencher.measured, self.throughput);
        self
    }

    /// Benchmarks a closure parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn report(
    group: &str,
    id: &BenchmarkId,
    measured: Option<(Duration, u64)>,
    tp: Option<Throughput>,
) {
    match measured {
        Some((elapsed, iters)) if iters > 0 => {
            let ns = elapsed.as_nanos() as f64 / iters as f64;
            let rate = match tp {
                Some(Throughput::Elements(n)) if ns > 0.0 => {
                    format!("  ({:.0} elem/s)", n as f64 * 1e9 / ns)
                }
                Some(Throughput::Bytes(n)) if ns > 0.0 => {
                    format!("  ({:.0} B/s)", n as f64 * 1e9 / ns)
                }
                _ => String::new(),
            };
            eprintln!("{group}/{id}: {ns:.1} ns/iter{rate}");
        }
        _ => eprintln!("{group}/{id}: no measurement"),
    }
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function-name + parameter id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm call (first-touch allocation, caches), then batches until
        // the measurement target is reached, so fast routines still get a
        // full measurement window.
        black_box(routine());
        let mut iters = 0u64;
        let mut batch = 1u64;
        let start = Instant::now();
        loop {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
            if start.elapsed() >= MEASURE_TARGET {
                break;
            }
            batch = batch.saturating_mul(2).min(1 << 20);
        }
        self.measured = Some((start.elapsed(), iters));
    }

    /// Times `routine` on fresh setup output, excluding setup cost.
    pub fn iter_with_setup<S, O, FS, F>(&mut self, mut setup: FS, mut routine: F)
    where
        FS: FnMut() -> S,
        F: FnMut(S) -> O,
    {
        // Warm call, then one setup+measure per iteration (setup excluded
        // from the timing) until the target window is filled. Setup can
        // dwarf the routine, so also bound total wall clock.
        let input = setup();
        black_box(routine(input));
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let wall = Instant::now();
        while total < MEASURE_TARGET && wall.elapsed() < 4 * MEASURE_TARGET {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.measured = Some((total, iters.max(1)));
    }
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each group (for `[[bench]] harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10).throughput(Throughput::Elements(4));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("add", 3), &3u64, |b, &n| {
            b.iter_with_setup(|| n, |n| n + 1)
        });
        group.finish();
    }
}
