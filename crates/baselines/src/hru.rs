//! The HRU access-matrix model (Harrison, Ruzzo, Ullman 1976) — footnote 5
//! of the paper contrasts its collusion model with Definition 7's
//! actor-sequenced queues.
//!
//! An HRU protection system is an access matrix (subjects × objects →
//! sets of generic rights) plus a fixed set of commands, each a guarded
//! sequence of primitive operations. Safety (“can right `r` leak into a
//! cell that did not have it?”) is undecidable in general; two classic
//! decision procedures are implemented:
//!
//! * [`System::leaks_bounded`] — BFS over reachable matrices with a state
//!   cap (sound for positive answers);
//! * [`System::leaks_mono_operational`] — the HRU theorem for
//!   *mono-operational* systems (every command body is one primitive
//!   operation): a minimal leaky run never destroys or deletes and needs
//!   at most one created subject, so with only `enter`s left the state
//!   grows monotonically and a fixpoint decides safety exactly.

use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};

/// A generic right (interned by index; names live in the [`System`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Right(pub u32);

/// An object of the matrix. Subjects are objects flagged as such.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Obj(pub u32);

/// The access matrix: live objects, which of them are subjects, and the
/// rights in each (subject, object) cell.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Matrix {
    /// Live objects in creation order.
    objects: BTreeSet<Obj>,
    /// The subset of `objects` that are subjects.
    subjects: BTreeSet<Obj>,
    /// Non-empty cells only.
    cells: BTreeMap<(Obj, Obj), BTreeSet<Right>>,
    /// Next fresh object id.
    next: u32,
}

impl Matrix {
    /// Empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a subject (which is also an object).
    pub fn create_subject(&mut self) -> Obj {
        let o = Obj(self.next);
        self.next += 1;
        self.objects.insert(o);
        self.subjects.insert(o);
        o
    }

    /// Creates a plain object.
    pub fn create_object(&mut self) -> Obj {
        let o = Obj(self.next);
        self.next += 1;
        self.objects.insert(o);
        o
    }

    /// Destroys a subject: its row and column disappear.
    pub fn destroy_subject(&mut self, s: Obj) {
        self.subjects.remove(&s);
        self.destroy_object(s);
    }

    /// Destroys an object: its column disappears.
    pub fn destroy_object(&mut self, o: Obj) {
        self.objects.remove(&o);
        self.subjects.remove(&o);
        self.cells.retain(|&(s, t), _| s != o && t != o);
    }

    /// Enters `right` into cell `(s, o)`; `true` if the cell changed.
    pub fn enter(&mut self, right: Right, s: Obj, o: Obj) -> bool {
        debug_assert!(self.subjects.contains(&s) && self.objects.contains(&o));
        self.cells.entry((s, o)).or_default().insert(right)
    }

    /// Deletes `right` from cell `(s, o)`; `true` if it was present.
    pub fn delete(&mut self, right: Right, s: Obj, o: Obj) -> bool {
        if let Some(cell) = self.cells.get_mut(&(s, o)) {
            let removed = cell.remove(&right);
            if cell.is_empty() {
                self.cells.remove(&(s, o));
            }
            removed
        } else {
            false
        }
    }

    /// Membership test for `right` in cell `(s, o)`.
    pub fn has(&self, right: Right, s: Obj, o: Obj) -> bool {
        self.cells
            .get(&(s, o))
            .is_some_and(|cell| cell.contains(&right))
    }

    /// Live subjects.
    pub fn subjects(&self) -> impl Iterator<Item = Obj> + '_ {
        self.subjects.iter().copied()
    }

    /// Live objects (subjects included).
    pub fn objects(&self) -> impl Iterator<Item = Obj> + '_ {
        self.objects.iter().copied()
    }

    /// Number of non-empty cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }
}

/// A primitive operation; parameters are indices into the command's
/// argument list.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PrimOp {
    /// `enter r into (Xs, Xo)`.
    Enter(Right, usize, usize),
    /// `delete r from (Xs, Xo)`.
    Delete(Right, usize, usize),
    /// `create subject Xs` (binds a fresh subject to the parameter).
    CreateSubject(usize),
    /// `create object Xo` (binds a fresh object to the parameter).
    CreateObject(usize),
    /// `destroy subject Xs`.
    DestroySubject(usize),
    /// `destroy object Xo`.
    DestroyObject(usize),
}

/// A guard `r ∈ (Xs, Xo)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Condition {
    /// The required right.
    pub right: Right,
    /// Subject parameter index.
    pub subject: usize,
    /// Object parameter index.
    pub object: usize,
}

/// One HRU command: `command name(X1,…,Xk) if conditions then ops end`.
#[derive(Clone, Debug)]
pub struct Command {
    /// Display name.
    pub name: String,
    /// Number of parameters.
    pub params: usize,
    /// Conjunctive guard.
    pub conditions: Vec<Condition>,
    /// Body.
    pub ops: Vec<PrimOp>,
}

impl Command {
    /// `true` iff the body is a single primitive operation.
    pub fn is_mono_operational(&self) -> bool {
        self.ops.len() == 1
    }
}

/// A protection system: rights vocabulary and command set.
#[derive(Clone, Debug, Default)]
pub struct System {
    right_names: Vec<String>,
    /// The command set.
    pub commands: Vec<Command>,
}

/// Result of a bounded safety search.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SafetyAnswer {
    /// A leak was found (witness length in command applications).
    Leaks {
        /// Number of commands in the witness run.
        steps: usize,
    },
    /// No leak exists (exhaustive within the explored space).
    Safe,
    /// State cap reached before exhaustion.
    Unknown,
}

impl System {
    /// Empty system.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a right name.
    pub fn right(&mut self, name: &str) -> Right {
        if let Some(i) = self.right_names.iter().position(|n| n == name) {
            return Right(i as u32);
        }
        self.right_names.push(name.to_string());
        Right((self.right_names.len() - 1) as u32)
    }

    /// Name of a right.
    pub fn right_name(&self, r: Right) -> &str {
        &self.right_names[r.0 as usize]
    }

    /// Adds a command.
    pub fn add_command(&mut self, command: Command) -> &mut Self {
        self.commands.push(command);
        self
    }

    /// Applies `command` with the given argument binding, if the guard
    /// holds. Returns the successor matrix.
    pub fn apply(&self, matrix: &Matrix, command: &Command, args: &[Obj]) -> Option<Matrix> {
        debug_assert_eq!(args.len(), command.params);
        for c in &command.conditions {
            let s = args[c.subject];
            let o = args[c.object];
            if !matrix.has(c.right, s, o) {
                return None;
            }
        }
        let mut next = matrix.clone();
        let mut bound: Vec<Obj> = args.to_vec();
        for op in &command.ops {
            match *op {
                PrimOp::Enter(r, s, o) => {
                    let (s, o) = (bound[s], bound[o]);
                    if !next.subjects.contains(&s) || !next.objects.contains(&o) {
                        return None;
                    }
                    next.enter(r, s, o);
                }
                PrimOp::Delete(r, s, o) => {
                    next.delete(r, bound[s], bound[o]);
                }
                PrimOp::CreateSubject(x) => {
                    bound[x] = next.create_subject();
                }
                PrimOp::CreateObject(x) => {
                    bound[x] = next.create_object();
                }
                PrimOp::DestroySubject(x) => next.destroy_subject(bound[x]),
                PrimOp::DestroyObject(x) => next.destroy_object(bound[x]),
            }
        }
        Some(next)
    }

    /// All successor matrices of `matrix` (every command, every argument
    /// binding over live objects).
    pub fn successors(&self, matrix: &Matrix) -> Vec<Matrix> {
        let objects: Vec<Obj> = matrix.objects().collect();
        let mut out = Vec::new();
        for command in &self.commands {
            let mut args = vec![Obj(0); command.params];
            self.enumerate_bindings(matrix, command, &objects, 0, &mut args, &mut out);
        }
        out
    }

    fn enumerate_bindings(
        &self,
        matrix: &Matrix,
        command: &Command,
        objects: &[Obj],
        i: usize,
        args: &mut Vec<Obj>,
        out: &mut Vec<Matrix>,
    ) {
        if i == command.params {
            if let Some(next) = self.apply(matrix, command, args) {
                out.push(next);
            }
            return;
        }
        // Parameters bound by a create op need no pre-binding; give them a
        // placeholder (any live object, or Obj(0) if none).
        let created = command
            .ops
            .iter()
            .any(|op| matches!(op, PrimOp::CreateSubject(x) | PrimOp::CreateObject(x) if *x == i));
        if created {
            args[i] = Obj(u32::MAX); // placeholder, rebound on apply
            self.enumerate_bindings(matrix, command, objects, i + 1, args, out);
            return;
        }
        for &o in objects {
            args[i] = o;
            self.enumerate_bindings(matrix, command, objects, i + 1, args, out);
        }
    }

    /// Bounded BFS safety: can `right` appear in a cell that lacked it in
    /// `initial` (new cells count as lacking)?
    pub fn leaks_bounded(&self, initial: &Matrix, right: Right, max_states: usize) -> SafetyAnswer {
        let baseline: HashSet<(Obj, Obj)> = initial
            .cells
            .iter()
            .filter(|(_, rights)| rights.contains(&right))
            .map(|(&cell, _)| cell)
            .collect();
        let leaked = |m: &Matrix| {
            m.cells
                .iter()
                .any(|(cell, rights)| rights.contains(&right) && !baseline.contains(cell))
        };
        if leaked(initial) {
            return SafetyAnswer::Leaks { steps: 0 };
        }
        let mut seen: HashSet<Matrix> = HashSet::new();
        seen.insert(initial.clone());
        let mut queue: VecDeque<(Matrix, usize)> = VecDeque::new();
        queue.push_back((initial.clone(), 0));
        let mut truncated = false;
        while let Some((m, depth)) = queue.pop_front() {
            for next in self.successors(&m) {
                if seen.contains(&next) {
                    continue;
                }
                if leaked(&next) {
                    return SafetyAnswer::Leaks { steps: depth + 1 };
                }
                if seen.len() >= max_states {
                    truncated = true;
                    continue;
                }
                seen.insert(next.clone());
                queue.push_back((next, depth + 1));
            }
        }
        if truncated {
            SafetyAnswer::Unknown
        } else {
            SafetyAnswer::Safe
        }
    }

    /// Exact safety decision for mono-operational systems (HRU 1976,
    /// Theorem 1): delete/destroy can be dropped from a minimal leaky run,
    /// and one created subject suffices, so a monotone `enter`-only
    /// fixpoint over the initial objects plus one fresh subject decides
    /// safety.
    ///
    /// # Panics
    /// Panics if some command is not mono-operational.
    pub fn leaks_mono_operational(&self, initial: &Matrix, right: Right) -> bool {
        assert!(
            self.commands.iter().all(Command::is_mono_operational),
            "mono-operational decision requires single-op commands"
        );
        let baseline: HashSet<(Obj, Obj)> = initial
            .cells
            .iter()
            .filter(|(_, rights)| rights.contains(&right))
            .map(|(&cell, _)| cell)
            .collect();
        // Work on the initial matrix extended with one fresh subject; only
        // `enter` commands matter (creates are subsumed by the fresh
        // subject, deletes/destroys only shrink). The object set is fixed
        // from here on, so argument tuples can be enumerated once and each
        // applied against the *current* matrix (enter-only ⇒ monotone).
        let mut m = initial.clone();
        m.create_subject();
        let objects: Vec<Obj> = m.objects().collect();
        loop {
            let mut grew = false;
            for command in &self.commands {
                if !matches!(command.ops[0], PrimOp::Enter(..)) {
                    continue;
                }
                if command.params > 0 && objects.is_empty() {
                    continue;
                }
                let first = objects.first().copied().unwrap_or(Obj(0));
                let mut args = vec![first; command.params];
                loop {
                    if let Some(next) = self.apply(&m, command, &args) {
                        if next != m {
                            m = next;
                            grew = true;
                        }
                    }
                    // Advance the argument tuple (odometer over objects).
                    let mut i = 0;
                    loop {
                        if i == command.params {
                            break;
                        }
                        let pos = objects.iter().position(|&o| o == args[i]).unwrap_or(0);
                        if pos + 1 < objects.len() {
                            args[i] = objects[pos + 1];
                            break;
                        }
                        args[i] = objects[0];
                        i += 1;
                    }
                    if i == command.params {
                        break;
                    }
                }
            }
            if !grew {
                break;
            }
        }
        m.cells
            .iter()
            .any(|(cell, rights)| rights.contains(&right) && !baseline.contains(cell))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The textbook owner/grant system:
    /// `grant_read(s1, s2, o): if own ∈ (s1,o) then enter read into (s2,o)`.
    fn owner_grant() -> (System, Matrix, Right, Right, Obj, Obj, Obj) {
        let mut sys = System::new();
        let own = sys.right("own");
        let read = sys.right("read");
        sys.add_command(Command {
            name: "grant_read".into(),
            params: 3,
            conditions: vec![Condition {
                right: own,
                subject: 0,
                object: 2,
            }],
            ops: vec![PrimOp::Enter(read, 1, 2)],
        });
        let mut m = Matrix::new();
        let alice = m.create_subject();
        let bob = m.create_subject();
        let file = m.create_object();
        m.enter(own, alice, file);
        (sys, m, own, read, alice, bob, file)
    }

    #[test]
    fn matrix_basics() {
        let mut m = Matrix::new();
        let s = m.create_subject();
        let o = m.create_object();
        let r = Right(0);
        assert!(m.enter(r, s, o));
        assert!(!m.enter(r, s, o), "idempotent");
        assert!(m.has(r, s, o));
        assert!(m.delete(r, s, o));
        assert!(!m.has(r, s, o));
        assert_eq!(m.cell_count(), 0, "empty cells are pruned");
    }

    #[test]
    fn destroy_clears_rows_and_columns() {
        let mut m = Matrix::new();
        let s = m.create_subject();
        let o = m.create_object();
        let r = Right(0);
        m.enter(r, s, o);
        m.enter(r, s, s);
        m.destroy_object(o);
        assert!(!m.has(r, s, o));
        assert!(m.has(r, s, s));
        m.destroy_subject(s);
        assert_eq!(m.cell_count(), 0);
        assert_eq!(m.objects().count(), 0);
    }

    #[test]
    fn guarded_command_application() {
        let (sys, m, _own, read, alice, bob, file) = owner_grant();
        let cmd = &sys.commands[0];
        let next = sys
            .apply(&m, cmd, &[alice, bob, file])
            .expect("guard holds");
        assert!(next.has(read, bob, file));
        // Bob does not own the file; the guard fails.
        assert!(sys.apply(&m, cmd, &[bob, alice, file]).is_none());
    }

    #[test]
    fn bounded_safety_finds_the_leak() {
        let (sys, m, _own, read, _alice, _bob, _file) = owner_grant();
        let ans = sys.leaks_bounded(&m, read, 10_000);
        assert_eq!(ans, SafetyAnswer::Leaks { steps: 1 });
    }

    #[test]
    fn bounded_safety_proves_safety_without_rules() {
        let (_, m, _own, read, ..) = owner_grant();
        let empty = System::new();
        assert_eq!(empty.leaks_bounded(&m, read, 100), SafetyAnswer::Safe);
    }

    #[test]
    fn mono_operational_decision_matches_bounded() {
        let (sys, m, own, read, ..) = owner_grant();
        assert!(sys.leaks_mono_operational(&m, read));
        // `own` never spreads: the only command enters `read`.
        assert!(!sys.leaks_mono_operational(&m, own));
        assert_eq!(sys.leaks_bounded(&m, own, 10_000), SafetyAnswer::Safe);
    }

    #[test]
    fn create_bound_parameters() {
        // A command that creates a subject and gives it a right.
        let mut sys = System::new();
        let hello = sys.right("hello");
        sys.add_command(Command {
            name: "spawn".into(),
            params: 1,
            conditions: vec![],
            ops: vec![PrimOp::CreateSubject(0)],
        });
        sys.add_command(Command {
            name: "self_bless".into(),
            params: 1,
            conditions: vec![],
            ops: vec![PrimOp::Enter(hello, 0, 0)],
        });
        let mut m = Matrix::new();
        m.create_subject();
        let ans = sys.leaks_bounded(&m, hello, 1_000);
        assert!(matches!(ans, SafetyAnswer::Leaks { .. }));
    }

    #[test]
    fn two_step_leak_via_delegation() {
        // own(s,o) lets s grant own to another subject, who can then grant
        // read — the leak takes two steps for bob via carol.
        let mut sys = System::new();
        let own = sys.right("own");
        let read = sys.right("read");
        sys.add_command(Command {
            name: "grant_own".into(),
            params: 3,
            conditions: vec![Condition {
                right: own,
                subject: 0,
                object: 2,
            }],
            ops: vec![PrimOp::Enter(own, 1, 2)],
        });
        sys.add_command(Command {
            name: "grant_read".into(),
            params: 3,
            conditions: vec![Condition {
                right: own,
                subject: 0,
                object: 2,
            }],
            ops: vec![PrimOp::Enter(read, 1, 2)],
        });
        let mut m = Matrix::new();
        let alice = m.create_subject();
        let _bob = m.create_subject();
        let file = m.create_object();
        m.enter(own, alice, file);
        assert!(sys.leaks_mono_operational(&m, read));
        assert!(matches!(
            sys.leaks_bounded(&m, read, 100_000),
            SafetyAnswer::Leaks { .. }
        ));
    }

    #[test]
    fn unknown_on_tiny_cap() {
        let (sys, mut m, own, _read, alice, ..) = owner_grant();
        // Make many objects so the space exceeds the cap quickly, and ask
        // about a right that never leaks.
        for _ in 0..3 {
            let o = m.create_object();
            m.enter(own, alice, o);
        }
        let never = Right(99);
        assert_eq!(sys.leaks_bounded(&m, never, 2), SafetyAnswer::Unknown);
    }

    #[test]
    #[should_panic(expected = "mono-operational")]
    fn mono_decision_rejects_multi_op_commands() {
        let mut sys = System::new();
        let r = sys.right("r");
        sys.add_command(Command {
            name: "two_ops".into(),
            params: 1,
            conditions: vec![],
            ops: vec![PrimOp::Enter(r, 0, 0), PrimOp::Enter(r, 0, 0)],
        });
        let m = Matrix::new();
        sys.leaks_mono_operational(&m, r);
    }

    #[test]
    fn right_interning() {
        let mut sys = System::new();
        let a = sys.right("own");
        let b = sys.right("own");
        assert_eq!(a, b);
        assert_eq!(sys.right_name(a), "own");
        assert_ne!(sys.right("read"), a);
    }
}
