//! # adminref-baselines
//!
//! From-scratch implementations of the administrative-RBAC baselines the
//! paper discusses (§1, §5), all driven by the `adminref-core` policy
//! substrate so that benchmark comparisons run on identical hierarchies:
//!
//! * [`arbac`] — ARBAC97 (URA97/PRA97 rules with prerequisite conditions
//!   and role ranges), Sandhu–Bhamidipati–Munawer 1999;
//! * [`arbac_reach`] — user-role reachability analysis over ARBAC rules
//!   (exact monotone fixpoint + bounded general search);
//! * [`scope`] — administrative scope, Crampton–Loizou 2003;
//! * [`role_graph`] — role-graph administrative domains, Wang–Osborn 2003;
//! * [`hru`] — the HRU access-matrix model with its mono-operational
//!   safety decision and a bounded general checker, Harrison–Ruzzo–Ullman
//!   1976.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arbac;
pub mod arbac_reach;
pub mod hru;
pub mod role_graph;
pub mod scope;

pub use arbac::{Arbac97, CanAssign, CanAssignPerm, CanRevoke, CanRevokePerm, Prereq, RoleRange};
pub use arbac_reach::{
    reachable_roles_monotone, role_reachable_bounded, role_reachable_capped, BoundedAnswer,
};
pub use hru::{Matrix as HruMatrix, SafetyAnswer, System as HruSystem};
pub use role_graph::{AdminDomains, DomainError, DomainId};
pub use scope::AdminScope;
