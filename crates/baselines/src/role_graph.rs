//! Role-graph administrative domains (Wang & Osborn, DBSec 2003) —
//! reference \[12\] of the paper.
//!
//! Wang and Osborn partition the role graph into *administrative domains*,
//! each with a single administrator role; an administrator may modify
//! exactly the edges whose endpoints both lie in its domain. Compared to
//! the paper's model this is coarse (no per-edge privileges, no nesting)
//! but checks are a constant-time partition lookup — the cheap end of the
//! baseline spectrum in the benches.

use adminref_core::ids::RoleId;
use adminref_core::universe::Edge;

/// Identifier of a domain within an [`AdminDomains`] partition.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DomainId(pub u32);

/// Errors from building a domain partition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DomainError {
    /// A role was placed in two domains.
    Overlap(RoleId),
    /// A domain id out of range was referenced.
    UnknownDomain(DomainId),
    /// A domain's administrator is not a member of the domain.
    AdminOutsideDomain {
        /// The domain.
        domain: DomainId,
        /// Its declared administrator.
        admin: RoleId,
    },
}

impl std::fmt::Display for DomainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DomainError::Overlap(r) => write!(f, "role {r:?} assigned to two domains"),
            DomainError::UnknownDomain(d) => write!(f, "unknown domain {d:?}"),
            DomainError::AdminOutsideDomain { domain, admin } => {
                write!(f, "administrator {admin:?} outside domain {domain:?}")
            }
        }
    }
}

impl std::error::Error for DomainError {}

/// A partition of (a subset of) the roles into administrative domains.
#[derive(Clone, Debug)]
pub struct AdminDomains {
    /// Domain of each role (dense by role id), `None` = unadministered.
    domain_of: Vec<Option<DomainId>>,
    /// Administrator role per domain.
    admin_of: Vec<RoleId>,
}

impl AdminDomains {
    /// Builds a partition from `(admin, members)` groups over `role_count`
    /// roles.
    pub fn build(role_count: usize, groups: &[(RoleId, Vec<RoleId>)]) -> Result<Self, DomainError> {
        let mut domain_of: Vec<Option<DomainId>> = vec![None; role_count];
        let mut admin_of = Vec::with_capacity(groups.len());
        for (i, (admin, members)) in groups.iter().enumerate() {
            let d = DomainId(i as u32);
            if !members.contains(admin) {
                return Err(DomainError::AdminOutsideDomain {
                    domain: d,
                    admin: *admin,
                });
            }
            for &m in members {
                let slot = domain_of
                    .get_mut(m.index())
                    .ok_or(DomainError::UnknownDomain(d))?;
                if slot.is_some() {
                    return Err(DomainError::Overlap(m));
                }
                *slot = Some(d);
            }
            admin_of.push(*admin);
        }
        Ok(AdminDomains {
            domain_of,
            admin_of,
        })
    }

    /// The domain a role belongs to, if any.
    pub fn domain_of(&self, r: RoleId) -> Option<DomainId> {
        self.domain_of.get(r.index()).copied().flatten()
    }

    /// The administrator of a domain.
    pub fn admin_of(&self, d: DomainId) -> RoleId {
        self.admin_of[d.0 as usize]
    }

    /// Number of domains.
    pub fn domain_count(&self) -> usize {
        self.admin_of.len()
    }

    /// `true` iff `admin` may modify `edge`: every role endpoint of the
    /// edge lies in a domain administered by `admin`.
    ///
    /// User endpoints are unconstrained (Wang–Osborn administrate the
    /// *role graph*; user assignment inherits the target role's domain),
    /// and privilege endpoints inherit their source role's domain.
    pub fn can_modify(&self, admin: RoleId, edge: Edge) -> bool {
        let admins =
            |r: RoleId| -> bool { self.domain_of(r).is_some_and(|d| self.admin_of(d) == admin) };
        match edge {
            Edge::UserRole(_, r) => admins(r),
            Edge::RoleRole(a, b) => admins(a) && admins(b),
            Edge::RolePriv(r, _) => admins(r),
        }
    }

    /// Roles of one domain, in id order.
    pub fn members(&self, d: DomainId) -> Vec<RoleId> {
        self.domain_of
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                if *slot == Some(d) {
                    Some(RoleId(i as u32))
                } else {
                    None
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adminref_core::ids::UserId;
    use adminref_core::policy::PolicyBuilder;
    use adminref_core::universe::Universe;

    /// Six roles in two domains: {med_admin, nurse, doctor} and
    /// {it_admin, dbusr, prntusr}.
    fn setup() -> (Universe, AdminDomains) {
        let (uni, _) = PolicyBuilder::new()
            .declare_role("med_admin")
            .declare_role("nurse")
            .declare_role("doctor")
            .declare_role("it_admin")
            .declare_role("dbusr")
            .declare_role("prntusr")
            .finish();
        let r = |n: &str| uni.find_role(n).unwrap();
        let domains = AdminDomains::build(
            uni.role_count(),
            &[
                (
                    r("med_admin"),
                    vec![r("med_admin"), r("nurse"), r("doctor")],
                ),
                (r("it_admin"), vec![r("it_admin"), r("dbusr"), r("prntusr")]),
            ],
        )
        .unwrap();
        (uni, domains)
    }

    #[test]
    fn partition_lookup() {
        let (uni, domains) = setup();
        let r = |n: &str| uni.find_role(n).unwrap();
        assert_eq!(domains.domain_count(), 2);
        assert_eq!(domains.domain_of(r("nurse")), Some(DomainId(0)));
        assert_eq!(domains.domain_of(r("dbusr")), Some(DomainId(1)));
        assert_eq!(domains.admin_of(DomainId(0)), r("med_admin"));
        assert_eq!(domains.members(DomainId(1)).len(), 3);
    }

    #[test]
    fn intra_domain_edges_allowed() {
        let (uni, domains) = setup();
        let r = |n: &str| uni.find_role(n).unwrap();
        let med = r("med_admin");
        assert!(domains.can_modify(med, Edge::RoleRole(r("doctor"), r("nurse"))));
        assert!(domains.can_modify(med, Edge::UserRole(UserId(0), r("nurse"))));
        assert!(!domains.can_modify(med, Edge::RoleRole(r("doctor"), r("dbusr"))));
        assert!(!domains.can_modify(med, Edge::UserRole(UserId(0), r("dbusr"))));
    }

    #[test]
    fn cross_domain_edges_denied_for_everyone() {
        let (uni, domains) = setup();
        let r = |n: &str| uni.find_role(n).unwrap();
        let edge = Edge::RoleRole(r("nurse"), r("prntusr"));
        assert!(!domains.can_modify(r("med_admin"), edge));
        assert!(!domains.can_modify(r("it_admin"), edge));
    }

    #[test]
    fn overlapping_domains_rejected() {
        let (uni, _) = setup();
        let r = |n: &str| uni.find_role(n).unwrap();
        let err = AdminDomains::build(
            uni.role_count(),
            &[
                (r("med_admin"), vec![r("med_admin"), r("nurse")]),
                (r("it_admin"), vec![r("it_admin"), r("nurse")]),
            ],
        )
        .unwrap_err();
        assert_eq!(err, DomainError::Overlap(r("nurse")));
    }

    #[test]
    fn admin_must_be_member() {
        let (uni, _) = setup();
        let r = |n: &str| uni.find_role(n).unwrap();
        let err = AdminDomains::build(uni.role_count(), &[(r("med_admin"), vec![r("nurse")])])
            .unwrap_err();
        assert!(matches!(err, DomainError::AdminOutsideDomain { .. }));
    }

    #[test]
    fn unadministered_roles_cannot_be_modified() {
        let (uni, _) = setup();
        let r = |n: &str| uni.find_role(n).unwrap();
        let domains = AdminDomains::build(
            uni.role_count(),
            &[(r("med_admin"), vec![r("med_admin"), r("nurse")])],
        )
        .unwrap();
        assert_eq!(domains.domain_of(r("dbusr")), None);
        assert!(!domains.can_modify(r("med_admin"), Edge::UserRole(UserId(0), r("dbusr"))));
    }
}
