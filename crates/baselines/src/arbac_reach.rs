//! User-role reachability analysis for ARBAC97 policies.
//!
//! The classic safety question for ARBAC (Li & Tripunitara; Sasturkar et
//! al.): *can a given user ever become a member of a goal role* through
//! some sequence of `can_assign` / `can_revoke` steps? The general problem
//! is PSPACE-complete; two standard fragments are implemented here:
//!
//! * [`reachable_roles_monotone`] — positive preconditions and no
//!   revocation: role sets only grow, so a least fixpoint computes exact
//!   reachability in polynomial time;
//! * [`role_reachable_bounded`] — the general case, explored on the
//!   shared compact-state engine ([`adminref_core::search`]): membership
//!   states are role bitsets interned in the state arena, frontier
//!   expansion optionally fans out over worker threads, and the
//!   paper-vs-ARBAC comparison benches therefore measure the same
//!   machinery on both sides.
//!
//! Both make ARBAC's *separate administration* assumption: administrative
//! memberships are fixed, so some administrator is always available to
//! apply a rule whose target-user precondition is met.

use std::collections::BTreeSet;

use adminref_core::closure::RoleClosure;
use adminref_core::ids::RoleId;
use adminref_core::search::arena::{clear_bit, for_each_set_bit, set_bit, test_bit};
use adminref_core::search::{search, CandidateSet, SearchLimits, SearchOutcome, StateSpace};

use crate::arbac::{CanAssign, CanRevoke, Prereq};

/// Outcome of the bounded exploration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BoundedAnswer {
    /// A command sequence reaching the goal exists (witness length given).
    Reachable {
        /// Number of assignment/revocation steps in the witness.
        steps: usize,
    },
    /// Exhaustively refuted within the explored state space.
    Unreachable,
    /// A bound was hit before the space was exhausted.
    Unknown,
}

/// Implicit membership closure of an explicit role set.
fn implicit(closure: &RoleClosure, explicit: &BTreeSet<RoleId>) -> BTreeSet<RoleId> {
    let mut out = BTreeSet::new();
    for &r in explicit {
        for j in closure.row(r.0).iter() {
            out.insert(RoleId(j as u32));
        }
    }
    out
}

fn prereq_holds(prereq: &Prereq, closure: &RoleClosure, explicit: &[RoleId]) -> bool {
    let member = |r: RoleId| explicit.iter().any(|&d| closure.reaches(d.0, r.0));
    prereq.eval(&member)
}

/// `true` iff the prerequisite only tests positive membership (no `Not`).
pub fn is_positive(prereq: &Prereq) -> bool {
    match prereq {
        Prereq::True | Prereq::Role(_) => true,
        Prereq::Not(_) => false,
        Prereq::And(a, b) | Prereq::Or(a, b) => is_positive(a) && is_positive(b),
    }
}

/// Exact reachability for the monotone fragment (positive preconditions,
/// no revocation): the set of roles the user can eventually hold
/// (explicitly), as a least fixpoint.
///
/// # Panics
/// Panics if any rule has a non-positive prerequisite — callers choose the
/// fragment deliberately.
pub fn reachable_roles_monotone(
    closure: &RoleClosure,
    rules: &[CanAssign],
    initial: &BTreeSet<RoleId>,
) -> BTreeSet<RoleId> {
    assert!(
        rules.iter().all(|r| is_positive(&r.prereq)),
        "monotone analysis requires positive preconditions"
    );
    let mut explicit = initial.clone();
    loop {
        let mut grew = false;
        // One snapshot per pass: a rule enabled by a role added later in
        // the same pass simply fires on the next pass (`grew` keeps the
        // loop going), so the fixpoint is unchanged.
        let snapshot: Vec<RoleId> = explicit.iter().copied().collect();
        for rule in rules {
            if !prereq_holds(&rule.prereq, closure, &snapshot) {
                continue;
            }
            // The rule lets us add any role in its range.
            for r in 0..closure.len() as u32 {
                let role = RoleId(r);
                if rule.range.contains(closure, role) && explicit.insert(role) {
                    grew = true;
                }
            }
        }
        if !grew {
            return explicit;
        }
    }
}

/// One assignment or revocation step in an ARBAC plan.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct ArbacStep {
    role: RoleId,
    assign: bool,
}

/// The ARBAC membership state space: a state is the bitset of the
/// user's *explicit* roles.
struct ArbacSpace<'a> {
    closure: &'a RoleClosure,
    can_assign: &'a [CanAssign],
    can_revoke: &'a [CanRevoke],
    initial: &'a BTreeSet<RoleId>,
    goal: RoleId,
}

impl ArbacSpace<'_> {
    fn decode(&self, words: &[u64]) -> Vec<RoleId> {
        let mut out = Vec::new();
        for_each_set_bit(words, |b| out.push(RoleId(b as u32)));
        out
    }
}

impl StateSpace for ArbacSpace<'_> {
    type Label = ArbacStep;

    fn state_bits(&self) -> usize {
        self.closure.len()
    }

    fn write_root(&self, out: &mut [u64]) {
        for &r in self.initial {
            set_bit(out, r.index());
        }
    }

    fn expand(&self, state: &[u64], out: &mut CandidateSet<ArbacStep>) {
        let explicit = self.decode(state);
        let mut scratch = state.to_vec();
        for rule in self.can_assign {
            if !prereq_holds(&rule.prereq, self.closure, &explicit) {
                continue;
            }
            for r in 0..self.closure.len() {
                let role = RoleId(r as u32);
                if !rule.range.contains(self.closure, role) || test_bit(state, r) {
                    continue;
                }
                set_bit(&mut scratch, r);
                // Incremental goal: the parent fails the goal (engine
                // invariant), so only the newly assigned role can make
                // the implicit closure cover it.
                let goal = self.closure.reaches(role.0, self.goal.0);
                out.push(ArbacStep { role, assign: true }, goal, &scratch);
                clear_bit(&mut scratch, r);
            }
        }
        for rule in self.can_revoke {
            for &role in &explicit {
                if !rule.range.contains(self.closure, role) {
                    continue;
                }
                let r = role.index();
                clear_bit(&mut scratch, r);
                // Revocation shrinks the implicit closure: it can never
                // newly satisfy the goal.
                out.push(
                    ArbacStep {
                        role,
                        assign: false,
                    },
                    false,
                    &scratch,
                );
                set_bit(&mut scratch, r);
            }
        }
    }
}

/// Bounded search for the general case: can the user's membership evolve
/// so that `goal` is held (implicitly)?
///
/// Runs on the same compact-state engine as the paper-side safety
/// analysis ([`adminref_core::safety`]): membership states are interned
/// bitsets, and `limits.jobs` fans frontier expansion out over worker
/// threads without changing the answer.
pub fn role_reachable_bounded(
    closure: &RoleClosure,
    can_assign: &[CanAssign],
    can_revoke: &[CanRevoke],
    initial: &BTreeSet<RoleId>,
    goal: RoleId,
    limits: SearchLimits,
) -> BoundedAnswer {
    if implicit(closure, initial).contains(&goal) {
        return BoundedAnswer::Reachable { steps: 0 };
    }
    let space = ArbacSpace {
        closure,
        can_assign,
        can_revoke,
        initial,
        goal,
    };
    match search(&space, limits).0 {
        SearchOutcome::Found { witness } => BoundedAnswer::Reachable {
            steps: witness.len(),
        },
        SearchOutcome::Exhausted => BoundedAnswer::Unreachable,
        SearchOutcome::Truncated => BoundedAnswer::Unknown,
    }
}

/// [`role_reachable_bounded`] with the historical signature: a state cap
/// only, sequential, unbounded depth.
pub fn role_reachable_capped(
    closure: &RoleClosure,
    can_assign: &[CanAssign],
    can_revoke: &[CanRevoke],
    initial: &BTreeSet<RoleId>,
    goal: RoleId,
    max_states: usize,
) -> BoundedAnswer {
    role_reachable_bounded(
        closure,
        can_assign,
        can_revoke,
        initial,
        goal,
        SearchLimits {
            max_states,
            ..SearchLimits::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbac::RoleRange;
    use adminref_core::policy::PolicyBuilder;
    use adminref_core::reach::ReachIndex;
    use adminref_core::universe::Universe;

    fn states(max_states: usize) -> SearchLimits {
        SearchLimits {
            max_states,
            ..SearchLimits::default()
        }
    }

    /// Chain hierarchy pl → e1 → eng → ed plus an unrelated role q.
    fn setup() -> (Universe, RoleClosure) {
        let (uni, policy) = PolicyBuilder::new()
            .inherit("pl", "e1")
            .inherit("e1", "eng")
            .inherit("eng", "ed")
            .declare_role("q")
            .finish();
        let closure = ReachIndex::build(&uni, &policy).role_closure().clone();
        (uni, closure)
    }

    fn role(uni: &Universe, name: &str) -> RoleId {
        uni.find_role(name).unwrap()
    }

    #[test]
    fn monotone_fixpoint_climbs_the_ladder() {
        let (uni, closure) = setup();
        let ed = role(&uni, "ed");
        let eng = role(&uni, "eng");
        let e1 = role(&uni, "e1");
        // ed members may become eng; eng members may become e1.
        let rules = vec![
            CanAssign {
                admin_role: role(&uni, "pl"),
                prereq: Prereq::Role(ed),
                range: RoleRange::closed(eng, eng),
            },
            CanAssign {
                admin_role: role(&uni, "pl"),
                prereq: Prereq::Role(eng),
                range: RoleRange::closed(e1, e1),
            },
        ];
        let initial: BTreeSet<RoleId> = [ed].into_iter().collect();
        let reach = reachable_roles_monotone(&closure, &rules, &initial);
        assert!(reach.contains(&eng));
        assert!(reach.contains(&e1));
        assert!(!reach.contains(&role(&uni, "pl")));
        assert!(!reach.contains(&role(&uni, "q")));
    }

    #[test]
    fn monotone_requires_initial_seed() {
        let (uni, closure) = setup();
        let eng = role(&uni, "eng");
        let rules = vec![CanAssign {
            admin_role: role(&uni, "pl"),
            prereq: Prereq::Role(role(&uni, "ed")),
            range: RoleRange::closed(eng, eng),
        }];
        let reach = reachable_roles_monotone(&closure, &rules, &BTreeSet::new());
        assert!(reach.is_empty(), "no seed, no growth");
    }

    #[test]
    #[should_panic(expected = "positive preconditions")]
    fn monotone_rejects_negative_preconditions() {
        let (uni, closure) = setup();
        let eng = role(&uni, "eng");
        let rules = vec![CanAssign {
            admin_role: role(&uni, "pl"),
            prereq: Prereq::Not(Box::new(Prereq::Role(eng))),
            range: RoleRange::closed(eng, eng),
        }];
        reachable_roles_monotone(&closure, &rules, &BTreeSet::new());
    }

    #[test]
    fn bounded_finds_negative_precondition_plans() {
        // Reaching the goal requires first *revoking* a blocking role:
        // can_assign(…, ¬q, [e1,e1]) with the user initially in q.
        let (uni, closure) = setup();
        let e1 = role(&uni, "e1");
        let q = role(&uni, "q");
        let ed = role(&uni, "ed");
        let can_assign = vec![CanAssign {
            admin_role: role(&uni, "pl"),
            prereq: Prereq::and_not(ed, q),
            range: RoleRange::closed(e1, e1),
        }];
        let can_revoke = vec![CanRevoke {
            admin_role: role(&uni, "pl"),
            range: RoleRange::closed(q, q),
        }];
        let initial: BTreeSet<RoleId> = [ed, q].into_iter().collect();
        let ans = role_reachable_bounded(
            &closure,
            &can_assign,
            &can_revoke,
            &initial,
            e1,
            states(10_000),
        );
        assert_eq!(ans, BoundedAnswer::Reachable { steps: 2 });
        // Without the revoke rule the goal is unreachable.
        let ans2 = role_reachable_bounded(&closure, &can_assign, &[], &initial, e1, states(10_000));
        assert_eq!(ans2, BoundedAnswer::Unreachable);
    }

    #[test]
    fn bounded_zero_steps_when_goal_already_held() {
        let (uni, closure) = setup();
        let ed = role(&uni, "ed");
        let eng = role(&uni, "eng");
        let initial: BTreeSet<RoleId> = [eng].into_iter().collect();
        // eng implies ed via the hierarchy.
        let ans = role_reachable_bounded(&closure, &[], &[], &initial, ed, states(100));
        assert_eq!(ans, BoundedAnswer::Reachable { steps: 0 });
    }

    #[test]
    fn bounded_reports_unknown_on_tiny_caps() {
        let (uni, closure) = setup();
        let e1 = role(&uni, "e1");
        let q = role(&uni, "q");
        let ed = role(&uni, "ed");
        let can_assign = vec![CanAssign {
            admin_role: role(&uni, "pl"),
            prereq: Prereq::and_not(ed, q),
            range: RoleRange::closed(e1, e1),
        }];
        let can_revoke = vec![CanRevoke {
            admin_role: role(&uni, "pl"),
            range: RoleRange::closed(q, q),
        }];
        let initial: BTreeSet<RoleId> = [ed, q].into_iter().collect();
        let ans =
            role_reachable_bounded(&closure, &can_assign, &can_revoke, &initial, e1, states(1));
        assert_eq!(ans, BoundedAnswer::Unknown);
        // The historical-signature wrapper behaves identically.
        let ans2 = role_reachable_capped(&closure, &can_assign, &can_revoke, &initial, e1, 1);
        assert_eq!(ans2, BoundedAnswer::Unknown);
    }

    #[test]
    fn parallel_jobs_agree_with_sequential() {
        let (uni, closure) = setup();
        let e1 = role(&uni, "e1");
        let q = role(&uni, "q");
        let ed = role(&uni, "ed");
        let can_assign = vec![CanAssign {
            admin_role: role(&uni, "pl"),
            prereq: Prereq::and_not(ed, q),
            range: RoleRange::closed(e1, e1),
        }];
        let can_revoke = vec![CanRevoke {
            admin_role: role(&uni, "pl"),
            range: RoleRange::closed(q, q),
        }];
        let initial: BTreeSet<RoleId> = [ed, q].into_iter().collect();
        let seq = role_reachable_bounded(
            &closure,
            &can_assign,
            &can_revoke,
            &initial,
            e1,
            states(10_000),
        );
        for jobs in [2usize, 4] {
            let par = role_reachable_bounded(
                &closure,
                &can_assign,
                &can_revoke,
                &initial,
                e1,
                SearchLimits {
                    max_states: 10_000,
                    jobs,
                    ..SearchLimits::default()
                },
            );
            assert_eq!(seq, par, "jobs={jobs}");
        }
    }

    #[test]
    fn depth_bound_distinguishes_cutoff_from_exhaustion() {
        // The two-step plan (revoke q, then assign e1) needs depth 2:
        // depth 1 cuts it off (Unknown), depth ≥ 2 finds it.
        let (uni, closure) = setup();
        let e1 = role(&uni, "e1");
        let q = role(&uni, "q");
        let ed = role(&uni, "ed");
        let can_assign = vec![CanAssign {
            admin_role: role(&uni, "pl"),
            prereq: Prereq::and_not(ed, q),
            range: RoleRange::closed(e1, e1),
        }];
        let can_revoke = vec![CanRevoke {
            admin_role: role(&uni, "pl"),
            range: RoleRange::closed(q, q),
        }];
        let initial: BTreeSet<RoleId> = [ed, q].into_iter().collect();
        let shallow = role_reachable_bounded(
            &closure,
            &can_assign,
            &can_revoke,
            &initial,
            e1,
            SearchLimits {
                max_depth: 1,
                ..SearchLimits::default()
            },
        );
        assert_eq!(shallow, BoundedAnswer::Unknown);
        let deep = role_reachable_bounded(
            &closure,
            &can_assign,
            &can_revoke,
            &initial,
            e1,
            SearchLimits {
                max_depth: 2,
                ..SearchLimits::default()
            },
        );
        assert_eq!(deep, BoundedAnswer::Reachable { steps: 2 });
    }

    #[test]
    fn monotone_agrees_with_bounded_on_positive_instances() {
        let (uni, closure) = setup();
        let ed = role(&uni, "ed");
        let eng = role(&uni, "eng");
        let e1 = role(&uni, "e1");
        let rules = vec![
            CanAssign {
                admin_role: role(&uni, "pl"),
                prereq: Prereq::Role(ed),
                range: RoleRange::closed(eng, eng),
            },
            CanAssign {
                admin_role: role(&uni, "pl"),
                prereq: Prereq::Role(eng),
                range: RoleRange::closed(e1, e1),
            },
        ];
        let initial: BTreeSet<RoleId> = [ed].into_iter().collect();
        let fixpoint = reachable_roles_monotone(&closure, &rules, &initial);
        for r in 0..closure.len() as u32 {
            let goal = RoleId(r);
            let bounded =
                role_reachable_bounded(&closure, &rules, &[], &initial, goal, states(100_000));
            let in_fixpoint = implicit(&closure, &fixpoint).contains(&goal);
            match bounded {
                BoundedAnswer::Reachable { .. } => assert!(in_fixpoint, "role {r}"),
                BoundedAnswer::Unreachable => assert!(!in_fixpoint, "role {r}"),
                BoundedAnswer::Unknown => panic!("cap too small for the test"),
            }
        }
    }
}
