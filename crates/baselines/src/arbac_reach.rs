//! User-role reachability analysis for ARBAC97 policies.
//!
//! The classic safety question for ARBAC (Li & Tripunitara; Sasturkar et
//! al.): *can a given user ever become a member of a goal role* through
//! some sequence of `can_assign` / `can_revoke` steps? The general problem
//! is PSPACE-complete; two standard fragments are implemented here:
//!
//! * [`reachable_roles_monotone`] — positive preconditions and no
//!   revocation: role sets only grow, so a least fixpoint computes exact
//!   reachability in polynomial time;
//! * [`role_reachable_bounded`] — the general case, explored by BFS over
//!   explicit-membership states with a state cap (sound for “reachable”
//!   answers, bounded for “not found within the cap”).
//!
//! Both make ARBAC's *separate administration* assumption: administrative
//! memberships are fixed, so some administrator is always available to
//! apply a rule whose target-user precondition is met.

use std::collections::{BTreeSet, HashSet, VecDeque};

use adminref_core::closure::RoleClosure;
use adminref_core::ids::RoleId;

use crate::arbac::{CanAssign, CanRevoke, Prereq};

/// Outcome of the bounded exploration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BoundedAnswer {
    /// A command sequence reaching the goal exists (witness length given).
    Reachable {
        /// Number of assignment/revocation steps in the witness.
        steps: usize,
    },
    /// Exhaustively refuted within the explored state space.
    Unreachable,
    /// The state cap was hit before the space was exhausted.
    Unknown,
}

/// Implicit membership closure of an explicit role set.
fn implicit(closure: &RoleClosure, explicit: &BTreeSet<RoleId>) -> BTreeSet<RoleId> {
    let mut out = BTreeSet::new();
    for &r in explicit {
        for j in closure.row(r.0).iter() {
            out.insert(RoleId(j as u32));
        }
    }
    out
}

fn prereq_holds(prereq: &Prereq, closure: &RoleClosure, explicit: &BTreeSet<RoleId>) -> bool {
    let member = |r: RoleId| explicit.iter().any(|&d| closure.reaches(d.0, r.0));
    prereq.eval(&member)
}

/// `true` iff the prerequisite only tests positive membership (no `Not`).
pub fn is_positive(prereq: &Prereq) -> bool {
    match prereq {
        Prereq::True | Prereq::Role(_) => true,
        Prereq::Not(_) => false,
        Prereq::And(a, b) | Prereq::Or(a, b) => is_positive(a) && is_positive(b),
    }
}

/// Exact reachability for the monotone fragment (positive preconditions,
/// no revocation): the set of roles the user can eventually hold
/// (explicitly), as a least fixpoint.
///
/// # Panics
/// Panics if any rule has a non-positive prerequisite — callers choose the
/// fragment deliberately.
pub fn reachable_roles_monotone(
    closure: &RoleClosure,
    rules: &[CanAssign],
    initial: &BTreeSet<RoleId>,
) -> BTreeSet<RoleId> {
    assert!(
        rules.iter().all(|r| is_positive(&r.prereq)),
        "monotone analysis requires positive preconditions"
    );
    let mut explicit = initial.clone();
    loop {
        let mut grew = false;
        for rule in rules {
            if !prereq_holds(&rule.prereq, closure, &explicit) {
                continue;
            }
            // The rule lets us add any role in its range.
            for r in 0..closure.len() as u32 {
                let role = RoleId(r);
                if rule.range.contains(closure, role) && explicit.insert(role) {
                    grew = true;
                }
            }
        }
        if !grew {
            return explicit;
        }
    }
}

/// Bounded BFS for the general case: can the user's membership evolve so
/// that `goal` is held (implicitly)?
pub fn role_reachable_bounded(
    closure: &RoleClosure,
    can_assign: &[CanAssign],
    can_revoke: &[CanRevoke],
    initial: &BTreeSet<RoleId>,
    goal: RoleId,
    max_states: usize,
) -> BoundedAnswer {
    let start = initial.clone();
    if implicit(closure, &start).contains(&goal) {
        return BoundedAnswer::Reachable { steps: 0 };
    }
    let mut seen: HashSet<BTreeSet<RoleId>> = HashSet::new();
    seen.insert(start.clone());
    let mut queue: VecDeque<(BTreeSet<RoleId>, usize)> = VecDeque::new();
    queue.push_back((start, 0));
    let mut truncated = false;
    while let Some((state, depth)) = queue.pop_front() {
        // Successors: every applicable assignment and revocation.
        let mut successors: Vec<BTreeSet<RoleId>> = Vec::new();
        for rule in can_assign {
            if !prereq_holds(&rule.prereq, closure, &state) {
                continue;
            }
            for r in 0..closure.len() as u32 {
                let role = RoleId(r);
                if rule.range.contains(closure, role) && !state.contains(&role) {
                    let mut next = state.clone();
                    next.insert(role);
                    successors.push(next);
                }
            }
        }
        for rule in can_revoke {
            for &role in &state {
                if rule.range.contains(closure, role) {
                    let mut next = state.clone();
                    next.remove(&role);
                    successors.push(next);
                }
            }
        }
        for next in successors {
            if seen.contains(&next) {
                continue;
            }
            if implicit(closure, &next).contains(&goal) {
                return BoundedAnswer::Reachable { steps: depth + 1 };
            }
            if seen.len() >= max_states {
                truncated = true;
                continue;
            }
            seen.insert(next.clone());
            queue.push_back((next, depth + 1));
        }
    }
    if truncated {
        BoundedAnswer::Unknown
    } else {
        BoundedAnswer::Unreachable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbac::RoleRange;
    use adminref_core::policy::PolicyBuilder;
    use adminref_core::reach::ReachIndex;
    use adminref_core::universe::Universe;

    /// Chain hierarchy pl → e1 → eng → ed plus an unrelated role q.
    fn setup() -> (Universe, RoleClosure) {
        let (uni, policy) = PolicyBuilder::new()
            .inherit("pl", "e1")
            .inherit("e1", "eng")
            .inherit("eng", "ed")
            .declare_role("q")
            .finish();
        let closure = ReachIndex::build(&uni, &policy).role_closure().clone();
        (uni, closure)
    }

    fn role(uni: &Universe, name: &str) -> RoleId {
        uni.find_role(name).unwrap()
    }

    #[test]
    fn monotone_fixpoint_climbs_the_ladder() {
        let (uni, closure) = setup();
        let ed = role(&uni, "ed");
        let eng = role(&uni, "eng");
        let e1 = role(&uni, "e1");
        // ed members may become eng; eng members may become e1.
        let rules = vec![
            CanAssign {
                admin_role: role(&uni, "pl"),
                prereq: Prereq::Role(ed),
                range: RoleRange::closed(eng, eng),
            },
            CanAssign {
                admin_role: role(&uni, "pl"),
                prereq: Prereq::Role(eng),
                range: RoleRange::closed(e1, e1),
            },
        ];
        let initial: BTreeSet<RoleId> = [ed].into_iter().collect();
        let reach = reachable_roles_monotone(&closure, &rules, &initial);
        assert!(reach.contains(&eng));
        assert!(reach.contains(&e1));
        assert!(!reach.contains(&role(&uni, "pl")));
        assert!(!reach.contains(&role(&uni, "q")));
    }

    #[test]
    fn monotone_requires_initial_seed() {
        let (uni, closure) = setup();
        let eng = role(&uni, "eng");
        let rules = vec![CanAssign {
            admin_role: role(&uni, "pl"),
            prereq: Prereq::Role(role(&uni, "ed")),
            range: RoleRange::closed(eng, eng),
        }];
        let reach = reachable_roles_monotone(&closure, &rules, &BTreeSet::new());
        assert!(reach.is_empty(), "no seed, no growth");
    }

    #[test]
    #[should_panic(expected = "positive preconditions")]
    fn monotone_rejects_negative_preconditions() {
        let (uni, closure) = setup();
        let eng = role(&uni, "eng");
        let rules = vec![CanAssign {
            admin_role: role(&uni, "pl"),
            prereq: Prereq::Not(Box::new(Prereq::Role(eng))),
            range: RoleRange::closed(eng, eng),
        }];
        reachable_roles_monotone(&closure, &rules, &BTreeSet::new());
    }

    #[test]
    fn bounded_finds_negative_precondition_plans() {
        // Reaching the goal requires first *revoking* a blocking role:
        // can_assign(…, ¬q, [e1,e1]) with the user initially in q.
        let (uni, closure) = setup();
        let e1 = role(&uni, "e1");
        let q = role(&uni, "q");
        let ed = role(&uni, "ed");
        let can_assign = vec![CanAssign {
            admin_role: role(&uni, "pl"),
            prereq: Prereq::and_not(ed, q),
            range: RoleRange::closed(e1, e1),
        }];
        let can_revoke = vec![CanRevoke {
            admin_role: role(&uni, "pl"),
            range: RoleRange::closed(q, q),
        }];
        let initial: BTreeSet<RoleId> = [ed, q].into_iter().collect();
        let ans = role_reachable_bounded(&closure, &can_assign, &can_revoke, &initial, e1, 10_000);
        assert_eq!(ans, BoundedAnswer::Reachable { steps: 2 });
        // Without the revoke rule the goal is unreachable.
        let ans2 = role_reachable_bounded(&closure, &can_assign, &[], &initial, e1, 10_000);
        assert_eq!(ans2, BoundedAnswer::Unreachable);
    }

    #[test]
    fn bounded_zero_steps_when_goal_already_held() {
        let (uni, closure) = setup();
        let ed = role(&uni, "ed");
        let eng = role(&uni, "eng");
        let initial: BTreeSet<RoleId> = [eng].into_iter().collect();
        // eng implies ed via the hierarchy.
        let ans = role_reachable_bounded(&closure, &[], &[], &initial, ed, 100);
        assert_eq!(ans, BoundedAnswer::Reachable { steps: 0 });
    }

    #[test]
    fn bounded_reports_unknown_on_tiny_caps() {
        let (uni, closure) = setup();
        let e1 = role(&uni, "e1");
        let q = role(&uni, "q");
        let ed = role(&uni, "ed");
        let can_assign = vec![CanAssign {
            admin_role: role(&uni, "pl"),
            prereq: Prereq::and_not(ed, q),
            range: RoleRange::closed(e1, e1),
        }];
        let can_revoke = vec![CanRevoke {
            admin_role: role(&uni, "pl"),
            range: RoleRange::closed(q, q),
        }];
        let initial: BTreeSet<RoleId> = [ed, q].into_iter().collect();
        let ans = role_reachable_bounded(&closure, &can_assign, &can_revoke, &initial, e1, 1);
        assert_eq!(ans, BoundedAnswer::Unknown);
    }

    #[test]
    fn monotone_agrees_with_bounded_on_positive_instances() {
        let (uni, closure) = setup();
        let ed = role(&uni, "ed");
        let eng = role(&uni, "eng");
        let e1 = role(&uni, "e1");
        let rules = vec![
            CanAssign {
                admin_role: role(&uni, "pl"),
                prereq: Prereq::Role(ed),
                range: RoleRange::closed(eng, eng),
            },
            CanAssign {
                admin_role: role(&uni, "pl"),
                prereq: Prereq::Role(eng),
                range: RoleRange::closed(e1, e1),
            },
        ];
        let initial: BTreeSet<RoleId> = [ed].into_iter().collect();
        let fixpoint = reachable_roles_monotone(&closure, &rules, &initial);
        for r in 0..closure.len() as u32 {
            let goal = RoleId(r);
            let bounded =
                role_reachable_bounded(&closure, &rules, &[], &initial, goal, 100_000);
            let in_fixpoint = implicit(&closure, &fixpoint).contains(&goal);
            match bounded {
                BoundedAnswer::Reachable { .. } => assert!(in_fixpoint, "role {r}"),
                BoundedAnswer::Unreachable => assert!(!in_fixpoint, "role {r}"),
                BoundedAnswer::Unknown => panic!("cap too small for the test"),
            }
        }
    }
}
