//! ARBAC97-style administration (Sandhu, Bhamidipati, Munawer 1999) —
//! the baseline the paper positions itself against in §1/§5.
//!
//! ARBAC97 keeps administrative authority in a *separate* hierarchy of
//! administrative roles and expresses it as rules:
//!
//! * **URA97** — `can_assign(ar, c, range)`: members of admin role `ar`
//!   may assign a user satisfying prerequisite condition `c` to any role in
//!   the role `range`; `can_revoke(ar, range)` likewise for revocation.
//! * **PRA97** — `can_assignp(ar, c, range)` / `can_revokep(ar, range)`
//!   for permission-role assignment.
//!
//! Where the paper's model assigns arbitrarily nested privileges to
//! ordinary roles, ARBAC97's authority is *flat* (no privileges about
//! privileges) and *range-shaped* (contiguous intervals of the hierarchy).
//! The benches compare the per-check cost of the two styles on the same
//! hierarchies.

use adminref_core::closure::RoleClosure;
use adminref_core::ids::{Perm, RoleId, UserId};
use adminref_core::policy::Policy;
use adminref_core::universe::{Edge, PrivTerm, Universe};

/// A prerequisite condition over role memberships: a boolean combination
/// of “is (not) a member of role r” literals, evaluated against *implicit*
/// membership (membership via the hierarchy).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Prereq {
    /// Always satisfied.
    True,
    /// Member of `r` (explicitly or through a senior role).
    Role(RoleId),
    /// Negation.
    Not(Box<Prereq>),
    /// Conjunction.
    And(Box<Prereq>, Box<Prereq>),
    /// Disjunction.
    Or(Box<Prereq>, Box<Prereq>),
}

impl Prereq {
    /// Convenience: `a ∧ ¬b`.
    pub fn and_not(a: RoleId, b: RoleId) -> Self {
        Prereq::And(
            Box::new(Prereq::Role(a)),
            Box::new(Prereq::Not(Box::new(Prereq::Role(b)))),
        )
    }

    /// Evaluates against a membership test.
    pub fn eval(&self, member: &impl Fn(RoleId) -> bool) -> bool {
        match self {
            Prereq::True => true,
            Prereq::Role(r) => member(*r),
            Prereq::Not(p) => !p.eval(member),
            Prereq::And(a, b) => a.eval(member) && b.eval(member),
            Prereq::Or(a, b) => a.eval(member) || b.eval(member),
        }
    }
}

/// A contiguous range of the role hierarchy. In ARBAC97 notation
/// `[lo, hi]`, `(lo, hi]`, `[lo, hi)` or `(lo, hi)`: the roles `r` with
/// `lo ≤ r ≤ hi` (seniority order; `hi` is the senior end), endpoints
/// included per the closed flags.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RoleRange {
    /// Junior end.
    pub lo: RoleId,
    /// Senior end.
    pub hi: RoleId,
    /// Whether `lo` itself is in the range.
    pub lo_closed: bool,
    /// Whether `hi` itself is in the range.
    pub hi_closed: bool,
}

impl RoleRange {
    /// The closed range `[lo, hi]`.
    pub fn closed(lo: RoleId, hi: RoleId) -> Self {
        RoleRange {
            lo,
            hi,
            lo_closed: true,
            hi_closed: true,
        }
    }

    /// `true` iff `r` lies in the range under `closure` (seniors reach
    /// juniors).
    pub fn contains(&self, closure: &RoleClosure, r: RoleId) -> bool {
        let senior_ok = closure.reaches(self.hi.0, r.0) && (self.hi_closed || r != self.hi);
        let junior_ok = closure.reaches(r.0, self.lo.0) && (self.lo_closed || r != self.lo);
        senior_ok && junior_ok
    }
}

/// One URA97 `can_assign` rule.
#[derive(Clone, Debug)]
pub struct CanAssign {
    /// Administrative role empowered by the rule.
    pub admin_role: RoleId,
    /// Prerequisite the *target user* must satisfy.
    pub prereq: Prereq,
    /// Roles the user may be assigned to.
    pub range: RoleRange,
}

/// One URA97 `can_revoke` rule.
#[derive(Clone, Debug)]
pub struct CanRevoke {
    /// Administrative role empowered by the rule.
    pub admin_role: RoleId,
    /// Roles the user may be revoked from.
    pub range: RoleRange,
}

/// One PRA97 `can_assignp` rule (permission-role assignment).
#[derive(Clone, Debug)]
pub struct CanAssignPerm {
    /// Administrative role empowered by the rule.
    pub admin_role: RoleId,
    /// Prerequisite the *permission* must satisfy: it must already be
    /// assigned to a role in this set (None = no prerequisite).
    pub prereq_role: Option<RoleId>,
    /// Roles the permission may be assigned to.
    pub range: RoleRange,
}

/// One PRA97 `can_revokep` rule.
#[derive(Clone, Debug)]
pub struct CanRevokePerm {
    /// Administrative role empowered by the rule.
    pub admin_role: RoleId,
    /// Roles the permission may be revoked from.
    pub range: RoleRange,
}

/// An ARBAC97 configuration over a core policy.
///
/// Administrative roles live in the same role vocabulary (ARBAC97 keeps a
/// disjoint hierarchy; here disjointness is the builder's responsibility —
/// the admin hierarchy is whatever `RH` says about the admin roles).
#[derive(Clone, Debug, Default)]
pub struct Arbac97 {
    /// URA97 assignment rules.
    pub can_assign: Vec<CanAssign>,
    /// URA97 revocation rules.
    pub can_revoke: Vec<CanRevoke>,
    /// PRA97 assignment rules.
    pub can_assignp: Vec<CanAssignPerm>,
    /// PRA97 revocation rules.
    pub can_revokep: Vec<CanRevokePerm>,
}

/// Outcome of an ARBAC97 authorization check, naming the rule that fired.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RuleMatch {
    /// Index of the matching rule within its rule vector.
    pub rule_index: usize,
}

impl Arbac97 {
    /// Creates an empty configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a `can_assign` rule.
    pub fn add_can_assign(&mut self, rule: CanAssign) -> &mut Self {
        self.can_assign.push(rule);
        self
    }

    /// Adds a `can_revoke` rule.
    pub fn add_can_revoke(&mut self, rule: CanRevoke) -> &mut Self {
        self.can_revoke.push(rule);
        self
    }

    /// Adds a `can_assignp` rule.
    pub fn add_can_assignp(&mut self, rule: CanAssignPerm) -> &mut Self {
        self.can_assignp.push(rule);
        self
    }

    /// Adds a `can_revokep` rule.
    pub fn add_can_revokep(&mut self, rule: CanRevokePerm) -> &mut Self {
        self.can_revokep.push(rule);
        self
    }

    /// May `admin` assign `user` to `role`? Returns the first matching
    /// rule.
    pub fn check_assign(
        &self,
        policy: &Policy,
        closure: &RoleClosure,
        admin: UserId,
        user: UserId,
        role: RoleId,
    ) -> Option<RuleMatch> {
        let admin_member = membership_fn(policy, closure, admin);
        let user_member = membership_fn(policy, closure, user);
        self.can_assign.iter().enumerate().find_map(|(i, rule)| {
            if admin_member(rule.admin_role)
                && rule.prereq.eval(&user_member)
                && rule.range.contains(closure, role)
            {
                Some(RuleMatch { rule_index: i })
            } else {
                None
            }
        })
    }

    /// May `admin` revoke `user` from `role`?
    pub fn check_revoke(
        &self,
        policy: &Policy,
        closure: &RoleClosure,
        admin: UserId,
        role: RoleId,
    ) -> Option<RuleMatch> {
        let admin_member = membership_fn(policy, closure, admin);
        self.can_revoke.iter().enumerate().find_map(|(i, rule)| {
            if admin_member(rule.admin_role) && rule.range.contains(closure, role) {
                Some(RuleMatch { rule_index: i })
            } else {
                None
            }
        })
    }

    /// May `admin` assign permission `perm` to `role`?
    pub fn check_assign_perm(
        &self,
        universe: &Universe,
        policy: &Policy,
        closure: &RoleClosure,
        admin: UserId,
        perm: Perm,
        role: RoleId,
    ) -> Option<RuleMatch> {
        let admin_member = membership_fn(policy, closure, admin);
        self.can_assignp.iter().enumerate().find_map(|(i, rule)| {
            if !admin_member(rule.admin_role) || !rule.range.contains(closure, role) {
                return None;
            }
            let prereq_ok = match rule.prereq_role {
                None => true,
                Some(holder) => policy.pa().any(|(r, p)| {
                    closure.reaches(holder.0, r.0)
                        && matches!(universe.term(p), PrivTerm::Perm(q) if q == perm)
                }),
            };
            if prereq_ok {
                Some(RuleMatch { rule_index: i })
            } else {
                None
            }
        })
    }

    /// May `admin` revoke permission assignments from `role`?
    pub fn check_revoke_perm(
        &self,
        policy: &Policy,
        closure: &RoleClosure,
        admin: UserId,
        role: RoleId,
    ) -> Option<RuleMatch> {
        let admin_member = membership_fn(policy, closure, admin);
        self.can_revokep.iter().enumerate().find_map(|(i, rule)| {
            if admin_member(rule.admin_role) && rule.range.contains(closure, role) {
                Some(RuleMatch { rule_index: i })
            } else {
                None
            }
        })
    }

    /// Checks and applies a user-role assignment, mutating the policy.
    pub fn assign(
        &self,
        policy: &mut Policy,
        closure: &RoleClosure,
        admin: UserId,
        user: UserId,
        role: RoleId,
    ) -> Option<RuleMatch> {
        let hit = self.check_assign(policy, closure, admin, user, role)?;
        policy.add_edge(Edge::UserRole(user, role));
        Some(hit)
    }

    /// Checks and applies a user-role revocation, mutating the policy.
    ///
    /// Per URA97's weak revocation: only the explicit membership is
    /// removed.
    pub fn revoke(
        &self,
        policy: &mut Policy,
        closure: &RoleClosure,
        admin: UserId,
        user: UserId,
        role: RoleId,
    ) -> Option<RuleMatch> {
        let hit = self.check_revoke(policy, closure, admin, role)?;
        policy.remove_edge(Edge::UserRole(user, role));
        Some(hit)
    }
}

/// Implicit membership test: `user` is a member of `r` iff some explicitly
/// assigned role reaches `r`.
fn membership_fn<'a>(
    policy: &'a Policy,
    closure: &'a RoleClosure,
    user: UserId,
) -> impl Fn(RoleId) -> bool + 'a {
    let direct: Vec<RoleId> = policy.roles_of(user).collect();
    move |r: RoleId| direct.iter().any(|&d| closure.reaches(d.0, r.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adminref_core::policy::PolicyBuilder;
    use adminref_core::reach::ReachIndex;

    /// URA97's running example shape: a small engineering department.
    /// Hierarchy (senior → junior): dso → pso → {pl → {e1, e2} → eng} and
    /// eng → ed.
    fn setup() -> (Universe, Policy, RoleClosure) {
        let (uni, policy) = PolicyBuilder::new()
            .assign("alice", "pso")
            .assign("carol", "ed")
            .assign("dave", "eng")
            .assign("eve", "pl")
            .inherit("dso", "pso")
            .inherit("pl", "e1")
            .inherit("pl", "e2")
            .inherit("e1", "eng")
            .inherit("e2", "eng")
            .inherit("eng", "ed")
            .permit("eng", "read", "code")
            .finish();
        let closure = ReachIndex::build(&uni, &policy).role_closure().clone();
        (uni, policy, closure)
    }

    fn role(uni: &Universe, name: &str) -> RoleId {
        uni.find_role(name).unwrap()
    }

    fn user(uni: &Universe, name: &str) -> UserId {
        uni.find_user(name).unwrap()
    }

    #[test]
    fn range_membership_respects_endpoints() {
        let (uni, _, closure) = setup();
        let eng = role(&uni, "eng");
        let pl = role(&uni, "pl");
        let e1 = role(&uni, "e1");
        let ed = role(&uni, "ed");
        let closed = RoleRange::closed(eng, pl);
        assert!(closed.contains(&closure, eng));
        assert!(closed.contains(&closure, pl));
        assert!(closed.contains(&closure, e1));
        assert!(!closed.contains(&closure, ed), "ed is below the range");
        let open = RoleRange {
            lo: eng,
            hi: pl,
            lo_closed: false,
            hi_closed: false,
        };
        assert!(!open.contains(&closure, eng));
        assert!(!open.contains(&closure, pl));
        assert!(open.contains(&closure, e1));
    }

    #[test]
    fn can_assign_with_prerequisite() {
        let (uni, policy, closure) = setup();
        let mut arbac = Arbac97::new();
        // PSO members may assign users who are already ED (but not ENG)
        // into [eng, pl].
        arbac.add_can_assign(CanAssign {
            admin_role: role(&uni, "pso"),
            prereq: Prereq::and_not(role(&uni, "ed"), role(&uni, "eng")),
            range: RoleRange::closed(role(&uni, "eng"), role(&uni, "pl")),
        });
        let alice = user(&uni, "alice");
        let carol = user(&uni, "carol"); // ed only: satisfies prereq
        let dave = user(&uni, "dave"); // already eng: fails ¬eng
        let eng = role(&uni, "eng");
        assert!(arbac
            .check_assign(&policy, &closure, alice, carol, eng)
            .is_some());
        assert!(arbac
            .check_assign(&policy, &closure, alice, dave, eng)
            .is_none());
        // carol cannot administrate: she is not in pso.
        assert!(arbac
            .check_assign(&policy, &closure, carol, carol, eng)
            .is_none());
        // Out-of-range target role.
        let dso = role(&uni, "dso");
        assert!(arbac
            .check_assign(&policy, &closure, alice, carol, dso)
            .is_none());
    }

    #[test]
    fn admin_membership_is_implicit() {
        // A dso member may use a pso rule because dso → pso.
        let (mut uni, mut policy, _) = setup();
        let frank = uni.user("frank");
        let dso = role(&uni, "dso");
        policy.add_edge(Edge::UserRole(frank, dso));
        let closure = ReachIndex::build(&uni, &policy).role_closure().clone();
        let mut arbac = Arbac97::new();
        arbac.add_can_assign(CanAssign {
            admin_role: role(&uni, "pso"),
            prereq: Prereq::True,
            range: RoleRange::closed(role(&uni, "eng"), role(&uni, "eng")),
        });
        let carol = user(&uni, "carol");
        let eng = role(&uni, "eng");
        assert!(arbac
            .check_assign(&policy, &closure, frank, carol, eng)
            .is_some());
    }

    #[test]
    fn assign_and_revoke_mutate_ua() {
        let (uni, mut policy, closure) = setup();
        let mut arbac = Arbac97::new();
        let eng = role(&uni, "eng");
        arbac.add_can_assign(CanAssign {
            admin_role: role(&uni, "pso"),
            prereq: Prereq::True,
            range: RoleRange::closed(eng, eng),
        });
        arbac.add_can_revoke(CanRevoke {
            admin_role: role(&uni, "pso"),
            range: RoleRange::closed(eng, eng),
        });
        let alice = user(&uni, "alice");
        let carol = user(&uni, "carol");
        assert!(arbac
            .assign(&mut policy, &closure, alice, carol, eng)
            .is_some());
        assert!(policy.contains_edge(Edge::UserRole(carol, eng)));
        assert!(arbac
            .revoke(&mut policy, &closure, alice, carol, eng)
            .is_some());
        assert!(!policy.contains_edge(Edge::UserRole(carol, eng)));
    }

    #[test]
    fn pra97_permission_rules() {
        let (mut uni, policy, closure) = setup();
        let mut arbac = Arbac97::new();
        let eng = role(&uni, "eng");
        let pl = role(&uni, "pl");
        arbac.add_can_assignp(CanAssignPerm {
            admin_role: role(&uni, "pso"),
            prereq_role: Some(eng), // perm must already be somewhere at/below eng
            range: RoleRange::closed(pl, pl),
        });
        arbac.add_can_revokep(CanRevokePerm {
            admin_role: role(&uni, "pso"),
            range: RoleRange::closed(eng, pl),
        });
        let alice = user(&uni, "alice");
        let read_code = uni.perm("read", "code");
        let write_code = uni.perm("write", "code");
        assert!(arbac
            .check_assign_perm(&uni, &policy, &closure, alice, read_code, pl)
            .is_some());
        assert!(
            arbac
                .check_assign_perm(&uni, &policy, &closure, alice, write_code, pl)
                .is_none(),
            "write:code is not held below eng, prerequisite fails"
        );
        assert!(arbac
            .check_revoke_perm(&policy, &closure, alice, eng)
            .is_some());
        let carol = user(&uni, "carol");
        assert!(arbac
            .check_revoke_perm(&policy, &closure, carol, eng)
            .is_none());
    }

    #[test]
    fn prereq_evaluation_table() {
        let (uni, policy, closure) = setup();
        let dave = user(&uni, "dave"); // eng (hence ed, implicitly)
        let member = membership_fn(&policy, &closure, dave);
        let eng = role(&uni, "eng");
        let ed = role(&uni, "ed");
        let pl = role(&uni, "pl");
        assert!(Prereq::Role(eng).eval(&member));
        assert!(Prereq::Role(ed).eval(&member), "implicit via hierarchy");
        assert!(!Prereq::Role(pl).eval(&member));
        assert!(Prereq::True.eval(&member));
        assert!(Prereq::Not(Box::new(Prereq::Role(pl))).eval(&member));
        assert!(Prereq::Or(Box::new(Prereq::Role(pl)), Box::new(Prereq::Role(eng))).eval(&member));
        assert!(!Prereq::and_not(eng, ed).eval(&member));
    }
}
