//! Administrative scope (Crampton & Loizou, TISSEC 2003) — reference \[4\]
//! of the paper.
//!
//! Crampton and Loizou place administrative authority in the *same*
//! hierarchy as ordinary roles (like the paper does) but derive it from
//! the hierarchy's shape instead of assigned privileges: role `r` is
//! within the administrative scope of `a` iff `a` reaches `r` and every
//! role senior to `r` is comparable to `a` (senior or junior to it):
//!
//! ```text
//! r ∈ σ(a)   ⟺   r ≤ a  ∧  ↑r ⊆ ↑a ∪ ↓a
//! ```
//!
//! Intuitively, nobody outside `a`'s chain of command can be affected by
//! changes `a` makes to `r`. The *strict* scope `σ⁺(a) = σ(a) \ {a}` is
//! what an administrator may actually modify.

use adminref_core::bitset::BitSet;
use adminref_core::closure::RoleClosure;
use adminref_core::ids::RoleId;
use adminref_core::policy::Policy;
use adminref_core::universe::Universe;

/// Precomputed administrative-scope index over a role hierarchy.
#[derive(Debug, Clone)]
pub struct AdminScope {
    n: usize,
    /// Down-closure (descendants incl. self) per role.
    down: Vec<BitSet>,
    /// Up-closure (ancestors incl. self) per role.
    up: Vec<BitSet>,
}

impl AdminScope {
    /// Builds the index from a policy's hierarchy.
    pub fn build(universe: &Universe, policy: &Policy) -> Self {
        let n = universe.role_count();
        let forward = RoleClosure::build(n, policy.rh().map(|(a, b)| (a.0, b.0)));
        let backward = RoleClosure::build(n, policy.rh().map(|(a, b)| (b.0, a.0)));
        let down = (0..n).map(|r| forward.row(r as u32).clone()).collect();
        let up = (0..n).map(|r| backward.row(r as u32).clone()).collect();
        AdminScope { n, down, up }
    }

    /// Number of roles indexed.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` iff no roles are indexed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `r ∈ σ(admin)`: `admin` reaches `r`, and every ancestor of `r` is
    /// comparable to `admin`.
    pub fn in_scope(&self, admin: RoleId, r: RoleId) -> bool {
        let (a, t) = (admin.index(), r.index());
        if a >= self.n || t >= self.n || !self.down[a].contains(t) {
            return false;
        }
        // ↑r ⊆ ↑a ∪ ↓a.
        self.up[t]
            .iter()
            .all(|anc| self.up[a].contains(anc) || self.down[a].contains(anc))
    }

    /// `r ∈ σ⁺(admin)`: in scope and distinct from the administrator.
    pub fn in_strict_scope(&self, admin: RoleId, r: RoleId) -> bool {
        admin != r && self.in_scope(admin, r)
    }

    /// All roles in `σ(admin)`, in id order.
    pub fn scope(&self, admin: RoleId) -> Vec<RoleId> {
        (0..self.n as u32)
            .map(RoleId)
            .filter(|&r| self.in_scope(admin, r))
            .collect()
    }

    /// The administrators of `r`: all roles with `r` in their strict scope.
    pub fn administrators_of(&self, r: RoleId) -> Vec<RoleId> {
        (0..self.n as u32)
            .map(RoleId)
            .filter(|&a| self.in_strict_scope(a, r))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adminref_core::policy::PolicyBuilder;

    /// The classic scope example: a diamond with a side entry.
    ///
    /// ```text
    ///        top
    ///       /   \
    ///      a     x
    ///     / \   /
    ///    b   c-    (c has parents a and x)
    ///     \ /
    ///      d
    /// ```
    fn diamond() -> (Universe, Policy) {
        PolicyBuilder::new()
            .inherit("top", "a")
            .inherit("top", "x")
            .inherit("a", "b")
            .inherit("a", "c")
            .inherit("x", "c")
            .inherit("b", "d")
            .inherit("c", "d")
            .finish()
    }

    fn role(uni: &Universe, name: &str) -> RoleId {
        uni.find_role(name).unwrap()
    }

    #[test]
    fn top_scopes_everything() {
        let (uni, policy) = diamond();
        let scope = AdminScope::build(&uni, &policy);
        let top = role(&uni, "top");
        for name in ["top", "a", "b", "c", "d", "x"] {
            assert!(scope.in_scope(top, role(&uni, name)), "{name}");
        }
        assert!(!scope.in_strict_scope(top, top));
    }

    #[test]
    fn side_parent_breaks_scope() {
        // c has an ancestor (x) incomparable to a, so c ∉ σ(a); b has all
        // ancestors within a's chain, so b ∈ σ(a).
        let (uni, policy) = diamond();
        let scope = AdminScope::build(&uni, &policy);
        let a = role(&uni, "a");
        assert!(scope.in_scope(a, role(&uni, "b")));
        assert!(!scope.in_scope(a, role(&uni, "c")));
        // d is below both b and c; its ancestor x is incomparable to a.
        assert!(!scope.in_scope(a, role(&uni, "d")));
    }

    #[test]
    fn scope_is_reflexive_on_reachability() {
        let (uni, policy) = diamond();
        let scope = AdminScope::build(&uni, &policy);
        for name in ["top", "a", "b", "c", "d", "x"] {
            let r = role(&uni, name);
            assert!(scope.in_scope(r, r), "{name} ∈ σ({name})");
        }
    }

    #[test]
    fn unreachable_roles_are_out_of_scope() {
        let (uni, policy) = diamond();
        let scope = AdminScope::build(&uni, &policy);
        let b = role(&uni, "b");
        let x = role(&uni, "x");
        assert!(!scope.in_scope(b, x));
        assert!(!scope.in_scope(x, b));
    }

    #[test]
    fn administrators_of_inverts_scope() {
        let (uni, policy) = diamond();
        let scope = AdminScope::build(&uni, &policy);
        let b = role(&uni, "b");
        let admins = scope.administrators_of(b);
        assert_eq!(admins, vec![role(&uni, "top"), role(&uni, "a")]);
    }

    #[test]
    fn scope_listing_matches_membership() {
        let (uni, policy) = diamond();
        let scope = AdminScope::build(&uni, &policy);
        let a = role(&uni, "a");
        let listed = scope.scope(a);
        for r in 0..uni.role_count() as u32 {
            let rid = RoleId(r);
            assert_eq!(listed.contains(&rid), scope.in_scope(a, rid));
        }
    }

    #[test]
    fn chain_hierarchy_scope_is_suffix() {
        let (uni, policy) = PolicyBuilder::new()
            .inherit("r3", "r2")
            .inherit("r2", "r1")
            .inherit("r1", "r0")
            .finish();
        let scope = AdminScope::build(&uni, &policy);
        let r2 = role(&uni, "r2");
        let listed = scope.scope(r2);
        // In a chain every ancestor is comparable, so σ(r2) = {r2, r1, r0}.
        assert_eq!(listed.len(), 3);
        assert!(listed.contains(&role(&uni, "r0")));
        assert!(!listed.contains(&role(&uni, "r3")));
    }

    #[test]
    fn empty_hierarchy() {
        let (uni, policy) = PolicyBuilder::new().declare_role("solo").finish();
        let scope = AdminScope::build(&uni, &policy);
        let solo = role(&uni, "solo");
        assert!(scope.in_scope(solo, solo));
        assert!(scope.administrators_of(solo).is_empty());
    }
}
