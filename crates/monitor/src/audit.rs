//! Audit log: a bounded ring of authorization decisions.
//!
//! Every administrative command the monitor processes — executed or
//! refused — lands here, together with the privilege vertex that justified
//! it (for ordered-mode decisions the held privilege generally differs
//! from the requested one; auditors want to see both).

use std::collections::VecDeque;

use adminref_core::command::Command;
use adminref_core::ids::PrivId;

/// The decision recorded for one command.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Decision {
    /// Authorized; `held` is the justifying vertex, `target` the required
    /// privilege (equal under explicit authorization).
    Executed {
        /// The privilege vertex that authorized the command.
        held: PrivId,
        /// The privilege the command required.
        target: PrivId,
    },
    /// Refused (consumed as a no-op per Definition 5).
    Refused,
}

/// One audit event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AuditEvent {
    /// Monotonic event number.
    pub seq: u64,
    /// The command.
    pub command: Command,
    /// The decision.
    pub decision: Decision,
    /// Whether the policy's edge set actually changed.
    pub changed: bool,
}

/// Bounded in-memory audit log (oldest events are evicted first).
#[derive(Debug)]
pub struct AuditLog {
    events: VecDeque<AuditEvent>,
    capacity: usize,
    next_seq: u64,
    evicted: u64,
}

impl AuditLog {
    /// Creates a log retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        AuditLog {
            events: VecDeque::with_capacity(capacity.min(1024)),
            capacity: capacity.max(1),
            next_seq: 0,
            evicted: 0,
        }
    }

    /// Records an event, evicting the oldest if full. Returns its seq.
    pub fn record(&mut self, command: Command, decision: Decision, changed: bool) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.evicted += 1;
        }
        self.events.push_back(AuditEvent {
            seq,
            command,
            decision,
            changed,
        });
        seq
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &AuditEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` iff nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Count of refused commands among retained events.
    pub fn refused_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.decision == Decision::Refused)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adminref_core::ids::{RoleId, UserId};
    use adminref_core::universe::Edge;

    fn cmd(n: u32) -> Command {
        Command::grant(UserId(n), Edge::UserRole(UserId(n), RoleId(0)))
    }

    #[test]
    fn records_in_order() {
        let mut log = AuditLog::new(10);
        assert_eq!(log.record(cmd(1), Decision::Refused, false), 0);
        assert_eq!(
            log.record(
                cmd(2),
                Decision::Executed {
                    held: PrivId(1),
                    target: PrivId(1)
                },
                true
            ),
            1
        );
        let events: Vec<_> = log.events().collect();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(log.refused_count(), 1);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut log = AuditLog::new(3);
        for i in 0..5 {
            log.record(cmd(i), Decision::Refused, false);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.evicted(), 2);
        let seqs: Vec<u64> = log.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut log = AuditLog::new(0);
        log.record(cmd(0), Decision::Refused, false);
        assert_eq!(log.len(), 1);
    }
}
