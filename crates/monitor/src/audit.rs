//! Audit log: a bounded ring of authorization decisions.
//!
//! Every administrative command the monitor processes — executed or
//! refused — lands here, together with the privilege vertex that justified
//! it (for ordered-mode decisions the held privilege generally differs
//! from the requested one; auditors want to see both).
//!
//! A second bounded ring records [`SessionRevocation`]s: publish-time
//! forced deactivations of session roles whose `u →φ r` justification a
//! batch's revocations severed. The streams number independently (each
//! stays dense, so cursor arithmetic keeps working on both), and the
//! revocation total is monotone even after eviction.

use std::collections::VecDeque;

use adminref_core::command::Command;
use adminref_core::ids::{PrivId, RoleId, UserId};
use adminref_core::verify::specs::{TraceDecision, TraceStep};

use crate::monitor::SessionId;

/// The decision recorded for one command.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Decision {
    /// Authorized; `held` is the justifying vertex, `target` the required
    /// privilege (equal under explicit authorization).
    Executed {
        /// The privilege vertex that authorized the command.
        held: PrivId,
        /// The privilege the command required.
        target: PrivId,
    },
    /// Refused (consumed as a no-op per Definition 5).
    Refused,
}

/// One audit event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AuditEvent {
    /// Monotonic event number.
    pub seq: u64,
    /// The command.
    pub command: Command,
    /// The decision.
    pub decision: Decision,
    /// Whether the policy's edge set actually changed.
    pub changed: bool,
}

/// One publish-time forced deactivation: the epoch's policy no longer
/// satisfies `u →φ r`, so the monitor dropped `role` from the session.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SessionRevocation {
    /// Monotonic revocation number (independent of command seqs).
    pub seq: u64,
    /// The affected session.
    pub session: SessionId,
    /// The session's user.
    pub user: UserId,
    /// The role that was force-deactivated.
    pub role: RoleId,
    /// The epoch whose publication severed the activation.
    pub epoch: u64,
}

/// Maps an audit stream to an oracle trace
/// ([`adminref_core::verify::specs`]): each event becomes one
/// [`TraceStep`], ready for
/// [`InvariantSuite::replay`](adminref_core::verify::specs::InvariantSuite::replay)
/// against the policy the stream started from.
pub fn trace_of(events: &[AuditEvent]) -> Vec<TraceStep> {
    events
        .iter()
        .map(|e| TraceStep {
            command: e.command,
            decision: match e.decision {
                Decision::Executed { held, target } => TraceDecision::Executed {
                    held,
                    target,
                    changed: e.changed,
                },
                Decision::Refused => TraceDecision::Refused,
            },
        })
        .collect()
}

/// Bounded in-memory audit log (oldest events are evicted first).
#[derive(Debug)]
pub struct AuditLog {
    events: VecDeque<AuditEvent>,
    revocations: VecDeque<SessionRevocation>,
    capacity: usize,
    next_seq: u64,
    next_revocation_seq: u64,
    evicted: u64,
}

impl AuditLog {
    /// Creates a log retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        AuditLog {
            events: VecDeque::with_capacity(capacity.min(1024)),
            revocations: VecDeque::new(),
            capacity: capacity.max(1),
            next_seq: 0,
            next_revocation_seq: 0,
            evicted: 0,
        }
    }

    /// Records an event, evicting the oldest if full. Returns its seq.
    pub fn record(&mut self, command: Command, decision: Decision, changed: bool) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.evicted += 1;
        }
        self.events.push_back(AuditEvent {
            seq,
            command,
            decision,
            changed,
        });
        seq
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &AuditEvent> {
        self.events.iter()
    }

    /// Copies out at most the last `max` retained events, oldest first.
    /// Bounded: callers polling a long-lived monitor pay O(max), not
    /// O(history).
    pub fn tail(&self, max: usize) -> Vec<AuditEvent> {
        let skip = self.events.len().saturating_sub(max);
        self.events.iter().skip(skip).copied().collect()
    }

    /// Copies out up to `max` retained events with `seq > after`, oldest
    /// first. Sequence numbers are dense, so the cursor position is
    /// found by offset arithmetic, not a scan.
    pub fn events_since(&self, after: u64, max: usize) -> Vec<AuditEvent> {
        let Some(first) = self.events.front().map(|e| e.seq) else {
            return Vec::new();
        };
        // Events with seq <= after are skipped; `after` may predate the
        // ring (everything retained qualifies) or postdate it (nothing,
        // including the `u64::MAX` everything-seen sentinel).
        let skip = after
            .saturating_add(1)
            .saturating_sub(first)
            .min(self.events.len() as u64) as usize;
        self.events.iter().skip(skip).take(max).copied().collect()
    }

    /// Takes all retained events out of the log, oldest first, leaving it
    /// empty. Sequence numbering continues where it left off; the drained
    /// events count as evicted for bookkeeping.
    pub fn drain(&mut self) -> Vec<AuditEvent> {
        self.evicted += self.events.len() as u64;
        std::mem::take(&mut self.events).into()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` iff nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Count of refused commands among retained events.
    pub fn refused_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.decision == Decision::Refused)
            .count()
    }

    /// Records a publish-time forced deactivation, evicting the oldest
    /// if full. Returns its (stream-local) seq.
    pub fn record_revocation(
        &mut self,
        session: SessionId,
        user: UserId,
        role: RoleId,
        epoch: u64,
    ) -> u64 {
        let seq = self.next_revocation_seq;
        self.next_revocation_seq += 1;
        if self.revocations.len() == self.capacity {
            self.revocations.pop_front();
        }
        self.revocations.push_back(SessionRevocation {
            seq,
            session,
            user,
            role,
            epoch,
        });
        seq
    }

    /// Retained forced deactivations, oldest first.
    pub fn revocations(&self) -> impl Iterator<Item = &SessionRevocation> {
        self.revocations.iter()
    }

    /// Copies out at most the last `max` retained forced deactivations,
    /// oldest first.
    pub fn revocations_tail(&self, max: usize) -> Vec<SessionRevocation> {
        let skip = self.revocations.len().saturating_sub(max);
        self.revocations.iter().skip(skip).copied().collect()
    }

    /// Total forced deactivations ever recorded (monotone across
    /// eviction).
    pub fn revocations_total(&self) -> u64 {
        self.next_revocation_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adminref_core::ids::{RoleId, UserId};
    use adminref_core::universe::Edge;

    fn cmd(n: u32) -> Command {
        Command::grant(UserId(n), Edge::UserRole(UserId(n), RoleId(0)))
    }

    #[test]
    fn records_in_order() {
        let mut log = AuditLog::new(10);
        assert_eq!(log.record(cmd(1), Decision::Refused, false), 0);
        assert_eq!(
            log.record(
                cmd(2),
                Decision::Executed {
                    held: PrivId(1),
                    target: PrivId(1)
                },
                true
            ),
            1
        );
        let events: Vec<_> = log.events().collect();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(log.refused_count(), 1);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut log = AuditLog::new(3);
        for i in 0..5 {
            log.record(cmd(i), Decision::Refused, false);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.evicted(), 2);
        let seqs: Vec<u64> = log.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn tail_and_since_are_bounded_windows() {
        let mut log = AuditLog::new(4);
        for i in 0..6 {
            log.record(cmd(i), Decision::Refused, false);
        }
        // Retained: seqs 2..=5.
        assert_eq!(
            log.tail(2).iter().map(|e| e.seq).collect::<Vec<_>>(),
            [4, 5]
        );
        assert_eq!(log.tail(100).len(), 4);
        assert_eq!(
            log.events_since(2, 10)
                .iter()
                .map(|e| e.seq)
                .collect::<Vec<_>>(),
            [3, 4, 5]
        );
        assert_eq!(
            log.events_since(0, 2)
                .iter()
                .map(|e| e.seq)
                .collect::<Vec<_>>(),
            [2, 3],
            "a cursor older than the ring starts at the oldest retained"
        );
        assert!(log.events_since(5, 10).is_empty());
        assert!(log.events_since(99, 10).is_empty());
        assert!(
            log.events_since(u64::MAX, 10).is_empty(),
            "the everything-seen sentinel must not overflow"
        );
    }

    #[test]
    fn drain_empties_but_keeps_numbering() {
        let mut log = AuditLog::new(8);
        for i in 0..3 {
            log.record(cmd(i), Decision::Refused, false);
        }
        let drained = log.drain();
        assert_eq!(drained.len(), 3);
        assert!(log.is_empty());
        assert_eq!(log.evicted(), 3);
        let seq = log.record(cmd(9), Decision::Refused, false);
        assert_eq!(seq, 3, "numbering continues across a drain");
        assert!(log.events_since(1, 10).iter().all(|e| e.seq > 1));
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut log = AuditLog::new(0);
        log.record(cmd(0), Decision::Refused, false);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn revocations_number_independently_and_stay_bounded() {
        let mut log = AuditLog::new(2);
        log.record(cmd(0), Decision::Refused, false);
        let sid = SessionId::from_raw(7);
        for i in 0..3 {
            let seq = log.record_revocation(sid, UserId(1), RoleId(i), 5);
            assert_eq!(seq, i as u64);
        }
        assert_eq!(log.revocations().count(), 2, "ring bounded");
        assert_eq!(log.revocations_total(), 3);
        let tail = log.revocations_tail(1);
        assert_eq!(tail[0].seq, 2);
        assert_eq!(tail[0].role, RoleId(2));
        assert_eq!(tail[0].epoch, 5);
        // The command stream's numbering is untouched.
        assert_eq!(log.record(cmd(1), Decision::Refused, false), 1);
    }
}
