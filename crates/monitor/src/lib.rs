//! # adminref-monitor
//!
//! The RBAC reference monitor of §2–§3 of the paper: sessions with role
//! activation (least privilege), administrative command execution under
//! Definition 5 — optionally with the §4.1 privilege-ordering implicit
//! authorization — an audit trail of every decision, and an optional
//! durable backend (`adminref-store`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod monitor;

pub use audit::{AuditEvent, AuditLog, Decision};
pub use monitor::{MonitorConfig, MonitorError, ReferenceMonitor, SessionId};
