//! # adminref-monitor
//!
//! The RBAC reference monitor of §2–§3 of the paper: sessions with role
//! activation (least privilege), administrative command execution under
//! Definition 5 — optionally with the §4.1 privilege-ordering implicit
//! authorization — an audit trail of every decision, and an optional
//! durable backend (`adminref-store`).
//!
//! Reads are served lock-free from immutable epoch-published
//! [`PolicySnapshot`](adminref_core::snapshot::PolicySnapshot)s while a
//! batched single writer applies admin commands (see [`monitor`]); the
//! pre-epoch single-lock design survives as [`locked::LockedMonitor`]
//! for differential testing and benchmarking.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Serving-path hygiene: no unwrap/expect/panic! outside tests (the
// test exemption lives in the workspace clippy.toml).
#![warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

pub mod audit;
pub mod locked;
pub mod monitor;

pub use audit::{trace_of, AuditEvent, AuditLog, Decision, SessionRevocation};
pub use locked::LockedMonitor;
pub use monitor::{
    MonitorConfig, MonitorError, PublishEvent, PublishHook, ReferenceMonitor, ReplicaApplyError,
    SessionId,
};
