//! The RBAC reference monitor.
//!
//! One `ReferenceMonitor` owns the live administrative policy (either in
//! memory or backed by a durable [`PolicyStore`]), manages user sessions
//! (§2 of the paper), executes administrative commands under a configured
//! [`AuthMode`] (Definition 5, optionally with the §4.1 ordering), and
//! records every decision in the audit log.
//!
//! Thread safety: state sits behind a `parking_lot::RwLock`. Access checks
//! and policy reads take the read lock; command execution takes the write
//! lock. Ordered-mode authorization rebuilds the privilege order against
//! the current snapshot on each command — the honest per-command cost of
//! the paper's flexibility, measured in `benches/monitor.rs`.

use parking_lot::RwLock;
use std::collections::HashMap;

use adminref_core::command::{Command, CommandQueue};
use adminref_core::ids::{Entity, Perm, RoleId, UserId};
use adminref_core::policy::Policy;
use adminref_core::safety::{perm_reachable, ReachabilityAnswer, SafetyConfig};
use adminref_core::session::{Session, SessionError};
use adminref_core::transition::{step, AuthMode, StepOutcome};
use adminref_core::universe::Universe;
use adminref_store::{PolicyStore, StoreError};

use crate::audit::{AuditLog, Decision};

/// Monitor configuration.
#[derive(Clone, Copy, Debug)]
pub struct MonitorConfig {
    /// How administrative commands are authorized.
    pub auth_mode: AuthMode,
    /// Audit log retention.
    pub audit_capacity: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            auth_mode: AuthMode::Explicit,
            audit_capacity: 4096,
        }
    }
}

/// Errors surfaced by the monitor.
#[derive(Debug)]
pub enum MonitorError {
    /// The session id is unknown (or was closed).
    UnknownSession(SessionId),
    /// Session-level refusal (e.g. role activation denied).
    Session(SessionError),
    /// Durable backend failure.
    Store(StoreError),
}

impl std::fmt::Display for MonitorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MonitorError::UnknownSession(id) => write!(f, "unknown session {id:?}"),
            MonitorError::Session(e) => write!(f, "session error: {e}"),
            MonitorError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for MonitorError {}

impl From<SessionError> for MonitorError {
    fn from(e: SessionError) -> Self {
        MonitorError::Session(e)
    }
}

impl From<StoreError> for MonitorError {
    fn from(e: StoreError) -> Self {
        MonitorError::Store(e)
    }
}

/// Handle to a user session.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SessionId(pub u64);

// The Memory variant is much larger than the boxed Durable variant; a
// monitor holds exactly one Backend for its whole lifetime, so the size
// difference has no practical cost.
#[allow(clippy::large_enum_variant)]
enum Backend {
    Memory { universe: Universe, policy: Policy },
    Durable(Box<PolicyStore>),
}

impl Backend {
    fn universe(&self) -> &Universe {
        match self {
            Backend::Memory { universe, .. } => universe,
            Backend::Durable(store) => store.universe(),
        }
    }

    fn policy(&self) -> &Policy {
        match self {
            Backend::Memory { policy, .. } => policy,
            Backend::Durable(store) => store.policy(),
        }
    }

    fn execute(&mut self, cmd: &Command, mode: AuthMode) -> Result<StepOutcome, MonitorError> {
        match self {
            Backend::Memory { universe, policy } => Ok(step(universe, policy, cmd, mode)),
            Backend::Durable(store) => {
                debug_assert_eq!(store.auth_mode(), mode, "mode set at store creation");
                Ok(store.execute(cmd)?)
            }
        }
    }
}

struct Inner {
    backend: Backend,
    sessions: HashMap<SessionId, Session>,
    next_session: u64,
    audit: AuditLog,
    version: u64,
    config: MonitorConfig,
}

/// The reference monitor.
pub struct ReferenceMonitor {
    inner: RwLock<Inner>,
}

impl ReferenceMonitor {
    /// An in-memory monitor over the given state.
    pub fn new(universe: Universe, policy: Policy, config: MonitorConfig) -> Self {
        policy.check_universe(&universe);
        ReferenceMonitor {
            inner: RwLock::new(Inner {
                backend: Backend::Memory { universe, policy },
                sessions: HashMap::new(),
                next_session: 0,
                audit: AuditLog::new(config.audit_capacity),
                version: 0,
                config,
            }),
        }
    }

    /// A monitor over a durable store (the store's auth mode wins).
    pub fn with_store(store: PolicyStore, config: MonitorConfig) -> Self {
        let config = MonitorConfig {
            auth_mode: store.auth_mode(),
            ..config
        };
        ReferenceMonitor {
            inner: RwLock::new(Inner {
                backend: Backend::Durable(Box::new(store)),
                sessions: HashMap::new(),
                next_session: 0,
                audit: AuditLog::new(config.audit_capacity),
                version: 0,
                config,
            }),
        }
    }

    /// Submits one administrative command; records the decision in the
    /// audit log.
    pub fn submit(&self, cmd: &Command) -> Result<StepOutcome, MonitorError> {
        let mut inner = self.inner.write();
        let mode = inner.config.auth_mode;
        let outcome = inner.backend.execute(cmd, mode)?;
        let decision = match outcome.authorization {
            Some(auth) => Decision::Executed {
                held: auth.held,
                target: auth.target,
            },
            None => Decision::Refused,
        };
        inner.audit.record(*cmd, decision, outcome.changed);
        if outcome.changed {
            inner.version += 1;
        }
        Ok(outcome)
    }

    /// Submits a whole queue, front to back.
    pub fn submit_queue(&self, queue: &CommandQueue) -> Result<Vec<StepOutcome>, MonitorError> {
        queue.iter().map(|cmd| self.submit(cmd)).collect()
    }

    /// Starts a session for `user`.
    pub fn create_session(&self, user: UserId) -> SessionId {
        let mut inner = self.inner.write();
        let id = SessionId(inner.next_session);
        inner.next_session += 1;
        inner.sessions.insert(id, Session::new(user));
        id
    }

    /// Activates a role in a session (`u →φ r` required).
    pub fn activate_role(&self, session: SessionId, role: RoleId) -> Result<(), MonitorError> {
        let mut inner = self.inner.write();
        let Inner {
            backend, sessions, ..
        } = &mut *inner;
        let s = sessions
            .get_mut(&session)
            .ok_or(MonitorError::UnknownSession(session))?;
        s.activate(backend.policy(), role)?;
        Ok(())
    }

    /// Deactivates a role; `Ok(true)` if it was active.
    pub fn deactivate_role(&self, session: SessionId, role: RoleId) -> Result<bool, MonitorError> {
        let mut inner = self.inner.write();
        let s = inner
            .sessions
            .get_mut(&session)
            .ok_or(MonitorError::UnknownSession(session))?;
        Ok(s.deactivate(role))
    }

    /// Access check: do the session's active roles reach `perm`?
    pub fn check_access(&self, session: SessionId, perm: Perm) -> Result<bool, MonitorError> {
        let inner = self.inner.read();
        let s = inner
            .sessions
            .get(&session)
            .ok_or(MonitorError::UnknownSession(session))?;
        // Non-mutating variant of Session::check_access: the perm term may
        // not be interned yet, in which case no role reaches it.
        let universe = inner.backend.universe();
        let Some(p) = universe.find_term(adminref_core::universe::PrivTerm::Perm(perm)) else {
            return Ok(false);
        };
        let policy = inner.backend.policy();
        let allowed = s.active_roles().any(|r| {
            adminref_core::reach::reaches(
                policy,
                adminref_core::ids::Node::Role(r),
                adminref_core::ids::Node::Priv(p),
            )
        });
        Ok(allowed)
    }

    /// Ends a session.
    pub fn drop_session(&self, session: SessionId) -> bool {
        self.inner.write().sessions.remove(&session).is_some()
    }

    /// Clones the current state for offline analysis.
    pub fn snapshot(&self) -> (Universe, Policy) {
        let inner = self.inner.read();
        (
            inner.backend.universe().clone(),
            inner.backend.policy().clone(),
        )
    }

    /// The number of policy-changing commands processed so far.
    pub fn version(&self) -> u64 {
        self.inner.read().version
    }

    /// Copies out the retained audit events.
    pub fn audit_events(&self) -> Vec<crate::audit::AuditEvent> {
        self.inner.read().audit.events().copied().collect()
    }

    /// The configured authorization mode.
    pub fn auth_mode(&self) -> AuthMode {
        self.inner.read().config.auth_mode
    }

    /// Runs a closure against the live universe and policy under the read
    /// lock (for analyses that do not need a clone).
    pub fn with_state<T>(&self, f: impl FnOnce(&Universe, &Policy) -> T) -> T {
        let inner = self.inner.read();
        f(inner.backend.universe(), inner.backend.policy())
    }

    /// Bounded safety analysis against a snapshot of the live policy:
    /// can `entity` come to hold `perm` under the monitor's own
    /// authorization semantics?
    ///
    /// The analysis runs on the compact-state search engine
    /// (`adminref_core::search`); `config.jobs` fans frontier expansion
    /// out over worker threads, and `config.auth_mode` is overridden
    /// with the monitor's configured mode so the answer reflects what
    /// this monitor would actually authorize. Runs on a snapshot, so
    /// the monitor stays live while the (possibly long) search runs.
    pub fn analyze_perm_reachable(
        &self,
        entity: Entity,
        perm: Perm,
        config: SafetyConfig,
    ) -> ReachabilityAnswer {
        let (mut universe, policy) = self.snapshot();
        let config = SafetyConfig {
            auth_mode: self.auth_mode(),
            ..config
        };
        perm_reachable(&mut universe, &policy, entity, perm, config)
    }

    /// For durable monitors: folds the command log into a fresh snapshot.
    /// A no-op on in-memory monitors.
    pub fn compact(&self) -> Result<(), MonitorError> {
        let mut inner = self.inner.write();
        match &mut inner.backend {
            Backend::Memory { .. } => Ok(()),
            Backend::Durable(store) => {
                store.compact()?;
                Ok(())
            }
        }
    }

    /// For durable monitors: forces the log to stable storage. A no-op on
    /// in-memory monitors.
    pub fn sync(&self) -> Result<(), MonitorError> {
        let mut inner = self.inner.write();
        match &mut inner.backend {
            Backend::Memory { .. } => Ok(()),
            Backend::Durable(store) => {
                store.sync()?;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adminref_core::ordering::OrderingMode;
    use adminref_core::policy::PolicyBuilder;
    use adminref_core::universe::Edge;

    fn hospital() -> (Universe, Policy) {
        let mut b = PolicyBuilder::new()
            .assign("jane", "hr")
            .assign("diana", "staff")
            .declare_user("bob")
            .inherit("staff", "nurse")
            .inherit("staff", "dbusr2")
            .permit("dbusr2", "write", "t3")
            .permit("nurse", "read", "t1");
        let (bob, staff) = {
            let u = b.universe_mut();
            (u.find_user("bob").unwrap(), u.find_role("staff").unwrap())
        };
        let g = b.universe_mut().grant_user_role(bob, staff);
        let r = b.universe_mut().revoke_user_role(bob, staff);
        b = b.assign_priv("hr", g).assign_priv("hr", r);
        b.finish()
    }

    fn monitor(mode: AuthMode) -> (ReferenceMonitor, Universe) {
        let (uni, policy) = hospital();
        let m = ReferenceMonitor::new(
            uni.clone(),
            policy,
            MonitorConfig {
                auth_mode: mode,
                audit_capacity: 64,
            },
        );
        (m, uni)
    }

    #[test]
    fn submit_and_audit() {
        let (m, uni) = monitor(AuthMode::Explicit);
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let out = m
            .submit(&Command::grant(jane, Edge::UserRole(bob, staff)))
            .unwrap();
        assert!(out.executed());
        assert_eq!(m.version(), 1);
        let events = m.audit_events();
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0].decision, Decision::Executed { .. }));
        // An unauthorized command is audited as refused and bumps nothing.
        let out2 = m
            .submit(&Command::grant(bob, Edge::UserRole(jane, staff)))
            .unwrap();
        assert!(!out2.executed());
        assert_eq!(m.version(), 1);
        assert_eq!(m.audit_events().len(), 2);
    }

    #[test]
    fn sessions_follow_policy_changes() {
        let (m, mut uni) = monitor(AuthMode::Explicit);
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let nurse = uni.find_role("nurse").unwrap();
        let sid = m.create_session(bob);
        assert!(m.activate_role(sid, staff).is_err(), "bob not yet assigned");
        m.submit(&Command::grant(jane, Edge::UserRole(bob, staff)))
            .unwrap();
        m.activate_role(sid, staff).unwrap();
        let read_t1 = uni.perm("read", "t1");
        assert!(m.check_access(sid, read_t1).unwrap());
        assert!(m.deactivate_role(sid, staff).unwrap());
        assert!(!m.check_access(sid, read_t1).unwrap());
        let _ = nurse;
    }

    #[test]
    fn unknown_sessions_are_errors() {
        let (m, mut uni) = monitor(AuthMode::Explicit);
        let ghost = SessionId(999);
        let nurse = uni.find_role("nurse").unwrap();
        assert!(matches!(
            m.activate_role(ghost, nurse),
            Err(MonitorError::UnknownSession(_))
        ));
        let perm = uni.perm("read", "t1");
        assert!(matches!(
            m.check_access(ghost, perm),
            Err(MonitorError::UnknownSession(_))
        ));
        assert!(!m.drop_session(ghost));
    }

    #[test]
    fn ordered_mode_flexworker_flow() {
        let (m, uni) = monitor(AuthMode::Ordered(OrderingMode::Extended));
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let dbusr2 = uni.find_role("dbusr2").unwrap();
        // Jane holds only ¤(bob, staff); ordered mode lets her place Bob
        // directly into dbusr2 (Example 4).
        let out = m
            .submit(&Command::grant(jane, Edge::UserRole(bob, dbusr2)))
            .unwrap();
        assert!(out.executed());
        let auth = out.authorization.unwrap();
        assert_ne!(auth.held, auth.target, "implicit authorization was used");
        // The audit trail captures both privileges.
        let events = m.audit_events();
        assert!(matches!(
            events[0].decision,
            Decision::Executed { held, target } if held != target
        ));
    }

    #[test]
    fn explicit_mode_refuses_flexworker_flow() {
        let (m, uni) = monitor(AuthMode::Explicit);
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let dbusr2 = uni.find_role("dbusr2").unwrap();
        let out = m
            .submit(&Command::grant(jane, Edge::UserRole(bob, dbusr2)))
            .unwrap();
        assert!(!out.executed());
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let (m, mut uni) = monitor(AuthMode::Explicit);
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let diana = uni.find_user("diana").unwrap();
        let read_t1 = uni.perm("read", "t1");
        let sid = m.create_session(diana);
        m.activate_role(sid, staff).unwrap();
        crossbeam::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    for _ in 0..200 {
                        let _ = m.check_access(sid, read_t1).unwrap();
                        let _ = m.with_state(|_, p| p.edge_count());
                    }
                });
            }
            scope.spawn(|_| {
                for _ in 0..50 {
                    m.submit(&Command::grant(jane, Edge::UserRole(bob, staff)))
                        .unwrap();
                    m.submit(&Command::revoke(jane, Edge::UserRole(bob, staff)))
                        .unwrap();
                }
            });
        })
        .unwrap();
        // 100 policy-changing commands (50 grants + 50 revokes).
        assert_eq!(m.version(), 100);
        assert!(m.check_access(sid, read_t1).unwrap());
    }

    #[test]
    fn durable_monitor_compacts_and_syncs() {
        use adminref_store::{PolicyStore, TempDir};
        let (uni, policy) = hospital();
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let dir = TempDir::new("monitor-compact").unwrap();
        let store =
            PolicyStore::create(dir.path(), uni.clone(), policy, AuthMode::Explicit).unwrap();
        let m = ReferenceMonitor::with_store(store, MonitorConfig::default());
        m.submit(&Command::grant(jane, Edge::UserRole(bob, staff)))
            .unwrap();
        m.sync().unwrap();
        m.compact().unwrap();
        drop(m);
        let (store, report) = PolicyStore::open(dir.path(), AuthMode::Explicit).unwrap();
        assert_eq!(report.replayed, 0, "log was compacted away");
        assert!(store.policy().contains_edge(Edge::UserRole(bob, staff)));
        // In-memory monitors: both calls are no-ops.
        let (uni2, policy2) = hospital();
        let mem = ReferenceMonitor::new(uni2, policy2, MonitorConfig::default());
        mem.sync().unwrap();
        mem.compact().unwrap();
    }

    #[test]
    fn analysis_entry_point_finds_witness() {
        // The caller's auth_mode is overridden with the monitor's own
        // mode (the answer must reflect what this monitor would
        // authorize); the witness is minimal and identical under
        // parallel expansion.
        let (m_explicit, mut uni) = monitor(AuthMode::Explicit);
        let bob = uni.find_user("bob").unwrap();
        let write_t3 = uni.perm("write", "t3");
        let config = SafetyConfig {
            max_steps: 2,
            auth_mode: AuthMode::Ordered(OrderingMode::Extended), // overridden
            ..SafetyConfig::default()
        };
        let answer = m_explicit.analyze_perm_reachable(Entity::User(bob), write_t3, config);
        let ReachabilityAnswer::Reachable { witness } = answer else {
            panic!("bob can reach (write, t3) via staff");
        };
        assert_eq!(witness.len(), 1);
        // Parallel expansion returns the identical witness.
        let par = m_explicit.analyze_perm_reachable(
            Entity::User(bob),
            write_t3,
            SafetyConfig { jobs: 4, ..config },
        );
        let ReachabilityAnswer::Reachable { witness: par_witness } = par else {
            panic!("parallel analysis changed the variant");
        };
        assert_eq!(witness.commands(), par_witness.commands());
    }

    #[test]
    fn analysis_runs_on_a_snapshot() {
        // The search must not observe commands submitted after it
        // snapshotted, and the monitor stays usable afterwards.
        let (m, mut uni) = monitor(AuthMode::Explicit);
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let read_t1 = uni.perm("read", "t1");
        let answer =
            m.analyze_perm_reachable(Entity::User(bob), read_t1, SafetyConfig::default());
        assert!(answer.is_reachable());
        m.submit(&Command::grant(jane, Edge::UserRole(bob, staff)))
            .unwrap();
        assert_eq!(m.version(), 1);
    }

    #[test]
    fn snapshot_is_isolated() {
        let (m, uni) = monitor(AuthMode::Explicit);
        let (uni2, policy2) = m.snapshot();
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        m.submit(&Command::grant(jane, Edge::UserRole(bob, staff)))
            .unwrap();
        assert!(
            !policy2.contains_edge(Edge::UserRole(bob, staff)),
            "snapshot unaffected by later commands"
        );
        assert_eq!(uni2.tag(), uni.tag());
    }
}
