//! The RBAC reference monitor.
//!
//! One `ReferenceMonitor` owns the live administrative policy (either in
//! memory or backed by a durable [`PolicyStore`]), manages user sessions
//! (§2 of the paper), executes administrative commands under a configured
//! [`AuthMode`] (Definition 5, optionally with the §4.1 ordering), and
//! records every decision in the audit log.
//!
//! # Architecture: batched single writer, lock-free readers
//!
//! The paper separates rare administrative refinement steps from the
//! high-frequency authorization checks they govern, and the monitor's
//! concurrency model mirrors that split:
//!
//! * **Read path** — [`check_access`](ReferenceMonitor::check_access),
//!   [`snapshot`](ReferenceMonitor::snapshot),
//!   [`with_state`](ReferenceMonitor::with_state) and
//!   [`read_snapshot`](ReferenceMonitor::read_snapshot) never take the
//!   write path's lock. The current policy lives in an immutable,
//!   versioned [`PolicySnapshot`] (universe + policy + prebuilt
//!   [`ReachIndex`](adminref_core::reach::ReachIndex)) published through
//!   a lock-free epoch cell (`arc_swap`); a read pins the current epoch,
//!   clones the `Arc`, and answers from the index — no graph walk, no
//!   contention with the admin writer. Session lookups go through a
//!   separate sessions `RwLock` that administrative commands never touch.
//! * **Write path** — [`submit`](ReferenceMonitor::submit) and
//!   [`submit_queue`](ReferenceMonitor::submit_queue) funnel through one
//!   writer mutex. A whole queue is applied as **one batch**: commands
//!   execute serially under Definition 5 (so outcomes and the audit
//!   sequence are identical to a serial monitor), the durable backend
//!   syncs its WAL once per batch, the derived index is **delta-derived
//!   from the parent epoch** once per batch
//!   ([`PolicySnapshot::next`] — structural sharing plus the batch's
//!   edge deltas, with a from-scratch rebuild fallback for
//!   SCC-restructuring batches or via
//!   [`PublishMode::FullRebuild`]), and the new snapshot is published
//!   atomically with `epoch = version() + 1`. Readers therefore observe
//!   only whole batches: every concurrent read agrees with either the
//!   pre- or the post-batch policy, never a torn intermediate state.
//!   After a batch containing revocations publishes, sessions are
//!   revalidated: an active role whose `u →φ r` justification the batch
//!   severed is force-deactivated (and recorded as a
//!   [`SessionRevocation`]) — a stale session can no longer keep
//!   granting through a revoked role.
//!
//! The previous single-`RwLock` design is preserved as
//! [`LockedMonitor`](crate::locked::LockedMonitor) for differential
//! testing and as the baseline of the `monitor_throughput` benchmark and
//! `adminref bench-monitor`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use arc_swap::ArcSwap;
use parking_lot::{Mutex, RwLock};

use adminref_core::admission::{self, AdmissionReport, ConstraintSet, ImpactReport};
use adminref_core::command::{Command, CommandQueue};
use adminref_core::ids::{Entity, Perm, RoleId, UserId};
use adminref_core::lint::{lint_policy, LintConfig, LintReport};
use adminref_core::policy::Policy;
use adminref_core::reach::EdgeDelta;
use adminref_core::safety::{perm_reachable, ReachabilityAnswer, SafetyConfig};
use adminref_core::session::{Session, SessionError};
use adminref_core::snapshot::{batch_deltas, PolicySnapshot, PublishMode, PublishPath};
use adminref_core::transition::{step, AuthMode, StepOutcome};
use adminref_core::universe::{Edge, Universe};
use adminref_core::verify::specs::SessionView;
use adminref_store::{PolicyStore, RecoveryReport, StoreError};

use crate::audit::{AuditEvent, AuditLog, Decision, SessionRevocation};

/// Monitor configuration.
#[derive(Clone, Copy, Debug)]
pub struct MonitorConfig {
    /// How administrative commands are authorized.
    pub auth_mode: AuthMode,
    /// Audit log retention.
    pub audit_capacity: usize,
    /// How published snapshots are derived from their parent epoch
    /// (defaults to the process-wide [`PublishMode::from_env`]).
    pub publish_mode: PublishMode,
    /// Auto-compaction threshold for durable backends: after a batch,
    /// if the WAL holds at least this many entries it is folded into a
    /// fresh snapshot, so a long-running monitor never replays an
    /// unbounded log on reopen. `None` disables auto-compaction.
    pub autocompact_log_len: Option<u64>,
    /// Whether the publish-time admission gate runs: when `true` (the
    /// default) and a non-empty [`ConstraintSet`] is declared, every
    /// batch is statically checked against the candidate post-batch
    /// state and refused with [`MonitorError::Admission`] *before* it
    /// touches the WAL, audit log, or published epoch.
    pub admission_enabled: bool,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            auth_mode: AuthMode::Explicit,
            audit_capacity: 4096,
            publish_mode: PublishMode::default(),
            autocompact_log_len: Some(4096),
            admission_enabled: true,
        }
    }
}

/// Errors surfaced by the monitor.
#[derive(Debug)]
pub enum MonitorError {
    /// The session id is unknown (or was closed).
    UnknownSession(SessionId),
    /// Session-level refusal (e.g. role activation denied).
    Session(SessionError),
    /// Durable backend failure.
    Store(StoreError),
    /// The admission gate refused the batch: the candidate post-batch
    /// state violates the declared constraint set. Nothing was logged,
    /// audited, or published.
    Admission(AdmissionReport),
}

impl std::fmt::Display for MonitorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MonitorError::UnknownSession(id) => write!(f, "unknown session {id:?}"),
            MonitorError::Session(e) => write!(f, "session error: {e}"),
            MonitorError::Store(e) => write!(f, "store error: {e}"),
            MonitorError::Admission(report) => write!(f, "{report}"),
        }
    }
}

impl std::error::Error for MonitorError {}

impl From<SessionError> for MonitorError {
    fn from(e: SessionError) -> Self {
        MonitorError::Session(e)
    }
}

impl From<StoreError> for MonitorError {
    fn from(e: StoreError) -> Self {
        MonitorError::Store(e)
    }
}

/// Handle to a user session.
///
/// The inner id is private: the only way to obtain a live handle is
/// [`ReferenceMonitor::create_session`] (or the service protocol's
/// `CreateSession` request), so a `SessionId` in circulation always
/// names a session some monitor actually issued. For serialization
/// boundaries (wire protocols, logs) use [`raw`](Self::raw) /
/// [`from_raw`](Self::from_raw) — reconstructing a handle is an
/// explicit, greppable act, not an incidental struct literal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SessionId(u64);

impl SessionId {
    /// Reconstructs a handle from its raw id (e.g. deserialized from a
    /// wire protocol). The id is only meaningful to the monitor that
    /// issued it; a forged or stale id is refused as
    /// [`MonitorError::UnknownSession`] at the next use.
    pub fn from_raw(raw: u64) -> Self {
        SessionId(raw)
    }

    /// The raw id, for serialization.
    pub fn raw(self) -> u64 {
        self.0
    }
}

// The Memory variant is much larger than the boxed Durable variant; a
// monitor holds exactly one Backend for its whole lifetime, so the size
// difference has no practical cost.
#[allow(clippy::large_enum_variant)]
enum Backend {
    Memory { universe: Universe, policy: Policy },
    Durable(Box<PolicyStore>),
}

impl Backend {
    fn universe(&self) -> &Universe {
        match self {
            Backend::Memory { universe, .. } => universe,
            Backend::Durable(store) => store.universe(),
        }
    }

    fn policy(&self) -> &Policy {
        match self {
            Backend::Memory { policy, .. } => policy,
            Backend::Durable(store) => store.policy(),
        }
    }

    /// Applies one batch: serial Definition-5 execution per command, one
    /// WAL sync per batch on the durable backend. Returns the outcomes
    /// of every command that executed plus the first backend error, if
    /// any — on a mid-batch store failure the applied prefix is exactly
    /// `outcomes` (the store's log-before-apply discipline guarantees
    /// the failing command changed nothing), so the caller can audit
    /// and publish it before surfacing the error.
    fn execute_batch(
        &mut self,
        commands: &[Command],
        mode: AuthMode,
    ) -> (Vec<StepOutcome>, Option<MonitorError>) {
        match self {
            Backend::Memory { universe, policy } => (
                commands
                    .iter()
                    .map(|cmd| step(universe, policy, cmd, mode))
                    .collect(),
                None,
            ),
            Backend::Durable(store) => {
                debug_assert_eq!(store.auth_mode(), mode, "mode set at store creation");
                let (outcomes, status) = store.execute_batch(commands.iter());
                (outcomes, status.err().map(MonitorError::from))
            }
        }
    }
}

/// Write-side state: the live backend plus the publication counter. Only
/// the batched writer (and `compact`/`sync`) ever locks this.
struct Writer {
    backend: Backend,
    epoch: u64,
}

/// One published epoch, as observed by a replication hook: the epoch id,
/// the exact edge deltas that led from the parent epoch's policy to this
/// one, and the canonical state checksum of the *post-apply* policy (see
/// [`adminref_core::checksum`]). A replica that applies `deltas` to the
/// parent state must land on `checksum`, or it has diverged.
#[derive(Clone, Debug)]
pub struct PublishEvent {
    /// The newly published epoch id.
    pub epoch: u64,
    /// The batch's applied edge changes, in execution order.
    pub deltas: Vec<EdgeDelta>,
    /// Checksum of the policy state *after* applying the deltas.
    pub checksum: u64,
}

/// A publish subscription callback; see
/// [`ReferenceMonitor::set_publish_hook`].
pub type PublishHook = Box<dyn Fn(&PublishEvent) + Send + Sync>;

/// Why a replica refused to apply a delta frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReplicaApplyError {
    /// The frame's epoch is not the next epoch after the replica's
    /// current one: a stale duplicate (`got <= current`) is skippable,
    /// a gap (`got > expected`) means frames were missed and the
    /// replica must re-bootstrap.
    EpochGap {
        /// The epoch the replica expected next (`current + 1`).
        expected: u64,
        /// The frame's epoch.
        got: u64,
    },
    /// A delta names an id outside the replica's universe, or toggles an
    /// edge whose membership already matched — the replica's state is
    /// not the frame's parent state. Re-bootstrap.
    ForeignDelta {
        /// The frame's epoch.
        epoch: u64,
    },
    /// The post-apply checksum does not match the frame's: the replica
    /// diverged somewhere before or inside this frame. Nothing was
    /// published; re-bootstrap.
    Divergence {
        /// The frame's epoch.
        epoch: u64,
        /// The checksum the frame promised.
        expected: u64,
        /// The checksum the replica computed.
        actual: u64,
    },
    /// Replica application is only supported on in-memory backends (a
    /// follower's state is a cache of the primary's durable one).
    DurableBackend,
}

impl std::fmt::Display for ReplicaApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaApplyError::EpochGap { expected, got } => {
                write!(f, "epoch gap: expected {expected}, frame carries {got}")
            }
            ReplicaApplyError::ForeignDelta { epoch } => {
                write!(f, "frame for epoch {epoch} carries deltas foreign to this state")
            }
            ReplicaApplyError::Divergence {
                epoch,
                expected,
                actual,
            } => write!(
                f,
                "state divergence at epoch {epoch}: expected checksum {expected:#018x}, computed {actual:#018x}"
            ),
            ReplicaApplyError::DurableBackend => {
                write!(f, "replica apply requires an in-memory backend")
            }
        }
    }
}

impl std::error::Error for ReplicaApplyError {}

/// `true` iff this applied edge delta can sever some session's `u →φ r`
/// justification: only *removals* of `UA`/`RH` edges can — additions
/// are monotone, and `PA†` edges play no part in activation.
pub(crate) fn severs_activation(edge: Edge, added: bool) -> bool {
    !added && !matches!(edge, Edge::RolePriv(..))
}

/// The revalidation sweep both monitors run after a policy-changing
/// revocation: force-deactivates every active role whose `u →φ r` no
/// longer holds (per `reaches`), recording each forced deactivation at
/// `epoch`. One shared implementation keeps the epoch monitor and the
/// differential [`LockedMonitor`](crate::locked::LockedMonitor)
/// baseline in lockstep as the semantics evolve.
pub(crate) fn sweep_stale_activations(
    sessions: &mut HashMap<SessionId, Session>,
    audit: &mut AuditLog,
    epoch: u64,
    reaches: impl Fn(UserId, RoleId) -> bool,
) {
    for (&id, session) in sessions.iter_mut() {
        let user = session.user();
        let stale: Vec<RoleId> = session
            .active_roles()
            .filter(|&r| !reaches(user, r))
            .collect();
        for role in stale {
            session.deactivate(role);
            audit.record_revocation(id, user, role, epoch);
        }
    }
}

/// The reference monitor.
pub struct ReferenceMonitor {
    /// Published read-side state; see the module docs.
    snapshot: ArcSwap<PolicySnapshot>,
    /// Serialized write-side state.
    writer: Mutex<Writer>,
    /// Sessions, decoupled from the policy state (admin commands never
    /// lock this; session churn never blocks the writer).
    sessions: RwLock<HashMap<SessionId, Session>>,
    next_session: AtomicU64,
    /// The audit ring under its own short-critical-section lock, so
    /// auditors reading history don't stall command execution.
    audit: Mutex<AuditLog>,
    /// Publications that took the incremental derivation path.
    publishes_incremental: AtomicU64,
    /// Publications that rebuilt the index from scratch.
    publishes_full: AtomicU64,
    /// Auto-compactions that failed (best-effort maintenance; the
    /// batch itself was already durable).
    autocompact_failures: AtomicU64,
    /// Safety analyses served ([`analyze_perm_reachable`](Self::analyze_perm_reachable)).
    analyses_run: AtomicU64,
    /// Of those, how many came back `Unknown` — truncated with no
    /// unbounded engine able to close the instance.
    analyses_indefinite: AtomicU64,
    /// Lint passes served ([`lint_policy`](Self::lint_policy)).
    lints_run: AtomicU64,
    /// Total findings those passes produced.
    lint_findings: AtomicU64,
    /// What recovery found when the durable backend was opened (`None`
    /// for in-memory monitors and freshly created stores).
    recovery: Option<RecoveryReport>,
    /// Replication subscription: called once per published epoch, in
    /// epoch order, with the batch's deltas and post-apply checksum.
    publish_hook: RwLock<Option<PublishHook>>,
    /// The declared admission constraint set, mirrored lock-free for
    /// the read/analyze path. The writer lock serializes updates (and,
    /// on durable backends, the WAL append) before the swap.
    constraints: ArcSwap<ConstraintSet>,
    /// Batches evaluated by the admission gate.
    admission_checks: AtomicU64,
    /// Of those, batches the gate refused.
    admission_refusals: AtomicU64,
    config: MonitorConfig,
}

impl ReferenceMonitor {
    /// An in-memory monitor over the given state.
    pub fn new(universe: Universe, policy: Policy, config: MonitorConfig) -> Self {
        policy.check_universe(&universe);
        let snapshot = PolicySnapshot::build(universe.clone(), policy.clone(), 0);
        ReferenceMonitor {
            snapshot: ArcSwap::from_pointee(snapshot),
            writer: Mutex::new(Writer {
                backend: Backend::Memory { universe, policy },
                epoch: 0,
            }),
            sessions: RwLock::new(HashMap::new()),
            next_session: AtomicU64::new(0),
            audit: Mutex::new(AuditLog::new(config.audit_capacity)),
            publishes_incremental: AtomicU64::new(0),
            publishes_full: AtomicU64::new(0),
            autocompact_failures: AtomicU64::new(0),
            analyses_run: AtomicU64::new(0),
            analyses_indefinite: AtomicU64::new(0),
            lints_run: AtomicU64::new(0),
            lint_findings: AtomicU64::new(0),
            recovery: None,
            publish_hook: RwLock::new(None),
            constraints: ArcSwap::from_pointee(ConstraintSet::default()),
            admission_checks: AtomicU64::new(0),
            admission_refusals: AtomicU64::new(0),
            config,
        }
    }

    /// A monitor over a durable store (the store's auth mode wins).
    pub fn with_store(store: PolicyStore, config: MonitorConfig) -> Self {
        Self::with_store_recovered(store, None, config)
    }

    /// A monitor over a durable store whose open-time
    /// [`RecoveryReport`] is retained and queryable
    /// ([`recovery_report`](Self::recovery_report)) — operators reading
    /// `Stats` see whether recovery truncated a torn tail or replayed
    /// divergent entries, instead of the report being dropped on the
    /// floor at open.
    pub fn with_store_recovered(
        store: PolicyStore,
        recovery: Option<RecoveryReport>,
        config: MonitorConfig,
    ) -> Self {
        let config = MonitorConfig {
            auth_mode: store.auth_mode(),
            ..config
        };
        let snapshot = PolicySnapshot::build(store.universe().clone(), store.policy().clone(), 0);
        let constraints = store.constraints().clone();
        ReferenceMonitor {
            snapshot: ArcSwap::from_pointee(snapshot),
            writer: Mutex::new(Writer {
                backend: Backend::Durable(Box::new(store)),
                epoch: 0,
            }),
            sessions: RwLock::new(HashMap::new()),
            next_session: AtomicU64::new(0),
            audit: Mutex::new(AuditLog::new(config.audit_capacity)),
            publishes_incremental: AtomicU64::new(0),
            publishes_full: AtomicU64::new(0),
            autocompact_failures: AtomicU64::new(0),
            analyses_run: AtomicU64::new(0),
            analyses_indefinite: AtomicU64::new(0),
            lints_run: AtomicU64::new(0),
            lint_findings: AtomicU64::new(0),
            recovery,
            publish_hook: RwLock::new(None),
            constraints: ArcSwap::from_pointee(constraints),
            admission_checks: AtomicU64::new(0),
            admission_refusals: AtomicU64::new(0),
            config,
        }
    }

    /// Submits one administrative command (a batch of one); records the
    /// decision in the audit log.
    pub fn submit(&self, cmd: &Command) -> Result<StepOutcome, MonitorError> {
        let outcomes = self.submit_batch(std::slice::from_ref(cmd))?;
        Ok(outcomes[0])
    }

    /// Submits a whole queue, front to back, as **one batch**: outcomes
    /// and audit records are identical to submitting each command
    /// individually, but the WAL is synced once, the read index is
    /// rebuilt once, and exactly one new epoch is published — concurrent
    /// readers see either the pre- or the post-queue policy, never an
    /// intermediate step.
    pub fn submit_queue(&self, queue: &CommandQueue) -> Result<Vec<StepOutcome>, MonitorError> {
        let commands: Vec<Command> = queue.iter().copied().collect();
        self.submit_batch(&commands)
    }

    /// Submits a slice of commands as one batch. See
    /// [`submit_queue`](Self::submit_queue).
    ///
    /// On a durable-backend failure mid-batch the applied prefix is
    /// still audited and published (the store's log-before-apply
    /// discipline keeps state, WAL, audit, and the published snapshot
    /// agreeing on exactly that prefix) and the error is returned.
    pub fn submit_batch(&self, commands: &[Command]) -> Result<Vec<StepOutcome>, MonitorError> {
        let (outcomes, error) = self.submit_batch_outcomes(commands);
        match error {
            Some(e) => Err(e),
            None => Ok(outcomes),
        }
    }

    /// Submits a slice of commands as one batch, returning the outcomes
    /// of the **applied prefix** alongside the first backend error (if
    /// any) instead of discarding them.
    ///
    /// This is the write primitive group-commit servers build on: when a
    /// durable backend fails mid-batch, `outcomes.len()` tells the
    /// caller exactly how many leading commands executed (and were
    /// audited and published), so per-request results can still be
    /// distributed to the submitters whose commands lie inside the
    /// prefix. `error.is_none()` iff the whole batch was applied.
    pub fn submit_batch_outcomes(
        &self,
        commands: &[Command],
    ) -> (Vec<StepOutcome>, Option<MonitorError>) {
        if commands.is_empty() {
            return (Vec::new(), None);
        }
        let mut writer = self.writer.lock();
        // Admission gate: simulate the batch on scratch clones and check
        // the candidate state against the declared constraints *before*
        // anything touches the backend — a refused batch leaves the WAL,
        // audit log, epoch, and published snapshot untouched.
        if self.config.admission_enabled {
            let constraints = self.constraints.load_full();
            if !constraints.is_empty() {
                self.admission_checks.fetch_add(1, Ordering::Relaxed);
                if let Err(report) = admission::admit_batch(
                    writer.backend.universe(),
                    writer.backend.policy(),
                    commands,
                    &constraints,
                    self.config.auth_mode,
                ) {
                    self.admission_refusals.fetch_add(1, Ordering::Relaxed);
                    return (Vec::new(), Some(MonitorError::Admission(report)));
                }
            }
        }
        let terms_before = writer.backend.universe().term_count();
        let (outcomes, error) = writer
            .backend
            .execute_batch(commands, self.config.auth_mode);
        // Audit while still holding the writer lock, so the global audit
        // order equals the execution (and WAL) order across batches.
        {
            let mut audit = self.audit.lock();
            for (cmd, outcome) in commands.iter().zip(&outcomes) {
                let decision = match outcome.authorization {
                    Some(auth) => Decision::Executed {
                        held: auth.held,
                        target: auth.target,
                    },
                    None => Decision::Refused,
                };
                audit.record(*cmd, decision, outcome.changed);
            }
        }
        // Publish one new epoch iff the batch had any observable effect:
        // an edge change, or a newly interned privilege term (ordered-
        // mode authorization interns targets; audit rendering needs them
        // resolvable in the published universe).
        let changed = outcomes.iter().any(|o| o.changed)
            || writer.backend.universe().term_count() != terms_before;
        if changed {
            writer.epoch += 1;
            // The child snapshot is derived from the published parent:
            // the universe Arc is reused unless the batch interned new
            // names, the policy clone is three Arc bumps, and the read
            // index is delta-maintained from the batch's edge deltas
            // (with a from-scratch fallback; see PolicySnapshot::next).
            let parent = self.snapshot.load_full();
            let deltas = batch_deltas(commands, &outcomes);
            let (snapshot, path) = PolicySnapshot::next(
                &parent,
                writer.backend.universe(),
                writer.backend.policy(),
                &deltas,
                writer.epoch,
                self.config.publish_mode,
            );
            match path {
                PublishPath::Incremental => &self.publishes_incremental,
                PublishPath::FullRebuild => &self.publishes_full,
            }
            .fetch_add(1, Ordering::Relaxed);
            let snapshot = Arc::new(snapshot);
            self.snapshot.store(Arc::clone(&snapshot));
            if deltas.iter().any(|d| severs_activation(d.edge, d.added)) {
                self.revalidate_sessions(&snapshot);
            }
            // Replication: notify the subscription hook while the writer
            // lock is still held, so hooks observe epochs strictly in
            // publication order with the exact deltas of each batch.
            self.notify_publish(PublishEvent {
                epoch: writer.epoch,
                deltas,
                checksum: snapshot.checksum(),
            });
        }
        // Post-publish WAL maintenance: fold an overgrown log into a
        // fresh snapshot so reopen never replays unbounded history.
        // Best-effort — the batch is already durable either way, and a
        // later batch retries; failures are counted for operators.
        if let Some(threshold) = self.config.autocompact_log_len {
            if let Backend::Durable(store) = &mut writer.backend {
                if store.log_len() >= threshold && store.compact().is_err() {
                    self.autocompact_failures.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        (outcomes, error)
    }

    /// Drops every active session role whose `u →φ r` justification no
    /// longer holds in `snapshot`, recording each forced deactivation.
    /// Called after publishing a batch that removed UA/RH edges.
    fn revalidate_sessions(&self, snapshot: &PolicySnapshot) {
        let mut sessions = self.sessions.write();
        let mut audit = self.audit.lock();
        sweep_stale_activations(&mut sessions, &mut audit, snapshot.epoch, |user, role| {
            snapshot
                .reach()
                .reach_entity(Entity::User(user), Entity::Role(role))
        });
    }

    /// Installs (or replaces) the publish subscription hook. The hook is
    /// called once per published epoch, in strict epoch order, with the
    /// batch's [`PublishEvent`] — the primitive a replication hub builds
    /// its delta stream on. The hook runs with the writer lock held, so
    /// it must not call back into the write path; a slow hook
    /// backpressures administrative writes (reads stay lock-free).
    pub fn set_publish_hook(&self, hook: Option<PublishHook>) {
        *self.publish_hook.write() = hook;
    }

    fn notify_publish(&self, event: PublishEvent) {
        let hook = self.publish_hook.read();
        if let Some(hook) = hook.as_ref() {
            hook(&event);
        }
    }

    /// Replica bootstrap: replaces this monitor's entire state with
    /// `(universe, policy, constraints)` at `epoch`, publishing a
    /// freshly built snapshot and revalidating live sessions against it.
    /// Carrying the constraint set means a promoted replica keeps
    /// enforcing the primary's admission gate. Only valid on in-memory
    /// monitors (a follower's state is a cache of the primary's durable
    /// one). Returns the installed state's checksum.
    pub fn install_replica_state(
        &self,
        universe: Universe,
        policy: Policy,
        epoch: u64,
        constraints: ConstraintSet,
    ) -> Result<u64, ReplicaApplyError> {
        let mut writer = self.writer.lock();
        if matches!(writer.backend, Backend::Durable(_)) {
            return Err(ReplicaApplyError::DurableBackend);
        }
        self.constraints.store(Arc::new(constraints));
        let snapshot = PolicySnapshot::build(universe.clone(), policy.clone(), epoch);
        let checksum = snapshot.checksum();
        writer.backend = Backend::Memory { universe, policy };
        writer.epoch = epoch;
        self.publishes_full.fetch_add(1, Ordering::Relaxed);
        let snapshot = Arc::new(snapshot);
        self.snapshot.store(Arc::clone(&snapshot));
        // A bootstrap can jump the state arbitrarily (it may *remove*
        // edges relative to the previous state), so always sweep.
        self.revalidate_sessions(&snapshot);
        Ok(checksum)
    }

    /// Replica apply: advances this monitor's state by one replicated
    /// epoch, applying `deltas` through the same incremental
    /// [`PolicySnapshot::next`] path the primary's publish took and
    /// verifying the post-apply state checksum against
    /// `expected_checksum`.
    ///
    /// All-or-nothing: on any refusal ([`ReplicaApplyError`]) the
    /// replica's published state is untouched — a diverged or gapped
    /// frame never becomes readable. The caller is expected to
    /// re-bootstrap via [`install_replica_state`](Self::install_replica_state).
    pub fn apply_replica_deltas(
        &self,
        epoch: u64,
        deltas: &[EdgeDelta],
        expected_checksum: u64,
    ) -> Result<(), ReplicaApplyError> {
        let mut writer = self.writer.lock();
        let expected_epoch = writer.epoch + 1;
        if epoch != expected_epoch {
            return Err(ReplicaApplyError::EpochGap {
                expected: expected_epoch,
                got: epoch,
            });
        }
        let Backend::Memory { universe, policy } = &mut writer.backend else {
            return Err(ReplicaApplyError::DurableBackend);
        };
        // Apply to a scratch clone (three Arc bumps; mutation copies only
        // the touched relation) so refusals leave the live state intact.
        let mut next_policy = policy.clone();
        for d in deltas {
            let in_bounds = match d.edge {
                Edge::UserRole(u, r) => {
                    u.index() < universe.user_count() && r.index() < universe.role_count()
                }
                Edge::RoleRole(r, s) => {
                    r.index() < universe.role_count() && s.index() < universe.role_count()
                }
                Edge::RolePriv(r, p) => {
                    r.index() < universe.role_count() && p.index() < universe.term_count()
                }
            };
            // An id beyond this universe, or a toggle that didn't change
            // membership, means our state is not the frame's parent.
            let changed = in_bounds
                && if d.added {
                    next_policy.add_edge(d.edge)
                } else {
                    next_policy.remove_edge(d.edge)
                };
            if !changed {
                return Err(ReplicaApplyError::ForeignDelta { epoch });
            }
        }
        let parent = self.snapshot.load_full();
        let (snapshot, path) = PolicySnapshot::next(
            &parent,
            universe,
            &next_policy,
            deltas,
            epoch,
            self.config.publish_mode,
        );
        if snapshot.checksum() != expected_checksum {
            return Err(ReplicaApplyError::Divergence {
                epoch,
                expected: expected_checksum,
                actual: snapshot.checksum(),
            });
        }
        *policy = next_policy;
        writer.epoch = epoch;
        match path {
            PublishPath::Incremental => &self.publishes_incremental,
            PublishPath::FullRebuild => &self.publishes_full,
        }
        .fetch_add(1, Ordering::Relaxed);
        let snapshot = Arc::new(snapshot);
        self.snapshot.store(Arc::clone(&snapshot));
        if deltas.iter().any(|d| severs_activation(d.edge, d.added)) {
            self.revalidate_sessions(&snapshot);
        }
        // Forward the frame to any downstream subscribers (chained
        // replication): the event is byte-identical to the primary's.
        self.notify_publish(PublishEvent {
            epoch,
            deltas: deltas.to_vec(),
            checksum: expected_checksum,
        });
        Ok(())
    }

    /// Starts a session for `user`.
    pub fn create_session(&self, user: UserId) -> SessionId {
        let id = SessionId::from_raw(self.next_session.fetch_add(1, Ordering::Relaxed));
        self.sessions.write().insert(id, Session::new(user));
        id
    }

    /// Activates a role in a session (`u →φ r` against the current
    /// published epoch).
    pub fn activate_role(&self, session: SessionId, role: RoleId) -> Result<(), MonitorError> {
        let mut sessions = self.sessions.write();
        // Load the snapshot *under* the sessions lock: a snapshot read
        // before acquiring it could predate a concurrent revoke batch
        // whose revalidation sweep (which takes this same lock) has
        // already run — the activation would then be validated against
        // the stale epoch and survive unswept. Ordered this way, either
        // the activation sees the post-revoke epoch (and is refused) or
        // it completes before the sweep acquires the lock (and is
        // swept).
        let snapshot = self.read_snapshot();
        let s = sessions
            .get_mut(&session)
            .ok_or(MonitorError::UnknownSession(session))?;
        s.activate(snapshot.policy(), role)?;
        Ok(())
    }

    /// Deactivates a role; `Ok(true)` if it was active.
    pub fn deactivate_role(&self, session: SessionId, role: RoleId) -> Result<bool, MonitorError> {
        let mut sessions = self.sessions.write();
        let s = sessions
            .get_mut(&session)
            .ok_or(MonitorError::UnknownSession(session))?;
        Ok(s.deactivate(role))
    }

    /// Access check: do the session's active roles reach `perm`?
    ///
    /// Lock-free against the write path: one epoch-cell load plus an
    /// index probe per active role. A perm term never interned in the
    /// published universe is unreachable by definition.
    pub fn check_access(&self, session: SessionId, perm: Perm) -> Result<bool, MonitorError> {
        let snapshot = self.read_snapshot();
        let sessions = self.sessions.read();
        let s = sessions
            .get(&session)
            .ok_or(MonitorError::UnknownSession(session))?;
        Ok(snapshot.roles_reach_perm(s.active_roles(), perm))
    }

    /// Ends a session.
    pub fn drop_session(&self, session: SessionId) -> bool {
        self.sessions.write().remove(&session).is_some()
    }

    /// Number of currently live sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.read().len()
    }

    /// Number of audit events currently retained in the ring.
    pub fn audit_len(&self) -> usize {
        self.audit.lock().len()
    }

    /// The currently published snapshot (immutable; shared, not cloned).
    /// Epochs observed through consecutive loads are monotone.
    pub fn read_snapshot(&self) -> Arc<PolicySnapshot> {
        self.snapshot.load_full()
    }

    /// Clones the current state for offline analysis.
    pub fn snapshot(&self) -> (Universe, Policy) {
        self.read_snapshot().clone_state()
    }

    /// The published epoch id: the number of snapshot publications so
    /// far, i.e. the number of *batches* that changed the policy state
    /// (with single-command submits, exactly the number of
    /// policy-changing commands).
    pub fn version(&self) -> u64 {
        self.read_snapshot().epoch
    }

    /// Copies out all retained audit events. For long-running monitors
    /// prefer the bounded [`audit_tail`](Self::audit_tail) /
    /// [`audit_events_since`](Self::audit_events_since) or the O(1)
    /// [`drain_audit_events`](Self::drain_audit_events), which don't
    /// copy the whole ring under the lock.
    pub fn audit_events(&self) -> Vec<AuditEvent> {
        self.audit.lock().events().copied().collect()
    }

    /// Copies out at most the last `max` retained audit events (oldest
    /// first), bounding the time the audit lock is held.
    pub fn audit_tail(&self, max: usize) -> Vec<AuditEvent> {
        self.audit.lock().tail(max)
    }

    /// Copies out up to `max` retained events with `seq > after`, oldest
    /// first — the incremental shipping pattern: keep the last seq you
    /// saw and poll for what's new.
    pub fn audit_events_since(&self, after: u64, max: usize) -> Vec<AuditEvent> {
        self.audit.lock().events_since(after, max)
    }

    /// Takes all retained events out of the ring (oldest first), leaving
    /// it empty but preserving sequence numbering. O(1) lock hold: the
    /// backing buffer is moved, not copied.
    pub fn drain_audit_events(&self) -> Vec<AuditEvent> {
        self.audit.lock().drain()
    }

    /// The retained audit stream as an oracle trace (see
    /// [`adminref_core::verify::specs`]): replay it with an
    /// [`InvariantSuite`](adminref_core::verify::specs::InvariantSuite)
    /// against the policy the monitor started from to check the
    /// executable semantics against the declarative invariants. Only
    /// valid as a full trace while nothing has been evicted from the
    /// ring (the oracle needs every step to reconstruct states).
    pub fn audit_trace(&self) -> Vec<adminref_core::verify::specs::TraceStep> {
        crate::audit::trace_of(&self.audit_events())
    }

    /// The live sessions as oracle [`SessionView`]s (user plus active
    /// roles), for the `SessionRolesAssigned` invariant.
    pub fn session_views(&self) -> Vec<SessionView> {
        self.sessions
            .read()
            .values()
            .map(|s| SessionView {
                user: s.user(),
                active: s.active_roles().collect(),
            })
            .collect()
    }

    /// Copies out at most the last `max` forced deactivations (oldest
    /// first) — the audit trail of publish-time session revalidation.
    pub fn session_revocations_tail(&self, max: usize) -> Vec<SessionRevocation> {
        self.audit.lock().revocations_tail(max)
    }

    /// Total forced deactivations so far (monotone across eviction).
    pub fn session_revocations_total(&self) -> u64 {
        self.audit.lock().revocations_total()
    }

    /// How published epochs were derived so far:
    /// `(incremental, full_rebuild)` counts. The sum is the number of
    /// publications since construction.
    pub fn publish_counts(&self) -> (u64, u64) {
        (
            self.publishes_incremental.load(Ordering::Relaxed),
            self.publishes_full.load(Ordering::Relaxed),
        )
    }

    /// What recovery found when this monitor's durable store was opened
    /// (`None` for in-memory monitors, fresh stores, or callers that
    /// used [`with_store`](Self::with_store) without threading the
    /// report).
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.recovery
    }

    /// Auto-compactions that failed (best-effort post-publish
    /// maintenance; nonzero values deserve operator attention even
    /// though every batch remains durable in the WAL).
    pub fn autocompact_failures(&self) -> u64 {
        self.autocompact_failures.load(Ordering::Relaxed)
    }

    /// The configured authorization mode.
    pub fn auth_mode(&self) -> AuthMode {
        self.config.auth_mode
    }

    /// Runs a closure against the published universe and policy (for
    /// analyses that do not need a clone). Lock-free; the state is the
    /// snapshot current at the call.
    pub fn with_state<T>(&self, f: impl FnOnce(&Universe, &Policy) -> T) -> T {
        let snapshot = self.read_snapshot();
        f(snapshot.universe(), snapshot.policy())
    }

    /// Bounded safety analysis against a snapshot of the live policy:
    /// can `entity` come to hold `perm` under the monitor's own
    /// authorization semantics?
    ///
    /// The analysis runs on the compact-state search engine
    /// (`adminref_core::search`); `config.jobs` fans frontier expansion
    /// out over worker threads, and `config.auth_mode` is overridden
    /// with the monitor's configured mode so the answer reflects what
    /// this monitor would actually authorize. Runs on a snapshot, so
    /// the monitor stays live while the (possibly long) search runs.
    pub fn analyze_perm_reachable(
        &self,
        entity: Entity,
        perm: Perm,
        config: SafetyConfig,
    ) -> ReachabilityAnswer {
        let (mut universe, policy) = self.snapshot();
        let config = SafetyConfig {
            auth_mode: self.auth_mode(),
            ..config
        };
        let answer = perm_reachable(&mut universe, &policy, entity, perm, config);
        self.analyses_run.fetch_add(1, Ordering::Relaxed);
        if matches!(answer, ReachabilityAnswer::Unknown { .. }) {
            self.analyses_indefinite.fetch_add(1, Ordering::Relaxed);
        }
        answer
    }

    /// Safety analyses served so far: `(total, indefinite)`, where
    /// `indefinite` counts `Unknown` answers — truncated searches no
    /// unbounded engine could close. A growing indefinite share means
    /// the configured analysis bounds are too small for the live policy.
    pub fn analysis_counts(&self) -> (u64, u64) {
        (
            self.analyses_run.load(Ordering::Relaxed),
            self.analyses_indefinite.load(Ordering::Relaxed),
        )
    }

    /// Static lint pass over the live policy
    /// (`adminref_core::lint::lint_policy`): search-free diagnostics —
    /// dead rules, unauthorizable rules, shadowed or redundant grants,
    /// non-monotone islands, and separation-of-duty conflicts for the
    /// given role pairs. The pass is overridden to the monitor's own
    /// authorization mode and runs lock-free against the published
    /// snapshot.
    pub fn lint_policy(&self, sod_pairs: Vec<(RoleId, RoleId)>) -> LintReport {
        let config = LintConfig {
            auth_mode: self.auth_mode(),
            sod_pairs,
        };
        let report = self.with_state(|universe, policy| lint_policy(universe, policy, &config));
        self.lints_run.fetch_add(1, Ordering::Relaxed);
        self.lint_findings
            .fetch_add(report.findings.len() as u64, Ordering::Relaxed);
        report
    }

    /// Lint passes served so far: `(runs, total findings)`.
    pub fn lint_counts(&self) -> (u64, u64) {
        (
            self.lints_run.load(Ordering::Relaxed),
            self.lint_findings.load(Ordering::Relaxed),
        )
    }

    /// Durably replaces the admission constraint set. The set is
    /// normalized, WAL-persisted on durable backends (fsync before the
    /// live set changes), and mirrored lock-free for readers. Declaring
    /// constraints does **not** retroactively validate the current
    /// state — only future batches are gated — but callers can run
    /// [`evaluate_current_constraints`](Self::evaluate_current_constraints)
    /// to audit the standing state.
    pub fn set_constraints(&self, mut constraints: ConstraintSet) -> Result<(), MonitorError> {
        constraints.normalize();
        let mut writer = self.writer.lock();
        if let Backend::Durable(store) = &mut writer.backend {
            store.set_constraints(constraints.clone())?;
        }
        self.constraints.store(Arc::new(constraints));
        Ok(())
    }

    /// The currently declared admission constraint set (lock-free).
    pub fn constraints(&self) -> Arc<ConstraintSet> {
        self.constraints.load_full()
    }

    /// Evaluates the declared constraints against the *current*
    /// published state (no batch): the findings a zero-command batch
    /// would be judged by. Empty iff the standing state is clean.
    pub fn evaluate_current_constraints(&self) -> Vec<adminref_core::lint::Finding> {
        let constraints = self.constraints.load_full();
        self.with_state(|universe, policy| {
            admission::evaluate_constraints(universe, policy, &constraints, self.auth_mode())
        })
    }

    /// Admission gate activity so far: `(batches checked, refused)`.
    /// Batches submitted while no constraints were declared (or with the
    /// gate disabled) are not counted as checked.
    pub fn admission_counts(&self) -> (u64, u64) {
        (
            self.admission_checks.load(Ordering::Relaxed),
            self.admission_refusals.load(Ordering::Relaxed),
        )
    }

    /// Blast-radius analysis of a candidate batch against the published
    /// snapshot: simulated outcomes, edge deltas, flipped permission
    /// verdicts, grow-only and interval-status changes, admission
    /// findings, and the sessions a publish would force-deactivate.
    /// Lock-free against the write path; nothing is mutated.
    pub fn analyze_batch(&self, commands: &[Command]) -> ImpactReport {
        let snapshot = self.read_snapshot();
        let constraints = self.constraints.load_full();
        let mut impact = admission::analyze_batch(
            snapshot.universe(),
            snapshot.policy(),
            commands,
            &constraints,
            self.auth_mode(),
        );
        // Which live sessions would the publish-time revalidation sweep
        // force-deactivate? Only severing deltas can strip an active
        // role's justification.
        if impact
            .deltas
            .iter()
            .any(|d| severs_activation(d.edge, d.added))
        {
            let mut cand_policy = snapshot.policy().clone();
            for d in &impact.deltas {
                if d.added {
                    cand_policy.add_edge(d.edge);
                } else {
                    cand_policy.remove_edge(d.edge);
                }
            }
            let cand_index =
                adminref_core::reach::ReachIndex::build(snapshot.universe(), &cand_policy);
            let sessions = self.sessions.read();
            for (id, session) in sessions.iter() {
                let user = session.user();
                if session
                    .active_roles()
                    .any(|r| !cand_index.reach_entity(Entity::User(user), Entity::Role(r)))
                {
                    impact.severed_sessions.push(id.raw());
                }
            }
            impact.severed_sessions.sort_unstable();
        }
        impact
    }

    /// For durable monitors: folds the command log into a fresh snapshot.
    /// A no-op on in-memory monitors.
    pub fn compact(&self) -> Result<(), MonitorError> {
        let mut writer = self.writer.lock();
        match &mut writer.backend {
            Backend::Memory { .. } => Ok(()),
            Backend::Durable(store) => {
                store.compact()?;
                Ok(())
            }
        }
    }

    /// For durable monitors: forces the log to stable storage. A no-op on
    /// in-memory monitors. Batches are already synced on publication;
    /// this remains for explicit flush points.
    pub fn sync(&self) -> Result<(), MonitorError> {
        let mut writer = self.writer.lock();
        match &mut writer.backend {
            Backend::Memory { .. } => Ok(()),
            Backend::Durable(store) => {
                store.sync()?;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adminref_core::ordering::OrderingMode;
    use adminref_core::policy::PolicyBuilder;
    use adminref_core::universe::Edge;

    fn hospital() -> (Universe, Policy) {
        let mut b = PolicyBuilder::new()
            .assign("jane", "hr")
            .assign("diana", "staff")
            .declare_user("bob")
            .inherit("staff", "nurse")
            .inherit("staff", "dbusr2")
            .permit("dbusr2", "write", "t3")
            .permit("nurse", "read", "t1");
        let (bob, staff) = {
            let u = b.universe_mut();
            (u.find_user("bob").unwrap(), u.find_role("staff").unwrap())
        };
        let g = b.universe_mut().grant_user_role(bob, staff);
        let r = b.universe_mut().revoke_user_role(bob, staff);
        b = b.assign_priv("hr", g).assign_priv("hr", r);
        b.finish()
    }

    fn monitor(mode: AuthMode) -> (ReferenceMonitor, Universe) {
        let (uni, policy) = hospital();
        let m = ReferenceMonitor::new(
            uni.clone(),
            policy,
            MonitorConfig {
                auth_mode: mode,
                audit_capacity: 64,
                ..MonitorConfig::default()
            },
        );
        (m, uni)
    }

    #[test]
    fn submit_and_audit() {
        let (m, uni) = monitor(AuthMode::Explicit);
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let out = m
            .submit(&Command::grant(jane, Edge::UserRole(bob, staff)))
            .unwrap();
        assert!(out.executed());
        assert_eq!(m.version(), 1);
        let events = m.audit_events();
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0].decision, Decision::Executed { .. }));
        // An unauthorized command is audited as refused and bumps nothing.
        let out2 = m
            .submit(&Command::grant(bob, Edge::UserRole(jane, staff)))
            .unwrap();
        assert!(!out2.executed());
        assert_eq!(m.version(), 1);
        assert_eq!(m.audit_events().len(), 2);
    }

    #[test]
    fn sessions_follow_policy_changes() {
        let (m, mut uni) = monitor(AuthMode::Explicit);
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let nurse = uni.find_role("nurse").unwrap();
        let sid = m.create_session(bob);
        assert!(m.activate_role(sid, staff).is_err(), "bob not yet assigned");
        m.submit(&Command::grant(jane, Edge::UserRole(bob, staff)))
            .unwrap();
        m.activate_role(sid, staff).unwrap();
        let read_t1 = uni.perm("read", "t1");
        assert!(m.check_access(sid, read_t1).unwrap());
        assert!(m.deactivate_role(sid, staff).unwrap());
        assert!(!m.check_access(sid, read_t1).unwrap());
        let _ = nurse;
    }

    #[test]
    fn unknown_sessions_are_errors() {
        let (m, mut uni) = monitor(AuthMode::Explicit);
        let ghost = SessionId::from_raw(999);
        let nurse = uni.find_role("nurse").unwrap();
        assert!(matches!(
            m.activate_role(ghost, nurse),
            Err(MonitorError::UnknownSession(_))
        ));
        let perm = uni.perm("read", "t1");
        assert!(matches!(
            m.check_access(ghost, perm),
            Err(MonitorError::UnknownSession(_))
        ));
        assert!(!m.drop_session(ghost));
    }

    #[test]
    fn ordered_mode_flexworker_flow() {
        let (m, uni) = monitor(AuthMode::Ordered(OrderingMode::Extended));
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let dbusr2 = uni.find_role("dbusr2").unwrap();
        // Jane holds only ¤(bob, staff); ordered mode lets her place Bob
        // directly into dbusr2 (Example 4).
        let out = m
            .submit(&Command::grant(jane, Edge::UserRole(bob, dbusr2)))
            .unwrap();
        assert!(out.executed());
        let auth = out.authorization.unwrap();
        assert_ne!(auth.held, auth.target, "implicit authorization was used");
        // The audit trail captures both privileges, and the published
        // universe can render them (the target term was interned during
        // this batch).
        let events = m.audit_events();
        assert!(matches!(
            events[0].decision,
            Decision::Executed { held, target } if held != target
        ));
        let (uni_now, _) = m.snapshot();
        assert!(uni_now.term_count() > uni.term_count());
    }

    #[test]
    fn explicit_mode_refuses_flexworker_flow() {
        let (m, uni) = monitor(AuthMode::Explicit);
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let dbusr2 = uni.find_role("dbusr2").unwrap();
        let out = m
            .submit(&Command::grant(jane, Edge::UserRole(bob, dbusr2)))
            .unwrap();
        assert!(!out.executed());
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let (m, mut uni) = monitor(AuthMode::Explicit);
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let diana = uni.find_user("diana").unwrap();
        let read_t1 = uni.perm("read", "t1");
        let sid = m.create_session(diana);
        m.activate_role(sid, staff).unwrap();
        crossbeam::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    for _ in 0..200 {
                        let _ = m.check_access(sid, read_t1).unwrap();
                        let _ = m.with_state(|_, p| p.edge_count());
                    }
                });
            }
            scope.spawn(|_| {
                for _ in 0..50 {
                    m.submit(&Command::grant(jane, Edge::UserRole(bob, staff)))
                        .unwrap();
                    m.submit(&Command::revoke(jane, Edge::UserRole(bob, staff)))
                        .unwrap();
                }
            });
        })
        .unwrap();
        // 100 policy-changing commands (50 grants + 50 revokes), each its
        // own batch → 100 published epochs.
        assert_eq!(m.version(), 100);
        assert!(m.check_access(sid, read_t1).unwrap());
    }

    #[test]
    fn batched_queue_publishes_one_epoch() {
        let (m, uni) = monitor(AuthMode::Explicit);
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let queue: CommandQueue = [
            Command::grant(jane, Edge::UserRole(bob, staff)),
            Command::grant(bob, Edge::UserRole(jane, staff)), // refused
            Command::revoke(jane, Edge::UserRole(bob, staff)),
            Command::grant(jane, Edge::UserRole(bob, staff)),
        ]
        .into_iter()
        .collect();
        let outcomes = m.submit_queue(&queue).unwrap();
        assert_eq!(outcomes.iter().filter(|o| o.executed()).count(), 3);
        assert_eq!(m.version(), 1, "one batch, one epoch");
        assert_eq!(m.audit_events().len(), 4, "audit still sees every command");
        let snap = m.read_snapshot();
        assert_eq!(snap.epoch, 1);
        assert!(snap.policy().contains_edge(Edge::UserRole(bob, staff)));
        // An all-refused batch publishes nothing.
        let noop: CommandQueue = [Command::grant(bob, Edge::UserRole(jane, staff))]
            .into_iter()
            .collect();
        m.submit_queue(&noop).unwrap();
        assert_eq!(m.version(), 1);
    }

    #[test]
    fn audit_tail_since_and_drain() {
        let (m, uni) = monitor(AuthMode::Explicit);
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        for _ in 0..5 {
            m.submit(&Command::grant(jane, Edge::UserRole(bob, staff)))
                .unwrap();
            m.submit(&Command::revoke(jane, Edge::UserRole(bob, staff)))
                .unwrap();
        }
        assert_eq!(m.audit_events().len(), 10);
        let tail = m.audit_tail(3);
        assert_eq!(tail.len(), 3);
        assert_eq!(tail[2].seq, 9);
        assert_eq!(tail[0].seq, 7);
        let since = m.audit_events_since(6, 2);
        assert_eq!(since.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![7, 8]);
        assert!(m.audit_events_since(9, 100).is_empty());
        // Drain takes everything and leaves numbering intact.
        let drained = m.drain_audit_events();
        assert_eq!(drained.len(), 10);
        assert!(m.audit_events().is_empty());
        m.submit(&Command::grant(jane, Edge::UserRole(bob, staff)))
            .unwrap();
        assert_eq!(m.audit_events()[0].seq, 10, "seq continues after drain");
    }

    #[test]
    fn durable_monitor_compacts_and_syncs() {
        use adminref_store::{PolicyStore, TempDir};
        let (uni, policy) = hospital();
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let dir = TempDir::new("monitor-compact").unwrap();
        let store =
            PolicyStore::create(dir.path(), uni.clone(), policy, AuthMode::Explicit).unwrap();
        let m = ReferenceMonitor::with_store(store, MonitorConfig::default());
        m.submit(&Command::grant(jane, Edge::UserRole(bob, staff)))
            .unwrap();
        m.sync().unwrap();
        m.compact().unwrap();
        drop(m);
        let (store, report) = PolicyStore::open(dir.path(), AuthMode::Explicit).unwrap();
        assert_eq!(report.replayed, 0, "log was compacted away");
        assert!(store.policy().contains_edge(Edge::UserRole(bob, staff)));
        // In-memory monitors: both calls are no-ops.
        let (uni2, policy2) = hospital();
        let mem = ReferenceMonitor::new(uni2, policy2, MonitorConfig::default());
        mem.sync().unwrap();
        mem.compact().unwrap();
    }

    #[test]
    fn durable_batches_are_synced_on_publication() {
        use adminref_store::{PolicyStore, TempDir};
        let (uni, policy) = hospital();
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let dir = TempDir::new("monitor-batch-sync").unwrap();
        let store =
            PolicyStore::create(dir.path(), uni.clone(), policy, AuthMode::Explicit).unwrap();
        let m = ReferenceMonitor::with_store(store, MonitorConfig::default());
        let queue: CommandQueue = [
            Command::grant(jane, Edge::UserRole(bob, staff)),
            Command::revoke(jane, Edge::UserRole(bob, staff)),
        ]
        .into_iter()
        .collect();
        m.submit_queue(&queue).unwrap();
        // No explicit sync: the batch synced itself. Drop and recover.
        drop(m);
        let (store, report) = PolicyStore::open(dir.path(), AuthMode::Explicit).unwrap();
        assert_eq!(report.replayed, 2);
        assert!(!store.policy().contains_edge(Edge::UserRole(bob, staff)));
    }

    #[test]
    fn analysis_entry_point_finds_witness() {
        // The caller's auth_mode is overridden with the monitor's own
        // mode (the answer must reflect what this monitor would
        // authorize); the witness is minimal and identical under
        // parallel expansion.
        let (m_explicit, mut uni) = monitor(AuthMode::Explicit);
        let bob = uni.find_user("bob").unwrap();
        let write_t3 = uni.perm("write", "t3");
        let config = SafetyConfig {
            max_steps: 2,
            auth_mode: AuthMode::Ordered(OrderingMode::Extended), // overridden
            ..SafetyConfig::default()
        };
        let answer = m_explicit.analyze_perm_reachable(Entity::User(bob), write_t3, config);
        let ReachabilityAnswer::Reachable { witness } = answer else {
            panic!("bob can reach (write, t3) via staff");
        };
        assert_eq!(witness.len(), 1);
        // Parallel expansion returns the identical witness.
        let par = m_explicit.analyze_perm_reachable(
            Entity::User(bob),
            write_t3,
            SafetyConfig { jobs: 4, ..config },
        );
        let ReachabilityAnswer::Reachable {
            witness: par_witness,
        } = par
        else {
            panic!("parallel analysis changed the variant");
        };
        assert_eq!(witness.commands(), par_witness.commands());
    }

    #[test]
    fn audit_trace_satisfies_the_invariant_oracle() {
        use adminref_core::verify::specs::InvariantSuite;
        // Run a mixed accepted/refused/revoking history with a live
        // session, then replay the audit trail through the declarative
        // invariant suite against the root policy.
        let (root_uni, root_policy) = hospital();
        let (m, uni) = monitor(AuthMode::Explicit);
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let diana = uni.find_user("diana").unwrap();
        let staff = uni.find_role("staff").unwrap();
        m.submit(&Command::grant(jane, Edge::UserRole(bob, staff)))
            .unwrap();
        // Unauthorized: recorded as refused, must replay as a no-op.
        m.submit(&Command::grant(bob, Edge::UserRole(jane, staff)))
            .unwrap();
        let sid = m.create_session(diana);
        m.activate_role(sid, staff).unwrap();
        // Revocation forces publish-time session revalidation, so the
        // final session views stay consistent with the final policy.
        m.submit(&Command::revoke(jane, Edge::UserRole(bob, staff)))
            .unwrap();
        let trace = m.audit_trace();
        assert_eq!(trace.len(), 3);
        let suite = InvariantSuite::standard(m.auth_mode());
        let violations = suite.replay(&root_uni, &root_policy, &trace, &m.session_views());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn analysis_counters_track_indefinite_answers() {
        let (m, mut uni) = monitor(AuthMode::Explicit);
        let bob = uni.find_user("bob").unwrap();
        let write_t3 = uni.perm("write", "t3");
        assert_eq!(m.analysis_counts(), (0, 0));
        let answer = m.analyze_perm_reachable(Entity::User(bob), write_t3, SafetyConfig::default());
        assert!(answer.is_reachable());
        assert_eq!(m.analysis_counts(), (1, 0));
        // Starved bounds with escalation disabled: the truncated answer
        // is counted as indefinite.
        let answer = m.analyze_perm_reachable(
            Entity::User(bob),
            write_t3,
            SafetyConfig {
                max_steps: 0,
                max_states: 1,
                escalate: false,
                ..SafetyConfig::default()
            },
        );
        assert!(matches!(answer, ReachabilityAnswer::Unknown { .. }));
        assert_eq!(m.analysis_counts(), (2, 1));
    }

    #[test]
    fn lint_entry_point_runs_on_the_live_policy_and_counts() {
        use adminref_core::lint::FindingKind;
        // The hospital fixture is clean: a run is counted, no findings.
        let (m, _uni) = monitor(AuthMode::Explicit);
        assert_eq!(m.lint_counts(), (0, 0));
        let report = m.lint_policy(Vec::new());
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(m.lint_counts(), (1, 0));
        // A monitor over a policy with a dead revoke rule — the edge is
        // never present — reports it, and the counters track findings.
        let mut b = PolicyBuilder::new()
            .assign("jane", "hr")
            .declare_user("eve");
        let (eve, temps) = {
            let u = b.universe_mut();
            (u.find_user("eve").unwrap(), u.role("temps"))
        };
        let dead = b.universe_mut().revoke_user_role(eve, temps);
        b = b.assign_priv("hr", dead);
        let (uni2, policy2) = b.finish();
        let m2 = ReferenceMonitor::new(uni2, policy2, MonitorConfig::default());
        let report = m2.lint_policy(Vec::new());
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.kind == FindingKind::DeadCommand),
            "{:?}",
            report.findings
        );
        assert_eq!(m2.lint_counts(), (1, report.findings.len() as u64));
    }

    #[test]
    fn analysis_runs_on_a_snapshot() {
        // The search must not observe commands submitted after it
        // snapshotted, and the monitor stays usable afterwards.
        let (m, mut uni) = monitor(AuthMode::Explicit);
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let read_t1 = uni.perm("read", "t1");
        let answer = m.analyze_perm_reachable(Entity::User(bob), read_t1, SafetyConfig::default());
        assert!(answer.is_reachable());
        m.submit(&Command::grant(jane, Edge::UserRole(bob, staff)))
            .unwrap();
        assert_eq!(m.version(), 1);
    }

    #[test]
    fn revocation_deactivates_stale_session_roles() {
        // The regression the serving path shipped with: grant →
        // activate → revoke → check_access kept granting through the
        // revoked role, because nothing revalidated active sessions.
        let (m, mut uni) = monitor(AuthMode::Explicit);
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let read_t1 = uni.perm("read", "t1");
        m.submit(&Command::grant(jane, Edge::UserRole(bob, staff)))
            .unwrap();
        let sid = m.create_session(bob);
        m.activate_role(sid, staff).unwrap();
        assert!(m.check_access(sid, read_t1).unwrap());
        m.submit(&Command::revoke(jane, Edge::UserRole(bob, staff)))
            .unwrap();
        assert!(
            !m.check_access(sid, read_t1).unwrap(),
            "revoked membership must not keep granting"
        );
        // The forced deactivation was audited.
        let revocations = m.session_revocations_tail(10);
        assert_eq!(revocations.len(), 1);
        assert_eq!(revocations[0].user, bob);
        assert_eq!(revocations[0].role, staff);
        assert_eq!(revocations[0].session, sid);
        assert_eq!(revocations[0].epoch, m.version());
        assert_eq!(m.session_revocations_total(), 1);
        // Unrelated sessions are untouched: diana's nurse activation
        // rides on her own assignment.
        let diana = uni.find_user("diana").unwrap();
        let nurse = uni.find_role("nurse").unwrap();
        let did = m.create_session(diana);
        m.activate_role(did, staff).unwrap();
        m.submit(&Command::grant(jane, Edge::UserRole(bob, staff)))
            .unwrap();
        m.submit(&Command::revoke(jane, Edge::UserRole(bob, staff)))
            .unwrap();
        assert!(m.check_access(did, read_t1).unwrap());
        let _ = nurse;
    }

    #[test]
    fn locked_monitor_also_deactivates_stale_sessions() {
        let (uni, policy) = hospital();
        let mut probe = uni.clone();
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let read_t1 = probe.perm("read", "t1");
        let m = crate::locked::LockedMonitor::new(uni, policy, MonitorConfig::default());
        m.submit(&Command::grant(jane, Edge::UserRole(bob, staff)))
            .unwrap();
        let sid = m.create_session(bob);
        m.activate_role(sid, staff).unwrap();
        assert!(m.check_access(sid, read_t1).unwrap());
        m.submit(&Command::revoke(jane, Edge::UserRole(bob, staff)))
            .unwrap();
        assert!(!m.check_access(sid, read_t1).unwrap());
        assert_eq!(m.session_revocations_total(), 1);
        assert_eq!(m.session_revocations_tail(10)[0].role, staff);
    }

    #[test]
    fn incremental_publication_is_the_default_and_counted() {
        let (m, uni) = monitor(AuthMode::Explicit);
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        for _ in 0..3 {
            m.submit(&Command::grant(jane, Edge::UserRole(bob, staff)))
                .unwrap();
            m.submit(&Command::revoke(jane, Edge::UserRole(bob, staff)))
                .unwrap();
        }
        let (incremental, full) = m.publish_counts();
        assert_eq!(incremental + full, 6, "one publication per toggle");
        if m.auth_mode() == AuthMode::Explicit
            && MonitorConfig::default().publish_mode
                == adminref_core::snapshot::PublishMode::Incremental
        {
            assert_eq!(full, 0, "membership toggles never force a rebuild");
        }
        // Forced full rebuild is always available via config and
        // produces the same answers.
        let (uni2, policy2) = hospital();
        let m_full = ReferenceMonitor::new(
            uni2,
            policy2,
            MonitorConfig {
                publish_mode: adminref_core::snapshot::PublishMode::FullRebuild,
                ..MonitorConfig::default()
            },
        );
        m_full
            .submit(&Command::grant(jane, Edge::UserRole(bob, staff)))
            .unwrap();
        let (incremental, full) = m_full.publish_counts();
        assert_eq!((incremental, full), (0, 1));
        assert!(m_full
            .read_snapshot()
            .policy()
            .contains_edge(Edge::UserRole(bob, staff)));
    }

    #[test]
    fn autocompaction_bounds_the_wal() {
        use adminref_store::{PolicyStore, TempDir};
        let (uni, policy) = hospital();
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let dir = TempDir::new("monitor-autocompact").unwrap();
        let store =
            PolicyStore::create(dir.path(), uni.clone(), policy, AuthMode::Explicit).unwrap();
        let m = ReferenceMonitor::with_store(
            store,
            MonitorConfig {
                autocompact_log_len: Some(4),
                ..MonitorConfig::default()
            },
        );
        // 6 commands: the threshold trips at the 4th append and folds
        // the log; the remaining 2 stay in the (short) tail.
        for _ in 0..3 {
            m.submit(&Command::grant(jane, Edge::UserRole(bob, staff)))
                .unwrap();
            m.submit(&Command::revoke(jane, Edge::UserRole(bob, staff)))
                .unwrap();
        }
        assert_eq!(m.autocompact_failures(), 0);
        drop(m);
        let (store, report) = PolicyStore::open(dir.path(), AuthMode::Explicit).unwrap();
        assert!(
            report.replayed < 4,
            "auto-compaction folded the log ({} replayed)",
            report.replayed
        );
        assert!(!store.policy().contains_edge(Edge::UserRole(bob, staff)));
        // With the exact threshold cadence, reopen replays zero: one
        // more batch lands on a compacted log and compacts again.
        drop(store);
        let (store2, _) = PolicyStore::open(dir.path(), AuthMode::Explicit).unwrap();
        let m = ReferenceMonitor::with_store(
            store2,
            MonitorConfig {
                autocompact_log_len: Some(1),
                ..MonitorConfig::default()
            },
        );
        m.submit(&Command::grant(jane, Edge::UserRole(bob, staff)))
            .unwrap();
        drop(m);
        let (_, report) = PolicyStore::open(dir.path(), AuthMode::Explicit).unwrap();
        assert_eq!(report.replayed, 0, "threshold 1 compacts after every batch");
    }

    #[test]
    fn recovery_report_is_retained() {
        use adminref_store::{PolicyStore, TempDir};
        let (uni, policy) = hospital();
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let dir = TempDir::new("monitor-recovery").unwrap();
        {
            let store =
                PolicyStore::create(dir.path(), uni.clone(), policy, AuthMode::Explicit).unwrap();
            let m = ReferenceMonitor::with_store(
                store,
                MonitorConfig {
                    autocompact_log_len: None,
                    ..MonitorConfig::default()
                },
            );
            assert_eq!(m.recovery_report(), None, "fresh store: nothing recovered");
            m.submit(&Command::grant(jane, Edge::UserRole(bob, staff)))
                .unwrap();
        }
        let (store, report) = PolicyStore::open(dir.path(), AuthMode::Explicit).unwrap();
        let m =
            ReferenceMonitor::with_store_recovered(store, Some(report), MonitorConfig::default());
        let retained = m.recovery_report().expect("report threaded through");
        assert_eq!(retained.replayed, 1);
        assert_eq!(retained.divergent, 0);
    }

    #[test]
    fn replica_apply_tracks_primary_and_refuses_divergence() {
        let (primary, uni) = monitor(AuthMode::Explicit);
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let events: Arc<Mutex<Vec<PublishEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        primary.set_publish_hook(Some(Box::new(move |e| sink.lock().push(e.clone()))));

        // Bootstrap a replica from the primary's epoch-0 state.
        let (runi, rpolicy) = primary.snapshot();
        let replica =
            ReferenceMonitor::new(runi.clone(), rpolicy.clone(), MonitorConfig::default());
        replica
            .install_replica_state(runi, rpolicy, 0, ConstraintSet::default())
            .unwrap();

        for _ in 0..2 {
            primary
                .submit(&Command::grant(jane, Edge::UserRole(bob, staff)))
                .unwrap();
            primary
                .submit(&Command::revoke(jane, Edge::UserRole(bob, staff)))
                .unwrap();
        }
        let stream: Vec<PublishEvent> = events.lock().clone();
        assert_eq!(stream.len(), 4, "one event per published epoch");
        for e in &stream {
            replica
                .apply_replica_deltas(e.epoch, &e.deltas, e.checksum)
                .unwrap();
            assert_eq!(replica.read_snapshot().checksum(), e.checksum);
        }
        assert_eq!(replica.version(), primary.version());
        assert_eq!(
            replica.read_snapshot().checksum(),
            primary.read_snapshot().checksum()
        );

        // Replaying the last frame is a skippable epoch gap (stale).
        let last = stream.last().unwrap();
        assert!(matches!(
            replica.apply_replica_deltas(last.epoch, &last.deltas, last.checksum),
            Err(ReplicaApplyError::EpochGap { .. })
        ));
        // A frame promising a wrong checksum is refused and publishes
        // nothing.
        let before = replica.read_snapshot().checksum();
        let deltas = [EdgeDelta {
            edge: Edge::UserRole(bob, staff),
            added: true,
        }];
        assert!(matches!(
            replica.apply_replica_deltas(replica.version() + 1, &deltas, 0xDEAD),
            Err(ReplicaApplyError::Divergence { .. })
        ));
        assert_eq!(replica.read_snapshot().checksum(), before);
        assert_eq!(replica.version(), primary.version());
        // A no-op toggle (revoking an absent edge) is a foreign delta.
        let foreign = [EdgeDelta {
            edge: Edge::UserRole(bob, staff),
            added: false,
        }];
        assert!(matches!(
            replica.apply_replica_deltas(replica.version() + 1, &foreign, 0),
            Err(ReplicaApplyError::ForeignDelta { .. })
        ));
    }

    #[test]
    fn replica_install_sweeps_stale_sessions() {
        let (primary, mut uni) = monitor(AuthMode::Explicit);
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let read_t1 = uni.perm("read", "t1");
        primary
            .submit(&Command::grant(jane, Edge::UserRole(bob, staff)))
            .unwrap();
        // Replica serving a session off the bootstrapped state...
        let (runi, rpolicy) = primary.snapshot();
        let replica = ReferenceMonitor::new(runi, rpolicy, MonitorConfig::default());
        let sid = replica.create_session(bob);
        replica.activate_role(sid, staff).unwrap();
        assert!(replica.check_access(sid, read_t1).unwrap());
        // ...re-bootstraps onto a state where the membership is gone.
        primary
            .submit(&Command::revoke(jane, Edge::UserRole(bob, staff)))
            .unwrap();
        let (runi2, rpolicy2) = primary.snapshot();
        let checksum = replica
            .install_replica_state(runi2, rpolicy2, primary.version(), ConstraintSet::default())
            .unwrap();
        assert_eq!(checksum, primary.read_snapshot().checksum());
        assert!(
            !replica.check_access(sid, read_t1).unwrap(),
            "stale activation must not survive a bootstrap"
        );
        assert_eq!(replica.session_revocations_total(), 1);
        // Durable monitors refuse replica installs.
        use adminref_store::{PolicyStore, TempDir};
        let dir = TempDir::new("replica-durable").unwrap();
        let (duni, dpolicy) = hospital();
        let store = PolicyStore::create(
            dir.path(),
            duni.clone(),
            dpolicy.clone(),
            AuthMode::Explicit,
        )
        .unwrap();
        let durable = ReferenceMonitor::with_store(store, MonitorConfig::default());
        assert!(matches!(
            durable.install_replica_state(duni, dpolicy, 1, ConstraintSet::default()),
            Err(ReplicaApplyError::DurableBackend)
        ));
    }

    #[test]
    fn snapshot_is_isolated() {
        let (m, uni) = monitor(AuthMode::Explicit);
        let (uni2, policy2) = m.snapshot();
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        m.submit(&Command::grant(jane, Edge::UserRole(bob, staff)))
            .unwrap();
        assert!(
            !policy2.contains_edge(Edge::UserRole(bob, staff)),
            "snapshot unaffected by later commands"
        );
        assert_eq!(uni2.tag(), uni.tag());
    }
}
