//! The pre-epoch reference monitor: one `RwLock` over everything.
//!
//! This is the serial baseline the batched/epoch-published
//! [`ReferenceMonitor`](crate::ReferenceMonitor) replaced: policy,
//! sessions, and audit live behind a single reader-writer lock, access
//! checks BFS the policy graph under the read lock, and every
//! administrative command takes the write lock. It is preserved —
//! unchanged in behavior — for two jobs:
//!
//! * **differential testing**: property tests drive the same command
//!   sequences through both monitors and assert identical
//!   [`StepOutcome`] and audit sequences (the epoch rebuild must not
//!   change Definition-5 semantics);
//! * **benchmarking**: `benches/monitor_throughput.rs` and
//!   `adminref bench-monitor` measure the read-throughput gap between
//!   this design and the lock-free read path under concurrent admin
//!   writes.
//!
//! New code should use [`ReferenceMonitor`](crate::ReferenceMonitor).

use parking_lot::RwLock;
use std::collections::HashMap;

use adminref_core::command::{Command, CommandQueue};
use adminref_core::ids::{Perm, RoleId, UserId};
use adminref_core::policy::Policy;
use adminref_core::session::Session;
use adminref_core::transition::{step, AuthMode, StepOutcome};
use adminref_core::universe::Universe;

use crate::audit::{AuditEvent, AuditLog, Decision};
use crate::monitor::{MonitorConfig, MonitorError, SessionId};

struct Inner {
    universe: Universe,
    policy: Policy,
    sessions: HashMap<SessionId, Session>,
    next_session: u64,
    audit: AuditLog,
    version: u64,
    config: MonitorConfig,
}

/// The single-lock in-memory reference monitor (serial baseline).
pub struct LockedMonitor {
    inner: RwLock<Inner>,
}

impl LockedMonitor {
    /// An in-memory monitor over the given state.
    pub fn new(universe: Universe, policy: Policy, config: MonitorConfig) -> Self {
        policy.check_universe(&universe);
        LockedMonitor {
            inner: RwLock::new(Inner {
                universe,
                policy,
                sessions: HashMap::new(),
                next_session: 0,
                audit: AuditLog::new(config.audit_capacity),
                version: 0,
                config,
            }),
        }
    }

    /// Submits one administrative command; records the decision in the
    /// audit log. A revocation that changes the policy immediately
    /// revalidates every session under the same write lock: an active
    /// role whose `u →φ r` justification the command severed is
    /// force-deactivated and recorded, like the epoch monitor's
    /// publish-time sweep.
    pub fn submit(&self, cmd: &Command) -> Result<StepOutcome, MonitorError> {
        let mut inner = self.inner.write();
        let mode = inner.config.auth_mode;
        let inner = &mut *inner;
        let outcome = step(&mut inner.universe, &mut inner.policy, cmd, mode);
        let decision = match outcome.authorization {
            Some(auth) => Decision::Executed {
                held: auth.held,
                target: auth.target,
            },
            None => Decision::Refused,
        };
        inner.audit.record(*cmd, decision, outcome.changed);
        if outcome.changed {
            inner.version += 1;
            let added = matches!(cmd.kind, adminref_core::command::CommandKind::Grant);
            if crate::monitor::severs_activation(cmd.edge, added) {
                let Inner {
                    policy,
                    sessions,
                    audit,
                    version,
                    ..
                } = inner;
                crate::monitor::sweep_stale_activations(sessions, audit, *version, |user, role| {
                    adminref_core::reach::reaches(
                        policy,
                        adminref_core::ids::Node::User(user),
                        adminref_core::ids::Node::Role(role),
                    )
                });
            }
        }
        Ok(outcome)
    }

    /// Submits a whole queue, front to back (one lock acquisition per
    /// command — the behavior the batched monitor replaced).
    pub fn submit_queue(&self, queue: &CommandQueue) -> Result<Vec<StepOutcome>, MonitorError> {
        queue.iter().map(|cmd| self.submit(cmd)).collect()
    }

    /// Starts a session for `user`.
    pub fn create_session(&self, user: UserId) -> SessionId {
        let mut inner = self.inner.write();
        let id = SessionId::from_raw(inner.next_session);
        inner.next_session += 1;
        inner.sessions.insert(id, Session::new(user));
        id
    }

    /// Activates a role in a session (`u →φ r` required).
    pub fn activate_role(&self, session: SessionId, role: RoleId) -> Result<(), MonitorError> {
        let mut inner = self.inner.write();
        let Inner {
            policy, sessions, ..
        } = &mut *inner;
        let s = sessions
            .get_mut(&session)
            .ok_or(MonitorError::UnknownSession(session))?;
        s.activate(policy, role)?;
        Ok(())
    }

    /// Deactivates a role; `Ok(true)` if it was active.
    pub fn deactivate_role(&self, session: SessionId, role: RoleId) -> Result<bool, MonitorError> {
        let mut inner = self.inner.write();
        let s = inner
            .sessions
            .get_mut(&session)
            .ok_or(MonitorError::UnknownSession(session))?;
        Ok(s.deactivate(role))
    }

    /// Access check: BFS per active role under the read lock.
    pub fn check_access(&self, session: SessionId, perm: Perm) -> Result<bool, MonitorError> {
        let inner = self.inner.read();
        let s = inner
            .sessions
            .get(&session)
            .ok_or(MonitorError::UnknownSession(session))?;
        // Non-mutating variant of Session::check_access: the perm term may
        // not be interned yet, in which case no role reaches it.
        let Some(p) = inner
            .universe
            .find_term(adminref_core::universe::PrivTerm::Perm(perm))
        else {
            return Ok(false);
        };
        let policy = &inner.policy;
        let allowed = s.active_roles().any(|r| {
            adminref_core::reach::reaches(
                policy,
                adminref_core::ids::Node::Role(r),
                adminref_core::ids::Node::Priv(p),
            )
        });
        Ok(allowed)
    }

    /// Ends a session.
    pub fn drop_session(&self, session: SessionId) -> bool {
        self.inner.write().sessions.remove(&session).is_some()
    }

    /// Clones the current state for offline analysis.
    pub fn snapshot(&self) -> (Universe, Policy) {
        let inner = self.inner.read();
        (inner.universe.clone(), inner.policy.clone())
    }

    /// The number of policy-changing commands processed so far.
    pub fn version(&self) -> u64 {
        self.inner.read().version
    }

    /// Copies out the retained audit events.
    pub fn audit_events(&self) -> Vec<AuditEvent> {
        self.inner.read().audit.events().copied().collect()
    }

    /// Copies out at most the last `max` forced deactivations (oldest
    /// first).
    pub fn session_revocations_tail(&self, max: usize) -> Vec<crate::audit::SessionRevocation> {
        self.inner.read().audit.revocations_tail(max)
    }

    /// Total forced deactivations so far.
    pub fn session_revocations_total(&self) -> u64 {
        self.inner.read().audit.revocations_total()
    }

    /// The configured authorization mode.
    pub fn auth_mode(&self) -> AuthMode {
        self.inner.read().config.auth_mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adminref_core::policy::PolicyBuilder;
    use adminref_core::universe::Edge;

    #[test]
    fn locked_baseline_executes_and_audits() {
        let mut b = PolicyBuilder::new()
            .assign("jane", "hr")
            .declare_user("bob")
            .inherit("staff", "nurse")
            .permit("nurse", "read", "t1");
        let (bob, staff) = {
            let u = b.universe_mut();
            (u.find_user("bob").unwrap(), u.find_role("staff").unwrap())
        };
        let g = b.universe_mut().grant_user_role(bob, staff);
        let (mut uni, policy) = b.assign_priv("hr", g).finish();
        let jane = uni.find_user("jane").unwrap();
        let m = LockedMonitor::new(uni.clone(), policy, MonitorConfig::default());
        let out = m
            .submit(&Command::grant(jane, Edge::UserRole(bob, staff)))
            .unwrap();
        assert!(out.executed());
        assert_eq!(m.version(), 1);
        assert_eq!(m.audit_events().len(), 1);
        let sid = m.create_session(bob);
        m.activate_role(sid, staff).unwrap();
        let read_t1 = uni.perm("read", "t1");
        assert!(m.check_access(sid, read_t1).unwrap());
        assert!(m.deactivate_role(sid, staff).unwrap());
        assert!(m.drop_session(sid));
    }
}
