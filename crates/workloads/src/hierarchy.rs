//! Synthetic role hierarchies at controlled scale.
//!
//! The paper motivates itself with policies of “thousands of roles \[6\]”;
//! these generators produce such hierarchies deterministically from a
//! seed so every benchmark run sees identical inputs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use adminref_core::ids::RoleId;
use adminref_core::policy::Policy;
use adminref_core::universe::{Edge, Universe};

/// Parameters for a layered hierarchy.
#[derive(Clone, Copy, Debug)]
pub struct LayeredSpec {
    /// Number of layers (the longest chain is at most this).
    pub layers: usize,
    /// Roles per layer.
    pub width: usize,
    /// Probability of an edge from a role to each role of the next layer.
    pub edge_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LayeredSpec {
    fn default() -> Self {
        LayeredSpec {
            layers: 4,
            width: 8,
            edge_prob: 0.3,
            seed: 0xADEE,
        }
    }
}

/// A generated hierarchy: universe, policy (RH edges only so far) and the
/// roles by layer (layer 0 is the senior-most).
#[derive(Debug)]
pub struct Hierarchy {
    /// The universe holding the role names (`l<layer>_r<index>`).
    pub universe: Universe,
    /// The policy with the generated `RH`.
    pub policy: Policy,
    /// Roles grouped by layer, senior-most first.
    pub layers: Vec<Vec<RoleId>>,
}

/// Generates a layered hierarchy. Every role gets at least one junior in
/// the next layer (besides the probabilistic edges), so chains span all
/// layers.
pub fn layered(spec: LayeredSpec) -> Hierarchy {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut universe = Universe::new();
    let mut layers: Vec<Vec<RoleId>> = Vec::with_capacity(spec.layers);
    for layer in 0..spec.layers {
        let mut row = Vec::with_capacity(spec.width);
        for i in 0..spec.width {
            row.push(universe.role(&format!("l{layer}_r{i}")));
        }
        layers.push(row);
    }
    let mut policy = Policy::new(&universe);
    for layer in 0..spec.layers.saturating_sub(1) {
        let (senior_row, junior_row) = (&layers[layer], &layers[layer + 1]);
        for &senior in senior_row {
            let mut connected = false;
            for &junior in junior_row {
                if rng.random_bool(spec.edge_prob) {
                    policy.add_edge(Edge::RoleRole(senior, junior));
                    connected = true;
                }
            }
            if !connected && !junior_row.is_empty() {
                let pick = junior_row[rng.random_range(0..junior_row.len())];
                policy.add_edge(Edge::RoleRole(senior, pick));
            }
        }
    }
    Hierarchy {
        universe,
        policy,
        layers,
    }
}

/// A single chain `r0 → r1 → … → r(n-1)` (longest chain = `n`).
pub fn chain(n: usize) -> Hierarchy {
    let mut universe = Universe::new();
    let roles: Vec<RoleId> = (0..n).map(|i| universe.role(&format!("c{i}"))).collect();
    let mut policy = Policy::new(&universe);
    for w in roles.windows(2) {
        policy.add_edge(Edge::RoleRole(w[0], w[1]));
    }
    Hierarchy {
        universe,
        policy,
        layers: roles.into_iter().map(|r| vec![r]).collect(),
    }
}

/// A random DAG over `n` roles with `edges` forward edges (ids only ever
/// point to higher-numbered roles, so it is acyclic by construction).
pub fn random_dag(n: usize, edges: usize, seed: u64) -> Hierarchy {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut universe = Universe::new();
    let roles: Vec<RoleId> = (0..n).map(|i| universe.role(&format!("d{i}"))).collect();
    let mut policy = Policy::new(&universe);
    if n >= 2 {
        for _ in 0..edges {
            let a = rng.random_range(0..n - 1);
            let b = rng.random_range(a + 1..n);
            policy.add_edge(Edge::RoleRole(roles[a], roles[b]));
        }
    }
    Hierarchy {
        universe,
        policy,
        layers: vec![roles],
    }
}

/// Adds `users` users, each explicitly assigned to `roles_per_user`
/// random roles. Returns the user ids.
pub fn populate_users(
    hierarchy: &mut Hierarchy,
    users: usize,
    roles_per_user: usize,
    seed: u64,
) -> Vec<adminref_core::ids::UserId> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x55AA);
    let all_roles: Vec<RoleId> = hierarchy.layers.iter().flatten().copied().collect();
    let mut out = Vec::with_capacity(users);
    for i in 0..users {
        let u = hierarchy.universe.user(&format!("user{i}"));
        out.push(u);
        for _ in 0..roles_per_user {
            let r = all_roles[rng.random_range(0..all_roles.len())];
            hierarchy.policy.add_edge(Edge::UserRole(u, r));
        }
    }
    out
}

/// Gives each role `perms_per_role` user privileges over a pool of
/// `objects` objects.
pub fn populate_perms(hierarchy: &mut Hierarchy, perms_per_role: usize, objects: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
    let actions = ["read", "write", "exec", "print"];
    let all_roles: Vec<RoleId> = hierarchy.layers.iter().flatten().copied().collect();
    for &r in &all_roles {
        for _ in 0..perms_per_role {
            let action = actions[rng.random_range(0..actions.len())];
            let object = format!("obj{}", rng.random_range(0..objects.max(1)));
            let perm = hierarchy.universe.perm(action, &object);
            let p = hierarchy.universe.priv_perm(perm);
            hierarchy.policy.add_edge(Edge::RolePriv(r, p));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adminref_core::reach::ReachIndex;

    #[test]
    fn layered_is_deterministic() {
        let spec = LayeredSpec::default();
        let a = layered(spec);
        let b = layered(spec);
        let ea: Vec<_> = a.policy.edges().collect();
        let eb: Vec<_> = b.policy.edges().collect();
        assert_eq!(ea, eb, "same seed, same hierarchy");
        let c = layered(LayeredSpec { seed: 999, ..spec });
        let ec: Vec<_> = c.policy.edges().collect();
        assert_ne!(ea, ec, "different seed, different hierarchy");
    }

    #[test]
    fn layered_chains_span_all_layers() {
        let h = layered(LayeredSpec {
            layers: 5,
            width: 4,
            edge_prob: 0.2,
            seed: 7,
        });
        let idx = ReachIndex::build(&h.universe, &h.policy);
        assert_eq!(idx.role_closure().longest_chain_roles(), 5);
        // Every top-layer role reaches some bottom-layer role.
        for &top in &h.layers[0] {
            let reaches_bottom = h.layers[4]
                .iter()
                .any(|&bot| idx.role_closure().reaches(top.0, bot.0));
            assert!(reaches_bottom);
        }
    }

    #[test]
    fn chain_longest_chain() {
        let h = chain(10);
        let idx = ReachIndex::build(&h.universe, &h.policy);
        assert_eq!(idx.role_closure().longest_chain_roles(), 10);
    }

    #[test]
    fn random_dag_is_acyclic() {
        let h = random_dag(30, 80, 42);
        let idx = ReachIndex::build(&h.universe, &h.policy);
        assert_eq!(
            idx.role_closure().scc_count(),
            30,
            "forward edges only: every SCC is a singleton"
        );
    }

    #[test]
    fn populate_users_assigns_memberships() {
        let mut h = chain(5);
        let users = populate_users(&mut h, 10, 2, 1);
        assert_eq!(users.len(), 10);
        assert!(h.policy.ua_len() > 0);
        for &u in &users {
            assert!(h.policy.roles_of(u).count() >= 1);
        }
    }

    #[test]
    fn populate_perms_covers_roles() {
        let mut h = chain(4);
        populate_perms(&mut h, 3, 10, 2);
        for layer in &h.layers {
            for &r in layer {
                assert!(h.policy.privs_of(r).count() >= 1);
            }
        }
    }

    #[test]
    fn tiny_inputs_are_fine() {
        let h = chain(1);
        assert_eq!(h.policy.rh_len(), 0);
        let h2 = random_dag(1, 5, 0);
        assert_eq!(h2.policy.rh_len(), 0);
        let h3 = layered(LayeredSpec {
            layers: 1,
            width: 2,
            edge_prob: 0.5,
            seed: 0,
        });
        assert_eq!(h3.policy.rh_len(), 0);
    }
}
