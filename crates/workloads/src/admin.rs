//! Injecting administrative privileges into a generated policy.
//!
//! Benchmarks need policies whose `PA†` contains grant/revoke terms with a
//! controlled nesting-depth distribution (deciding `⊑` on depth-`k` terms
//! is the quantity Lemma 1 is about).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use adminref_core::ids::{PrivId, RoleId, UserId};
use adminref_core::policy::Policy;
use adminref_core::universe::{Edge, Universe};

/// Parameters for privilege injection.
#[derive(Clone, Copy, Debug)]
pub struct AdminSpec {
    /// Number of administrative privileges to assign.
    pub count: usize,
    /// Maximum connective nesting depth (≥ 1).
    pub max_depth: u32,
    /// Fraction of grants (the rest are revokes).
    pub grant_ratio: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AdminSpec {
    fn default() -> Self {
        AdminSpec {
            count: 16,
            max_depth: 2,
            grant_ratio: 0.8,
            seed: 0xBEEF,
        }
    }
}

/// Builds one random administrative privilege of exactly `depth` levels.
pub fn random_admin_priv(
    universe: &mut Universe,
    users: &[UserId],
    roles: &[RoleId],
    depth: u32,
    grant: bool,
    rng: &mut StdRng,
) -> PrivId {
    assert!(depth >= 1, "administrative privileges have depth ≥ 1");
    assert!(!roles.is_empty(), "need roles to build privileges");
    let edge = if depth == 1 {
        // Leaf: a user-role or role-role edge.
        if !users.is_empty() && rng.random_bool(0.5) {
            let u = users[rng.random_range(0..users.len())];
            let r = roles[rng.random_range(0..roles.len())];
            Edge::UserRole(u, r)
        } else {
            let a = roles[rng.random_range(0..roles.len())];
            let b = roles[rng.random_range(0..roles.len())];
            Edge::RoleRole(a, b)
        }
    } else {
        let r = roles[rng.random_range(0..roles.len())];
        let inner_grant = rng.random_bool(0.8);
        let inner = random_admin_priv(universe, users, roles, depth - 1, inner_grant, rng);
        Edge::RolePriv(r, inner)
    };
    if grant {
        universe.priv_grant(edge)
    } else {
        universe.priv_revoke(edge)
    }
}

/// Assigns `spec.count` random administrative privileges to random roles.
/// Returns the `(role, privilege)` assignments made.
pub fn inject_admin_privs(
    universe: &mut Universe,
    policy: &mut Policy,
    users: &[UserId],
    roles: &[RoleId],
    spec: AdminSpec,
) -> Vec<(RoleId, PrivId)> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut out = Vec::with_capacity(spec.count);
    for _ in 0..spec.count {
        let depth = rng.random_range(1..=spec.max_depth.max(1));
        let grant = rng.random_bool(spec.grant_ratio.clamp(0.0, 1.0));
        let p = random_admin_priv(universe, users, roles, depth, grant, &mut rng);
        let holder = roles[rng.random_range(0..roles.len())];
        policy.add_edge(Edge::RolePriv(holder, p));
        out.push((holder, p));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::{chain, populate_users};

    #[test]
    fn injection_is_deterministic() {
        let mut h1 = chain(6);
        let users1 = populate_users(&mut h1, 4, 1, 3);
        let roles1: Vec<RoleId> = h1.layers.iter().flatten().copied().collect();
        let a1 = inject_admin_privs(
            &mut h1.universe,
            &mut h1.policy,
            &users1,
            &roles1,
            AdminSpec::default(),
        );
        let mut h2 = chain(6);
        let users2 = populate_users(&mut h2, 4, 1, 3);
        let roles2: Vec<RoleId> = h2.layers.iter().flatten().copied().collect();
        let a2 = inject_admin_privs(
            &mut h2.universe,
            &mut h2.policy,
            &users2,
            &roles2,
            AdminSpec::default(),
        );
        assert_eq!(a1, a2);
    }

    #[test]
    fn depths_respect_bound() {
        let mut h = chain(5);
        let users = populate_users(&mut h, 3, 1, 9);
        let roles: Vec<RoleId> = h.layers.iter().flatten().copied().collect();
        let spec = AdminSpec {
            count: 40,
            max_depth: 3,
            ..AdminSpec::default()
        };
        let assigned = inject_admin_privs(&mut h.universe, &mut h.policy, &users, &roles, spec);
        assert_eq!(assigned.len(), 40);
        for (_, p) in assigned {
            let d = h.universe.depth(p);
            assert!((1..=3).contains(&d), "depth {d} out of range");
        }
    }

    #[test]
    fn exact_depth_generation() {
        let mut h = chain(4);
        let users = populate_users(&mut h, 2, 1, 1);
        let roles: Vec<RoleId> = h.layers.iter().flatten().copied().collect();
        let mut rng = StdRng::seed_from_u64(5);
        for depth in 1..=5 {
            let p = random_admin_priv(&mut h.universe, &users, &roles, depth, true, &mut rng);
            assert_eq!(h.universe.depth(p), depth);
        }
    }

    #[test]
    fn grant_ratio_extremes() {
        let mut h = chain(4);
        let users = populate_users(&mut h, 2, 1, 1);
        let roles: Vec<RoleId> = h.layers.iter().flatten().copied().collect();
        let all_grants = inject_admin_privs(
            &mut h.universe,
            &mut h.policy,
            &users,
            &roles,
            AdminSpec {
                count: 20,
                grant_ratio: 1.0,
                ..AdminSpec::default()
            },
        );
        for (_, p) in all_grants {
            assert!(matches!(
                h.universe.term(p),
                adminref_core::universe::PrivTerm::Grant(_)
            ));
        }
    }
}
