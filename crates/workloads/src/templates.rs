//! The paper's figures as canonical, reusable fixtures.
//!
//! The figure artwork in the source text is partially garbled; the
//! reconstruction used throughout this repository (and documented in
//! EXPERIMENTS.md) is:
//!
//! * **Figure 1** (non-administrative): `diana → {nurse, staff}`;
//!   hierarchy `staff → nurse`, `nurse → {prntusr, dbusr1}`,
//!   `staff → dbusr2`, `dbusr2 → dbusr1`; perms `prntusr → (prnt,black)`,
//!   `staff → (prnt,color)`, `dbusr1 → (read,t1), (read,t2)`,
//!   `dbusr2 → (write,t3)`. This satisfies Example 1: as *nurse* Diana
//!   reads t1/t2; as *staff* she can also write t3.
//! * **Figure 2** (administrative): Figure 1 plus users jane (HR), alice
//!   (SO), bob and joe; `so → hr`; HR holds `¤(bob,staff)`, `¤(joe,nurse)`
//!   and `♦(joe,nurse)`; dbusr3 holds the revocation privilege
//!   `♦(dbusr2,dbusr1)` (“a revocation privilege about the role dbusr2”).
//! * **Figure 3** is Figure 2 from Bob's perspective (the dashed/dotted
//!   edges are the two commands Jane may issue); it needs no separate
//!   fixture.
//! * **Example 6**: roles `r1`, `r2` with `(r2, ¤(r1,r2)) ∈ PA`.

use adminref_core::ids::PrivId;
use adminref_core::policy::{Policy, PolicyBuilder};
use adminref_core::universe::Universe;

/// Figure 1: the non-administrative hospital policy.
pub fn hospital_fig1() -> (Universe, Policy) {
    PolicyBuilder::new()
        .assign("diana", "nurse")
        .assign("diana", "staff")
        .inherit("staff", "nurse")
        .inherit("nurse", "prntusr")
        .inherit("nurse", "dbusr1")
        .inherit("staff", "dbusr2")
        .inherit("dbusr2", "dbusr1")
        .permit("prntusr", "prnt", "black")
        .permit("staff", "prnt", "color")
        .permit("dbusr1", "read", "t1")
        .permit("dbusr1", "read", "t2")
        .permit("dbusr2", "write", "t3")
        .finish()
}

/// Figure 2: Alice's administrative policy over the Figure 1 hospital.
pub fn hospital_fig2() -> (Universe, Policy) {
    let mut b = PolicyBuilder::new()
        .assign("diana", "nurse")
        .assign("diana", "staff")
        .assign("jane", "hr")
        .assign("alice", "so")
        .declare_user("bob")
        .declare_user("joe")
        .inherit("staff", "nurse")
        .inherit("nurse", "prntusr")
        .inherit("nurse", "dbusr1")
        .inherit("staff", "dbusr2")
        .inherit("dbusr2", "dbusr1")
        .inherit("so", "hr")
        .declare_role("dbusr3")
        .permit("prntusr", "prnt", "black")
        .permit("staff", "prnt", "color")
        .permit("dbusr1", "read", "t1")
        .permit("dbusr1", "read", "t2")
        .permit("dbusr2", "write", "t3");
    let (bob, joe, staff, nurse, dbusr1, dbusr2) = {
        let u = b.universe_mut();
        (
            u.find_user("bob").unwrap(),
            u.find_user("joe").unwrap(),
            u.find_role("staff").unwrap(),
            u.find_role("nurse").unwrap(),
            u.find_role("dbusr1").unwrap(),
            u.find_role("dbusr2").unwrap(),
        )
    };
    let g_bob_staff = b.universe_mut().grant_user_role(bob, staff);
    let g_joe_nurse = b.universe_mut().grant_user_role(joe, nurse);
    let r_joe_nurse = b.universe_mut().revoke_user_role(joe, nurse);
    let r_dbusr2 = b.universe_mut().revoke_role_role(dbusr2, dbusr1);
    b = b
        .assign_priv("hr", g_bob_staff)
        .assign_priv("hr", g_joe_nurse)
        .assign_priv("hr", r_joe_nurse)
        .assign_priv("dbusr3", r_dbusr2);
    b.finish()
}

/// Example 6: `(r2, ¤(r1, r2)) ∈ PA`. Returns the policy and the assigned
/// privilege `¤(r1, r2)`.
pub fn example6() -> (Universe, Policy, PrivId) {
    let mut b = PolicyBuilder::new().declare_role("r1").declare_role("r2");
    let (r1, r2) = {
        let u = b.universe_mut();
        (u.find_role("r1").unwrap(), u.find_role("r2").unwrap())
    };
    let g = b.universe_mut().grant_role_role(r1, r2);
    b = b.assign_priv("r2", g);
    let (uni, policy) = b.finish();
    (uni, policy, g)
}

/// Example 5's second scenario: Alice (so) holds the nested privilege
/// `¤(staff, ¤(bob, staff))` on top of Figure 2.
pub fn hospital_with_nested_delegation() -> (Universe, Policy) {
    let (mut uni, mut policy) = hospital_fig2();
    let bob = uni.find_user("bob").unwrap();
    let staff = uni.find_role("staff").unwrap();
    let so = uni.find_role("so").unwrap();
    let inner = uni.grant_user_role(bob, staff);
    let nested = uni.grant_role_priv(staff, inner);
    policy.add_edge(adminref_core::universe::Edge::RolePriv(so, nested));
    (uni, policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adminref_core::ids::Entity;
    use adminref_core::reach::ReachIndex;

    #[test]
    fn fig1_matches_example1() {
        let (mut uni, policy) = hospital_fig1();
        let idx = ReachIndex::build(&uni, &policy);
        let diana = uni.find_user("diana").unwrap();
        let nurse = uni.find_role("nurse").unwrap();
        let staff = uni.find_role("staff").unwrap();
        // As nurse: read t1, t2 but not write t3.
        let nurse_perms = idx.perms_reachable(&uni, &policy, Entity::Role(nurse));
        let read_t1 = uni.perm("read", "t1");
        let read_t2 = uni.perm("read", "t2");
        let write_t3 = uni.perm("write", "t3");
        assert!(nurse_perms.contains(&read_t1));
        assert!(nurse_perms.contains(&read_t2));
        assert!(!nurse_perms.contains(&write_t3));
        // As staff: also write t3.
        let staff_perms = idx.perms_reachable(&uni, &policy, Entity::Role(staff));
        assert!(staff_perms.contains(&write_t3));
        // Diana reaches both roles.
        assert!(idx.reach_entity(Entity::User(diana), Entity::Role(nurse)));
        assert!(idx.reach_entity(Entity::User(diana), Entity::Role(staff)));
    }

    #[test]
    fn fig2_is_administrative_and_fig1_is_not() {
        let (uni1, p1) = hospital_fig1();
        assert!(p1.is_non_administrative(&uni1));
        let (uni2, p2) = hospital_fig2();
        assert!(!p2.is_non_administrative(&uni2));
    }

    #[test]
    fn fig2_delegations_are_as_described() {
        // “Members of HR can assign and revoke certain users to staff and
        // nurse roles.”
        let (uni, policy) = hospital_fig2();
        let hr = uni.find_role("hr").unwrap();
        let dbusr3 = uni.find_role("dbusr3").unwrap();
        assert_eq!(policy.privs_of(hr).count(), 3);
        assert_eq!(policy.privs_of(dbusr3).count(), 1);
        // Alice reaches HR's privileges through so → hr.
        let idx = ReachIndex::build(&uni, &policy);
        let alice = uni.find_user("alice").unwrap();
        for p in policy.privs_of(hr) {
            assert!(idx.reach_priv(Entity::User(alice), p));
        }
    }

    #[test]
    fn example6_shape() {
        let (uni, policy, g) = example6();
        assert_eq!(policy.pa_len(), 1);
        assert!(policy.priv_vertices().contains(&g));
        assert_eq!(uni.depth(g), 1);
    }

    #[test]
    fn nested_delegation_fixture() {
        let (uni, policy) = hospital_with_nested_delegation();
        let so = uni.find_role("so").unwrap();
        let depths: Vec<u32> = policy.privs_of(so).map(|p| uni.depth(p)).collect();
        assert!(depths.contains(&2));
    }
}
