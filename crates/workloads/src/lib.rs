//! # adminref-workloads
//!
//! Seeded, deterministic policy and command-queue generators plus the
//! paper's figures as canonical fixtures:
//!
//! * [`templates`] — Figures 1/2, Example 6, the Example 5 nesting;
//! * [`hierarchy`] — layered / chain / random-DAG hierarchies at
//!   “thousands of roles” scale, with user and permission population;
//! * [`admin`] — administrative-privilege injection with controlled
//!   nesting depth;
//! * [`queues`] — command-queue generation with a valid/junk mix;
//! * [`scenarios`] — named stress shapes (deep delegation chains whose
//!   reachable-policy count is combinatorial; the mixed read/write
//!   `churn` workload behind the monitor throughput bench).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admin;
pub mod hierarchy;
pub mod queues;
pub mod scenarios;
pub mod templates;

pub use admin::{inject_admin_privs, random_admin_priv, AdminSpec};
pub use hierarchy::{
    chain, layered, populate_perms, populate_users, random_dag, Hierarchy, LayeredSpec,
};
pub use queues::{generate_queue, QueueSpec};
pub use scenarios::{
    churn, cone, deep_delegation, grow_only, multi_tenant_churn, seeded_defects, tenant_seed,
    wide_universe_trickle, write_storm, ChurnReader, ChurnSpec, ChurnWorkload, ConeSpec,
    ConeWorkload, DelegationSpec, DelegationWorkload, GrowOnlySpec, GrowOnlyWorkload,
    MultiTenantSpec, MultiTenantWorkload, SeededDefectsWorkload, TenantWorkload, TrickleSpec,
    TrickleWorkload, WriteStormSpec, WriteStormWorkload,
};
pub use templates::{example6, hospital_fig1, hospital_fig2, hospital_with_nested_delegation};
