//! Command-queue generation for throughput benchmarks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use adminref_core::command::{Command, CommandQueue};
use adminref_core::ids::{RoleId, UserId};
use adminref_core::policy::Policy;
use adminref_core::universe::{Edge, PrivTerm, Universe};

/// Parameters for queue generation.
#[derive(Clone, Copy, Debug)]
pub struct QueueSpec {
    /// Number of commands.
    pub len: usize,
    /// Fraction of commands drawn from privileges actually assigned in
    /// the policy (the rest are random junk, exercising the refusal
    /// path).
    pub valid_ratio: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QueueSpec {
    fn default() -> Self {
        QueueSpec {
            len: 256,
            valid_ratio: 0.7,
            seed: 0xC0FFEE,
        }
    }
}

/// Generates a queue of commands against `policy`.
///
/// “Valid” commands take an assigned grant/revoke vertex and issue exactly
/// its edge from a user that reaches the holding role (explicit-mode
/// authorizable at the initial policy; interleaving may change that, which
/// is realistic). Junk commands pick random users and edges.
pub fn generate_queue(
    universe: &Universe,
    policy: &Policy,
    users: &[UserId],
    roles: &[RoleId],
    spec: QueueSpec,
) -> CommandQueue {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    // Collect (holder, term) pairs for assigned admin privileges and the
    // users that reach each holder.
    let reach = adminref_core::reach::ReachIndex::build(universe, policy);
    let mut exercisable: Vec<(UserId, PrivTerm)> = Vec::new();
    for (holder, p) in policy.pa() {
        let term = universe.term(p);
        if !term.is_administrative() {
            continue;
        }
        for &u in users {
            if reach.reach_entity(u.into(), holder.into()) {
                exercisable.push((u, term));
            }
        }
    }
    let mut out = CommandQueue::new();
    for _ in 0..spec.len {
        let valid = !exercisable.is_empty() && rng.random_bool(spec.valid_ratio.clamp(0.0, 1.0));
        let cmd = if valid {
            let (actor, term) = exercisable[rng.random_range(0..exercisable.len())];
            let edge = term.edge().expect("administrative terms carry edges");
            match term {
                PrivTerm::Grant(_) => Command::grant(actor, edge),
                PrivTerm::Revoke(_) => Command::revoke(actor, edge),
                PrivTerm::Perm(_) => unreachable!("filtered above"),
            }
        } else {
            let actor = if users.is_empty() {
                UserId(0)
            } else {
                users[rng.random_range(0..users.len())]
            };
            let a = roles[rng.random_range(0..roles.len())];
            let b = roles[rng.random_range(0..roles.len())];
            if rng.random_bool(0.5) {
                Command::grant(actor, Edge::RoleRole(a, b))
            } else {
                Command::revoke(actor, Edge::RoleRole(a, b))
            }
        };
        out.push(cmd);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admin::{inject_admin_privs, AdminSpec};
    use crate::hierarchy::{chain, populate_users};

    fn setup() -> (Universe, Policy, Vec<UserId>, Vec<RoleId>) {
        let mut h = chain(6);
        let users = populate_users(&mut h, 5, 2, 11);
        let roles: Vec<RoleId> = h.layers.iter().flatten().copied().collect();
        inject_admin_privs(
            &mut h.universe,
            &mut h.policy,
            &users,
            &roles,
            AdminSpec::default(),
        );
        (h.universe, h.policy, users, roles)
    }

    #[test]
    fn queue_has_requested_length_and_is_deterministic() {
        let (uni, policy, users, roles) = setup();
        let q1 = generate_queue(&uni, &policy, &users, &roles, QueueSpec::default());
        let q2 = generate_queue(&uni, &policy, &users, &roles, QueueSpec::default());
        assert_eq!(q1.len(), 256);
        assert_eq!(q1, q2);
    }

    #[test]
    fn valid_commands_are_initially_authorized() {
        let (mut uni, policy, users, roles) = setup();
        let q = generate_queue(
            &uni,
            &policy,
            &users,
            &roles,
            QueueSpec {
                len: 64,
                valid_ratio: 1.0,
                seed: 3,
            },
        );
        let mut authorized = 0;
        for cmd in q.iter() {
            if adminref_core::transition::authorize(
                &mut uni,
                &policy,
                cmd,
                adminref_core::transition::AuthMode::Explicit,
            )
            .is_some()
            {
                authorized += 1;
            }
        }
        assert_eq!(authorized, q.len(), "all-valid queue authorizes fully");
    }

    #[test]
    fn junk_queue_mostly_refused() {
        let (mut uni, mut policy, users, roles) = setup();
        let q = generate_queue(
            &uni,
            &policy,
            &users,
            &roles,
            QueueSpec {
                len: 64,
                valid_ratio: 0.0,
                seed: 4,
            },
        );
        let trace = adminref_core::transition::run(
            &mut uni,
            &mut policy,
            &q,
            adminref_core::transition::AuthMode::Explicit,
        );
        assert!(trace.refused_count() > trace.executed_count());
    }
}
