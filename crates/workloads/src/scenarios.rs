//! Named analysis scenarios: policies shaped to stress specific parts
//! of the toolkit rather than to match a statistical profile.
//!
//! [`deep_delegation`] builds a *delegation chain*: an administrator can
//! place workers into stage 0, members of stage `i` can place workers
//! into stage `i + 1`, and only the last stage carries the sensitive
//! permission. Reaching the permission therefore needs a witness of
//! exactly `depth` commands, and the intermediate policies — one per
//! subset of grantable memberships whose prerequisites are met — grow
//! combinatorially with `fanout`. That makes the scenario the canonical
//! stress test for the compact state arena of `adminref_core::search`:
//! clone-based state sets blow up in memory long before the bitset
//! arena does.

use adminref_core::ids::{Perm, RoleId, UserId};
use adminref_core::policy::Policy;
use adminref_core::universe::{Edge, Universe};

/// Shape of a [`deep_delegation`] scenario.
#[derive(Clone, Copy, Debug)]
pub struct DelegationSpec {
    /// Number of delegation stages (witness length to the permission).
    pub depth: usize,
    /// Workers each stage may delegate to.
    pub fanout: usize,
}

impl Default for DelegationSpec {
    fn default() -> Self {
        DelegationSpec {
            depth: 4,
            fanout: 3,
        }
    }
}

/// A generated delegation-chain workload.
#[derive(Debug)]
pub struct DelegationWorkload {
    /// The universe.
    pub universe: Universe,
    /// The policy.
    pub policy: Policy,
    /// The administrator seeded into the `admins` role.
    pub admin: UserId,
    /// The delegation stages, entry stage first.
    pub stages: Vec<RoleId>,
    /// The delegatable workers.
    pub workers: Vec<UserId>,
    /// The permission held only by the last stage.
    pub vault_perm: Perm,
}

/// Builds a deep-delegation policy (deterministic by construction).
///
/// * `admins` holds `¤(w, stage_0)` for every worker `w`;
/// * `stage_i` holds `¤(w, stage_{i+1})` for every worker;
/// * only `stage_{depth-1}` holds `(open, vault)`.
///
/// `perm_reachable(worker, (open, vault))` is reachable with a witness
/// of exactly `depth` commands; the reachable policy count is
/// exponential in `fanout · depth`.
pub fn deep_delegation(spec: DelegationSpec) -> DelegationWorkload {
    assert!(spec.depth >= 1, "need at least one stage");
    assert!(spec.fanout >= 1, "need at least one worker");
    let mut universe = Universe::new();
    let admin = universe.user("admin0");
    let admins = universe.role("admins");
    let stages: Vec<RoleId> = (0..spec.depth)
        .map(|i| universe.role(&format!("stage{i}")))
        .collect();
    let workers: Vec<UserId> = (0..spec.fanout)
        .map(|j| universe.user(&format!("worker{j}")))
        .collect();
    let mut policy = Policy::new(&universe);
    policy.add_edge(Edge::UserRole(admin, admins));
    for &w in &workers {
        let p = universe.grant_user_role(w, stages[0]);
        policy.add_edge(Edge::RolePriv(admins, p));
    }
    for i in 0..spec.depth - 1 {
        for &w in &workers {
            let p = universe.grant_user_role(w, stages[i + 1]);
            policy.add_edge(Edge::RolePriv(stages[i], p));
        }
    }
    let vault_perm = universe.perm("open", "vault");
    let vault = universe.priv_perm(vault_perm);
    policy.add_edge(Edge::RolePriv(stages[spec.depth - 1], vault));
    DelegationWorkload {
        universe,
        policy,
        admin,
        stages,
        workers,
        vault_perm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adminref_core::ids::Entity;
    use adminref_core::reach::ReachIndex;
    use adminref_core::safety::{perm_reachable, ReachabilityAnswer, SafetyConfig};
    use adminref_core::transition::{run_pure, AuthMode};

    #[test]
    fn vault_needs_exactly_depth_steps() {
        let mut w = deep_delegation(DelegationSpec {
            depth: 3,
            fanout: 2,
        });
        let worker = w.workers[0];
        let config = SafetyConfig {
            max_steps: 3,
            max_states: 100_000,
            ..SafetyConfig::default()
        };
        let answer = perm_reachable(
            &mut w.universe,
            &w.policy,
            Entity::User(worker),
            w.vault_perm,
            config,
        );
        let ReachabilityAnswer::Reachable { witness } = answer else {
            panic!("expected reachable");
        };
        assert_eq!(witness.len(), 3, "{witness:?}");
        // The witness replays: the worker really opens the vault.
        let final_policy = run_pure(&mut w.universe, &w.policy, &witness, AuthMode::Explicit);
        let target = w.universe.priv_perm(w.vault_perm);
        assert!(ReachIndex::build(&w.universe, &final_policy)
            .reach_priv(Entity::User(worker), target));
        // One step short: the plan is genuinely cut off, not refuted.
        let short = perm_reachable(
            &mut w.universe,
            &w.policy,
            Entity::User(worker),
            w.vault_perm,
            SafetyConfig {
                max_steps: 2,
                ..config
            },
        );
        assert!(matches!(short, ReachabilityAnswer::Unknown), "{short:?}");
    }

    #[test]
    fn state_space_grows_with_fanout() {
        // fanout=3, depth=2: enough distinct reachable membership
        // subsets that a small cap truncates — the arena-stress shape.
        let mut w = deep_delegation(DelegationSpec {
            depth: 2,
            fanout: 3,
        });
        let worker = w.workers[0];
        let never = w.universe.perm("launch", "missiles");
        let answer = perm_reachable(
            &mut w.universe,
            &w.policy,
            Entity::User(worker),
            never,
            SafetyConfig {
                max_steps: 6,
                max_states: 8,
                ..SafetyConfig::default()
            },
        );
        assert!(matches!(answer, ReachabilityAnswer::Unknown), "{answer:?}");
    }

    #[test]
    fn parallel_and_sequential_agree_on_the_chain() {
        let mut w = deep_delegation(DelegationSpec {
            depth: 3,
            fanout: 2,
        });
        let worker = w.workers[1];
        let config = SafetyConfig {
            max_steps: 3,
            max_states: 100_000,
            ..SafetyConfig::default()
        };
        let seq = perm_reachable(
            &mut w.universe,
            &w.policy,
            Entity::User(worker),
            w.vault_perm,
            config,
        );
        let par = perm_reachable(
            &mut w.universe,
            &w.policy,
            Entity::User(worker),
            w.vault_perm,
            SafetyConfig { jobs: 4, ..config },
        );
        match (&seq, &par) {
            (
                ReachabilityAnswer::Reachable { witness: a },
                ReachabilityAnswer::Reachable { witness: b },
            ) => assert_eq!(a.commands(), b.commands()),
            other => panic!("{other:?}"),
        }
    }
}
