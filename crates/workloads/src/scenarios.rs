//! Named analysis scenarios: policies shaped to stress specific parts
//! of the toolkit rather than to match a statistical profile.
//!
//! [`deep_delegation`] builds a *delegation chain*: an administrator can
//! place workers into stage 0, members of stage `i` can place workers
//! into stage `i + 1`, and only the last stage carries the sensitive
//! permission. Reaching the permission therefore needs a witness of
//! exactly `depth` commands, and the intermediate policies — one per
//! subset of grantable memberships whose prerequisites are met — grow
//! combinatorially with `fanout`. That makes the scenario the canonical
//! stress test for the compact state arena of `adminref_core::search`:
//! clone-based state sets blow up in memory long before the bitset
//! arena does.

//! [`churn`] builds the mixed read/write monitor workload: a sized
//! hierarchy, a population of reader sessions (each a user with an
//! activatable role and a perm to probe), and a stream of pregenerated
//! administrative command batches for a concurrent writer. It is the
//! input of `adminref bench-monitor` and the `monitor_throughput`
//! bench, which measure `check_access` throughput while the admin
//! writer churns.
//!
//! [`multi_tenant_churn`] stamps out several *independent* churn
//! workloads — distinct universes, policies, reader populations, and
//! writer batches per tenant, derived from per-tenant seeds — and is
//! the input of the multi-tenant cells of `adminref bench-service` and
//! the `service_throughput` bench, which drive a `ServiceRouter`
//! hosting every tenant in one process.
//!
//! [`write_storm`] builds the write-path stress: per-writer
//! grant/revoke *toggle* streams over disjoint edges of one sized
//! policy, where — unlike `churn`'s mixed stream, which converges to
//! no-ops — **every** command is authorized and changes the policy, so
//! every command forces the full write cost (WAL, `ReachIndex` rebuild,
//! epoch publication). This is the input of `adminref bench-service`
//! and the `service_throughput` bench, which compare group-commit
//! against per-call writer locking.

use adminref_core::ids::{Entity, Perm, RoleId, UserId};
use adminref_core::policy::Policy;
use adminref_core::reach::ReachIndex;
use adminref_core::universe::{Edge, PrivTerm, Universe};

use crate::admin::{inject_admin_privs, AdminSpec};
use crate::hierarchy::{layered, populate_perms, populate_users, LayeredSpec};
use crate::queues::{generate_queue, QueueSpec};

/// Shape of a [`deep_delegation`] scenario.
#[derive(Clone, Copy, Debug)]
pub struct DelegationSpec {
    /// Number of delegation stages (witness length to the permission).
    pub depth: usize,
    /// Workers each stage may delegate to.
    pub fanout: usize,
}

impl Default for DelegationSpec {
    fn default() -> Self {
        DelegationSpec {
            depth: 4,
            fanout: 3,
        }
    }
}

/// A generated delegation-chain workload.
#[derive(Debug)]
pub struct DelegationWorkload {
    /// The universe.
    pub universe: Universe,
    /// The policy.
    pub policy: Policy,
    /// The administrator seeded into the `admins` role.
    pub admin: UserId,
    /// The delegation stages, entry stage first.
    pub stages: Vec<RoleId>,
    /// The delegatable workers.
    pub workers: Vec<UserId>,
    /// The permission held only by the last stage.
    pub vault_perm: Perm,
}

/// Builds a deep-delegation policy (deterministic by construction).
///
/// * `admins` holds `¤(w, stage_0)` for every worker `w`;
/// * `stage_i` holds `¤(w, stage_{i+1})` for every worker;
/// * only `stage_{depth-1}` holds `(open, vault)`.
///
/// `perm_reachable(worker, (open, vault))` is reachable with a witness
/// of exactly `depth` commands; the reachable policy count is
/// exponential in `fanout · depth`.
pub fn deep_delegation(spec: DelegationSpec) -> DelegationWorkload {
    assert!(spec.depth >= 1, "need at least one stage");
    assert!(spec.fanout >= 1, "need at least one worker");
    let mut universe = Universe::new();
    let admin = universe.user("admin0");
    let admins = universe.role("admins");
    let stages: Vec<RoleId> = (0..spec.depth)
        .map(|i| universe.role(&format!("stage{i}")))
        .collect();
    let workers: Vec<UserId> = (0..spec.fanout)
        .map(|j| universe.user(&format!("worker{j}")))
        .collect();
    let mut policy = Policy::new(&universe);
    policy.add_edge(Edge::UserRole(admin, admins));
    for &w in &workers {
        let p = universe.grant_user_role(w, stages[0]);
        policy.add_edge(Edge::RolePriv(admins, p));
    }
    for i in 0..spec.depth - 1 {
        for &w in &workers {
            let p = universe.grant_user_role(w, stages[i + 1]);
            policy.add_edge(Edge::RolePriv(stages[i], p));
        }
    }
    let vault_perm = universe.perm("open", "vault");
    let vault = universe.priv_perm(vault_perm);
    policy.add_edge(Edge::RolePriv(stages[spec.depth - 1], vault));
    DelegationWorkload {
        universe,
        policy,
        admin,
        stages,
        workers,
        vault_perm,
    }
}

/// Shape of a [`grow_only`] scenario.
#[derive(Clone, Copy, Debug)]
pub struct GrowOnlySpec {
    /// Roles in the wide inheritance chain.
    pub width: usize,
    /// Users the administrators may place anywhere in the chain.
    pub users: usize,
}

impl Default for GrowOnlySpec {
    fn default() -> Self {
        GrowOnlySpec {
            width: 32,
            users: 4,
        }
    }
}

/// A generated grow-only (monotone) workload.
#[derive(Debug)]
pub struct GrowOnlyWorkload {
    /// The universe.
    pub universe: Universe,
    /// The policy.
    pub policy: Policy,
    /// The administrator seeded into the `admins` role.
    pub admin: UserId,
    /// The placeable members.
    pub members: Vec<UserId>,
    /// The inheritance chain, senior first.
    pub tier: Vec<RoleId>,
    /// A permission held by the most junior role (reachable for every
    /// member in one grant).
    pub goal_perm: Perm,
    /// An interned permission no role ever holds (unreachable — but only
    /// an unbounded engine can say so).
    pub absent_perm: Perm,
}

/// Builds a **grow-only** wide-universe workload: `admins` holds
/// `¤(u, r)` for every member × chain role, no revoke privilege exists
/// anywhere, and the chain funnels every role into the junior role
/// holding [`GrowOnlyWorkload::goal_perm`].
///
/// The reachable-policy count is `2^(users · width)` — hopeless for any
/// bounded search on an [`GrowOnlyWorkload::absent_perm`] query — while
/// the instance is monotone by construction, so the saturation engine
/// answers both queries definitively in a couple of fixpoint rounds.
/// This is the canonical fixture for the "grow-only is never `Unknown`,
/// regardless of `max_states`" guarantee.
pub fn grow_only(spec: GrowOnlySpec) -> GrowOnlyWorkload {
    assert!(spec.width >= 1, "need at least one role");
    assert!(spec.users >= 1, "need at least one member");
    let mut universe = Universe::new();
    let admin = universe.user("admin0");
    let admins = universe.role("admins");
    let tier: Vec<RoleId> = (0..spec.width)
        .map(|i| universe.role(&format!("tier{i}")))
        .collect();
    let members: Vec<UserId> = (0..spec.users)
        .map(|j| universe.user(&format!("member{j}")))
        .collect();
    let mut policy = Policy::new(&universe);
    policy.add_edge(Edge::UserRole(admin, admins));
    for w in tier.windows(2) {
        policy.add_edge(Edge::RoleRole(w[0], w[1]));
    }
    for &u in &members {
        for &r in &tier {
            let p = universe.grant_user_role(u, r);
            policy.add_edge(Edge::RolePriv(admins, p));
        }
    }
    let goal_perm = universe.perm("open", "vault");
    let goal = universe.priv_perm(goal_perm);
    policy.add_edge(Edge::RolePriv(tier[spec.width - 1], goal));
    let absent_perm = universe.perm("launch", "missiles");
    universe.priv_perm(absent_perm); // interned, never assigned
    GrowOnlyWorkload {
        universe,
        policy,
        admin,
        members,
        tier,
        goal_perm,
        absent_perm,
    }
}

/// Shape of a [`cone`] scenario.
#[derive(Clone, Copy, Debug)]
pub struct ConeSpec {
    /// Independent delegation departments (only department 0 reaches
    /// the goal permission).
    pub departments: usize,
    /// Delegation stages per department (witness length to the goal).
    pub depth: usize,
    /// Workers each stage may delegate to.
    pub fanout: usize,
}

impl Default for ConeSpec {
    fn default() -> Self {
        ConeSpec {
            departments: 6,
            depth: 3,
            fanout: 2,
        }
    }
}

/// A generated cone workload.
#[derive(Debug)]
pub struct ConeWorkload {
    /// The universe.
    pub universe: Universe,
    /// The policy.
    pub policy: Policy,
    /// The administrator seeded into the `admins` role.
    pub admin: UserId,
    /// Per-department delegation stages, entry stage first.
    pub departments: Vec<Vec<RoleId>>,
    /// The delegatable workers (shared across departments).
    pub workers: Vec<UserId>,
    /// The permission held only by department 0's last stage.
    pub goal_perm: Perm,
}

/// Builds the **cone** workload: `departments` structurally identical
/// delegation chains (each shaped like [`deep_delegation`]) sharing one
/// administrator and worker pool, where only department 0's last stage
/// holds the goal permission.
///
/// The goal's cone of influence is exactly department 0's chain —
/// `1/departments` of the command alphabet — so this is the canonical
/// fixture for goal-directed alphabet slicing
/// (`adminref_core::lint::slice_alphabet`): the unsliced bounded search
/// explores grant combinations across every department, the sliced one
/// only department 0's. With the default shape the sliced search visits
/// orders of magnitude fewer states for the same (identical) answer.
pub fn cone(spec: ConeSpec) -> ConeWorkload {
    assert!(spec.departments >= 1, "need at least one department");
    assert!(spec.depth >= 1, "need at least one stage");
    assert!(spec.fanout >= 1, "need at least one worker");
    let mut universe = Universe::new();
    let admin = universe.user("admin0");
    let admins = universe.role("admins");
    let departments: Vec<Vec<RoleId>> = (0..spec.departments)
        .map(|d| {
            (0..spec.depth)
                .map(|i| universe.role(&format!("dept{d}_stage{i}")))
                .collect()
        })
        .collect();
    let workers: Vec<UserId> = (0..spec.fanout)
        .map(|j| universe.user(&format!("worker{j}")))
        .collect();
    let mut policy = Policy::new(&universe);
    policy.add_edge(Edge::UserRole(admin, admins));
    for stages in &departments {
        for &w in &workers {
            let p = universe.grant_user_role(w, stages[0]);
            policy.add_edge(Edge::RolePriv(admins, p));
        }
        for i in 0..spec.depth - 1 {
            for &w in &workers {
                let p = universe.grant_user_role(w, stages[i + 1]);
                policy.add_edge(Edge::RolePriv(stages[i], p));
            }
        }
    }
    let goal_perm = universe.perm("open", "vault");
    let goal = universe.priv_perm(goal_perm);
    policy.add_edge(Edge::RolePriv(departments[0][spec.depth - 1], goal));
    ConeWorkload {
        universe,
        policy,
        admin,
        departments,
        workers,
        goal_perm,
    }
}

/// A generated lint-bait workload: see [`seeded_defects`].
#[derive(Debug)]
pub struct SeededDefectsWorkload {
    /// The universe.
    pub universe: Universe,
    /// The policy, seeded with one instance of each defect class.
    pub policy: Policy,
    /// The separation-of-duty pair a user violates via a grantable edge.
    pub sod_pair: (RoleId, RoleId),
}

/// Builds a policy with one deliberate instance of every lint defect
/// class (`adminref_core::lint`):
///
/// * a **dead grant** — `hr` re-grants an edge already in the root that
///   nothing can remove;
/// * a **dead revoke** — `hr` revokes an edge that is never present
///   (also a *dead non-monotone island*);
/// * an **unauthorizable** nested rule — a grant reachable only through
///   a revoke term, which the may-add closure never assigns;
/// * a **shadowed grant** — `sec` can strip `hr`'s working grant rule;
/// * a **redundant grant** — `senior` directly holds a permission it
///   already inherits from `junior`;
/// * a **separation-of-duty conflict** — both flavors: `admins` can
///   place a payment clerk into the audit role (*potential*), and one
///   user already holds both roles of the pair in the root policy
///   (*confirmed*, severity Error) —
///   see [`SeededDefectsWorkload::sod_pair`].
///
/// The linted report over this policy must flag all six classes; clean
/// scenarios ([`grow_only`], [`deep_delegation`], [`cone`]) must stay
/// finding-free. Both directions are CI-gated.
pub fn seeded_defects() -> SeededDefectsWorkload {
    let mut universe = Universe::new();
    let admin = universe.user("admin0");
    let admins = universe.role("admins");
    let hr = universe.role("hr");
    let sec = universe.role("sec");
    let jane = universe.user("jane");
    let mike = universe.user("mike");
    let bob = universe.user("bob");
    let staff = universe.role("staff");
    let temps = universe.role("temps");
    let aud = universe.role("aud");
    let senior = universe.role("senior");
    let junior = universe.role("junior");
    let pay = universe.role("pay");
    let audit = universe.role("audit");
    let clerk = universe.user("clerk");

    let mut policy = Policy::new(&universe);
    policy.add_edge(Edge::UserRole(admin, admins));
    policy.add_edge(Edge::UserRole(jane, hr));
    policy.add_edge(Edge::UserRole(mike, sec));
    policy.add_edge(Edge::UserRole(bob, staff));

    // Dead grant: (bob, staff) is a root edge and nothing revokes it.
    let dead_grant = universe.grant_user_role(bob, staff);
    policy.add_edge(Edge::RolePriv(hr, dead_grant));
    // Dead revoke (and dead island): (bob, temps) is never present.
    let dead_revoke = universe.revoke_user_role(bob, temps);
    policy.add_edge(Edge::RolePriv(hr, dead_revoke));
    // Unauthorizable nested rule: the inner grant sits inside a revoke
    // term, so no reachable policy ever assigns it.
    let nested = universe.grant_user_role(bob, aud);
    let outer = universe.priv_revoke(Edge::RolePriv(aud, nested));
    policy.add_edge(Edge::RolePriv(hr, outer));
    // Shadowed grant: hr's working grant rule, strippable by sec.
    let working = universe.grant_user_role(jane, temps);
    policy.add_edge(Edge::RolePriv(hr, working));
    let strip = universe.priv_revoke(Edge::RolePriv(hr, working));
    policy.add_edge(Edge::RolePriv(sec, strip));
    // Redundant grant: senior inherits (read, logs) from junior yet
    // also holds it directly.
    policy.add_edge(Edge::RoleRole(senior, junior));
    let read_logs = universe.perm("read", "logs");
    let read_logs_priv = universe.priv_perm(read_logs);
    policy.add_edge(Edge::RolePriv(junior, read_logs_priv));
    policy.add_edge(Edge::RolePriv(senior, read_logs_priv));
    // Potential SoD conflict: the clerk is in pay, and admins can add
    // them to audit.
    policy.add_edge(Edge::UserRole(clerk, pay));
    let cross = universe.grant_user_role(clerk, audit);
    policy.add_edge(Edge::RolePriv(admins, cross));
    // Confirmed SoD conflict: mike holds both roles of the pair in the
    // root policy itself (severity Error, unlike the clerk's Warning).
    policy.add_edge(Edge::UserRole(mike, pay));
    policy.add_edge(Edge::UserRole(mike, audit));

    SeededDefectsWorkload {
        universe,
        policy,
        sod_pair: (pay, audit),
    }
}

/// Shape of a [`churn`] scenario.
#[derive(Clone, Copy, Debug)]
pub struct ChurnSpec {
    /// Approximate role count of the layered hierarchy.
    pub roles: usize,
    /// Reader sessions to prepare (users cycling over the population).
    pub readers: usize,
    /// Commands per pregenerated writer batch.
    pub batch_len: usize,
    /// Number of pregenerated batches (cycled by long-running writers).
    pub batches: usize,
    /// Fraction of writer commands drawn from exercisable privileges.
    pub valid_ratio: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChurnSpec {
    fn default() -> Self {
        ChurnSpec {
            roles: 256,
            readers: 16,
            batch_len: 32,
            batches: 8,
            valid_ratio: 0.7,
            seed: 0xC0FFEE,
        }
    }
}

/// One prepared reader session: `user` activates `role` (their
/// largest-closure assignment — the senior-role sessions that make
/// access checks expensive) and alternates probing `perm_hit`
/// (reachable at the initial policy) and `perm_miss` (a real interned
/// perm the role does *not* reach — the denial path, which forces a
/// naive checker to exhaust the whole closure before answering).
#[derive(Clone, Copy, Debug)]
pub struct ChurnReader {
    /// The session's user (assigned to `role` in the initial policy).
    pub user: UserId,
    /// The role the session activates.
    pub role: RoleId,
    /// A perm reachable from `role` at the initial policy.
    pub perm_hit: Perm,
    /// A perm not reachable from `role` at the initial policy.
    pub perm_miss: Perm,
}

/// A generated mixed read/write monitor workload.
#[derive(Debug)]
pub struct ChurnWorkload {
    /// The universe.
    pub universe: Universe,
    /// The initial policy.
    pub policy: Policy,
    /// Prepared reader sessions.
    pub readers: Vec<ChurnReader>,
    /// Pregenerated admin batches for the writer to cycle through.
    pub batches: Vec<Vec<adminref_core::command::Command>>,
}

/// Builds a churn workload: deterministic in `spec` (same spec, same
/// policy, same batches), sized like the bench harness's layered
/// policies.
pub fn churn(spec: ChurnSpec) -> ChurnWorkload {
    assert!(spec.readers >= 1, "need at least one reader");
    let layers = 4;
    let width = spec.roles.div_ceil(layers).max(1);
    let mut h = layered(LayeredSpec {
        layers,
        width,
        edge_prob: (8.0 / width as f64).min(1.0),
        seed: spec.seed,
    });
    let users = populate_users(&mut h, (spec.roles / 8).max(4), 2, spec.seed);
    populate_perms(&mut h, 2, spec.roles.max(8), spec.seed);
    let all_roles: Vec<RoleId> = h.layers.iter().flatten().copied().collect();
    inject_admin_privs(
        &mut h.universe,
        &mut h.policy,
        &users,
        &all_roles,
        AdminSpec {
            count: (spec.roles / 4).max(8),
            max_depth: 2,
            grant_ratio: 0.8,
            seed: spec.seed,
        },
    );
    // Reader profiles: each user activates their largest-closure role
    // (senior sessions are the expensive ones) and probes one reachable
    // and one unreachable perm — the deepest hit and the first miss in
    // PA edge order, both deterministic.
    let reach = ReachIndex::build(&h.universe, &h.policy);
    let fallback = h.universe.perm("read", "obj0");
    let mut readers = Vec::with_capacity(spec.readers);
    for i in 0..spec.readers {
        let user = users[i % users.len()];
        let role = h
            .policy
            .roles_of(user)
            .max_by_key(|&r| reach.roles_reachable(Entity::Role(r)).count())
            .unwrap_or_else(|| all_roles[i % all_roles.len()]);
        let mut perm_hit = None;
        let mut perm_miss = None;
        for (holder, p) in h.policy.pa() {
            let PrivTerm::Perm(q) = h.universe.term(p) else {
                continue;
            };
            if reach.reach_entity(Entity::Role(role), Entity::Role(holder)) {
                perm_hit = Some(q); // keep the last (deepest-listed) hit
            } else if perm_miss.is_none() && !reach.reach_priv(Entity::Role(role), p) {
                perm_miss = Some(q);
            }
        }
        readers.push(ChurnReader {
            user,
            role,
            perm_hit: perm_hit.unwrap_or(fallback),
            perm_miss: perm_miss.unwrap_or(fallback),
        });
    }
    let batches = (0..spec.batches)
        .map(|b| {
            generate_queue(
                &h.universe,
                &h.policy,
                &users,
                &all_roles,
                QueueSpec {
                    len: spec.batch_len,
                    valid_ratio: spec.valid_ratio,
                    seed: spec.seed.wrapping_add(b as u64).wrapping_mul(0x9E37_79B9),
                },
            )
            .iter()
            .copied()
            .collect()
        })
        .collect();
    ChurnWorkload {
        universe: h.universe,
        policy: h.policy,
        readers,
        batches,
    }
}

/// Shape of a [`write_storm`] scenario.
#[derive(Clone, Copy, Debug)]
pub struct WriteStormSpec {
    /// Approximate role count of the layered hierarchy.
    pub roles: usize,
    /// Number of independent writer streams (disjoint toggled edges).
    pub writers: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WriteStormSpec {
    fn default() -> Self {
        WriteStormSpec {
            roles: 128,
            writers: 4,
            seed: 0x57_04_11,
        }
    }
}

/// A generated write-storm workload.
#[derive(Debug)]
pub struct WriteStormWorkload {
    /// The universe.
    pub universe: Universe,
    /// The initial policy (no toggled edge present, so every stream
    /// starts with an effective grant).
    pub policy: Policy,
    /// The administrator authorized for every toggle.
    pub admin: UserId,
    /// One `[grant, revoke]` toggle pair per writer, over that writer's
    /// own `(user, role)` edge; cycling a stream keeps every command
    /// authorized *and* policy-changing regardless of how streams
    /// interleave, because the edges are disjoint.
    pub streams: Vec<Vec<adminref_core::command::Command>>,
}

/// Builds a write-storm workload (deterministic in `spec`): a sized
/// layered hierarchy plus one dedicated `(user, role)` toggle edge per
/// writer, all grantable/revocable by a single `storm_ops`
/// administrator.
pub fn write_storm(spec: WriteStormSpec) -> WriteStormWorkload {
    use adminref_core::command::Command;
    assert!(spec.writers >= 1, "need at least one writer");
    let layers = 4;
    let width = spec.roles.div_ceil(layers).max(1);
    let mut h = layered(LayeredSpec {
        layers,
        width,
        edge_prob: (8.0 / width as f64).min(1.0),
        seed: spec.seed,
    });
    populate_users(&mut h, (spec.roles / 8).max(4), 2, spec.seed);
    populate_perms(&mut h, 2, spec.roles.max(8), spec.seed);
    let all_roles: Vec<RoleId> = h.layers.iter().flatten().copied().collect();
    let admin = h.universe.user("storm_admin");
    let ops = h.universe.role("storm_ops");
    h.policy.add_edge(Edge::UserRole(admin, ops));
    let streams = (0..spec.writers)
        .map(|i| {
            let user = h.universe.user(&format!("storm_user{i}"));
            let role = all_roles[(spec.seed as usize).wrapping_add(i * 7) % all_roles.len()];
            let edge = Edge::UserRole(user, role);
            let grant = h.universe.grant_user_role(user, role);
            let revoke = h.universe.revoke_user_role(user, role);
            h.policy.add_edge(Edge::RolePriv(ops, grant));
            h.policy.add_edge(Edge::RolePriv(ops, revoke));
            vec![Command::grant(admin, edge), Command::revoke(admin, edge)]
        })
        .collect();
    WriteStormWorkload {
        universe: h.universe,
        policy: h.policy,
        admin,
        streams,
    }
}

/// Shape of a [`wide_universe_trickle`] scenario.
#[derive(Clone, Copy, Debug)]
pub struct TrickleSpec {
    /// Approximate role count of the layered hierarchy ("thousands of
    /// roles" is the point: the from-scratch read-index rebuild is
    /// `O(|R|²/64 + |E|)`, so width is what the incremental publisher
    /// amortizes away).
    pub roles: usize,
    /// Users populating the initial policy.
    pub users: usize,
    /// Distinct toggle edges the admin cycles (each toggled by its own
    /// single-command batch).
    pub toggles: usize,
    /// Fraction (per mille) of toggles that are RH edges rather than UA
    /// memberships — role-edge deltas exercise the closure fan-out and
    /// the targeted removal recompute, membership deltas the row-only
    /// path.
    pub rh_toggle_per_mille: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrickleSpec {
    fn default() -> Self {
        TrickleSpec {
            roles: 2048,
            users: 256,
            toggles: 256,
            rh_toggle_per_mille: 250,
            seed: 0x71C_C7E,
        }
    }
}

/// A generated wide-universe trickle workload.
#[derive(Debug)]
pub struct TrickleWorkload {
    /// The universe.
    pub universe: Universe,
    /// The initial policy (no toggle edge present).
    pub policy: Policy,
    /// The administrator authorized for every toggle.
    pub admin: UserId,
    /// Single-command batches: one full round of grants over every
    /// toggle edge, then one full round of revokes — cycling the list
    /// keeps every command authorized *and* policy-changing, forever.
    pub batches: Vec<Vec<adminref_core::command::Command>>,
}

/// Builds the wide-universe trickle workload (deterministic in `spec`):
/// a thousands-of-roles layered hierarchy whose write traffic is a
/// stream of **single-edge batches** — the worst case for a publisher
/// that re-derives the whole read index per batch, and the showcase for
/// delta-maintained publication (`adminref bench-monitor`'s
/// publish-latency cells and the `snapshot_delta` criterion bench both
/// run it).
///
/// UA toggles flip a dedicated `(trickle_user, role)` membership; RH
/// toggles flip an extra cross-layer role edge that always points to a
/// strictly deeper layer, so additions never create a cycle and both
/// incremental closure paths (add fan-out, targeted removal recompute)
/// are exercised without rebuild fallbacks.
pub fn wide_universe_trickle(spec: TrickleSpec) -> TrickleWorkload {
    use adminref_core::command::Command;
    assert!(spec.roles >= 8, "need a real hierarchy");
    assert!(spec.toggles >= 1, "need at least one toggle edge");
    let layers = 4;
    let width = spec.roles.div_ceil(layers).max(1);
    let mut h = layered(LayeredSpec {
        layers,
        width,
        edge_prob: (8.0 / width as f64).min(1.0),
        seed: spec.seed,
    });
    populate_users(&mut h, spec.users.max(1), 2, spec.seed);
    populate_perms(&mut h, 1, spec.roles.max(8), spec.seed);
    let all_roles: Vec<RoleId> = h.layers.iter().flatten().copied().collect();
    let admin = h.universe.user("trickle_admin");
    let ops = h.universe.role("trickle_ops");
    h.policy.add_edge(Edge::UserRole(admin, ops));
    let mut mix = spec.seed | 1;
    let mut next = move || {
        // xorshift64*: cheap, deterministic, dependency-free.
        mix ^= mix << 13;
        mix ^= mix >> 7;
        mix ^= mix << 17;
        mix
    };
    let mut grants = Vec::with_capacity(spec.toggles);
    let mut revokes = Vec::with_capacity(spec.toggles);
    let mut chosen_rh: std::collections::BTreeSet<(RoleId, RoleId)> =
        std::collections::BTreeSet::new();
    for i in 0..spec.toggles {
        let rh_edge = ((next() % 1000) as usize) < spec.rh_toggle_per_mille;
        let edge = if rh_edge {
            // Source strictly above target layer: adding can never
            // close a cycle in a layered DAG. Linear-probe past edges
            // already present (or already chosen) so every toggle
            // starts absent and stays distinct.
            let mut probe = next() as usize;
            loop {
                let src_layer = probe % (layers - 1);
                let dst_layer = src_layer + 1 + (probe / 7) % (layers - 1 - src_layer);
                let src = h.layers[src_layer][probe % h.layers[src_layer].len()];
                let dst = h.layers[dst_layer][(probe / 3) % h.layers[dst_layer].len()];
                let candidate = Edge::RoleRole(src, dst);
                if !h.policy.contains_edge(candidate) && chosen_rh.insert((src, dst)) {
                    break candidate;
                }
                probe = probe.wrapping_add(1);
            }
        } else {
            let user = h.universe.user(&format!("trickle_user{i}"));
            let role = all_roles[next() as usize % all_roles.len()];
            Edge::UserRole(user, role)
        };
        let grant = h.universe.priv_grant(edge);
        let revoke = h.universe.priv_revoke(edge);
        h.policy.add_edge(Edge::RolePriv(ops, grant));
        h.policy.add_edge(Edge::RolePriv(ops, revoke));
        grants.push(vec![Command::grant(admin, edge)]);
        revokes.push(vec![Command::revoke(admin, edge)]);
    }
    let batches = grants.into_iter().chain(revokes).collect();
    TrickleWorkload {
        universe: h.universe,
        policy: h.policy,
        admin,
        batches,
    }
}

/// Shape of a [`multi_tenant_churn`] scenario.
#[derive(Clone, Copy, Debug)]
pub struct MultiTenantSpec {
    /// Number of tenants to stamp out.
    pub tenants: usize,
    /// The per-tenant churn shape (each tenant gets a distinct seed
    /// derived from `churn.seed` and its index).
    pub churn: ChurnSpec,
}

impl Default for MultiTenantSpec {
    fn default() -> Self {
        MultiTenantSpec {
            tenants: 4,
            churn: ChurnSpec::default(),
        }
    }
}

/// One tenant of a [`multi_tenant_churn`] workload.
#[derive(Debug)]
pub struct TenantWorkload {
    /// The tenant id (valid for `ServiceRouter` routing: `tenant0`,
    /// `tenant1`, …).
    pub id: String,
    /// The tenant's own churn workload (independent universe/policy).
    pub workload: ChurnWorkload,
}

/// A generated multi-tenant workload: `tenants` fully independent
/// churn workloads, deterministic in `spec`.
#[derive(Debug)]
pub struct MultiTenantWorkload {
    /// The tenants, in id order.
    pub tenants: Vec<TenantWorkload>,
}

/// Derives tenant `index`'s seed from a base seed — the shared mixing
/// rule for every multi-tenant workload (scenario generators and
/// benches must agree on it, or "tenant i" means different workloads
/// in different tools).
pub fn tenant_seed(base: u64, index: usize) -> u64 {
    base.wrapping_add(index as u64)
        .wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Builds `spec.tenants` independent [`churn`] workloads with
/// per-tenant seeds, for routers serving many policies in one process.
pub fn multi_tenant_churn(spec: MultiTenantSpec) -> MultiTenantWorkload {
    assert!(spec.tenants >= 1, "need at least one tenant");
    let tenants = (0..spec.tenants)
        .map(|i| TenantWorkload {
            id: format!("tenant{i}"),
            workload: churn(ChurnSpec {
                seed: tenant_seed(spec.churn.seed, i),
                ..spec.churn
            }),
        })
        .collect();
    MultiTenantWorkload { tenants }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adminref_core::ids::Entity;
    use adminref_core::reach::ReachIndex;
    use adminref_core::safety::{perm_reachable, ReachabilityAnswer, SafetyConfig};
    use adminref_core::transition::{run_pure, AuthMode};

    #[test]
    fn vault_needs_exactly_depth_steps() {
        let mut w = deep_delegation(DelegationSpec {
            depth: 3,
            fanout: 2,
        });
        let worker = w.workers[0];
        let config = SafetyConfig {
            max_steps: 3,
            max_states: 100_000,
            ..SafetyConfig::default()
        };
        let answer = perm_reachable(
            &mut w.universe,
            &w.policy,
            Entity::User(worker),
            w.vault_perm,
            config,
        );
        let ReachabilityAnswer::Reachable { witness } = answer else {
            panic!("expected reachable");
        };
        assert_eq!(witness.len(), 3, "{witness:?}");
        // The witness replays: the worker really opens the vault.
        let final_policy = run_pure(&mut w.universe, &w.policy, &witness, AuthMode::Explicit);
        let target = w.universe.priv_perm(w.vault_perm);
        assert!(
            ReachIndex::build(&w.universe, &final_policy).reach_priv(Entity::User(worker), target)
        );
        // One step short: the raw bounded search is genuinely cut off,
        // not refuted…
        let short = perm_reachable(
            &mut w.universe,
            &w.policy,
            Entity::User(worker),
            w.vault_perm,
            SafetyConfig {
                max_steps: 2,
                escalate: false,
                ..config
            },
        );
        assert!(
            matches!(short, ReachabilityAnswer::Unknown { .. }),
            "{short:?}"
        );
        // …but the workload is grow-only, so escalation (the default)
        // still finds a replayable plan past the depth bound.
        let escalated = perm_reachable(
            &mut w.universe,
            &w.policy,
            Entity::User(worker),
            w.vault_perm,
            SafetyConfig {
                max_steps: 2,
                ..config
            },
        );
        let ReachabilityAnswer::Reachable { witness } = escalated else {
            panic!("expected escalated reachable");
        };
        let final_policy = run_pure(&mut w.universe, &w.policy, &witness, AuthMode::Explicit);
        assert!(
            ReachIndex::build(&w.universe, &final_policy).reach_priv(Entity::User(worker), target)
        );
    }

    #[test]
    fn grow_only_is_never_unknown_regardless_of_max_states() {
        // The acceptance guarantee of the verify layer: a monotone
        // instance answers definitively even with the bounded search
        // fully starved (max_states = 0), for both polarities.
        let mut w = grow_only(GrowOnlySpec {
            width: 16,
            users: 3,
        });
        let member = w.members[0];
        for max_states in [0usize, 1, 50] {
            let config = SafetyConfig {
                max_steps: 2,
                max_states,
                ..SafetyConfig::default()
            };
            let goal = perm_reachable(
                &mut w.universe,
                &w.policy,
                Entity::User(member),
                w.goal_perm,
                config,
            );
            let ReachabilityAnswer::Reachable { witness } = goal else {
                panic!("max_states={max_states}: {goal:?}");
            };
            let final_policy = run_pure(&mut w.universe, &w.policy, &witness, AuthMode::Explicit);
            let target = w.universe.priv_perm(w.goal_perm);
            assert!(ReachIndex::build(&w.universe, &final_policy)
                .reach_priv(Entity::User(member), target));
            let absent = perm_reachable(
                &mut w.universe,
                &w.policy,
                Entity::User(member),
                w.absent_perm,
                config,
            );
            assert!(
                matches!(absent, ReachabilityAnswer::Unreachable),
                "max_states={max_states}: {absent:?}"
            );
        }
    }

    #[test]
    fn grow_only_dispatches_to_the_saturation_engine() {
        use adminref_core::verify::{verify_perm_reachable, EngineUsed};
        let mut w = grow_only(GrowOnlySpec::default());
        let member = w.members[1];
        let report = verify_perm_reachable(
            &mut w.universe,
            &w.policy,
            Entity::User(member),
            w.absent_perm,
            SafetyConfig {
                // The derivation-length assertion below is about the
                // *full* saturated closure; slicing would empty the
                // alphabet for the absent goal first.
                slice: false,
                ..SafetyConfig::default()
            },
        );
        assert!(report.monotone);
        assert_eq!(report.engine, EngineUsed::Saturation);
        assert!(matches!(report.answer, ReachabilityAnswer::Unreachable));
        // The derivation is the whole saturated closure: every grant any
        // actor can ever effect — members × tier roles.
        assert_eq!(
            report.derivation.len(),
            w.members.len() * w.tier.len(),
            "closure should apply every grantable edge"
        );
    }

    #[test]
    fn churn_is_deterministic_and_readable() {
        let spec = ChurnSpec {
            roles: 64,
            readers: 8,
            batch_len: 16,
            batches: 3,
            ..ChurnSpec::default()
        };
        let a = churn(spec);
        let b = churn(spec);
        assert_eq!(a.readers.len(), 8);
        assert_eq!(a.batches.len(), 3);
        assert!(a.batches.iter().all(|q| q.len() == 16));
        assert_eq!(
            a.policy.edges().collect::<Vec<_>>(),
            b.policy.edges().collect::<Vec<_>>()
        );
        assert_eq!(a.batches, b.batches);
        // Readers can really activate their role; the hit probe answers
        // `true` and the miss probe `false` at the initial policy (for
        // at least most readers — tiny hierarchies may lack one side).
        let reach = ReachIndex::build(&a.universe, &a.policy);
        let mut uni = a.universe.clone();
        let (mut hits, mut misses) = (0, 0);
        for r in &a.readers {
            assert!(reach.reach_entity(Entity::User(r.user), Entity::Role(r.role)));
            if reach.reach_priv(Entity::Role(r.role), uni.priv_perm(r.perm_hit)) {
                hits += 1;
            }
            if !reach.reach_priv(Entity::Role(r.role), uni.priv_perm(r.perm_miss)) {
                misses += 1;
            }
        }
        assert!(hits > 0, "no reader ever hits its perm");
        assert!(misses > 0, "no reader ever exercises the denial path");
    }

    #[test]
    fn state_space_grows_with_fanout() {
        // fanout=3, depth=2: enough distinct reachable membership
        // subsets that a small cap truncates — the arena-stress shape.
        let mut w = deep_delegation(DelegationSpec {
            depth: 2,
            fanout: 3,
        });
        let worker = w.workers[0];
        let never = w.universe.perm("launch", "missiles");
        let tight = SafetyConfig {
            max_steps: 6,
            max_states: 8,
            // Sliced, the absent goal's empty cone refutes without ever
            // searching; this test is about cap-hit truncation, so keep
            // the full alphabet.
            slice: false,
            ..SafetyConfig::default()
        };
        let answer = perm_reachable(
            &mut w.universe,
            &w.policy,
            Entity::User(worker),
            never,
            SafetyConfig {
                escalate: false,
                ..tight
            },
        );
        let ReachabilityAnswer::Unknown { truncation } = answer else {
            panic!("{answer:?}");
        };
        assert!(truncation.cap_hit, "{truncation:?}");
        // Grow-only regression: with escalation on, the same starved
        // bounds never answer Unknown — saturation closes the instance
        // no matter how small max_states is.
        for max_states in [8usize, 1, 0] {
            let answer = perm_reachable(
                &mut w.universe,
                &w.policy,
                Entity::User(worker),
                never,
                SafetyConfig {
                    max_states,
                    ..tight
                },
            );
            assert!(
                matches!(answer, ReachabilityAnswer::Unreachable),
                "max_states={max_states}: {answer:?}"
            );
        }
    }

    #[test]
    fn write_storm_toggles_always_execute_and_change() {
        let w = write_storm(WriteStormSpec {
            roles: 32,
            writers: 3,
            ..WriteStormSpec::default()
        });
        assert_eq!(w.streams.len(), 3);
        // Any interleaving of whole streams keeps every command
        // authorized and policy-changing; check the serial worst case:
        // each stream cycled twice, streams round-robined.
        let mut uni = w.universe.clone();
        let mut policy = w.policy.clone();
        for round in 0..4 {
            for stream in &w.streams {
                let cmd = stream[round % 2];
                let out = adminref_core::transition::step(
                    &mut uni,
                    &mut policy,
                    &cmd,
                    AuthMode::Explicit,
                );
                assert!(out.executed(), "round {round}: {cmd:?} refused");
                assert!(out.changed, "round {round}: {cmd:?} was a no-op");
            }
        }
        assert_eq!(policy.edges().count(), w.policy.edges().count());
    }

    #[test]
    fn trickle_batches_always_execute_change_and_cycle() {
        let spec = TrickleSpec {
            roles: 64,
            users: 16,
            toggles: 12,
            ..TrickleSpec::default()
        };
        let w = wide_universe_trickle(spec);
        let again = wide_universe_trickle(spec);
        assert_eq!(w.batches, again.batches, "deterministic in the spec");
        assert_eq!(w.batches.len(), 24, "a grant and a revoke per toggle");
        assert!(
            w.batches.iter().all(|b| b.len() == 1),
            "single-edge batches"
        );
        // Two full cycles: every command is authorized and changes the
        // policy, and a full cycle returns to the initial edge count.
        let mut uni = w.universe.clone();
        let mut policy = w.policy.clone();
        let mut saw_rh = false;
        for (i, batch) in w
            .batches
            .iter()
            .cycle()
            .take(w.batches.len() * 2)
            .enumerate()
        {
            let cmd = batch[0];
            saw_rh |= matches!(cmd.edge, Edge::RoleRole(..));
            let out =
                adminref_core::transition::step(&mut uni, &mut policy, &cmd, AuthMode::Explicit);
            assert!(out.executed(), "batch {i}: {cmd:?} refused");
            assert!(out.changed, "batch {i}: {cmd:?} was a no-op");
        }
        assert!(saw_rh, "the mix includes RH toggles");
        assert_eq!(policy.edge_count(), w.policy.edge_count());
    }

    #[test]
    fn multi_tenant_churn_is_deterministic_and_independent() {
        let spec = MultiTenantSpec {
            tenants: 3,
            churn: ChurnSpec {
                roles: 32,
                readers: 4,
                batch_len: 8,
                batches: 2,
                ..ChurnSpec::default()
            },
        };
        let a = multi_tenant_churn(spec);
        let b = multi_tenant_churn(spec);
        assert_eq!(a.tenants.len(), 3);
        assert_eq!(a.tenants[0].id, "tenant0");
        for (ta, tb) in a.tenants.iter().zip(&b.tenants) {
            assert_eq!(ta.id, tb.id);
            assert_eq!(ta.workload.batches, tb.workload.batches);
        }
        // Per-tenant seeds differ, so tenants are genuinely distinct
        // workloads, not copies.
        assert_ne!(a.tenants[0].workload.batches, a.tenants[1].workload.batches);
    }

    #[test]
    fn cone_slicing_prunes_to_one_department_with_the_same_answer() {
        use adminref_core::lint::slice_alphabet;
        use adminref_core::safety::prepare_alphabet;
        let mut w = cone(ConeSpec::default());
        let worker = w.workers[0];
        let config = SafetyConfig {
            max_steps: 3,
            max_states: 200_000,
            ..SafetyConfig::default()
        };
        let target = w.universe.priv_perm(w.goal_perm);
        let alphabet = prepare_alphabet(&mut w.universe, &w.policy, config);
        let outcome = slice_alphabet(
            &w.universe,
            &w.policy,
            &alphabet,
            Entity::User(worker),
            target,
            config.auth_mode,
        );
        // The goal's cone is department 0's chain: at most half (here a
        // sixth) of the alphabet survives.
        assert!(
            outcome.after * 2 <= outcome.before,
            "{} -> {}",
            outcome.before,
            outcome.after
        );
        // Same answer, same witness length, sliced or not.
        for slice in [true, false] {
            let answer = perm_reachable(
                &mut w.universe,
                &w.policy,
                Entity::User(worker),
                w.goal_perm,
                SafetyConfig { slice, ..config },
            );
            let ReachabilityAnswer::Reachable { witness } = answer else {
                panic!("slice={slice}: expected reachable");
            };
            assert_eq!(witness.len(), 3, "slice={slice}");
        }
    }

    #[test]
    fn seeded_defects_flags_every_class_and_clean_scenarios_stay_clean() {
        use adminref_core::lint::{lint_policy, FindingKind, LintConfig};
        let w = seeded_defects();
        let report = lint_policy(
            &w.universe,
            &w.policy,
            &LintConfig {
                sod_pairs: vec![w.sod_pair],
                ..LintConfig::default()
            },
        );
        for kind in [
            FindingKind::DeadCommand,
            FindingKind::Unauthorizable,
            FindingKind::RedundantGrant,
            FindingKind::ShadowedGrant,
            FindingKind::NonMonotoneIsland,
            FindingKind::SodConflict,
        ] {
            assert!(
                report.findings.iter().any(|f| f.kind == kind),
                "missing {kind:?}: {:?}",
                report.findings
            );
        }
        // Clean scenarios produce zero findings.
        for (universe, policy) in [
            {
                let w = grow_only(GrowOnlySpec::default());
                (w.universe, w.policy)
            },
            {
                let w = deep_delegation(DelegationSpec::default());
                (w.universe, w.policy)
            },
            {
                let w = cone(ConeSpec::default());
                (w.universe, w.policy)
            },
        ] {
            let report = lint_policy(&universe, &policy, &LintConfig::default());
            assert!(report.findings.is_empty(), "{:?}", report.findings);
        }
    }

    #[test]
    fn parallel_and_sequential_agree_on_the_chain() {
        let mut w = deep_delegation(DelegationSpec {
            depth: 3,
            fanout: 2,
        });
        let worker = w.workers[1];
        let config = SafetyConfig {
            max_steps: 3,
            max_states: 100_000,
            ..SafetyConfig::default()
        };
        let seq = perm_reachable(
            &mut w.universe,
            &w.policy,
            Entity::User(worker),
            w.vault_perm,
            config,
        );
        let par = perm_reachable(
            &mut w.universe,
            &w.policy,
            Entity::User(worker),
            w.vault_perm,
            SafetyConfig { jobs: 4, ..config },
        );
        match (&seq, &par) {
            (
                ReachabilityAnswer::Reachable { witness: a },
                ReachabilityAnswer::Reachable { witness: b },
            ) => assert_eq!(a.commands(), b.commands()),
            other => panic!("{other:?}"),
        }
    }
}
