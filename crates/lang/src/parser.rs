//! Recursive-descent parser for the policy language.

use crate::ast::{CmdExpr, PolicyDoc, PrivExpr, QueueDoc, Stmt, StmtKind, TargetExpr};
use crate::error::LangError;
use crate::lexer::lex;
use crate::token::{Pos, Token, TokenKind};

struct Parser {
    tokens: Vec<Token>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.at]
    }

    fn pos(&self) -> Pos {
        self.peek().pos
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.at].clone();
        if self.at + 1 < self.tokens.len() {
            self.at += 1;
        }
        t
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, LangError> {
        if self.peek().kind == kind {
            Ok(self.bump())
        } else {
            Err(LangError::parse(
                self.pos(),
                format!(
                    "expected {}, found {}",
                    kind.describe(),
                    self.peek().kind.describe()
                ),
            ))
        }
    }

    fn ident(&mut self) -> Result<String, LangError> {
        match &self.peek().kind {
            TokenKind::Ident(name) => {
                let name = name.clone();
                self.bump();
                Ok(name)
            }
            other => Err(LangError::parse(
                self.pos(),
                format!("expected identifier, found {}", other.describe()),
            )),
        }
    }

    fn ident_list(&mut self) -> Result<Vec<String>, LangError> {
        let mut out = vec![self.ident()?];
        while self.peek().kind == TokenKind::Comma {
            self.bump();
            out.push(self.ident()?);
        }
        self.expect(TokenKind::Semi)?;
        Ok(out)
    }

    fn priv_expr(&mut self) -> Result<PrivExpr, LangError> {
        match self.peek().kind.clone() {
            TokenKind::LParen => {
                self.bump();
                let action = self.ident()?;
                self.expect(TokenKind::Comma)?;
                let object = self.ident()?;
                self.expect(TokenKind::RParen)?;
                Ok(PrivExpr::Perm(action, object))
            }
            TokenKind::Grant | TokenKind::Revoke => {
                let is_grant = self.peek().kind == TokenKind::Grant;
                self.bump();
                self.expect(TokenKind::LParen)?;
                let src = self.ident()?;
                self.expect(TokenKind::Comma)?;
                let target = self.target_expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(if is_grant {
                    PrivExpr::Grant(src, Box::new(target))
                } else {
                    PrivExpr::Revoke(src, Box::new(target))
                })
            }
            other => Err(LangError::parse(
                self.pos(),
                format!(
                    "expected `(action, object)`, `grant(..)` or `revoke(..)`, found {}",
                    other.describe()
                ),
            )),
        }
    }

    fn target_expr(&mut self) -> Result<TargetExpr, LangError> {
        match self.peek().kind.clone() {
            TokenKind::Ident(_) => Ok(TargetExpr::Name(self.ident()?)),
            _ => Ok(TargetExpr::Priv(self.priv_expr()?)),
        }
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        let pos = self.pos();
        match self.peek().kind.clone() {
            TokenKind::Assign => {
                self.bump();
                let user = self.ident()?;
                self.expect(TokenKind::Arrow)?;
                let role = self.ident()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::Assign(user, role),
                    pos,
                })
            }
            TokenKind::Inherit => {
                self.bump();
                let senior = self.ident()?;
                self.expect(TokenKind::Arrow)?;
                let junior = self.ident()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::Inherit(senior, junior),
                    pos,
                })
            }
            TokenKind::Perm => {
                self.bump();
                let role = self.ident()?;
                self.expect(TokenKind::Arrow)?;
                let privilege = self.priv_expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::Perm(role, privilege),
                    pos,
                })
            }
            other => Err(LangError::parse(
                pos,
                format!(
                    "expected `assign`, `inherit` or `perm`, found {}",
                    other.describe()
                ),
            )),
        }
    }

    fn policy_doc(&mut self) -> Result<PolicyDoc, LangError> {
        self.expect(TokenKind::Policy)?;
        let name = self.ident()?;
        self.expect(TokenKind::LBrace)?;
        let mut users = Vec::new();
        let mut roles = Vec::new();
        loop {
            match self.peek().kind {
                TokenKind::Users => {
                    self.bump();
                    users.extend(self.ident_list()?);
                }
                TokenKind::Roles => {
                    self.bump();
                    roles.extend(self.ident_list()?);
                }
                _ => break,
            }
        }
        let mut stmts = Vec::new();
        while self.peek().kind != TokenKind::RBrace {
            stmts.push(self.stmt()?);
        }
        self.expect(TokenKind::RBrace)?;
        self.expect(TokenKind::Eof)?;
        Ok(PolicyDoc {
            name,
            users,
            roles,
            stmts,
        })
    }

    fn queue_doc(&mut self) -> Result<QueueDoc, LangError> {
        self.expect(TokenKind::Queue)?;
        self.expect(TokenKind::LBrace)?;
        let mut commands = Vec::new();
        while self.peek().kind != TokenKind::RBrace {
            let pos = self.pos();
            self.expect(TokenKind::Cmd)?;
            self.expect(TokenKind::LParen)?;
            let actor = self.ident()?;
            self.expect(TokenKind::Comma)?;
            let is_grant = match self.peek().kind {
                TokenKind::Grant => true,
                TokenKind::Revoke => false,
                _ => {
                    return Err(LangError::parse(
                        self.pos(),
                        format!(
                            "expected `grant` or `revoke`, found {}",
                            self.peek().kind.describe()
                        ),
                    ))
                }
            };
            self.bump();
            self.expect(TokenKind::Comma)?;
            let src = self.ident()?;
            self.expect(TokenKind::Arrow)?;
            let target = self.target_expr()?;
            self.expect(TokenKind::RParen)?;
            self.expect(TokenKind::Semi)?;
            commands.push(CmdExpr {
                actor,
                is_grant,
                src,
                target,
                pos,
            });
        }
        self.expect(TokenKind::RBrace)?;
        self.expect(TokenKind::Eof)?;
        Ok(QueueDoc { commands })
    }
}

/// Parses a policy document.
pub fn parse_policy(input: &str) -> Result<PolicyDoc, LangError> {
    let tokens = lex(input)?;
    Parser { tokens, at: 0 }.policy_doc()
}

/// Parses a standalone privilege expression, e.g.
/// `grant(staff, grant(bob, staff))` or `(read, t1)` — used by the CLI
/// and by tools that accept privileges as arguments.
pub fn parse_priv_expr(input: &str) -> Result<PrivExpr, LangError> {
    let tokens = lex(input)?;
    let mut parser = Parser { tokens, at: 0 };
    let expr = parser.priv_expr()?;
    parser.expect(TokenKind::Eof)?;
    Ok(expr)
}

/// Parses a command-queue document.
pub fn parse_queue(input: &str) -> Result<QueueDoc, LangError> {
    let tokens = lex(input)?;
    Parser { tokens, at: 0 }.queue_doc()
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOSPITAL: &str = r#"
        policy hospital {
            users diana, bob;
            roles nurse, staff, dbusr1, hr;
            assign diana -> nurse;
            inherit staff -> nurse;
            perm dbusr1 -> (read, t1);
            perm hr -> grant(bob, staff);
            perm hr -> revoke(bob, staff);
            perm hr -> grant(staff, grant(bob, nurse));
        }
    "#;

    #[test]
    fn parses_full_policy() {
        let doc = parse_policy(HOSPITAL).unwrap();
        assert_eq!(doc.name, "hospital");
        assert_eq!(doc.users, vec!["diana", "bob"]);
        assert_eq!(doc.roles.len(), 4);
        assert_eq!(doc.stmts.len(), 6);
        assert!(matches!(
            &doc.stmts[0].kind,
            StmtKind::Assign(u, r) if u == "diana" && r == "nurse"
        ));
    }

    #[test]
    fn parses_nested_privileges() {
        let doc = parse_policy(HOSPITAL).unwrap();
        let StmtKind::Perm(role, privilege) = &doc.stmts[5].kind else {
            panic!("expected perm");
        };
        assert_eq!(role, "hr");
        assert_eq!(privilege.depth(), 2);
    }

    #[test]
    fn parses_queue() {
        let q = parse_queue(
            r#"queue {
                cmd(jane, grant, bob -> staff);
                cmd(jane, revoke, joe -> nurse);
                cmd(alice, grant, hr -> grant(bob, staff));
            }"#,
        )
        .unwrap();
        assert_eq!(q.commands.len(), 3);
        assert!(q.commands[0].is_grant);
        assert!(!q.commands[1].is_grant);
        assert!(matches!(q.commands[2].target, TargetExpr::Priv(_)));
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_policy("policy p { assign diana nurse; }").unwrap_err();
        assert!(err.to_string().contains("expected `->`"), "{err}");
        assert_eq!(err.pos.line, 1);
    }

    #[test]
    fn missing_semicolon() {
        let err = parse_policy("policy p { assign a -> b }").unwrap_err();
        assert!(err.to_string().contains("expected `;`"), "{err}");
    }

    #[test]
    fn empty_policy_is_valid() {
        let doc = parse_policy("policy p { }").unwrap();
        assert!(doc.stmts.is_empty());
        assert!(doc.users.is_empty());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_policy("policy p { } extra").is_err());
    }

    #[test]
    fn declarations_accumulate() {
        let doc = parse_policy("policy p { users a; users b, c; roles r; }").unwrap();
        assert_eq!(doc.users, vec!["a", "b", "c"]);
        assert_eq!(doc.roles, vec!["r"]);
    }

    #[test]
    fn standalone_priv_expressions() {
        let e = parse_priv_expr("grant(staff, grant(bob, staff))").unwrap();
        assert_eq!(e.depth(), 2);
        let e = parse_priv_expr("(read, t1)").unwrap();
        assert_eq!(e.depth(), 0);
        assert!(parse_priv_expr("grant(a, b) extra").is_err());
        assert!(parse_priv_expr("grant(a)").is_err());
    }
}
