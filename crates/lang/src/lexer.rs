//! Hand-rolled lexer for the policy language.
//!
//! Identifiers are `[A-Za-z_][A-Za-z0-9_.-]*`; comments run from `#` or
//! `//` to end of line; whitespace is insignificant.

use crate::error::LangError;
use crate::token::{Pos, Token, TokenKind};

/// Lexes `input` into a token stream terminated by [`TokenKind::Eof`].
pub fn lex(input: &str) -> Result<Vec<Token>, LangError> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    let mut pos = Pos::start();

    let advance = |pos: &mut Pos, c: char| {
        if c == '\n' {
            pos.line += 1;
            pos.col = 1;
        } else {
            pos.col += 1;
        }
    };

    while let Some(&c) = chars.peek() {
        let start = pos;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                chars.next();
                advance(&mut pos, c);
            }
            '#' => {
                while let Some(&c) = chars.peek() {
                    chars.next();
                    advance(&mut pos, c);
                    if c == '\n' {
                        break;
                    }
                }
            }
            '/' => {
                chars.next();
                advance(&mut pos, '/');
                if chars.peek() == Some(&'/') {
                    while let Some(&c) = chars.peek() {
                        chars.next();
                        advance(&mut pos, c);
                        if c == '\n' {
                            break;
                        }
                    }
                } else {
                    return Err(LangError::lex(start, "expected `//` comment"));
                }
            }
            '-' => {
                chars.next();
                advance(&mut pos, '-');
                if chars.peek() == Some(&'>') {
                    chars.next();
                    advance(&mut pos, '>');
                    out.push(Token {
                        kind: TokenKind::Arrow,
                        pos: start,
                    });
                } else {
                    return Err(LangError::lex(start, "expected `->`"));
                }
            }
            '{' | '}' | '(' | ')' | ',' | ';' => {
                chars.next();
                advance(&mut pos, c);
                let kind = match c {
                    '{' => TokenKind::LBrace,
                    '}' => TokenKind::RBrace,
                    '(' => TokenKind::LParen,
                    ')' => TokenKind::RParen,
                    ',' => TokenKind::Comma,
                    _ => TokenKind::Semi,
                };
                out.push(Token { kind, pos: start });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '-' {
                        // `-` only continues an identifier when not
                        // starting an arrow.
                        if c == '-' {
                            let mut look = chars.clone();
                            look.next();
                            if look.peek() == Some(&'>') {
                                break;
                            }
                        }
                        ident.push(c);
                        chars.next();
                        advance(&mut pos, c);
                    } else {
                        break;
                    }
                }
                let kind = match ident.as_str() {
                    "policy" => TokenKind::Policy,
                    "users" => TokenKind::Users,
                    "roles" => TokenKind::Roles,
                    "assign" => TokenKind::Assign,
                    "inherit" => TokenKind::Inherit,
                    "perm" => TokenKind::Perm,
                    "grant" => TokenKind::Grant,
                    "revoke" => TokenKind::Revoke,
                    "queue" => TokenKind::Queue,
                    "cmd" => TokenKind::Cmd,
                    _ => TokenKind::Ident(ident),
                };
                out.push(Token { kind, pos: start });
            }
            other => {
                return Err(LangError::lex(
                    start,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        pos,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        lex(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_basic_statement() {
        assert_eq!(
            kinds("assign diana -> nurse;"),
            vec![
                TokenKind::Assign,
                TokenKind::Ident("diana".into()),
                TokenKind::Arrow,
                TokenKind::Ident("nurse".into()),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_are_recognized() {
        assert_eq!(
            kinds("policy users roles grant revoke queue cmd perm inherit"),
            vec![
                TokenKind::Policy,
                TokenKind::Users,
                TokenKind::Roles,
                TokenKind::Grant,
                TokenKind::Revoke,
                TokenKind::Queue,
                TokenKind::Cmd,
                TokenKind::Perm,
                TokenKind::Inherit,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("# a comment\nassign // another\n"),
            vec![TokenKind::Assign, TokenKind::Eof]
        );
    }

    #[test]
    fn identifiers_allow_dots_and_dashes() {
        assert_eq!(
            kinds("dbusr1 t2.ehr unit-a"),
            vec![
                TokenKind::Ident("dbusr1".into()),
                TokenKind::Ident("t2.ehr".into()),
                TokenKind::Ident("unit-a".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn dash_before_arrow_ends_identifier() {
        assert_eq!(
            kinds("a->b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Arrow,
                TokenKind::Ident("b".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("assign\n  perm").unwrap();
        assert_eq!(toks[0].pos.line, 1);
        assert_eq!(toks[1].pos.line, 2);
        assert_eq!(toks[1].pos.col, 3);
    }

    #[test]
    fn lone_dash_is_an_error() {
        assert!(lex("a - b").is_err());
    }

    #[test]
    fn stray_character_is_an_error() {
        assert!(lex("assign @").is_err());
    }
}
