//! Error type shared by the lexer, parser and resolver.

use crate::token::Pos;

/// Which phase produced the error.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Tokenisation.
    Lex,
    /// Parsing.
    Parse,
    /// Name resolution / well-formedness.
    Resolve,
}

/// An error with position and message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LangError {
    /// The phase that failed.
    pub phase: Phase,
    /// Source position (best effort for resolve errors).
    pub pos: Pos,
    /// Human-readable message.
    pub message: String,
}

impl LangError {
    /// A lexer error.
    pub fn lex(pos: Pos, message: impl Into<String>) -> Self {
        LangError {
            phase: Phase::Lex,
            pos,
            message: message.into(),
        }
    }

    /// A parser error.
    pub fn parse(pos: Pos, message: impl Into<String>) -> Self {
        LangError {
            phase: Phase::Parse,
            pos,
            message: message.into(),
        }
    }

    /// A resolver error.
    pub fn resolve(pos: Pos, message: impl Into<String>) -> Self {
        LangError {
            phase: Phase::Resolve,
            pos,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for LangError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Resolve => "resolve",
        };
        write!(f, "{phase} error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_phase_and_position() {
        let e = LangError::parse(Pos { line: 2, col: 5 }, "expected `;`");
        assert_eq!(e.to_string(), "parse error at 2:5: expected `;`");
    }
}
