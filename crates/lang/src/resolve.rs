//! Name resolution: AST → `adminref-core` universe ids and policies.
//!
//! Users and roles must be declared (the `users`/`roles` sections) so the
//! resolver can reject ill-formed edges (`grant(user, privilege)` has no
//! reading in the grammar of Definition 2). Actions and objects need no
//! declaration — the paper treats `A` and `O` as large fixed sets.

use adminref_core::command::{Command, CommandQueue};
use adminref_core::ids::{Entity, PrivId};
use adminref_core::policy::Policy;
use adminref_core::universe::{Edge, Universe};

use crate::ast::{CmdExpr, PolicyDoc, PrivExpr, QueueDoc, StmtKind, TargetExpr};
use crate::error::LangError;
use crate::token::Pos;

/// Resolves a document into a fresh universe.
pub fn resolve_policy(doc: &PolicyDoc) -> Result<(Universe, Policy), LangError> {
    let mut universe = Universe::new();
    let policy = resolve_policy_into(doc, &mut universe)?;
    Ok((universe, policy))
}

/// Resolves a document into an existing universe (declared names are
/// interned; clashes with existing names of the other kind are rejected).
pub fn resolve_policy_into(doc: &PolicyDoc, universe: &mut Universe) -> Result<Policy, LangError> {
    for name in &doc.users {
        if universe.find_role(name).is_some() {
            return Err(LangError::resolve(
                Pos::start(),
                format!("`{name}` declared as user but already a role"),
            ));
        }
        universe.user(name);
    }
    for name in &doc.roles {
        if universe.find_user(name).is_some() {
            return Err(LangError::resolve(
                Pos::start(),
                format!("`{name}` declared as role but already a user"),
            ));
        }
        universe.role(name);
    }
    let mut policy = Policy::new(universe);
    for stmt in &doc.stmts {
        match &stmt.kind {
            StmtKind::Assign(user, role) => {
                let u = lookup_user(universe, user, stmt.pos)?;
                let r = lookup_role(universe, role, stmt.pos)?;
                policy.add_edge(Edge::UserRole(u, r));
            }
            StmtKind::Inherit(senior, junior) => {
                let s = lookup_role(universe, senior, stmt.pos)?;
                let j = lookup_role(universe, junior, stmt.pos)?;
                policy.add_edge(Edge::RoleRole(s, j));
            }
            StmtKind::Perm(role, privilege) => {
                let r = lookup_role(universe, role, stmt.pos)?;
                let p = resolve_priv(universe, privilege, stmt.pos)?;
                policy.add_edge(Edge::RolePriv(r, p));
            }
        }
    }
    Ok(policy)
}

/// Resolves a privilege expression, interning the term.
pub fn resolve_priv(
    universe: &mut Universe,
    expr: &PrivExpr,
    pos: Pos,
) -> Result<PrivId, LangError> {
    match expr {
        PrivExpr::Perm(action, object) => {
            let perm = universe.perm(action, object);
            Ok(universe.priv_perm(perm))
        }
        PrivExpr::Grant(src, target) => {
            let edge = resolve_edge(universe, src, target, pos)?;
            Ok(universe.priv_grant(edge))
        }
        PrivExpr::Revoke(src, target) => {
            let edge = resolve_edge(universe, src, target, pos)?;
            Ok(universe.priv_revoke(edge))
        }
    }
}

fn resolve_edge(
    universe: &mut Universe,
    src: &str,
    target: &TargetExpr,
    pos: Pos,
) -> Result<Edge, LangError> {
    let source = lookup_entity(universe, src, pos)?;
    match (source, target) {
        (Entity::User(u), TargetExpr::Name(role)) => {
            let r = lookup_role(universe, role, pos)?;
            Ok(Edge::UserRole(u, r))
        }
        (Entity::Role(a), TargetExpr::Name(role)) => {
            let b = lookup_role(universe, role, pos)?;
            Ok(Edge::RoleRole(a, b))
        }
        (Entity::Role(r), TargetExpr::Priv(p)) => {
            let nested = resolve_priv(universe, p, pos)?;
            Ok(Edge::RolePriv(r, nested))
        }
        (Entity::User(_), TargetExpr::Priv(_)) => Err(LangError::resolve(
            pos,
            format!("`{src}` is a user; privileges can only be granted to roles (Definition 2)"),
        )),
    }
}

/// Resolves a queue document against an existing universe.
pub fn resolve_queue(doc: &QueueDoc, universe: &mut Universe) -> Result<CommandQueue, LangError> {
    let mut out = CommandQueue::new();
    for cmd in &doc.commands {
        out.push(resolve_cmd(cmd, universe)?);
    }
    Ok(out)
}

fn resolve_cmd(cmd: &CmdExpr, universe: &mut Universe) -> Result<Command, LangError> {
    let actor = lookup_user(universe, &cmd.actor, cmd.pos)?;
    let edge = resolve_edge(universe, &cmd.src, &cmd.target, cmd.pos)?;
    Ok(if cmd.is_grant {
        Command::grant(actor, edge)
    } else {
        Command::revoke(actor, edge)
    })
}

fn lookup_user(
    universe: &Universe,
    name: &str,
    pos: Pos,
) -> Result<adminref_core::ids::UserId, LangError> {
    universe
        .find_user(name)
        .ok_or_else(|| LangError::resolve(pos, format!("undeclared user `{name}`")))
}

fn lookup_role(
    universe: &Universe,
    name: &str,
    pos: Pos,
) -> Result<adminref_core::ids::RoleId, LangError> {
    universe
        .find_role(name)
        .ok_or_else(|| LangError::resolve(pos, format!("undeclared role `{name}`")))
}

fn lookup_entity(universe: &Universe, name: &str, pos: Pos) -> Result<Entity, LangError> {
    if let Some(u) = universe.find_user(name) {
        return Ok(Entity::User(u));
    }
    if let Some(r) = universe.find_role(name) {
        return Ok(Entity::Role(r));
    }
    Err(LangError::resolve(
        pos,
        format!("undeclared name `{name}` (expected a user or role)"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_policy, parse_queue};
    use adminref_core::universe::PrivTerm;

    const HOSPITAL: &str = r#"
        policy hospital {
            users diana, bob, jane;
            roles nurse, staff, dbusr1, hr;
            assign diana -> nurse;
            assign jane -> hr;
            inherit staff -> nurse;
            inherit nurse -> dbusr1;
            perm dbusr1 -> (read, t1);
            perm hr -> grant(bob, staff);
            perm hr -> grant(staff, grant(bob, nurse));
        }
    "#;

    #[test]
    fn resolves_hospital() {
        let doc = parse_policy(HOSPITAL).unwrap();
        let (uni, policy) = resolve_policy(&doc).unwrap();
        assert_eq!(policy.ua_len(), 2);
        assert_eq!(policy.rh_len(), 2);
        assert_eq!(policy.pa_len(), 3);
        let hr = uni.find_role("hr").unwrap();
        let depths: Vec<u32> = policy.privs_of(hr).map(|p| uni.depth(p)).collect();
        assert!(depths.contains(&1) && depths.contains(&2));
    }

    #[test]
    fn undeclared_names_are_rejected() {
        let doc = parse_policy("policy p { roles r; assign ghost -> r; }").unwrap();
        let err = resolve_policy(&doc).unwrap_err();
        assert!(err.to_string().contains("undeclared user `ghost`"), "{err}");
    }

    #[test]
    fn user_role_name_clash_rejected() {
        let doc = parse_policy("policy p { users x; roles x; }").unwrap();
        let err = resolve_policy(&doc).unwrap_err();
        assert!(err.to_string().contains("already a user"), "{err}");
    }

    #[test]
    fn grant_to_user_of_privilege_is_ill_formed() {
        let doc = parse_policy("policy p { users u; roles r; perm r -> grant(u, grant(r, r)); }")
            .unwrap();
        let err = resolve_policy(&doc).unwrap_err();
        assert!(err.to_string().contains("Definition 2"), "{err}");
    }

    #[test]
    fn grant_source_may_be_user_or_role() {
        let doc = parse_policy(
            "policy p { users u; roles r, s; perm r -> grant(u, s); perm r -> grant(s, r); }",
        )
        .unwrap();
        let (uni, policy) = resolve_policy(&doc).unwrap();
        let r = uni.find_role("r").unwrap();
        let terms: Vec<PrivTerm> = policy.privs_of(r).map(|p| uni.term(p)).collect();
        assert!(terms
            .iter()
            .any(|t| matches!(t, PrivTerm::Grant(Edge::UserRole(..)))));
        assert!(terms
            .iter()
            .any(|t| matches!(t, PrivTerm::Grant(Edge::RoleRole(..)))));
    }

    #[test]
    fn queue_resolution() {
        let doc = parse_policy(HOSPITAL).unwrap();
        let (mut uni, _) = resolve_policy(&doc).unwrap();
        let q = parse_queue(
            r#"queue {
                cmd(jane, grant, bob -> staff);
                cmd(jane, revoke, bob -> staff);
            }"#,
        )
        .unwrap();
        let queue = resolve_queue(&q, &mut uni).unwrap();
        assert_eq!(queue.len(), 2);
        let jane = uni.find_user("jane").unwrap();
        assert!(queue.iter().all(|c| c.actor == jane));
    }

    #[test]
    fn queue_with_unknown_actor_fails() {
        let doc = parse_policy(HOSPITAL).unwrap();
        let (mut uni, _) = resolve_policy(&doc).unwrap();
        let q = parse_queue("queue { cmd(mallory, grant, bob -> staff); }").unwrap();
        assert!(resolve_queue(&q, &mut uni).is_err());
    }

    #[test]
    fn resolve_into_existing_universe_shares_ids() {
        let doc = parse_policy(HOSPITAL).unwrap();
        let mut uni = Universe::new();
        let pre_existing = uni.user("diana");
        let policy = resolve_policy_into(&doc, &mut uni).unwrap();
        assert_eq!(uni.find_user("diana"), Some(pre_existing));
        assert!(policy.ua().any(|(u, _)| u == pre_existing));
    }
}
