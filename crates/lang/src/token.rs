//! Tokens and source positions for the policy language.

/// A position in the source text (1-based line and column).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl Pos {
    /// The start of the text.
    pub fn start() -> Self {
        Pos { line: 1, col: 1 }
    }
}

impl std::fmt::Display for Pos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Token kinds of the policy language.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// An identifier (name of a user, role, action or object).
    Ident(String),
    /// `policy`
    Policy,
    /// `users`
    Users,
    /// `roles`
    Roles,
    /// `assign`
    Assign,
    /// `inherit`
    Inherit,
    /// `perm`
    Perm,
    /// `grant`
    Grant,
    /// `revoke`
    Revoke,
    /// `queue`
    Queue,
    /// `cmd`
    Cmd,
    /// `->`
    Arrow,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Policy => "`policy`".into(),
            TokenKind::Users => "`users`".into(),
            TokenKind::Roles => "`roles`".into(),
            TokenKind::Assign => "`assign`".into(),
            TokenKind::Inherit => "`inherit`".into(),
            TokenKind::Perm => "`perm`".into(),
            TokenKind::Grant => "`grant`".into(),
            TokenKind::Revoke => "`revoke`".into(),
            TokenKind::Queue => "`queue`".into(),
            TokenKind::Cmd => "`cmd`".into(),
            TokenKind::Arrow => "`->`".into(),
            TokenKind::LBrace => "`{`".into(),
            TokenKind::RBrace => "`}`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Semi => "`;`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// A token with its source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// What it is.
    pub kind: TokenKind,
    /// Where it starts.
    pub pos: Pos,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pos_display() {
        assert_eq!(Pos { line: 3, col: 7 }.to_string(), "3:7");
        assert_eq!(Pos::start().to_string(), "1:1");
    }

    #[test]
    fn describe_is_quoted() {
        assert_eq!(TokenKind::Arrow.describe(), "`->`");
        assert_eq!(TokenKind::Ident("x".into()).describe(), "identifier `x`");
    }
}
