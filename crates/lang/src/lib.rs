//! # adminref-lang
//!
//! A small textual language for administrative RBAC policies and command
//! queues, so the paper's figures live as readable fixtures:
//!
//! ```text
//! policy hospital {
//!     users diana, bob, jane;
//!     roles nurse, staff, dbusr2, hr;
//!     assign diana -> nurse;
//!     inherit staff -> dbusr2;
//!     perm dbusr2 -> (write, t3);
//!     perm hr -> grant(bob, staff);          # ¤(bob, staff)
//!     perm hr -> grant(staff, grant(bob, staff));
//! }
//! ```
//!
//! [`parse_policy`] + [`resolve_policy`] read documents;
//! [`print_policy`] writes them back (round-trip stable). Queues use
//! `queue { cmd(jane, grant, bob -> staff); … }`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod resolve;
pub mod token;

pub use error::LangError;
pub use parser::{parse_policy, parse_priv_expr, parse_queue};
pub use printer::{print_command, print_policy, print_queue};
pub use resolve::{resolve_policy, resolve_policy_into, resolve_priv, resolve_queue};

use adminref_core::policy::Policy;
use adminref_core::universe::Universe;

/// Parses and resolves a policy document in one call.
pub fn load_policy(input: &str) -> Result<(Universe, Policy), LangError> {
    let doc = parse_policy(input)?;
    resolve_policy(&doc)
}

/// Parses and resolves a queue document against an existing universe.
pub fn load_queue(
    input: &str,
    universe: &mut Universe,
) -> Result<adminref_core::command::CommandQueue, LangError> {
    let doc = parse_queue(input)?;
    resolve_queue(&doc, universe)
}
