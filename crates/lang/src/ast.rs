//! Abstract syntax of the policy language.
//!
//! ```text
//! doc     ::= policy IDENT { decl* stmt* }
//! decl    ::= users IDENT (, IDENT)* ;  |  roles IDENT (, IDENT)* ;
//! stmt    ::= assign IDENT -> IDENT ;
//!           | inherit IDENT -> IDENT ;
//!           | perm IDENT -> priv ;
//! priv    ::= ( IDENT , IDENT )                 -- user privilege
//!           | grant ( IDENT , target )          -- ¤(v, v′)
//!           | revoke ( IDENT , target )         -- ♦(v, v′)
//! target  ::= IDENT | priv
//! queue   ::= queue { qcmd* }
//! qcmd    ::= cmd ( IDENT , grant|revoke , IDENT -> target ) ;
//! ```

use crate::token::Pos;

/// A parsed policy document.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PolicyDoc {
    /// The policy's name.
    pub name: String,
    /// Declared users.
    pub users: Vec<String>,
    /// Declared roles.
    pub roles: Vec<String>,
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
}

/// One statement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Stmt {
    /// Statement payload.
    pub kind: StmtKind,
    /// Position of the statement keyword.
    pub pos: Pos,
}

/// Statement payloads.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StmtKind {
    /// `assign user -> role;`
    Assign(String, String),
    /// `inherit senior -> junior;`
    Inherit(String, String),
    /// `perm role -> priv;`
    Perm(String, PrivExpr),
}

/// A privilege expression.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PrivExpr {
    /// `(action, object)` — a user privilege.
    Perm(String, String),
    /// `grant(source, target)` — `¤(v, v′)`.
    Grant(String, Box<TargetExpr>),
    /// `revoke(source, target)` — `♦(v, v′)`.
    Revoke(String, Box<TargetExpr>),
}

/// The second component of a grant/revoke.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TargetExpr {
    /// A role name (user names cannot be edge targets).
    Name(String),
    /// A nested privilege.
    Priv(PrivExpr),
}

/// A parsed command queue document.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QueueDoc {
    /// The commands, front first.
    pub commands: Vec<CmdExpr>,
}

/// One `cmd(actor, grant|revoke, src -> target)` entry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CmdExpr {
    /// The acting user.
    pub actor: String,
    /// `true` for grant, `false` for revoke.
    pub is_grant: bool,
    /// Edge source name.
    pub src: String,
    /// Edge target.
    pub target: TargetExpr,
    /// Source position.
    pub pos: Pos,
}

impl PrivExpr {
    /// Connective-nesting depth of the expression.
    pub fn depth(&self) -> u32 {
        match self {
            PrivExpr::Perm(..) => 0,
            PrivExpr::Grant(_, t) | PrivExpr::Revoke(_, t) => {
                1 + match t.as_ref() {
                    TargetExpr::Name(_) => 0,
                    TargetExpr::Priv(p) => p.depth(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_of_nested_expressions() {
        let inner = PrivExpr::Grant("bob".into(), Box::new(TargetExpr::Name("staff".into())));
        assert_eq!(inner.depth(), 1);
        let outer = PrivExpr::Grant("hr".into(), Box::new(TargetExpr::Priv(inner)));
        assert_eq!(outer.depth(), 2);
        assert_eq!(PrivExpr::Perm("read".into(), "t1".into()).depth(), 0);
    }
}
