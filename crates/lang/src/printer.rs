//! Pretty-printer producing parseable policy text (round-trips with the
//! parser and resolver).

use std::collections::BTreeSet;
use std::fmt::Write as _;

use adminref_core::command::{Command, CommandKind, CommandQueue};
use adminref_core::display::{priv_to_string, Notation};
use adminref_core::ids::{RoleId, UserId};
use adminref_core::policy::Policy;
use adminref_core::universe::{Edge, Universe};

/// Collects every user and role name mentioned by the policy, including
/// names nested inside privilege terms.
fn mentioned_names(universe: &Universe, policy: &Policy) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut users: BTreeSet<UserId> = BTreeSet::new();
    let mut roles: BTreeSet<RoleId> = BTreeSet::new();
    let mut note_edge = |edge: Edge| match edge {
        Edge::UserRole(u, r) => {
            users.insert(u);
            roles.insert(r);
        }
        Edge::RoleRole(a, b) => {
            roles.insert(a);
            roles.insert(b);
        }
        Edge::RolePriv(r, _) => {
            roles.insert(r);
        }
    };
    for edge in policy.edges() {
        note_edge(edge);
        if let Edge::RolePriv(_, p) = edge {
            for nested in universe.edges_within(p) {
                note_edge(nested);
            }
        }
    }
    (
        users
            .into_iter()
            .map(|u| universe.user_name(u).to_string())
            .collect(),
        roles
            .into_iter()
            .map(|r| universe.role_name(r).to_string())
            .collect(),
    )
}

/// Renders a policy as a parseable document named `name`.
pub fn print_policy(universe: &Universe, policy: &Policy, name: &str) -> String {
    let (users, roles) = mentioned_names(universe, policy);
    let mut out = String::new();
    let _ = writeln!(out, "policy {name} {{");
    if !users.is_empty() {
        let list: Vec<&str> = users.iter().map(String::as_str).collect();
        let _ = writeln!(out, "    users {};", list.join(", "));
    }
    if !roles.is_empty() {
        let list: Vec<&str> = roles.iter().map(String::as_str).collect();
        let _ = writeln!(out, "    roles {};", list.join(", "));
    }
    // Sort each section by rendered text so printing is a fixpoint even
    // across universes with different id assignments.
    let mut lines: Vec<String> = policy
        .ua()
        .map(|(u, r)| {
            format!(
                "    assign {} -> {};",
                universe.user_name(u),
                universe.role_name(r)
            )
        })
        .collect();
    lines.sort_unstable();
    for line in lines.drain(..) {
        let _ = writeln!(out, "{line}");
    }
    let mut lines: Vec<String> = policy
        .rh()
        .map(|(a, b)| {
            format!(
                "    inherit {} -> {};",
                universe.role_name(a),
                universe.role_name(b)
            )
        })
        .collect();
    lines.sort_unstable();
    for line in lines.drain(..) {
        let _ = writeln!(out, "{line}");
    }
    let mut lines: Vec<String> = policy
        .pa()
        .map(|(r, p)| {
            format!(
                "    perm {} -> {};",
                universe.role_name(r),
                priv_to_string(universe, p, Notation::Ascii)
            )
        })
        .collect();
    lines.sort_unstable();
    for line in lines {
        let _ = writeln!(out, "{line}");
    }
    out.push_str("}\n");
    out
}

/// Renders a command queue as a parseable document.
pub fn print_queue(universe: &Universe, queue: &CommandQueue) -> String {
    let mut out = String::new();
    out.push_str("queue {\n");
    for cmd in queue.iter() {
        out.push_str("    ");
        out.push_str(&print_command(universe, cmd));
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

/// Renders one command as a queue entry line.
pub fn print_command(universe: &Universe, cmd: &Command) -> String {
    let connective = match cmd.kind {
        CommandKind::Grant => "grant",
        CommandKind::Revoke => "revoke",
    };
    let (src, dst) = match cmd.edge {
        Edge::UserRole(u, r) => (
            universe.user_name(u).to_string(),
            universe.role_name(r).to_string(),
        ),
        Edge::RoleRole(a, b) => (
            universe.role_name(a).to_string(),
            universe.role_name(b).to_string(),
        ),
        Edge::RolePriv(r, p) => (
            universe.role_name(r).to_string(),
            priv_to_string(universe, p, Notation::Ascii),
        ),
    };
    format!(
        "cmd({}, {}, {} -> {});",
        universe.user_name(cmd.actor),
        connective,
        src,
        dst
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_policy, parse_queue};
    use crate::resolve::{resolve_policy, resolve_queue};
    use adminref_core::policy::PolicyBuilder;

    fn hospital() -> (Universe, Policy) {
        let mut b = PolicyBuilder::new()
            .assign("diana", "nurse")
            .assign("jane", "hr")
            .declare_user("bob")
            .inherit("staff", "nurse")
            .permit("dbusr1", "read", "t1");
        let (bob, staff, nurse) = {
            let u = b.universe_mut();
            (
                u.find_user("bob").unwrap(),
                u.find_role("staff").unwrap(),
                u.find_role("nurse").unwrap(),
            )
        };
        let g = b.universe_mut().grant_user_role(bob, staff);
        let nested = b.universe_mut().grant_role_priv(staff, g);
        let _ = nurse;
        b = b.assign_priv("hr", g).assign_priv("hr", nested);
        b.finish()
    }

    #[test]
    fn printed_policy_reparses() {
        let (uni, policy) = hospital();
        let text = print_policy(&uni, &policy, "hospital");
        let doc = parse_policy(&text).expect("printer output must parse");
        let (uni2, policy2) = resolve_policy(&doc).unwrap();
        // Same shape after the round trip.
        assert_eq!(policy.ua_len(), policy2.ua_len());
        assert_eq!(policy.rh_len(), policy2.rh_len());
        assert_eq!(policy.pa_len(), policy2.pa_len());
        // And printing again is a fixpoint.
        let text2 = print_policy(&uni2, &policy2, "hospital");
        assert_eq!(text, text2);
    }

    #[test]
    fn declarations_cover_nested_names() {
        let (uni, policy) = hospital();
        let text = print_policy(&uni, &policy, "p");
        assert!(text.contains("users bob, diana, jane;"), "{text}");
        assert!(text.contains("staff"), "{text}");
    }

    #[test]
    fn queue_round_trip() {
        let (mut uni, _) = hospital();
        let jane = uni.find_user("jane").unwrap();
        let bob = uni.find_user("bob").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let nurse = uni.find_role("nurse").unwrap();
        let g = uni.grant_user_role(bob, nurse);
        let queue: CommandQueue = [
            Command::grant(jane, Edge::UserRole(bob, staff)),
            Command::revoke(jane, Edge::RoleRole(staff, nurse)),
            Command::grant(jane, Edge::RolePriv(staff, g)),
        ]
        .into_iter()
        .collect();
        let text = print_queue(&uni, &queue);
        let doc = parse_queue(&text).expect("printer output must parse");
        let queue2 = resolve_queue(&doc, &mut uni).unwrap();
        assert_eq!(queue, queue2);
    }

    #[test]
    fn empty_policy_prints_and_parses() {
        let uni = Universe::new();
        let policy = Policy::new(&uni);
        let text = print_policy(&uni, &policy, "empty");
        let doc = parse_policy(&text).unwrap();
        assert!(doc.stmts.is_empty());
    }
}
