//! Property-based tests for the core calculus.
//!
//! Policies are generated from a small fixed vocabulary (4 users, 6 roles,
//! 3 perms) with random `UA`/`RH`/`PA†` edges including nested
//! administrative privileges, then the paper's claimed laws are checked:
//! ordering laws (reflexivity, transitivity, Strict ⊆ Extended),
//! BFS/index agreement, refinement partial-order laws, enumeration
//! soundness, and Theorem 1 end-to-end against the bounded simulation.

use adminref_core::prelude::*;
use proptest::prelude::*;

const USERS: usize = 4;
const ROLES: usize = 6;

/// Blueprint for one random policy, as index lists (kept `Debug`-friendly
/// for proptest shrinking).
#[derive(Clone, Debug)]
struct PolicySpec {
    ua: Vec<(u8, u8)>,
    rh: Vec<(u8, u8)>,
    /// (role, privilege blueprint)
    pa: Vec<(u8, PrivSpec)>,
}

#[derive(Clone, Debug)]
enum PrivSpec {
    Perm(u8),
    GrantUserRole(u8, u8),
    GrantRoleRole(u8, u8),
    RevokeUserRole(u8, u8),
    /// grant(role, nested)
    GrantNested(u8, Box<PrivSpec>),
}

fn priv_spec(depth: u32) -> BoxedStrategy<PrivSpec> {
    let leaf = prop_oneof![
        (0u8..3).prop_map(PrivSpec::Perm),
        ((0u8..USERS as u8), (0u8..ROLES as u8)).prop_map(|(u, r)| PrivSpec::GrantUserRole(u, r)),
        ((0u8..ROLES as u8), (0u8..ROLES as u8)).prop_map(|(a, b)| PrivSpec::GrantRoleRole(a, b)),
        ((0u8..USERS as u8), (0u8..ROLES as u8)).prop_map(|(u, r)| PrivSpec::RevokeUserRole(u, r)),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        let inner = priv_spec(depth - 1);
        prop_oneof![
            3 => leaf,
            1 => ((0u8..ROLES as u8), inner)
                .prop_map(|(r, p)| PrivSpec::GrantNested(r, Box::new(p))),
        ]
        .boxed()
    }
}

fn policy_spec() -> impl Strategy<Value = PolicySpec> {
    (
        prop::collection::vec(((0u8..USERS as u8), (0u8..ROLES as u8)), 0..5),
        prop::collection::vec(((0u8..ROLES as u8), (0u8..ROLES as u8)), 0..7),
        prop::collection::vec(((0u8..ROLES as u8), priv_spec(2)), 0..5),
    )
        .prop_map(|(ua, rh, pa)| PolicySpec { ua, rh, pa })
}

fn build_priv(uni: &mut Universe, users: &[UserId], roles: &[RoleId], spec: &PrivSpec) -> PrivId {
    match spec {
        PrivSpec::Perm(i) => {
            let perm = uni.perm(["read", "write", "prnt"][*i as usize % 3], "obj");
            uni.priv_perm(perm)
        }
        PrivSpec::GrantUserRole(u, r) => {
            uni.grant_user_role(users[*u as usize], roles[*r as usize])
        }
        PrivSpec::GrantRoleRole(a, b) => {
            uni.grant_role_role(roles[*a as usize], roles[*b as usize])
        }
        PrivSpec::RevokeUserRole(u, r) => {
            uni.revoke_user_role(users[*u as usize], roles[*r as usize])
        }
        PrivSpec::GrantNested(r, inner) => {
            let p = build_priv(uni, users, roles, inner);
            uni.grant_role_priv(roles[*r as usize], p)
        }
    }
}

fn build(spec: &PolicySpec) -> (Universe, Policy, Vec<UserId>, Vec<RoleId>) {
    let mut uni = Universe::new();
    let users: Vec<UserId> = (0..USERS).map(|i| uni.user(&format!("u{i}"))).collect();
    let roles: Vec<RoleId> = (0..ROLES).map(|i| uni.role(&format!("r{i}"))).collect();
    let mut policy = Policy::new(&uni);
    for &(u, r) in &spec.ua {
        policy.add_edge(Edge::UserRole(users[u as usize], roles[r as usize]));
    }
    for &(a, b) in &spec.rh {
        policy.add_edge(Edge::RoleRole(roles[a as usize], roles[b as usize]));
    }
    for (r, ps) in &spec.pa {
        let p = build_priv(&mut uni, &users, &roles, ps);
        policy.add_edge(Edge::RolePriv(roles[*r as usize], p));
    }
    (uni, policy, users, roles)
}

/// All policy-relevant terms: assigned vertices plus a few fresh ones.
fn term_pool(
    uni: &mut Universe,
    policy: &Policy,
    users: &[UserId],
    roles: &[RoleId],
) -> Vec<PrivId> {
    let mut terms: Vec<PrivId> = policy.priv_vertices().into_iter().collect();
    terms.push(uni.grant_user_role(users[0], roles[0]));
    terms.push(uni.grant_user_role(users[1], roles[ROLES - 1]));
    terms.push(uni.grant_role_role(roles[0], roles[1]));
    let nested = uni.grant_role_priv(roles[2], terms[terms.len() - 1]);
    terms.push(nested);
    terms.sort_unstable();
    terms.dedup();
    terms
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bfs_and_index_reachability_agree(spec in policy_spec()) {
        let (uni, policy, users, roles) = build(&spec);
        let idx = ReachIndex::build(&uni, &policy);
        let entities: Vec<Entity> = users.iter().map(|&u| Entity::User(u))
            .chain(roles.iter().map(|&r| Entity::Role(r))).collect();
        for &a in &entities {
            for &b in &entities {
                prop_assert_eq!(idx.reach_entity(a, b), reaches_entity(&policy, a, b));
            }
            for p in policy.priv_vertices() {
                prop_assert_eq!(
                    idx.reach_priv(a, p),
                    reaches(&policy, a.into(), Node::Priv(p))
                );
            }
        }
    }

    #[test]
    fn ordering_is_reflexive_and_transitive(spec in policy_spec()) {
        let (mut uni, policy, users, roles) = build(&spec);
        let terms = term_pool(&mut uni, &policy, &users, &roles);
        for mode in [OrderingMode::Strict, OrderingMode::Extended, OrderingMode::ExtendedWithRevocation] {
            let order = PrivilegeOrder::new(&uni, &policy, mode);
            for &a in &terms {
                prop_assert!(order.is_weaker(a, a));
            }
            for &a in &terms {
                for &b in &terms {
                    if !order.is_weaker(a, b) { continue; }
                    for &c in &terms {
                        if order.is_weaker(b, c) {
                            prop_assert!(order.is_weaker(a, c), "transitivity in {:?}", mode);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn strict_is_subset_of_extended(spec in policy_spec()) {
        let (mut uni, policy, users, roles) = build(&spec);
        let terms = term_pool(&mut uni, &policy, &users, &roles);
        let strict = PrivilegeOrder::new(&uni, &policy, OrderingMode::Strict);
        let ext = PrivilegeOrder::new(&uni, &policy, OrderingMode::Extended);
        let rev = PrivilegeOrder::new(&uni, &policy, OrderingMode::ExtendedWithRevocation);
        for &a in &terms {
            for &b in &terms {
                if strict.is_weaker(a, b) {
                    prop_assert!(ext.is_weaker(a, b));
                }
                if ext.is_weaker(a, b) {
                    prop_assert!(rev.is_weaker(a, b));
                }
            }
        }
    }

    #[test]
    fn derivations_exist_iff_weaker(spec in policy_spec()) {
        let (mut uni, policy, users, roles) = build(&spec);
        let terms = term_pool(&mut uni, &policy, &users, &roles);
        for mode in [OrderingMode::Strict, OrderingMode::Extended] {
            let order = PrivilegeOrder::new(&uni, &policy, mode);
            for &a in &terms {
                for &b in &terms {
                    prop_assert_eq!(order.is_weaker(a, b), order.derive(a, b).is_some());
                }
            }
        }
    }

    #[test]
    fn refinement_is_a_preorder(spec in policy_spec(), spec2 in policy_spec()) {
        // Reflexivity on one policy; transitivity through an edge-removed
        // middle policy.
        let (uni, policy, _, _) = build(&spec);
        prop_assert!(refines(&uni, &policy, &policy));
        let _ = spec2; // reserved for cross-policy checks below
        let mut middle = policy.clone();
        if let Some(edge) = policy.edges().next() {
            middle.remove_edge(edge);
        }
        let mut bottom = middle.clone();
        if let Some(edge) = middle.edges().last() {
            bottom.remove_edge(edge);
        }
        prop_assert!(refines(&uni, &policy, &middle));
        prop_assert!(refines(&uni, &middle, &bottom));
        prop_assert!(refines(&uni, &policy, &bottom), "transitivity");
    }

    #[test]
    fn edge_removal_always_refines(spec in policy_spec()) {
        let (uni, policy, _, _) = build(&spec);
        for edge in policy.edges().collect::<Vec<_>>() {
            let mut psi = policy.clone();
            psi.remove_edge(edge);
            prop_assert!(refines(&uni, &policy, &psi));
        }
    }

    #[test]
    fn enumeration_is_sound(spec in policy_spec()) {
        let (mut uni, policy, users, roles) = build(&spec);
        let terms = term_pool(&mut uni, &policy, &users, &roles);
        let config = EnumerationConfig { max_depth: 3, max_results: 2000, mode: OrderingMode::Extended };
        for &p in terms.iter().take(4) {
            let set = enumerate_weaker(&mut uni, &policy, p, config);
            let order = PrivilegeOrder::new(&uni, &policy, OrderingMode::Extended);
            for &q in &set.privileges {
                prop_assert!(order.is_weaker(p, q), "enumerated element not weaker");
            }
        }
    }

    #[test]
    fn theorem1_holds_on_random_weakenings(spec in policy_spec()) {
        // For every assigned administrative grant p and every weaker q from
        // the pool, the weakened policy is a bounded administrative
        // refinement.
        let (mut uni, policy, users, roles) = build(&spec);
        let terms = term_pool(&mut uni, &policy, &users, &roles);
        let assignments: Vec<(RoleId, PrivId)> = policy.pa()
            .filter(|&(_, p)| matches!(uni.term(p), PrivTerm::Grant(_)))
            .collect();
        let order = PrivilegeOrder::new(&uni, &policy, OrderingMode::Extended);
        let mut weakenings: Vec<(RoleId, PrivId, PrivId)> = Vec::new();
        for &(r, p) in assignments.iter().take(2) {
            for &q in terms.iter() {
                if q != p && order.is_weaker(p, q) && matches!(uni.term(q), PrivTerm::Grant(_)) {
                    weakenings.push((r, p, q));
                }
            }
        }
        drop(order);
        for (r, p, q) in weakenings.into_iter().take(3) {
            let psi = weaken_assignment(&policy, (r, p), q);
            let out = check_admin_refinement(
                &uni, &policy, &psi,
                SimulationConfig { max_queue_len: 2, ..SimulationConfig::default() },
            );
            prop_assert!(out.holds(), "Theorem 1 refuted: {:?}", out);
        }
    }

    #[test]
    fn unauthorized_runs_never_change_policies(spec in policy_spec()) {
        // A user with no roles and no privileges can never change anything.
        let (mut uni, policy, _, roles) = build(&spec);
        let ghost = uni.user("ghost");
        let mut mutated = policy.clone();
        let queue: CommandQueue = [
            Command::grant(ghost, Edge::UserRole(ghost, roles[0])),
            Command::revoke(ghost, Edge::RoleRole(roles[0], roles[1])),
        ].into_iter().collect();
        let trace = run(&mut uni, &mut mutated, &queue, AuthMode::Explicit);
        prop_assert_eq!(trace.executed_count(), 0);
        prop_assert_eq!(&mutated, &policy);
    }

    #[test]
    fn ordered_mode_executes_superset_of_explicit(spec in policy_spec()) {
        // Every command explicit mode authorizes, ordered mode authorizes
        // too (reflexivity of ⊑).
        let (mut uni, policy, _, _) = build(&spec);
        let alphabet = command_alphabet(&uni, &[&policy]);
        for cmd in alphabet.iter().take(40) {
            let explicit = authorize(&mut uni, &policy, cmd, AuthMode::Explicit).is_some();
            if explicit {
                let ordered = authorize(
                    &mut uni, &policy, cmd,
                    AuthMode::Ordered(OrderingMode::Extended),
                ).is_some();
                prop_assert!(ordered, "ordered must subsume explicit");
            }
        }
    }

    #[test]
    fn validation_accepts_generated_policies(spec in policy_spec()) {
        let (uni, policy, _, _) = build(&spec);
        prop_assert!(adminref_core::analysis::validate(&uni, &policy).is_ok());
    }

    #[test]
    fn stats_are_consistent(spec in policy_spec()) {
        let (uni, policy, _, _) = build(&spec);
        let s = adminref_core::analysis::stats(&uni, &policy);
        prop_assert_eq!(s.ua_edges + s.rh_edges + s.pa_edges, policy.edge_count());
        prop_assert!(s.admin_vertices <= s.priv_vertices);
        prop_assert!(s.hierarchy_sccs <= uni.role_count());
    }
}

/// The answer variants of two reachability results, for comparison.
fn answer_tag(a: &ReachabilityAnswer) -> &'static str {
    match a {
        ReachabilityAnswer::Reachable { .. } => "reachable",
        ReachabilityAnswer::Unreachable => "unreachable",
        ReachabilityAnswer::Unknown { .. } => "unknown",
    }
}

/// Replays `witness` from `policy` and checks the entity really reaches
/// the target privilege in the final policy.
fn witness_is_valid(
    uni: &mut Universe,
    policy: &Policy,
    witness: &CommandQueue,
    entity: Entity,
    target: PrivId,
    mode: AuthMode,
) -> bool {
    let final_policy = run_pure(uni, policy, witness, mode);
    ReachIndex::build(uni, &final_policy).reach_priv(entity, target)
}

// The search-engine equivalence suite runs whole bounded searches per
// case, so it gets a smaller case budget than the algebraic laws above.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The compact-state engine (sequential and parallel) and the
    /// clone-based reference BFS agree on the answer variant, produce
    /// equally long witnesses, and every witness replays to a policy
    /// where the target is reached.
    #[test]
    fn search_engines_agree(spec in policy_spec(), ui in 0u8..USERS as u8, pi in 0u8..3) {
        let (mut uni, policy, users, _) = build(&spec);
        let entity = Entity::User(users[ui as usize]);
        let perm = uni.perm(["read", "write", "prnt"][pi as usize], "obj");
        let target = uni.priv_perm(perm);
        // `escalate: false`: the clone-based reference never escalates,
        // so the equality discipline here is over the raw bounded
        // answers (escalation agreement has its own suite in
        // `tests/verify_unbounded.rs`).
        // `slice: false`: the reference explores the full alphabet, so
        // the compared engines must too (a sliced search may say
        // Unreachable where the truncated full search says Unknown).
        let config = SafetyConfig {
            max_steps: 2,
            max_states: 300,
            jobs: 1,
            escalate: false,
            slice: false,
            ..SafetyConfig::default()
        };
        let reference = find_reachable_clone(&mut uni, &policy, config, |u, p| {
            ReachIndex::build(u, p).reach_priv(entity, target)
        });
        let sequential = perm_reachable(&mut uni, &policy, entity, perm, config);
        let parallel = perm_reachable(
            &mut uni,
            &policy,
            entity,
            perm,
            SafetyConfig { jobs: 4, ..config },
        );
        prop_assert_eq!(answer_tag(&reference), answer_tag(&sequential));
        prop_assert_eq!(answer_tag(&sequential), answer_tag(&parallel));
        if let ReachabilityAnswer::Reachable { witness: reference_witness } = &reference {
            let ReachabilityAnswer::Reachable { witness: seq_witness } = &sequential else {
                unreachable!("variants already matched");
            };
            let ReachabilityAnswer::Reachable { witness: par_witness } = &parallel else {
                unreachable!("variants already matched");
            };
            // Equally long (shortest) witnesses, all of them valid.
            prop_assert_eq!(reference_witness.len(), seq_witness.len());
            // jobs = 1 vs jobs = N is bit-for-bit deterministic.
            prop_assert_eq!(seq_witness.commands(), par_witness.commands());
            for w in [reference_witness, seq_witness] {
                prop_assert!(witness_is_valid(
                    &mut uni, &policy, w, entity, target, config.auth_mode,
                ));
            }
        }
    }

    /// Same equivalence under ordered authorization, where the alphabet
    /// is expanded with ⊑-weaker commands and authorization runs
    /// through the privilege order.
    #[test]
    fn search_engines_agree_ordered(spec in policy_spec(), ui in 0u8..USERS as u8) {
        let (mut uni, policy, users, _) = build(&spec);
        let entity = Entity::User(users[ui as usize]);
        let perm = uni.perm("write", "obj");
        let target = uni.priv_perm(perm);
        let config = SafetyConfig {
            max_steps: 2,
            max_states: 150,
            auth_mode: AuthMode::Ordered(OrderingMode::Extended),
            weaker_depth: Some(1),
            jobs: 1,
            escalate: false,
            slice: false,
        };
        let reference = find_reachable_clone(&mut uni, &policy, config, |u, p| {
            ReachIndex::build(u, p).reach_priv(entity, target)
        });
        let engine = perm_reachable(
            &mut uni,
            &policy,
            entity,
            perm,
            SafetyConfig { jobs: 2, ..config },
        );
        prop_assert_eq!(answer_tag(&reference), answer_tag(&engine));
        if let (
            ReachabilityAnswer::Reachable { witness: a },
            ReachabilityAnswer::Reachable { witness: b },
        ) = (&reference, &engine) {
            prop_assert_eq!(a.len(), b.len());
            for w in [a, b] {
                prop_assert!(witness_is_valid(
                    &mut uni, &policy, w, entity, target, config.auth_mode,
                ));
            }
        }
    }
}
