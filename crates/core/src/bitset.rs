//! Dense fixed-capacity bitsets.
//!
//! Reachability over the policy graph (closures of the role hierarchy,
//! per-entity authorization rows) is computed over dense `u32` ids, so a
//! packed bitset is the natural representation: unions are word-wise `or`s
//! and membership is a shift and a mask. The workspace deliberately avoids a
//! bitset dependency; this module is the substrate.

/// A fixed-capacity set of small integers, packed into 64-bit words.
///
/// Capacity is fixed at construction; out-of-range operations panic in debug
/// builds (they indicate id-space confusion, which is a logic error).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitSet {
    words: Vec<u64>,
    /// Number of valid bits (ids `0..len`).
    len: usize,
}

const WORD_BITS: usize = 64;

#[inline]
fn word_index(bit: usize) -> (usize, u64) {
    (bit / WORD_BITS, 1u64 << (bit % WORD_BITS))
}

impl BitSet {
    /// Creates an empty set with capacity for ids `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Capacity (number of addressable bits), not population count.
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Inserts `bit`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, bit: usize) -> bool {
        debug_assert!(bit < self.len, "bit {bit} out of range {}", self.len);
        let (w, mask) = word_index(bit);
        let old = self.words[w];
        self.words[w] = old | mask;
        old & mask == 0
    }

    /// Removes `bit`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, bit: usize) -> bool {
        debug_assert!(bit < self.len, "bit {bit} out of range {}", self.len);
        let (w, mask) = word_index(bit);
        let old = self.words[w];
        self.words[w] = old & !mask;
        old & mask != 0
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, bit: usize) -> bool {
        if bit >= self.len {
            return false;
        }
        let (w, mask) = word_index(bit);
        self.words[w] & mask != 0
    }

    /// Word-wise union; returns `true` if `self` changed.
    ///
    /// Both sets must have the same capacity.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len, "capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            let old = *a;
            *a = old | *b;
            changed |= *a != old;
        }
        changed
    }

    /// Word-wise intersection.
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= *b;
        }
    }

    /// `true` iff every element of `self` is in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len, "capacity mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// Number of elements present.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` iff no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements, keeping capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Grows the capacity to at least `len` bits, keeping contents.
    /// Shrinking requests are ignored — capacity never decreases.
    pub fn grow(&mut self, len: usize) {
        if len <= self.len {
            return;
        }
        self.words.resize(len.div_ceil(WORD_BITS), 0);
        self.len = len;
    }

    /// Iterates set bits in increasing order.
    pub fn iter(&self) -> BitIter<'_> {
        BitIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set sized to the maximum element (capacity `max + 1`).
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().copied().max().map_or(0, |m| m + 1);
        let mut set = BitSet::new(cap);
        for b in items {
            set.insert(b);
        }
        set
    }
}

/// Iterator over set bits, lowest first.
pub struct BitIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for BitIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let tz = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_idx * WORD_BITS + tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(!s.contains(0));
        assert!(s.insert(0));
        assert!(!s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(s.contains(0));
        assert!(s.contains(64));
        assert!(s.contains(129));
        assert!(!s.contains(1));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(10));
        assert!(!s.contains(1000));
    }

    #[test]
    fn union_reports_change() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        b.insert(7);
        b.insert(99);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "second union is a no-op");
        assert!(a.contains(7) && a.contains(99));
    }

    #[test]
    fn intersect_keeps_common() {
        let mut a = BitSet::new(64);
        let mut b = BitSet::new(64);
        for i in [1, 5, 9, 33] {
            a.insert(i);
        }
        for i in [5, 33, 40] {
            b.insert(i);
        }
        a.intersect_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![5, 33]);
    }

    #[test]
    fn subset() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        a.insert(3);
        a.insert(69);
        b.insert(3);
        b.insert(69);
        b.insert(10);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        a.insert(0);
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn iter_order_and_boundaries() {
        let mut s = BitSet::new(200);
        let bits = [0usize, 63, 64, 127, 128, 199];
        for &b in &bits {
            s.insert(b);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), bits);
    }

    #[test]
    fn empty_and_clear() {
        let mut s = BitSet::new(33);
        assert!(s.is_empty());
        s.insert(32);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 33);
    }

    #[test]
    fn from_iter_sizes_to_max() {
        let s: BitSet = [3usize, 1, 7].into_iter().collect();
        assert_eq!(s.capacity(), 8);
        assert!(s.contains(7) && s.contains(1) && s.contains(3));
        assert!(!s.contains(0));
    }

    #[test]
    fn grow_keeps_contents() {
        let mut s = BitSet::new(3);
        s.insert(2);
        s.grow(200);
        assert_eq!(s.capacity(), 200);
        assert!(s.contains(2));
        assert!(s.insert(199));
        s.grow(10); // shrinking request: no-op
        assert_eq!(s.capacity(), 200);
        assert!(s.contains(199));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn zero_capacity() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert!(!s.contains(0));
    }
}
