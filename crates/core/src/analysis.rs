//! Policy analyses: statistics, diffs, validation.
//!
//! These are the operational odds and ends a reference monitor or policy
//! administration tool needs around the core calculus: summarising a
//! policy, diffing two snapshots (e.g. before/after a run), and validating
//! that a policy's ids actually belong to its universe.

use std::collections::BTreeSet;

use crate::ids::{Entity, PrivId};
use crate::policy::Policy;
use crate::reach::ReachIndex;
use crate::universe::{Edge, Universe};

/// Summary statistics for a policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PolicyStats {
    /// Users mentioned in `UA`.
    pub users: usize,
    /// Roles mentioned anywhere.
    pub roles: usize,
    /// `|UA|`.
    pub ua_edges: usize,
    /// `|RH|`.
    pub rh_edges: usize,
    /// `|PA†|`.
    pub pa_edges: usize,
    /// Distinct privilege vertices.
    pub priv_vertices: usize,
    /// Vertices that are administrative (grant/revoke terms).
    pub admin_vertices: usize,
    /// Maximum connective depth among assigned privileges.
    pub max_priv_depth: u32,
    /// Longest chain of `RH` in roles (the Remark 2 bound).
    pub longest_chain: u32,
    /// Number of SCCs of the role hierarchy (`< roles` iff cycles exist).
    pub hierarchy_sccs: usize,
}

/// Computes [`PolicyStats`].
pub fn stats(universe: &Universe, policy: &Policy) -> PolicyStats {
    policy.check_universe(universe);
    let idx = ReachIndex::build(universe, policy);
    let verts = policy.priv_vertices();
    PolicyStats {
        users: policy.users_mentioned().len(),
        roles: policy.roles_mentioned().len(),
        ua_edges: policy.ua_len(),
        rh_edges: policy.rh_len(),
        pa_edges: policy.pa_len(),
        priv_vertices: verts.len(),
        admin_vertices: verts
            .iter()
            .filter(|&&p| universe.term(p).is_administrative())
            .count(),
        max_priv_depth: verts.iter().map(|&p| universe.depth(p)).max().unwrap_or(0),
        longest_chain: idx.role_closure().longest_chain_roles(),
        hierarchy_sccs: idx.role_closure().scc_count(),
    }
}

/// Difference between two policies over the same universe.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PolicyDiff {
    /// Edges in `after` but not `before`.
    pub added: Vec<Edge>,
    /// Edges in `before` but not `after`.
    pub removed: Vec<Edge>,
}

impl PolicyDiff {
    /// `true` iff the policies have identical edge sets.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// Computes the edge-level diff `before → after`.
pub fn diff(before: &Policy, after: &Policy) -> PolicyDiff {
    let b: BTreeSet<Edge> = before.edges().collect();
    let a: BTreeSet<Edge> = after.edges().collect();
    PolicyDiff {
        added: a.difference(&b).copied().collect(),
        removed: b.difference(&a).copied().collect(),
    }
}

/// A structural defect found by [`validate`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ValidationError {
    /// A user id outside the universe's user table.
    UnknownUser(u32),
    /// A role id outside the universe's role table.
    UnknownRole(u32),
    /// A privilege id outside the universe's term table.
    UnknownPriv(u32),
    /// The policy was built against a different universe.
    UniverseMismatch,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::UnknownUser(u) => write!(f, "unknown user id {u}"),
            ValidationError::UnknownRole(r) => write!(f, "unknown role id {r}"),
            ValidationError::UnknownPriv(p) => write!(f, "unknown privilege id {p}"),
            ValidationError::UniverseMismatch => write!(f, "policy belongs to another universe"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Checks that every id in the policy resolves in `universe`.
pub fn validate(universe: &Universe, policy: &Policy) -> Result<(), ValidationError> {
    if policy.universe_tag() != universe.tag() {
        return Err(ValidationError::UniverseMismatch);
    }
    let users = universe.user_count() as u32;
    let roles = universe.role_count() as u32;
    let terms = universe.term_count() as u32;
    let check_edge = |edge: Edge| -> Result<(), ValidationError> {
        match edge {
            Edge::UserRole(u, r) => {
                if u.0 >= users {
                    return Err(ValidationError::UnknownUser(u.0));
                }
                if r.0 >= roles {
                    return Err(ValidationError::UnknownRole(r.0));
                }
            }
            Edge::RoleRole(r, s) => {
                if r.0 >= roles {
                    return Err(ValidationError::UnknownRole(r.0));
                }
                if s.0 >= roles {
                    return Err(ValidationError::UnknownRole(s.0));
                }
            }
            Edge::RolePriv(r, p) => {
                if r.0 >= roles {
                    return Err(ValidationError::UnknownRole(r.0));
                }
                if p.0 >= terms {
                    return Err(ValidationError::UnknownPriv(p.0));
                }
            }
        }
        Ok(())
    };
    for edge in policy.edges() {
        check_edge(edge)?;
        // Nested edges of assigned privileges are valid by construction of
        // the interner, but check them anyway — validation guards against
        // corrupted deserialized input.
        if let Edge::RolePriv(_, p) = edge {
            if p.0 < terms {
                for nested in universe.edges_within(p) {
                    check_edge(nested)?;
                }
            }
        }
    }
    Ok(())
}

/// The entity/perm authorization matrix, sorted — a canonical form of the
/// policy's non-administrative meaning (two policies are Definition-6
/// equivalent iff their matrices are equal).
pub fn authorization_matrix(
    universe: &Universe,
    policy: &Policy,
) -> Vec<(Entity, crate::ids::Perm)> {
    let idx = ReachIndex::build(universe, policy);
    let mut out = Vec::new();
    let entities = universe
        .users()
        .map(Entity::User)
        .chain(universe.roles().map(Entity::Role));
    for v in entities {
        for perm in idx.perms_reachable(universe, policy, v) {
            out.push((v, perm));
        }
    }
    out
}

/// The set of distinct administrative privilege vertices, useful for
/// auditing which delegations a policy contains.
pub fn admin_vertices(universe: &Universe, policy: &Policy) -> Vec<PrivId> {
    policy
        .priv_vertices()
        .into_iter()
        .filter(|&p| universe.term(p).is_administrative())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyBuilder;

    fn sample() -> (Universe, Policy) {
        let mut b = PolicyBuilder::new()
            .assign("diana", "nurse")
            .inherit("staff", "nurse")
            .inherit("nurse", "dbusr1")
            .permit("dbusr1", "read", "t1");
        let (joe, nurse) = {
            let u = b.universe_mut();
            (u.user("joe"), u.find_role("nurse").unwrap())
        };
        let g = b.universe_mut().grant_user_role(joe, nurse);
        let nested = {
            let u = b.universe_mut();
            let hr = u.role("hr");
            u.grant_role_priv(hr, g)
        };
        b = b.assign_priv("hr", nested);
        b.finish()
    }

    #[test]
    fn stats_fields() {
        let (uni, policy) = sample();
        let s = stats(&uni, &policy);
        assert_eq!(s.users, 1, "only diana is assigned");
        assert_eq!(s.ua_edges, 1);
        assert_eq!(s.rh_edges, 2);
        assert_eq!(s.pa_edges, 2);
        assert_eq!(s.priv_vertices, 2);
        assert_eq!(s.admin_vertices, 1);
        assert_eq!(s.max_priv_depth, 2, "grant(hr, grant(joe, nurse))");
        assert_eq!(s.longest_chain, 3, "staff → nurse → dbusr1");
        assert!(s.hierarchy_sccs >= 3);
    }

    #[test]
    fn diff_tracks_both_directions() {
        let (uni, policy) = sample();
        let mut after = policy.clone();
        let diana = uni.find_user("diana").unwrap();
        let nurse = uni.find_role("nurse").unwrap();
        let staff = uni.find_role("staff").unwrap();
        after.remove_edge(Edge::UserRole(diana, nurse));
        after.add_edge(Edge::UserRole(diana, staff));
        let d = diff(&policy, &after);
        assert_eq!(d.added, vec![Edge::UserRole(diana, staff)]);
        assert_eq!(d.removed, vec![Edge::UserRole(diana, nurse)]);
        assert!(diff(&policy, &policy).is_empty());
    }

    #[test]
    fn validate_accepts_well_formed() {
        let (uni, policy) = sample();
        assert_eq!(validate(&uni, &policy), Ok(()));
    }

    #[test]
    fn validate_rejects_foreign_universe() {
        let (_, policy) = sample();
        let other = Universe::new();
        assert_eq!(
            validate(&other, &policy),
            Err(ValidationError::UniverseMismatch)
        );
    }

    #[test]
    fn validate_rejects_out_of_range_ids() {
        let (uni, mut policy) = sample();
        policy.add_edge(Edge::UserRole(
            crate::ids::UserId(999),
            uni.find_role("nurse").unwrap(),
        ));
        assert_eq!(
            validate(&uni, &policy),
            Err(ValidationError::UnknownUser(999))
        );
    }

    #[test]
    fn matrix_is_canonical_form() {
        let (uni, policy) = sample();
        let m1 = authorization_matrix(&uni, &policy);
        // Adding an admin privilege does not change the matrix.
        let mut policy2 = policy.clone();
        let hr = uni.find_role("hr").unwrap();
        let g = admin_vertices(&uni, &policy)[0];
        policy2.add_edge(Edge::RolePriv(hr, g));
        let m2 = authorization_matrix(&uni, &policy2);
        assert_eq!(m1, m2);
    }

    #[test]
    fn admin_vertices_filters_perms() {
        let (uni, policy) = sample();
        let verts = admin_vertices(&uni, &policy);
        assert_eq!(verts.len(), 1);
        assert!(uni.term(verts[0]).is_administrative());
    }
}
