//! Reachability `v →φ v′` over the policy graph.
//!
//! The paper reads a policy as the digraph `UA ∪ RH ∪ PA†` and writes
//! `v →φ v′` when a (possibly empty) path exists — reachability is
//! reflexive (Example 5 silently uses `bob →φ bob`). Two implementations
//! are provided:
//!
//! * [`reaches`] — an allocation-light on-the-fly BFS, right for the tiny,
//!   rapidly-mutating policies inside the bounded refinement search;
//! * [`ReachIndex`] — a bitset closure over the role hierarchy with
//!   per-privilege holder lists, right for repeated queries against a fixed
//!   policy (ordering decisions, the monitor, benchmarks).
//!
//! Both agree everywhere; a property test in this module checks that.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use crate::bitset::BitSet;
use crate::closure::{ClosureDelta, RoleClosure};
use crate::ids::{Entity, Node, Perm, PrivId, RoleId, UserId};
use crate::policy::Policy;
use crate::universe::{Edge, PrivTerm, Universe};

/// On-the-fly BFS reachability on the policy graph. Reflexive.
pub fn reaches(policy: &Policy, from: Node, to: Node) -> bool {
    if from == to {
        return true;
    }
    // Privilege vertices are sinks; users are never targets.
    if matches!(from, Node::Priv(_)) {
        return false;
    }
    if matches!(to, Node::User(_)) {
        return false;
    }
    // Visited roles as a bitset keyed by role index, grown on demand:
    // `Vec::contains` here made the walk O(V²) on thousands-of-roles
    // hierarchies.
    let mut seen_roles = BitSet::new(0);
    let mut queue: Vec<RoleId> = Vec::new();
    let push = |r: RoleId, seen: &mut BitSet, queue: &mut Vec<RoleId>| {
        if r.index() >= seen.capacity() {
            seen.grow(r.index() + 1);
        }
        if seen.insert(r.index()) {
            queue.push(r);
        }
    };
    match from {
        Node::User(u) => {
            for r in policy.roles_of(u) {
                if Node::Role(r) == to {
                    return true;
                }
                push(r, &mut seen_roles, &mut queue);
            }
        }
        Node::Role(r) => push(r, &mut seen_roles, &mut queue),
        Node::Priv(_) => unreachable!("handled above"),
    }
    while let Some(r) = queue.pop() {
        if let Node::Priv(p) = to {
            if policy.privs_of(r).any(|q| q == p) {
                return true;
            }
        }
        for s in policy.juniors_of(r) {
            if Node::Role(s) == to {
                return true;
            }
            push(s, &mut seen_roles, &mut queue);
        }
    }
    false
}

/// Entity-to-entity convenience wrapper over [`reaches`].
pub fn reaches_entity(policy: &Policy, from: Entity, to: Entity) -> bool {
    reaches(policy, from.into(), to.into())
}

/// Bitset-backed reachability index for one policy snapshot.
///
/// Build cost is `O(|R|²/64 + |E|)`; queries are `O(1)` for role/role,
/// `O(roles_of(u))` for user sources, and `O(holders(p))` for privilege
/// targets.
#[derive(Debug, Clone)]
pub struct ReachIndex {
    closure: RoleClosure,
    /// Direct role memberships per user (dense by user id). The outer
    /// `Arc` makes cloning free for batches without membership deltas;
    /// when one does copy the table, the inner `Arc`s still share every
    /// untouched user's row across epochs.
    user_roles: Arc<Vec<Arc<Vec<RoleId>>>>,
    /// Roles directly holding each privilege vertex (`Arc`-shared like
    /// the membership table).
    holders: Arc<HashMap<PrivId, Arc<Vec<RoleId>>>>,
    role_count: usize,
}

/// One applied edge change, in execution order — the unit the
/// incremental snapshot publisher consumes. Produced from the
/// `changed == true` outcomes of a batch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EdgeDelta {
    /// The edge that changed.
    pub edge: Edge,
    /// `true` for an addition, `false` for a removal.
    pub added: bool,
}

/// Cap on closure rows a single RH-edge removal may recompute before
/// the targeted pass costs as much as a rebuild (see
/// [`RoleClosure::remove_edge_incremental`]). A quarter of the SCCs,
/// floored so tiny hierarchies always take the targeted path.
fn removal_fanout_cap(scc_count: usize) -> usize {
    (scc_count / 4).max(8)
}

impl ReachIndex {
    /// Builds the index for `policy` against `universe`.
    pub fn build(universe: &Universe, policy: &Policy) -> Self {
        policy.check_universe(universe);
        let role_count = universe.role_count();
        let closure = RoleClosure::build(role_count, policy.rh().map(|(a, b)| (a.0, b.0)));
        let mut user_roles = vec![Vec::new(); universe.user_count()];
        for (u, r) in policy.ua() {
            user_roles[u.index()].push(r);
        }
        let mut holders: HashMap<PrivId, Vec<RoleId>> = HashMap::new();
        for (r, p) in policy.pa() {
            holders.entry(p).or_default().push(r);
        }
        ReachIndex {
            closure,
            user_roles: Arc::new(user_roles.into_iter().map(Arc::new).collect()),
            holders: Arc::new(holders.into_iter().map(|(p, v)| (p, Arc::new(v))).collect()),
            role_count,
        }
    }

    /// Derives the index of a *child* policy from this one by applying
    /// the batch's edge deltas, sharing every untouched row with the
    /// parent. Returns `None` when the batch needs a from-scratch
    /// [`build`](Self::build): the universe's role/user population grew
    /// under the index, an RH addition closed a new cycle (SCC merge),
    /// an RH removal hit an edge inside an SCC (possible split), or a
    /// removal's row fan-out exceeded the cost cap.
    ///
    /// `policy_before` must be the policy this index was built for and
    /// `deltas` the exact sequence of applied changes leading from it
    /// to the child policy — i.e. an `added` delta's edge was absent
    /// when it executed, a removal's present (the monitor gets this for
    /// free from the `changed` flags of a batch's outcomes).
    pub fn apply_delta(
        &self,
        universe: &Universe,
        policy_before: &Policy,
        deltas: &[EdgeDelta],
    ) -> Option<ReachIndex> {
        if universe.role_count() != self.role_count
            || universe.user_count() != self.user_roles.len()
        {
            return None;
        }
        let mut next = self.clone();
        // Role adjacency, materialized lazily on the first RH delta and
        // kept in step with the sequence (UA/PA-only batches never pay
        // for it).
        let mut succ: Option<Vec<BTreeSet<u32>>> = None;
        let mut rh_changed = false;
        for delta in deltas {
            match (delta.edge, delta.added) {
                (Edge::UserRole(u, r), added) => {
                    let table = Arc::make_mut(&mut next.user_roles);
                    let row = Arc::make_mut(&mut table[u.index()]);
                    match (row.binary_search(&r), added) {
                        (Err(at), true) => row.insert(at, r),
                        (Ok(at), false) => {
                            row.remove(at);
                        }
                        // A delta that disagrees with the row means the
                        // sequence precondition was violated; the exact
                        // path is a rebuild away.
                        _ => return None,
                    }
                }
                (Edge::RolePriv(r, p), true) => {
                    let table = Arc::make_mut(&mut next.holders);
                    let row = Arc::make_mut(table.entry(p).or_default());
                    match row.binary_search(&r) {
                        Err(at) => row.insert(at, r),
                        Ok(_) => return None,
                    }
                }
                (Edge::RolePriv(r, p), false) => {
                    let table = Arc::make_mut(&mut next.holders);
                    let entry = table.get_mut(&p)?;
                    let row = Arc::make_mut(entry);
                    match row.binary_search(&r) {
                        Ok(at) => {
                            row.remove(at);
                        }
                        Err(_) => return None,
                    }
                    if entry.is_empty() {
                        // Parity with `build`, which never materializes
                        // holderless vertices.
                        table.remove(&p);
                    }
                }
                (Edge::RoleRole(a, b), added) => {
                    let succ = succ.get_or_insert_with(|| {
                        let mut adj = vec![BTreeSet::new(); self.role_count];
                        for (s, t) in policy_before.rh() {
                            adj[s.index()].insert(t.0);
                        }
                        adj
                    });
                    rh_changed = true;
                    let outcome = if added {
                        if !succ[a.index()].insert(b.0) {
                            return None;
                        }
                        next.closure.add_edge_incremental(a.0, b.0)
                    } else {
                        if !succ[a.index()].remove(&b.0) {
                            return None;
                        }
                        let cap = removal_fanout_cap(next.closure.scc_count());
                        next.closure.remove_edge_incremental(a.0, b.0, succ, cap)
                    };
                    if outcome == ClosureDelta::Rebuild {
                        return None;
                    }
                }
            }
        }
        if rh_changed {
            next.closure
                .recompute_longest_chain(succ.as_deref().expect("built on first RH delta"));
        }
        Some(next)
    }

    /// The underlying role-hierarchy closure.
    pub fn role_closure(&self) -> &RoleClosure {
        &self.closure
    }

    /// `true` iff `from →φ to` for entities. Reflexive.
    pub fn reach_entity(&self, from: Entity, to: Entity) -> bool {
        match (from, to) {
            (Entity::User(a), Entity::User(b)) => a == b,
            (Entity::Role(_), Entity::User(_)) => false,
            (Entity::Role(a), Entity::Role(b)) => self.closure.reaches(a.0, b.0),
            (Entity::User(u), Entity::Role(b)) => self
                .direct_roles(u)
                .iter()
                .any(|r| self.closure.reaches(r.0, b.0)),
        }
    }

    /// `true` iff `from →φ p` where `p` is a privilege vertex.
    pub fn reach_priv(&self, from: Entity, p: PrivId) -> bool {
        let Some(holders) = self.holders.get(&p) else {
            return false;
        };
        holders.iter().any(|&h| self.reach_entity(from, h.into()))
    }

    /// General node-to-node reachability. Reflexive.
    pub fn reach_node(&self, from: Node, to: Node) -> bool {
        if from == to {
            return true;
        }
        match (from, to) {
            (Node::Priv(_), _) => false,
            (Node::User(u), Node::Priv(p)) => self.reach_priv(Entity::User(u), p),
            (Node::Role(r), Node::Priv(p)) => self.reach_priv(Entity::Role(r), p),
            (Node::User(u), Node::Role(r)) => self.reach_entity(u.into(), r.into()),
            (Node::User(a), Node::User(b)) => a == b,
            (Node::Role(a), Node::Role(b)) => self.reach_entity(a.into(), b.into()),
            (Node::Role(_), Node::User(_)) => false,
        }
    }

    /// Every role reachable from `e` (for users: union of assigned-role
    /// closures; for roles: the closure row).
    pub fn roles_reachable(&self, e: Entity) -> BitSet {
        let mut out = BitSet::new(self.role_count);
        match e {
            Entity::Role(r) => {
                if r.index() < self.role_count {
                    out.union_with(self.closure.row(r.0));
                }
            }
            Entity::User(u) => {
                for r in self.direct_roles(u) {
                    out.union_with(self.closure.row(r.0));
                }
            }
        }
        out
    }

    /// Every privilege vertex reachable from `e`.
    pub fn privs_reachable<'a>(
        &'a self,
        policy: &'a Policy,
        e: Entity,
    ) -> impl Iterator<Item = PrivId> + 'a {
        let roles = self.roles_reachable(e);
        policy.pa().filter_map(move |(r, p)| {
            if roles.contains(r.index()) {
                Some(p)
            } else {
                None
            }
        })
    }

    /// Every user privilege (perm) reachable from `e` — the authorization
    /// row used by the non-administrative refinement check (Definition 6).
    pub fn perms_reachable(&self, universe: &Universe, policy: &Policy, e: Entity) -> Vec<Perm> {
        let mut out: Vec<Perm> = self
            .privs_reachable(policy, e)
            .filter_map(|p| match universe.term(p) {
                PrivTerm::Perm(q) => Some(q),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    fn direct_roles(&self, u: UserId) -> &[RoleId] {
        self.user_roles
            .get(u.index())
            .map(|row| row.as_slice())
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyBuilder;
    use crate::universe::Edge;

    /// Figure 1 of the paper: diana → {nurse, staff}, staff → nurse →
    /// {dbusr1, prntusr}, staff → dbusr2, plus perms.
    fn figure1() -> (Universe, Policy) {
        PolicyBuilder::new()
            .assign("diana", "nurse")
            .assign("diana", "staff")
            .inherit("staff", "nurse")
            .inherit("nurse", "dbusr1")
            .inherit("nurse", "prntusr")
            .inherit("staff", "dbusr2")
            .inherit("dbusr2", "dbusr1")
            .permit("dbusr1", "read", "t1")
            .permit("dbusr1", "read", "t2")
            .permit("dbusr2", "write", "t3")
            .permit("prntusr", "prnt", "black")
            .permit("staff", "prnt", "color")
            .finish()
    }

    #[test]
    fn bfs_matches_paper_paths() {
        let (uni, policy) = figure1();
        let diana = uni.find_user("diana").unwrap();
        let nurse = uni.find_role("nurse").unwrap();
        let dbusr2 = uni.find_role("dbusr2").unwrap();
        assert!(reaches_entity(&policy, diana.into(), nurse.into()));
        assert!(reaches_entity(&policy, diana.into(), dbusr2.into()));
        assert!(!reaches_entity(
            &policy,
            nurse.into(),
            uni.find_role("staff").unwrap().into()
        ));
        // Reflexivity, even for unassigned entities.
        assert!(reaches_entity(&policy, nurse.into(), nurse.into()));
    }

    #[test]
    fn bfs_reaches_priv_vertices() {
        let (mut uni, policy) = figure1();
        let nurse = uni.find_role("nurse").unwrap();
        let perm = uni.perm("read", "t1");
        let p = uni.priv_perm(perm);
        assert!(reaches(&policy, Node::Role(nurse), Node::Priv(p)));
        let w3 = uni.perm("write", "t3");
        let p3 = uni.priv_perm(w3);
        assert!(
            !reaches(&policy, Node::Role(nurse), Node::Priv(p3)),
            "nurses cannot write t3 (Example 1)"
        );
    }

    #[test]
    fn priv_nodes_are_sinks() {
        let (mut uni, policy) = figure1();
        let perm = uni.perm("read", "t1");
        let p = uni.priv_perm(perm);
        let nurse = uni.find_role("nurse").unwrap();
        assert!(!reaches(&policy, Node::Priv(p), Node::Role(nurse)));
        assert!(reaches(&policy, Node::Priv(p), Node::Priv(p)));
    }

    #[test]
    fn users_are_never_targets() {
        let (uni, policy) = figure1();
        let diana = uni.find_user("diana").unwrap();
        let staff = uni.find_role("staff").unwrap();
        assert!(!reaches(&policy, Node::Role(staff), Node::User(diana)));
        assert!(reaches(&policy, Node::User(diana), Node::User(diana)));
    }

    #[test]
    fn index_agrees_with_bfs_on_figure1() {
        let (uni, policy) = figure1();
        let idx = ReachIndex::build(&uni, &policy);
        let entities: Vec<Entity> = uni
            .users()
            .map(Entity::User)
            .chain(uni.roles().map(Entity::Role))
            .collect();
        for &a in &entities {
            for &b in &entities {
                assert_eq!(
                    idx.reach_entity(a, b),
                    reaches_entity(&policy, a, b),
                    "{a:?} -> {b:?}"
                );
            }
        }
        for &a in &entities {
            for p in policy.priv_vertices() {
                assert_eq!(
                    idx.reach_priv(a, p),
                    reaches(&policy, a.into(), Node::Priv(p)),
                    "{a:?} -> {p:?}"
                );
            }
        }
    }

    #[test]
    fn perms_reachable_matches_example1() {
        let (uni, policy) = figure1();
        let idx = ReachIndex::build(&uni, &policy);
        let diana = uni.find_user("diana").unwrap();
        let nurse = uni.find_role("nurse").unwrap();
        // Nurse: read t1, read t2, print black.
        let nurse_perms = idx.perms_reachable(&uni, &policy, nurse.into());
        assert_eq!(nurse_perms.len(), 3);
        // Diana (nurse + staff): additionally write t3, print color.
        let diana_perms = idx.perms_reachable(&uni, &policy, diana.into());
        assert_eq!(diana_perms.len(), 5);
    }

    #[test]
    fn roles_reachable_rows() {
        let (uni, policy) = figure1();
        let idx = ReachIndex::build(&uni, &policy);
        let staff = uni.find_role("staff").unwrap();
        let row = idx.roles_reachable(staff.into());
        for name in ["staff", "nurse", "dbusr1", "dbusr2", "prntusr"] {
            assert!(row.contains(uni.find_role(name).unwrap().index()), "{name}");
        }
    }

    #[test]
    fn index_handles_cyclic_hierarchy() {
        let (uni, mut policy) = figure1();
        let nurse = uni.find_role("nurse").unwrap();
        let staff = uni.find_role("staff").unwrap();
        policy.add_edge(Edge::RoleRole(nurse, staff)); // cycle nurse <-> staff
        let idx = ReachIndex::build(&uni, &policy);
        assert!(idx.reach_entity(nurse.into(), staff.into()));
        assert!(idx.reach_entity(staff.into(), nurse.into()));
        assert!(reaches_entity(&policy, nurse.into(), staff.into()));
    }

    /// Same observable answers, whatever the internal SCC numbering.
    fn assert_equiv(uni: &Universe, policy: &Policy, a: &ReachIndex, b: &ReachIndex) {
        let entities: Vec<Entity> = uni
            .users()
            .map(Entity::User)
            .chain(uni.roles().map(Entity::Role))
            .collect();
        for &e in &entities {
            assert_eq!(a.roles_reachable(e), b.roles_reachable(e), "{e:?}");
            for p in policy.priv_vertices() {
                assert_eq!(a.reach_priv(e, p), b.reach_priv(e, p), "{e:?} -> {p:?}");
            }
        }
        assert_eq!(
            a.role_closure().longest_chain_roles(),
            b.role_closure().longest_chain_roles()
        );
        assert_eq!(a.role_closure().scc_count(), b.role_closure().scc_count());
    }

    #[test]
    fn delta_chain_matches_rebuild_for_every_edge_kind() {
        let (mut uni, mut policy) = figure1();
        let diana = uni.find_user("diana").unwrap();
        let nurse = uni.find_role("nurse").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let dbusr1 = uni.find_role("dbusr1").unwrap();
        let dbusr2 = uni.find_role("dbusr2").unwrap();
        let prntusr = uni.find_role("prntusr").unwrap();
        let perm = uni.perm("audit", "t9");
        let p9 = uni.priv_perm(perm);
        let mut idx = ReachIndex::build(&uni, &policy);
        let script = [
            (Edge::UserRole(diana, dbusr1), true),
            (Edge::RolePriv(nurse, p9), true),
            (Edge::RoleRole(prntusr, dbusr2), true), // new RH edge, acyclic
            (Edge::UserRole(diana, staff), false),
            (Edge::RoleRole(staff, dbusr2), false), // RH removal, inter-SCC
            (Edge::RolePriv(nurse, p9), false),
        ];
        for (edge, added) in script {
            let before = policy.clone();
            let changed = if added {
                policy.add_edge(edge)
            } else {
                policy.remove_edge(edge)
            };
            assert!(changed, "script edges flip state: {edge:?}");
            let delta = [EdgeDelta { edge, added }];
            idx = idx
                .apply_delta(&uni, &before, &delta)
                .expect("acyclic deltas apply incrementally");
            assert_equiv(&uni, &policy, &idx, &ReachIndex::build(&uni, &policy));
        }
    }

    #[test]
    fn delta_falls_back_on_new_cycles_and_population_growth() {
        let (uni, policy) = figure1();
        let nurse = uni.find_role("nurse").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let idx = ReachIndex::build(&uni, &policy);
        // staff -> nurse exists; nurse -> staff closes a cycle.
        let mut cyclic = policy.clone();
        assert!(cyclic.add_edge(Edge::RoleRole(nurse, staff)));
        assert!(idx
            .apply_delta(
                &uni,
                &policy,
                &[EdgeDelta {
                    edge: Edge::RoleRole(nurse, staff),
                    added: true,
                }],
            )
            .is_none());
        // A universe that grew roles under the index also rebuilds.
        let mut grown = uni.clone();
        grown.role("intern");
        assert!(idx.apply_delta(&grown, &policy, &[]).is_none());
    }

    #[test]
    fn unknown_user_reaches_nothing() {
        let (mut uni, policy) = figure1();
        let ghost = uni.user("ghost");
        // The index was built before `ghost` existed in UA; a fresh index
        // still has no roles for them.
        let idx = ReachIndex::build(&uni, &policy);
        let nurse = uni.find_role("nurse").unwrap();
        assert!(!idx.reach_entity(ghost.into(), nurse.into()));
        assert!(idx.reach_entity(ghost.into(), ghost.into()));
    }
}
