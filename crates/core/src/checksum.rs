//! Canonical 64-bit checksum over a policy's edge set.
//!
//! Replication ships `(epoch, deltas, checksum)` frames; two servers are
//! in the same state iff they hold the same edge set over the same
//! universe. The checksum here is the XOR of one fixed 64-bit digest per
//! edge, which buys two properties a serial CRC lacks:
//!
//! * **order independence** — `UA ∪ RH ∪ PA` is a set; any iteration
//!   order produces the same value, so primary and replica never have to
//!   agree on an enumeration order;
//! * **O(deltas) incremental maintenance** — adding or removing an edge
//!   toggles its digest in or out by one XOR ([`toggle_edge`]), so the
//!   epoch-publication hot path pays per *changed* edge, not per edge.
//!
//! This is an integrity checksum against divergence bugs (a replica that
//! applied different deltas, a torn bootstrap), not a cryptographic
//! commitment: colliding edge sets exist in principle but require a
//! specific 64-bit relation between unrelated edges.

use crate::universe::Edge;

/// The checksum of the empty edge set.
pub const EMPTY_CHECKSUM: u64 = 0;

/// Finalizer of splitmix64 — a 64-bit bijective mixer.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The fixed 64-bit digest of one edge.
///
/// Injective per edge kind (the packed `(source, target)` pair goes
/// through a bijective mixer); the three kinds are separated by mixing
/// in a per-kind constant first.
pub fn edge_digest(edge: Edge) -> u64 {
    let (kind, src, dst) = match edge {
        Edge::UserRole(u, r) => (1u64, u.0, r.0),
        Edge::RoleRole(r, s) => (2u64, r.0, s.0),
        Edge::RolePriv(r, p) => (3u64, r.0, p.0),
    };
    mix(((src as u64) << 32 | dst as u64) ^ mix(kind))
}

/// Toggles `edge` in or out of `checksum` (XOR is its own inverse, so
/// the same call both adds a missing edge and removes a present one).
pub fn toggle_edge(checksum: u64, edge: Edge) -> u64 {
    checksum ^ edge_digest(edge)
}

/// The checksum of `edges`'s full edge set, from scratch.
pub fn edges_checksum(edges: impl IntoIterator<Item = Edge>) -> u64 {
    edges
        .into_iter()
        .fold(EMPTY_CHECKSUM, |acc, e| acc ^ edge_digest(e))
}

/// The checksum of a policy's canonical edge set (`UA ∪ RH ∪ PA`).
pub fn policy_checksum(policy: &crate::policy::Policy) -> u64 {
    edges_checksum(policy.edges())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{PrivId, RoleId, UserId};
    use crate::policy::PolicyBuilder;

    #[test]
    fn digest_distinguishes_edge_kinds_and_endpoints() {
        let a = edge_digest(Edge::UserRole(UserId(1), RoleId(2)));
        let b = edge_digest(Edge::RoleRole(RoleId(1), RoleId(2)));
        let c = edge_digest(Edge::RolePriv(RoleId(1), PrivId(2)));
        let d = edge_digest(Edge::UserRole(UserId(2), RoleId(1)));
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn checksum_is_order_independent() {
        let edges = [
            Edge::UserRole(UserId(0), RoleId(1)),
            Edge::RoleRole(RoleId(1), RoleId(2)),
            Edge::RolePriv(RoleId(2), PrivId(0)),
        ];
        let forward = edges_checksum(edges);
        let backward = edges_checksum(edges.iter().rev().copied());
        assert_eq!(forward, backward);
    }

    #[test]
    fn toggle_tracks_membership() {
        let e1 = Edge::UserRole(UserId(3), RoleId(4));
        let e2 = Edge::RoleRole(RoleId(4), RoleId(5));
        let mut sum = EMPTY_CHECKSUM;
        sum = toggle_edge(sum, e1);
        sum = toggle_edge(sum, e2);
        assert_eq!(sum, edges_checksum([e1, e2]));
        sum = toggle_edge(sum, e1);
        assert_eq!(sum, edges_checksum([e2]));
        sum = toggle_edge(sum, e2);
        assert_eq!(sum, EMPTY_CHECKSUM);
    }

    #[test]
    fn policy_checksum_matches_incremental_toggles() {
        let (uni, mut policy) = PolicyBuilder::new()
            .assign("diana", "nurse")
            .inherit("staff", "nurse")
            .permit("nurse", "read", "t1")
            .finish();
        let diana = uni.find_user("diana").unwrap();
        let staff = uni.find_role("staff").unwrap();
        let before = policy_checksum(&policy);
        let edge = Edge::UserRole(diana, staff);
        assert!(policy.add_edge(edge));
        let after = policy_checksum(&policy);
        assert_eq!(after, toggle_edge(before, edge));
        assert!(policy.remove_edge(edge));
        assert_eq!(policy_checksum(&policy), before);
    }

    #[test]
    fn empty_policy_has_empty_checksum() {
        let (_, policy) = PolicyBuilder::new().finish();
        assert_eq!(policy_checksum(&policy), EMPTY_CHECKSUM);
    }
}
